//! Always-on sensor hub: every §V extension of the model at once.
//!
//! ```sh
//! cargo run --example sensor_hub
//! ```
//!
//! The paper's Discussion sketches three evolutions of the platform:
//! a link clock decoupled from the MCU, a direct sensor→accelerator data
//! path, and a concurrent task on the host. This example builds that
//! "full vision" hub — a camera streams frames straight into the
//! accelerator running the CNN, the results return over a 25 MHz
//! independent link, and the 2 MHz host simultaneously runs its own
//! housekeeping task — and compares it with the paper's baseline
//! prototype wiring.

use het_accel::prelude::*;
use ulp_offload::LinkClocking;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 64;
    let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());

    // Baseline wiring (the paper's prototype): link tied to a 2 MHz host.
    let mut proto = HetSystem::new(HetSystemConfig {
        mcu_freq_hz: 2.0e6,
        ..HetSystemConfig::default()
    });
    let cost = proto.measure_cost(&build)?;
    let base = proto.predict(
        &cost,
        &OffloadOptions {
            iterations: frames,
            double_buffer: true,
            ..Default::default()
        },
        true,
    );

    // The §V hub: independent link, sensor-direct inputs, host task.
    let hub_sys = HetSystem::new(HetSystemConfig {
        mcu_freq_hz: 2.0e6,
        link_clocking: LinkClocking::Independent { spi_hz: 25.0e6 },
        ..HetSystemConfig::default()
    });
    let hub = hub_sys.predict(
        &cost,
        &OffloadOptions {
            iterations: frames,
            double_buffer: true,
            sensor_direct: true,
            host_task: true,
            ..Default::default()
        },
        true,
    );

    println!("always-on CNN sensor hub, 2 MHz host, {frames}-frame bursts\n");
    println!("                        fps      efficiency   host work");
    println!(
        "prototype wiring      {:>6.1}      {:>5.1}%       host sleeps",
        frames as f64 / base.total_seconds(),
        base.efficiency() * 100.0
    );
    println!(
        "§V hub                {:>6.1}      {:>5.1}%       {:.2} M cycles gained",
        frames as f64 / hub.total_seconds(),
        hub.efficiency() * 100.0,
        hub.host_task_cycles as f64 / 1e6
    );
    println!(
        "\nframe-rate gain {:.1}× from the same silicon, purely by re-wiring the\n\
         data paths — the paper's §V argument, quantified.",
        base.total_seconds() / hub.total_seconds()
    );
    println!(
        "host energy {:.1} µJ → {:.1} µJ per burst (runs its own task instead of\n\
         sleeping); accelerator untouched at {:.1} µJ.",
        base.mcu_energy_joules * 1e6,
        hub.mcu_energy_joules * 1e6,
        hub.pulp_energy_joules * 1e6
    );
    Ok(())
}
