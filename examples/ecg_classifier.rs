//! Duty-cycled biomedical classifier: SVM (RBF) on sensor windows.
//!
//! ```sh
//! cargo run --example ecg_classifier
//! ```
//!
//! The compressed-sensing/biomedical scenario of the paper's introduction:
//! a wearable node wakes every 500 ms, classifies a window of sensor
//! features with an RBF support vector machine, and sleeps again. The
//! example computes energy per classification and the resulting battery
//! life on a CR2032 coin cell, host-only versus heterogeneous.

use het_accel::prelude::*;

const WAKE_PERIOD_S: f64 = 0.5;
const CR2032_JOULES: f64 = 0.225 * 3.0 * 3600.0; // 225 mAh at 3 V

fn battery_days(active_j: f64, active_s: f64, sleep_w: f64) -> f64 {
    // Energy per wake period: the classification plus sleep for the rest.
    let sleep_j = sleep_w * (WAKE_PERIOD_S - active_s).max(0.0);
    let per_period = active_j + sleep_j;
    CR2032_JOULES / per_period * WAKE_PERIOD_S / 86_400.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Host-only node at 32 MHz.
    let sys = HetSystem::new(HetSystemConfig {
        mcu_freq_hz: 32.0e6,
        ..Default::default()
    });
    let host = sys.run_on_host(&Benchmark::SvmRbf.build(&TargetEnv::host_m4()))?;
    let mcu_sleep = sys.config().mcu.sleep_power_w();
    let host_days = battery_days(host.energy_joules, host.seconds, mcu_sleep);

    // Heterogeneous node: each wake-up offloads one window. The binary is
    // resident after the first offload, so we model the steady state with
    // a second invocation.
    let mut het = HetSystem::new(HetSystemConfig::default());
    let build = Benchmark::SvmRbf.build(&TargetEnv::pulp_parallel());
    let first = het.offload(&build, &OffloadOptions::default())?;
    let steady = het.offload(&build, &OffloadOptions::default())?;
    // While sleeping, both dies leak.
    let het_sleep = mcu_sleep + het.config().power.leakage_w(het.config().pulp_vdd);
    let het_days = battery_days(
        steady.total_energy_joules(),
        steady.total_seconds(),
        het_sleep,
    );

    println!("wearable ECG-class node — one SVM (RBF) classification every 500 ms\n");
    println!("                       active time   energy/classif.   CR2032 life");
    println!(
        "host only (32 MHz)    {:>8.2} ms    {:>9.1} µJ      {:>6.0} days",
        host.seconds * 1e3,
        host.energy_joules * 1e6,
        host_days
    );
    println!(
        "MCU+PULP  (16 MHz)    {:>8.2} ms    {:>9.1} µJ      {:>6.0} days",
        steady.total_seconds() * 1e3,
        steady.total_energy_joules() * 1e6,
        het_days
    );
    println!(
        "\nfirst offload ships {:.1} kB of binary ({:.2} ms, then resident)",
        Benchmark::SvmRbf
            .build(&TargetEnv::pulp_parallel())
            .offload_binary_bytes() as f64
            / 1024.0,
        first.binary_seconds * 1e3
    );
    println!(
        "classification latency gain {:.1}×, energy gain {:.1}×",
        host.seconds / steady.total_seconds(),
        host.energy_joules / steady.total_energy_joules()
    );
    if het_days > host_days {
        println!("battery life extended {:.1}×", het_days / host_days);
    } else {
        println!("note: at this duty cycle sleep dominates; accelerator pays off at higher rates");
    }
    Ok(())
}
