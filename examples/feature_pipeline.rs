//! Vision feature pipeline under a strict power envelope.
//!
//! ```sh
//! cargo run --example feature_pipeline
//! ```
//!
//! Extracts HOG descriptors from 64×64 frames under a **total 10 mW
//! budget** (paper §IV-B / Fig. 5a): the example sweeps the host clock,
//! solves for the best accelerator operating point in the residual power,
//! and picks the configuration with the highest end-to-end frame rate —
//! including the offload traffic, which Fig. 5a ignores. It also shows
//! what the link width (plain SPI vs QSPI) costs.

use het_accel::prelude::*;
use ulp_power::busy_activity;

const BUDGET_W: f64 = 10.0e-3;
const LINK_W: f64 = 20.0e-6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let build = Benchmark::Hog.build(&TargetEnv::pulp_parallel());
    let power = PulpPowerModel::pulp3();
    let mcu = datasheet::stm32l476();

    // Host-only reference at the 32 MHz envelope limit.
    let host_sys = HetSystem::new(HetSystemConfig {
        mcu_freq_hz: 32.0e6,
        ..Default::default()
    });
    let host = host_sys.run_on_host(&Benchmark::Hog.build(&TargetEnv::host_m4()))?;
    println!(
        "HOG 64×64 descriptor under a 10 mW platform budget\n\
         host-only baseline @32 MHz: {:.2} ms/frame ({:.1} fps)\n",
        host.seconds * 1e3,
        1.0 / host.seconds
    );

    println!("MCU MHz  PULP op point     frame ms   fps     eff   platform mW");
    let mut best: Option<(f64, f64)> = None; // (fps, mcu_hz)
    for mcu_mhz in [2.0f64, 4.0, 8.0, 16.0, 26.0] {
        let mcu_hz = mcu_mhz * 1e6;
        let residual = BUDGET_W - mcu.run_power_w(mcu_hz) - LINK_W;
        let Some(op) = power.max_freq_under_power(residual, &busy_activity(4, 8)) else {
            continue;
        };
        let mut sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: mcu_hz,
            pulp_vdd: op.vdd,
            pulp_freq_hz: op.freq_hz,
            ..HetSystemConfig::default()
        });
        let frames = 16;
        let rep = sys.offload(
            &build,
            &OffloadOptions {
                iterations: frames,
                double_buffer: true,
                ..Default::default()
            },
        )?;
        let per_frame = rep.total_seconds() / frames as f64;
        let fps = 1.0 / per_frame;
        let platform_mw = (mcu.run_power_w(mcu_hz) + op.total_power_w + LINK_W) * 1e3;
        println!(
            "{:>7.0}  {:>5.0} MHz @{:.2}V   {:>8.2}   {:>5.1}   {:>3.0}%   {:>6.2}",
            mcu_mhz,
            op.freq_hz / 1e6,
            op.vdd,
            per_frame * 1e3,
            fps,
            rep.efficiency() * 100.0,
            platform_mw
        );
        if best.is_none_or(|(f, _)| fps > f) {
            best = Some((fps, mcu_hz));
        }
    }

    let (best_fps, best_hz) = best.expect("at least one feasible point");
    println!(
        "\nbest configuration: MCU @{:.0} MHz → {:.1} fps ({:.1}× the host-only baseline)",
        best_hz / 1e6,
        best_fps,
        best_fps * host.seconds
    );
    println!(
        "the sweet spot balances the SPI clock (tied to the MCU) against the\n\
         accelerator budget — exactly the trade-off of the paper's Fig. 5"
    );

    // Link-width sensitivity at the best host clock.
    println!("\nlink width at {:.0} MHz:", best_hz / 1e6);
    for width in [SpiWidth::Single, SpiWidth::Quad] {
        let mut sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: best_hz,
            link_width: width,
            ..HetSystemConfig::default()
        });
        let rep = sys.offload(
            &build,
            &OffloadOptions {
                iterations: 16,
                double_buffer: true,
                ..Default::default()
            },
        )?;
        println!(
            "  {:>5}: {:>6.2} ms/frame, efficiency {:>3.0}%",
            width.to_string(),
            rep.total_seconds() / 16.0 * 1e3,
            rep.efficiency() * 100.0
        );
    }
    Ok(())
}
