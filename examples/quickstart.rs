//! Quickstart: offload one kernel and compare against the host.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the default heterogeneous platform (STM32-L476 @16 MHz + 4-core
//! PULP @0.65 V over QSPI), runs the `matmul` benchmark on the host alone
//! and offloaded, and prints the time/energy comparison.

use het_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::MatMul;

    // 1. The coupled platform.
    let mut sys = HetSystem::new(HetSystemConfig::default());
    println!(
        "platform: {} @{:.0} MHz  +  PULP 4×OR10N @{:.0} MHz ({:.2} V)  over {}",
        sys.config().mcu.name,
        sys.config().mcu_freq_hz / 1e6,
        sys.config().pulp_freq_hz / 1e6,
        sys.config().pulp_vdd,
        sys.config().link_width,
    );

    // 2. Host-only baseline.
    let host_build = benchmark.build(&TargetEnv::host_m4());
    let host = sys.run_on_host(&host_build)?;
    println!(
        "\nhost only      : {:>9.3} ms   {:>8.1} µJ   ({} cycles)",
        host.seconds * 1e3,
        host.energy_joules * 1e6,
        host.cycles
    );

    // 3. Offload to the accelerator. The target region shows the derived
    //    OpenMP map clauses.
    let accel_build = benchmark.build(&TargetEnv::pulp_parallel());
    println!("\n{}", TargetRegion::from_kernel(&accel_build));
    let iterations = 16;
    let report = sys.offload(
        &accel_build,
        &OffloadOptions {
            iterations,
            double_buffer: true,
            ..Default::default()
        },
    )?;

    let per_iter_s = report.total_seconds() / iterations as f64;
    let per_iter_j = report.total_energy_joules() / iterations as f64;
    println!(
        "offloaded      : {:>9.3} ms   {:>8.1} µJ   per iteration ({} iterations/offload)",
        per_iter_s * 1e3,
        per_iter_j * 1e6,
        iterations
    );
    println!(
        "  breakdown    : binary {:.3} ms, inputs {:.3} ms, compute {:.3} ms, outputs {:.3} ms,\n\
         \x20                overlapped -{:.3} ms (double buffering)",
        report.binary_seconds * 1e3,
        report.input_seconds * 1e3,
        report.compute_seconds * 1e3,
        report.output_seconds * 1e3,
        report.overlapped_seconds * 1e3,
    );

    println!(
        "\nspeedup  {:>5.1}×    energy gain  {:>5.1}×    offload efficiency {:.0}%",
        host.seconds / per_iter_s,
        host.energy_joules / per_iter_j,
        report.efficiency() * 100.0
    );
    println!(
        "platform power during compute: {:.2} mW (host asleep + accelerator active)",
        sys.compute_phase_power_watts(&report.activity) * 1e3
    );
    Ok(())
}
