//! Smart camera node: CNN inference on a frame stream.
//!
//! ```sh
//! cargo run --example smart_camera
//! ```
//!
//! The motivating IoT scenario of the paper's introduction (embedded
//! machine vision, cf. the CConvNet classroom-occupancy application): a
//! sensor produces frames, the host marshals them to the accelerator, and
//! the CNN classifies each one. Double buffering overlaps the frame
//! transfers with inference. The example compares achievable frame rate
//! and energy per frame on the host alone versus the heterogeneous
//! platform, both within the sub-10 mW envelope.

use het_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 64;

    // Host-only camera: the MCU runs the CNN itself. To stay within the
    // 10 mW envelope the L476 may clock up to 32 MHz.
    let host_cfg = HetSystemConfig {
        mcu_freq_hz: 32.0e6,
        ..HetSystemConfig::default()
    };
    let host_sys = HetSystem::new(host_cfg);
    let host = host_sys.run_on_host(&Benchmark::Cnn.build(&TargetEnv::host_m4()))?;
    let host_fps = 1.0 / host.seconds;

    // Heterogeneous camera: host at 16 MHz drives the QSPI, the CNN runs
    // on the cluster, frames stream with double buffering.
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
    let report = sys.offload(
        &build,
        &OffloadOptions {
            iterations: frames,
            double_buffer: true,
            ..Default::default()
        },
    )?;
    let het_fps = frames as f64 / report.total_seconds();
    let per_frame_j = report.total_energy_joules() / frames as f64;

    println!("smart camera — CNN inference on {frames}-frame bursts");
    println!("\n                      frame rate    energy/frame   platform power");
    println!(
        "host only (32 MHz)    {:>7.1} fps   {:>8.1} µJ     {:>5.2} mW",
        host_fps,
        host.energy_joules * 1e6,
        host_sys.config().mcu.run_power_w(32.0e6) * 1e3
    );
    println!(
        "MCU+PULP  (16 MHz)    {:>7.1} fps   {:>8.1} µJ     {:>5.2} mW (compute phase)",
        het_fps,
        per_frame_j * 1e6,
        sys.compute_phase_power_watts(&report.activity) * 1e3
    );
    println!(
        "\nspeedup {:.1}×, energy gain {:.1}×, offload efficiency {:.0}% \
         (binary amortized over the burst)",
        het_fps / host_fps,
        host.energy_joules / per_frame_j,
        report.efficiency() * 100.0
    );

    // What the OpenMP target region moves per frame:
    println!("\nper-frame mapping: {}", TargetRegion::from_kernel(&build));
    println!(
        "link traffic: {:.1} kB sent, {:.1} kB received over the burst",
        sys.link_stats().bytes_tx as f64 / 1024.0,
        sys.link_stats().bytes_rx as f64 / 1024.0
    );
    Ok(())
}
