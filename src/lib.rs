//! # het-accel — the heterogeneous accelerator model for ULP platforms
//!
//! A full-system reproduction of *"Enabling the Heterogeneous Accelerator
//! Model on Ultra-Low Power Microcontroller Platforms"* (DATE 2016): an
//! STM32-class host microcontroller coupled with a PULP-style quad-core
//! programmable accelerator over an SPI/QSPI link, with an
//! OpenMP-4.0-flavoured offload runtime, activity-driven power models, and
//! the paper's complete benchmark suite and evaluation harness.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] (`ulp-isa`) | UIR RISC ISA: assembler, encoder, cycle-level cores |
//! | [`cluster`] (`ulp-cluster`) | PULP cluster: TCDM banks, I$, DMA, event unit |
//! | [`mcu`] (`ulp-mcu`) | host MCU models + commercial datasheet points |
//! | [`link`] (`ulp-link`) | SPI/QSPI link timing, frames, GPIO events |
//! | [`power`] (`ulp-power`) | PULP3 power model, envelope solver |
//! | [`offload`] (`ulp-offload`) | **the paper's contribution**: target regions, offload runtime, coupled system |
//! | [`kernels`] (`ulp-kernels`) | the ten Table I benchmarks: references + code generators |
//!
//! ## Quickstart
//!
//! ```
//! use het_accel::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Host-only baseline…
//! let sys = HetSystem::new(HetSystemConfig::default());
//! let host = sys.run_on_host(&Benchmark::Cnn.build(&TargetEnv::host_m4()))?;
//!
//! // …versus offloading to the accelerator.
//! let mut sys = HetSystem::new(HetSystemConfig::default());
//! let report = sys.offload(
//!     &Benchmark::Cnn.build(&TargetEnv::pulp_parallel()),
//!     &OffloadOptions { iterations: 16, ..Default::default() },
//! )?;
//! let speedup = host.seconds / (report.total_seconds() / 16.0);
//! assert!(speedup > 5.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete application scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the modelling and reproduction notes.

pub use ulp_cluster as cluster;
pub use ulp_isa as isa;
pub use ulp_kernels as kernels;
pub use ulp_link as link;
pub use ulp_mcu as mcu;
pub use ulp_offload as offload;
pub use ulp_power as power;

/// One-stop imports for applications.
pub mod prelude {
    pub use ulp_cluster::{Cluster, ClusterConfig};
    pub use ulp_isa::prelude::*;
    pub use ulp_kernels::{Benchmark, KernelBuild, TargetEnv};
    pub use ulp_link::{SpiLink, SpiWidth};
    pub use ulp_mcu::{datasheet, Mcu, McuDevice};
    pub use ulp_offload::{
        envelope_speedup, FaultConfig, HetSystem, HetSystemConfig, OffloadOptions, OffloadPolicy,
        OffloadQueue, OffloadReport, Overlap, PipelineConfig, PowerBudget, QueueReport,
        ResilienceStats, TargetRegion,
    };
    pub use ulp_power::PulpPowerModel;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn address_constants_agree_across_crates() {
        // The kernels crate duplicates the TCDM and host data bases to
        // keep its dependency surface small; they must stay in sync.
        assert_eq!(TargetEnv::pulp_single().data_base, ulp_cluster::TCDM_BASE);
        assert_eq!(TargetEnv::host_m4().data_base, ulp_mcu::MCU_DATA_BASE);
        assert_eq!(
            ulp_kernels::codegen::emit::EVT_EOC,
            ulp_cluster::EVT_EOC,
            "end-of-computation event ids must match"
        );
        assert_eq!(
            ulp_kernels::codegen::emit::EVT_BROADCAST,
            ulp_cluster::EVT_BROADCAST
        );
    }

    #[test]
    fn prelude_compiles_a_full_flow() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let build = ulp_kernels::matmul::build_sized(
            ulp_kernels::matmul::MatVariant::Char,
            &TargetEnv::pulp_parallel(),
            16,
        );
        let report = sys.offload(&build, &OffloadOptions::default()).unwrap();
        assert!(report.total_seconds() > 0.0);
    }
}
