//! Seeded-determinism and fairness regressions for the serving layer.
//!
//! The serving layer's claim is that everything it reports is a pure
//! function of the workload seed: the committed `BENCH_serve.json` must
//! re-render byte-identically on any machine and under any `--jobs`
//! setting, and the weighted-fair scheduler must protect a background
//! tenant from a hot tenant at 10× its offered load.

use ulp_kernels::Benchmark;
use ulp_offload::{HetSystemConfig, PipelineConfig};
use ulp_serve::{
    BatchPolicy, CostBook, ServeConfig, ServePool, TenantLoad, TenantSpec, WorkloadSpec,
};

/// The committed artifact and the golden table must both re-render
/// byte-identically whether the study simulates serially (`--jobs 1`)
/// or in parallel (`--jobs 4`): `par_map` is order-preserving and every
/// scheduling decision lives on the virtual clock.
#[test]
fn bench_serve_json_is_byte_identical_across_jobs() {
    ulp_par::set_jobs(Some(1));
    let serial_cells = ulp_bench::serve::study();
    ulp_par::set_jobs(Some(4));
    let parallel_cells = ulp_bench::serve::study();
    ulp_par::set_jobs(None);

    let json_1 = ulp_bench::serve::render_json(&serial_cells);
    let json_4 = ulp_bench::serve::render_json(&parallel_cells);
    assert_eq!(json_1, json_4, "BENCH_serve.json must not depend on --jobs");
    assert_eq!(
        json_1,
        include_str!("../BENCH_serve.json"),
        "committed BENCH_serve.json is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin serve -- --json BENCH_serve.json`"
    );
    assert_eq!(
        ulp_bench::serve::render_table(&serial_cells),
        include_str!("golden/serve_table.txt"),
        "golden serve table is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin serve > tests/golden/serve_table.txt`"
    );
}

/// The acceptance claim of the study itself: at the largest pool size,
/// kernel-aware batching beats serial per-request dispatch by ≥ 1.5×
/// throughput on at least half the paper benchmarks.
#[test]
fn batching_beats_serial_on_at_least_five_benchmarks() {
    let cells = ulp_bench::serve::study();
    let top = *ulp_bench::serve::POOLS.last().unwrap();
    let wins = cells
        .iter()
        .filter(|c| c.pool == top && c.speedup() >= 1.5)
        .count();
    assert!(
        wins >= 5,
        "only {wins}/10 benchmarks at >= 1.5x, pool {top}"
    );
}

/// Fairness regression: a hot tenant offering 10× the background
/// tenant's load must not push the background tenant's p99 past what
/// the pre-serving-layer runtime — serial per-request FIFO dispatch
/// with no tenant isolation — would have given it under the identical
/// request stream.
#[test]
fn hot_tenant_cannot_starve_background_past_serial_baseline() {
    let kernels = [Benchmark::MatMul, Benchmark::Cnn, Benchmark::SvmLinear];
    let config = HetSystemConfig::default();
    let book = CostBook::measure(&ulp_kernels::TargetEnv::pulp_parallel(), &config, &kernels)
        .expect("cost book");

    let mut bg = TenantSpec::new("bg");
    bg.queue_cap = 1024;
    let mut hot = TenantSpec::new("hot");
    hot.queue_cap = 1024;

    // Saturating mix: hot at 10× the background's offered load, enough
    // combined to overload the 2-worker pool so queueing discipline is
    // what decides the background tenant's latency.
    let mean_ns: f64 = kernels
        .iter()
        .map(|&b| book.est_ns(b, 1) as f64)
        .sum::<f64>()
        / kernels.len() as f64;
    let capacity_rps = 2.0 * 1e9 / mean_ns;
    let bg_rate = capacity_rps * 0.15;
    let workload = WorkloadSpec {
        seed: 77,
        duration_ns: 2_000_000_000,
        tenants: vec![
            TenantLoad::uniform(bg.clone(), bg_rate, &kernels),
            TenantLoad::uniform(hot.clone(), bg_rate * 10.0, &kernels),
        ],
    };
    let requests = workload.generate();
    let tenants = vec![bg, hot];

    let mut serving = ServePool::new(
        &config,
        tenants.clone(),
        book.clone(),
        ServeConfig {
            pool: 2,
            ..ServeConfig::default()
        },
    );
    let mut legacy = ServePool::new(
        &config,
        tenants,
        book,
        ServeConfig {
            pool: 2,
            policy: BatchPolicy::Serial,
            fair: false,
            pipeline: PipelineConfig::default(),
            ..ServeConfig::default()
        },
    );
    let fair = serving.run(&requests).expect("serving pool must run");
    let fifo = legacy.run(&requests).expect("legacy pool must run");

    let bg_fair = &fair.tenants[0];
    let bg_fifo = &fifo.tenants[0];
    assert!(bg_fair.latency.count > 0 && bg_fifo.latency.count > 0);
    assert!(
        bg_fair.latency.p99_ns <= bg_fifo.latency.p99_ns,
        "background p99 under the serving layer ({} ns) exceeds its \
         serial-FIFO baseline ({} ns) despite the 10x hot tenant",
        bg_fair.latency.p99_ns,
        bg_fifo.latency.p99_ns
    );
    // The hot tenant is throttled to its share, not starved out.
    assert!(fair.tenants[1].latency.count > 0);
}
