//! Trace record/replay round trips: a recorded request stream replays
//! byte-identically through any scheduler configuration, so scheduler
//! A/B comparisons are exact, and replaying the same trace twice yields
//! identical outcome ledgers.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::HetSystemConfig;
use ulp_serve::{
    BatchPolicy, CostBook, Fleet, FleetConfig, ServeConfig, ServePool, ServeRequest, TenantLoad,
    TenantSpec, TraceRecorder, TraceReplayer, WorkloadSpec,
};

fn book(config: &HetSystemConfig) -> CostBook {
    CostBook::measure(&TargetEnv::pulp_parallel(), config, &Benchmark::ALL).expect("cost book")
}

/// A mixed-class, all-kernel stream of at least 10 000 requests.
fn ten_k_stream(book: &CostBook) -> (Vec<TenantSpec>, Vec<ServeRequest>) {
    let mean_ns: f64 = Benchmark::ALL
        .iter()
        .map(|&b| book.est_ns(b, 1) as f64)
        .sum::<f64>()
        / Benchmark::ALL.len() as f64;
    let capacity_rps = 4.0 * 1e9 / mean_ns;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| {
            let mut t = TenantSpec::new(&format!("t{i}"));
            t.queue_cap = 256;
            t
        })
        .collect();
    let duration_ns = (10_500.0 / capacity_rps * 1e9) as u64;
    let workload = WorkloadSpec {
        seed: 0x7ACE_2026,
        duration_ns,
        tenants: tenants
            .iter()
            .map(|spec| TenantLoad {
                spec: spec.clone(),
                rate_rps: capacity_rps / 4.0,
                kernel_mix: Benchmark::ALL.iter().map(|&b| (b, 1.0)).collect(),
                class_mix: [0.25, 0.5, 0.25],
                iterations: 1,
            })
            .collect(),
    };
    let requests = workload.generate();
    assert!(
        requests.len() >= 10_000,
        "stream too small: {}",
        requests.len()
    );
    (tenants, requests)
}

fn assert_same_stream(a: &[ServeRequest], b: &[ServeRequest]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.tenant, y.tenant);
        assert_eq!(x.benchmark, y.benchmark);
        assert_eq!(x.class, y.class);
        assert_eq!(x.arrival_ns, y.arrival_ns);
        assert_eq!(x.iterations, y.iterations);
    }
}

/// Recording a 10 k-request stream and replaying it through a batched
/// and a serial scheduler must (a) hand each scheduler the identical
/// stream — re-encoding what each one consumed reproduces the recorded
/// bytes exactly, in both encodings — (b) yield zero invariant
/// violations under either scheduler, and (c) make every report
/// difference attributable to the scheduler alone.
#[test]
fn recorded_stream_replays_byte_identically_through_both_schedulers() {
    let config = HetSystemConfig::default();
    let book = book(&config);
    let (tenants, requests) = ten_k_stream(&book);

    let mut rec = TraceRecorder::new();
    rec.record_all(&requests);
    let bytes = rec.encode();
    let json = rec.encode_json();

    // Both encodings decode to the identical stream.
    let bin_replay = TraceReplayer::decode(&bytes).expect("binary decode");
    let json_replay = TraceReplayer::decode(json.as_bytes()).expect("json decode");
    assert_same_stream(bin_replay.requests(), &requests);
    assert_same_stream(json_replay.requests(), bin_replay.requests());

    let schedulers = [
        ("batched", BatchPolicy::KernelAware { max_batch: 8 }),
        ("serial", BatchPolicy::Serial),
    ];
    for (label, policy) in schedulers {
        let replay = TraceReplayer::decode(&bytes).expect("decode");

        // The stream the scheduler consumes re-encodes to the recorded
        // bytes exactly: the replayed admission sequence is
        // byte-identical to the recording.
        let mut reenc = TraceRecorder::new();
        reenc.record_all(replay.requests());
        assert_eq!(reenc.encode(), bytes, "{label}: binary round trip");
        assert_eq!(reenc.encode_json(), json, "{label}: json round trip");

        let mut pool = ServePool::new(
            &config,
            tenants.clone(),
            book.clone(),
            ServeConfig {
                pool: 2,
                policy,
                ..ServeConfig::default()
            },
        );
        let report = pool
            .run(replay.requests())
            .expect("replayed stream must serve");
        let violations = ulp_serve::invariants::check(requests.len() as u64, &report);
        assert!(violations.is_empty(), "{label}: {violations:?}");
        assert!(report.completed > 0, "{label}: nothing completed");
    }
}

/// Replaying the same trace twice through the same configuration must
/// yield identical outcome ledgers — same per-request outcome sequence,
/// same SLO ledger, same aggregates.
#[test]
fn replaying_twice_yields_identical_outcome_ledgers() {
    let config = HetSystemConfig::default();
    let book = book(&config);
    let (tenants, requests) = ten_k_stream(&book);

    let mut rec = TraceRecorder::new();
    rec.record_all(&requests);
    let bytes = rec.encode();

    let run = || {
        let replay = TraceReplayer::decode(&bytes).expect("decode");
        let mut pool = ServePool::new(
            &config,
            tenants.clone(),
            book.clone(),
            ServeConfig {
                pool: 3,
                policy: BatchPolicy::KernelAware { max_batch: 8 },
                ..ServeConfig::default()
            },
        );
        pool.run(replay.requests()).expect("replay must serve")
    };
    let a = run();
    let b = run();

    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.kind, y.kind);
    }
    assert_eq!(a.slo, b.slo, "SLO ledgers must match bit-for-bit");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.latency.p99_ns, b.latency.p99_ns);
}

/// The same recorded trace fed through two *fleet* configurations (2
/// vs 4 node groups) must conserve every request fleet-wide in both —
/// an exact A/B of the sharding layer on an identical workload.
#[test]
fn fleet_replay_ab_conserves_requests_under_both_shardings() {
    let config = HetSystemConfig::default();
    let book = book(&config);
    let (tenants, requests) = ten_k_stream(&book);

    let mut rec = TraceRecorder::new();
    rec.record_all(&requests);
    let bytes = rec.encode();

    for groups in [2usize, 4] {
        let replay = TraceReplayer::decode(&bytes).expect("decode");
        let fleet = Fleet::new(
            &config,
            tenants.clone(),
            book.clone(),
            FleetConfig {
                groups,
                serve: ServeConfig {
                    pool: 2,
                    policy: BatchPolicy::KernelAware { max_batch: 8 },
                    ..ServeConfig::default()
                },
            },
        );
        let report = fleet.run(replay.requests()).expect("fleet replay");
        assert_eq!(report.offered, requests.len() as u64);
        let violations = ulp_serve::invariants::check_fleet(&report);
        assert!(violations.is_empty(), "{groups} groups: {violations:?}");
        assert!(report.completed() > 0);
    }
}
