//! Differential battery for the batching cluster engines.
//!
//! The turbo scheduler batches instructions on the frontmost core instead
//! of rescanning before every step, the micro-op engine additionally
//! replays pre-decoded basic blocks, and the epoch engine speculates whole
//! per-core windows and repairs the arbitration afterwards (see
//! `DESIGN.md`). Their contract is *bit-identity* with the reference
//! scheduler — not "close", identical: same `RunResult` (retired counts
//! included), same error (deadlocks and timeouts included), same memory
//! image, same trace, on every program and every configuration.
//!
//! Part A drives all four engines over hundreds of seeded random SPMD
//! programs on random cluster shapes (core count, TCDM banking, cache and
//! barrier latencies), including programs that deadlock or fault, plus a
//! dedicated stream of self-modifying programs that rewrite instructions
//! both inside and across cached block boundaries, plus a stream biased
//! toward TCDM bank-contention-heavy and I$-thrashing shapes — the exact
//! programs the epoch engine's conflict repair must not get wrong. Part B
//! replays the full offload pipeline — all ten Table I benchmarks, with
//! the link fault injector both off and on — through `HetSystem` instances
//! that differ only in engine choice.

use ulp_cluster::{
    Cluster, ClusterConfig, ClusterError, Engine, RunResult, EVT_BROADCAST, EVT_EOC, L2_BASE,
    TCDM_BASE,
};
use ulp_isa::prelude::*;
use ulp_rng::gen::choose;
use ulp_rng::XorShiftRng;
use ulp_trace::Tracer;

/// Bytes of the per-run TCDM scratch window compared across engines.
const SCRATCH_BYTES: usize = 512;

fn random_config(rng: &mut XorShiftRng) -> ClusterConfig {
    ClusterConfig {
        num_cores: *choose(rng, &[1, 2, 2, 3, 4, 4, 4, 8]),
        tcdm_banks: *choose(rng, &[1, 2, 4, 8]),
        icache_miss_penalty: rng.gen_range(1u32..=20),
        l2_data_latency: rng.gen_range(1u32..=10),
        barrier_latency: rng.gen_range(0u32..=8),
        ..ClusterConfig::default()
    }
}

/// A seeded random SPMD program: every core runs the same text, with
/// per-core divergence coming from the core-id CSR (different register
/// values, different branch outcomes, colliding TCDM accesses). Some
/// programs include a fork/join prologue; ~halting is likely but not
/// guaranteed — non-halting programs must produce the *same* deadlock or
/// timeout under both engines.
fn random_program(rng: &mut XorShiftRng) -> Program {
    let regs = [R1, R2, R3, R4, R5, R6];
    let mut a = Asm::new();
    a.insn(Insn::Csrr(R20, Csr::CoreId));

    if rng.gen_bool(0.3) {
        // fork/join prologue: workers sleep until the master broadcasts.
        let worker = a.new_label();
        let body = a.new_label();
        a.bne(R20, R0, worker);
        a.sev(EVT_BROADCAST);
        a.jmp(body);
        a.bind(worker);
        a.wfe();
        a.bind(body);
    }

    // Seed the register pool, then a per-core scratch pointer.
    for (k, &r) in regs.iter().enumerate() {
        a.li(r, rng.gen::<u32>() as i32 ^ k as i32);
    }
    a.la(R10, TCDM_BASE);
    a.slli(R11, R20, 4);
    a.add(R10, R10, R11);

    let blocks = rng.gen_range(5usize..=30);
    for _ in 0..blocks {
        match rng.gen_range(0u32..1000) {
            // Rare hazard blocks: orphan wfe (→ deadlock unless a latched
            // broadcast absorbs it), misaligned access (→ exec fault on a
            // specific core), and an infinite loop (→ timeout). Engines
            // must agree on the exact error, faulting core included.
            980..=983 => {
                a.wfe();
            }
            984..=986 => {
                let off = rng.gen_range(0i16..=15) * 4 + rng.gen_range(1i16..=3);
                a.lw(*choose(rng, &regs), R10, off);
            }
            987..=989 => {
                let spin = a.new_label();
                a.bind(spin);
                a.jmp(spin);
            }
            0..=349 => {
                let (rd, ra, rb) = (
                    *choose(rng, &regs),
                    *choose(rng, &regs),
                    *choose(rng, &regs),
                );
                match rng.gen_range(0u32..5) {
                    0 => a.add(rd, ra, rb),
                    1 => a.sub(rd, ra, rb),
                    2 => a.mul(rd, ra, rb),
                    3 => a.mac(rd, ra, rb),
                    _ => a.addi(rd, ra, rng.gen_range(-128i16..=127)),
                };
            }
            350..=499 => {
                let (rd, ra) = (*choose(rng, &regs), *choose(rng, &regs));
                let sh = rng.gen_range(0u8..=31);
                match rng.gen_range(0u32..3) {
                    0 => a.slli(rd, ra, sh),
                    1 => a.srli(rd, ra, sh),
                    _ => a.srai(rd, ra, sh),
                };
            }
            500..=799 => {
                // TCDM traffic: word/half/byte, offsets overlap between
                // cores so bank arbitration and ordering are exercised.
                let r = *choose(rng, &regs);
                match rng.gen_range(0u32..6) {
                    0 => a.sw(r, R10, rng.gen_range(0i16..=63) * 4),
                    1 => a.lw(r, R10, rng.gen_range(0i16..=63) * 4),
                    2 => a.sh(r, R10, rng.gen_range(0i16..=127) * 2),
                    3 => a.lh(r, R10, rng.gen_range(0i16..=127) * 2),
                    4 => a.sb(r, R10, rng.gen_range(0i16..=255)),
                    _ => a.lbu(r, R10, rng.gen_range(0i16..=255)),
                };
            }
            800..=899 => {
                // Forward branch over 1–2 ALU ops; outcome differs per
                // core, so engines must agree on divergent control flow.
                let skip = a.new_label();
                let (ra, rb) = (*choose(rng, &regs), *choose(rng, &regs));
                match rng.gen_range(0u32..3) {
                    0 => a.beq(ra, rb, skip),
                    1 => a.blt(ra, rb, skip),
                    _ => a.bgeu(ra, rb, skip),
                };
                for _ in 0..rng.gen_range(1usize..=2) {
                    let (rd, r1, r2) = (
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                    );
                    a.add(rd, r1, r2);
                }
                a.bind(skip);
            }
            _ => {
                a.barrier();
            }
        }
    }

    // Epilogue: rendezvous, master raises EOC, everyone halts.
    a.barrier();
    let done = a.new_label();
    a.bne(R20, R0, done);
    a.sev(EVT_EOC);
    a.bind(done);
    a.halt();
    a.finish().expect("generated program must assemble")
}

/// Runs one (config, program) pair on the given engine and returns every
/// observable: the run result or error, the TCDM scratch window, and the
/// attached tracer (if any) for trace comparison.
fn run_engine(
    cfg: &ClusterConfig,
    prog: &Program,
    engine: Engine,
    tracer: Option<Tracer>,
) -> (Result<RunResult, ClusterError>, (Vec<u8>, Option<Tracer>)) {
    let mut cl = Cluster::new(*cfg);
    cl.set_engine(engine);
    if let Some(t) = &tracer {
        cl.set_tracer(t.clone());
    }
    cl.load_binary(prog, L2_BASE).expect("program fits in L2");
    cl.start(L2_BASE, &[], 0);
    let result = cl.run_until_halt(200_000);
    let scratch = cl
        .read_tcdm(TCDM_BASE, SCRATCH_BYTES)
        .expect("scratch readback");
    (result, (scratch, tracer))
}

/// Seed of the Part A battery stream.
const BATTERY_SEED: u64 = 0x70B0_D1FF;

/// Runs one (config, program) pair on all four engines and asserts every
/// observable is identical, the reference scan being the oracle. Every
/// `trace`d case also attaches a tracer per engine and compares the
/// exported Chrome JSON byte-for-byte. Returns the reference outcome.
fn assert_four_way(
    cfg: &ClusterConfig,
    prog: &Program,
    trace: bool,
    battery: &str,
    ctx: &str,
    repro: &str,
) -> Result<RunResult, ClusterError> {
    let tracer = |on: bool| {
        if on {
            Some(Tracer::with_capacity(8192))
        } else {
            None
        }
    };
    let (reference, ref_mem) = run_engine(cfg, prog, Engine::Reference, tracer(trace));
    let ref_json = ref_mem.1.as_ref().map(|t| t.chrome_json());
    ulp_par::battery_case(battery, repro, || {
        for engine in [Engine::Turbo, Engine::Microop, Engine::Epoch] {
            let name = engine.name();
            let (result, mem) = run_engine(cfg, prog, engine, tracer(trace));
            assert_eq!(result, reference, "{ctx}: {name} result diverged");
            assert_eq!(mem.0, ref_mem.0, "{ctx}: {name} TCDM image diverged");
            if let (Some(golden), Some(t)) = (&ref_json, &mem.1) {
                assert_eq!(&t.chrome_json(), golden, "{ctx}: {name} trace diverged");
            }
        }
    });
    reference
}

/// Part A: 600 seeded random (config, program) pairs per unit of
/// `ULP_BATTERY_SCALE` (default 1; the nightly CI job raises it), all
/// four engines, every observable compared for equality. Every 16th pair
/// also runs with a tracer attached on each side and compares the exported
/// Chrome JSON byte-for-byte. A failing case appends its reproduction
/// line to `target/battery-failures/` before panicking.
#[test]
fn engines_match_reference_on_600_random_programs() {
    let scale = ulp_par::battery_scale();
    let cases = 600 * scale;
    let mut rng = XorShiftRng::seed_from_u64(BATTERY_SEED);
    let mut halted = 0usize;
    let mut errored = 0usize;
    for case in 0..cases {
        let cfg = random_config(&mut rng);
        let prog = random_program(&mut rng);
        let ctx = format!(
            "case {case} ({} cores, {} banks)",
            cfg.num_cores, cfg.tcdm_banks
        );
        let repro = format!(
            "engines_match_reference_on_600_random_programs: \
             seed={BATTERY_SEED:#x} case={case} ULP_BATTERY_SCALE={scale}"
        );
        match assert_four_way(
            &cfg,
            &prog,
            case % 16 == 0,
            "turbo_differential",
            &ctx,
            &repro,
        ) {
            Ok(_) => halted += 1,
            Err(_) => errored += 1,
        }
    }
    // The battery must exercise both completion and failure paths.
    assert!(
        halted * 3 >= cases * 2,
        "only {halted}/{cases} programs completed"
    );
    assert!(
        errored * 60 >= cases,
        "only {errored}/{cases} programs hit an error path"
    );
}

/// Seed of the self-modifying-code battery stream.
const SMC_SEED: u64 = 0x5E1F_C0DE;

/// A seeded self-modifying SPMD program: the text contains 1–4 patch sites
/// (each an `addi r1, r0, imm` feeding an accumulator), and before every
/// site the program stores a replacement instruction word over it, then
/// falls through and executes it. Per site the store is either in the
/// *same* straight line as the site (the patch lands inside the currently
/// executing cached block) or separated from it by a jump (the patch
/// crosses a block boundary). An outer loop runs the whole region twice,
/// so on the second pass every site's block is already cached and must be
/// detected stale.
fn random_smc_program(rng: &mut XorShiftRng) -> Program {
    let sites = rng.gen_range(1usize..=4);
    let plan: Vec<(bool, i16, i16)> = (0..sites)
        .map(|_| {
            (
                rng.gen_bool(0.5),
                rng.gen_range(1i16..=100),
                rng.gen_range(101i16..=200),
            )
        })
        .collect();
    let build = |addrs: &[u32]| -> (Program, Vec<u32>) {
        let mut a = Asm::new();
        let mut offs = Vec::new();
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.li(R9, 2); // run the patch region twice: cold build, then stale hit
        a.li(R8, 0);
        let top = a.new_label();
        a.bind(top);
        for (k, &(cross, before, after)) in plan.iter().enumerate() {
            let patched = ulp_isa::encode(&Insn::Addi(R1, R0, after)).unwrap();
            a.li(R3, patched as i32);
            a.la(R2, addrs.get(k).copied().unwrap_or(L2_BASE + 4));
            a.sw(R3, R2, 0);
            if cross {
                // A control-flow edge between store and site: the patch
                // lands in a different (and, on pass 2, cached) block.
                let over = a.new_label();
                a.jmp(over);
                a.bind(over);
            }
            offs.push(a.here());
            a.insn(Insn::Addi(R1, R0, before)); // the patch target
            a.add(R8, R8, R1);
        }
        a.addi(R9, R9, -1);
        a.bne(R9, R0, top);
        // Publish the accumulator to a per-core TCDM slot.
        a.la(R10, TCDM_BASE);
        a.slli(R11, R20, 2);
        a.add(R10, R10, R11);
        a.sw(R8, R10, 0);
        a.barrier();
        let done = a.new_label();
        a.bne(R20, R0, done);
        a.sev(EVT_EOC);
        a.bind(done);
        a.halt();
        (a.finish().expect("smc program must assemble"), offs)
    };
    // Two-pass assembly: measure the site offsets with same-length
    // placeholder addresses, then rebuild pointing the stores at the real
    // sites. (All involved `li`/`la` constants keep nonzero low 14 bits,
    // so every encoding is two words in both passes.)
    let (_, offs) = build(&[]);
    let addrs: Vec<u32> = offs.iter().map(|&o| L2_BASE + o).collect();
    let (prog, offs2) = build(&addrs);
    assert_eq!(offs, offs2, "site offsets must be stable across passes");
    prog
}

/// Part A': 120 seeded self-modifying programs per unit of
/// `ULP_BATTERY_SCALE`, all four engines, every observable compared —
/// the stress case for the micro-op block cache's generation-based
/// invalidation (in-block staleness after a store, cross-block staleness
/// on re-entry of a cached block). Every case must halt: an SMC program
/// that faults means an engine executed a stale instruction.
#[test]
fn engines_match_reference_on_self_modifying_programs() {
    let scale = ulp_par::battery_scale();
    let cases = 120 * scale;
    let mut rng = XorShiftRng::seed_from_u64(SMC_SEED);
    for case in 0..cases {
        let cfg = random_config(&mut rng);
        let prog = random_smc_program(&mut rng);
        let ctx = format!(
            "smc case {case} ({} cores, {} banks)",
            cfg.num_cores, cfg.tcdm_banks
        );
        let repro = format!(
            "engines_match_reference_on_self_modifying_programs: \
             seed={SMC_SEED:#x} case={case} ULP_BATTERY_SCALE={scale}"
        );
        let outcome = assert_four_way(
            &cfg,
            &prog,
            case % 8 == 0,
            "microop_smc_differential",
            &ctx,
            &repro,
        );
        assert!(outcome.is_ok(), "{ctx}: SMC program must halt: {outcome:?}");
    }
}

/// Seed of the contention battery stream.
const CONTENTION_SEED: u64 = 0xBA2C_0217;

/// Cluster shapes for the contention battery: few banks against many
/// cores, and an instruction cache small enough that the generated text
/// cannot fit — every loop iteration re-misses lines.
fn contention_config(rng: &mut XorShiftRng) -> ClusterConfig {
    ClusterConfig {
        num_cores: *choose(rng, &[2, 4, 4, 4, 8]),
        tcdm_banks: *choose(rng, &[1, 2, 2, 4]),
        icache_size: *choose(rng, &[256, 512, 1024]),
        icache_line: 16,
        icache_miss_penalty: rng.gen_range(5u32..=20),
        l2_data_latency: rng.gen_range(1u32..=10),
        barrier_latency: rng.gen_range(0u32..=8),
        ..ClusterConfig::default()
    }
}

/// A seeded SPMD program biased toward the shapes the epoch engine's
/// conflict repair must not get wrong: every core hammers the *same* TCDM
/// bank (offsets strided by the bank count keep the whole burst on bank
/// 0), barriers re-align the cores so the bursts keep colliding, shared
/// hot words create cross-core read-after-write hazards inside a window,
/// and straight-line filler bloats the text past the (deliberately small)
/// I$ so an outer loop re-misses every line. Always halts: a fault or
/// deadlock here means a generator bug, not an interesting schedule.
fn random_contention_program(rng: &mut XorShiftRng, banks: usize) -> Program {
    let regs = [R1, R2, R3, R4, R5, R6];
    let stride = 4 * banks as i16;
    let mut a = Asm::new();
    a.insn(Insn::Csrr(R20, Csr::CoreId));
    for (k, &r) in regs.iter().enumerate() {
        a.li(r, rng.gen::<u32>() as i32 ^ k as i32);
    }
    // Shared scratch base — deliberately *not* per-core — and a per-core
    // divergence value for branch variety.
    a.la(R10, TCDM_BASE);
    a.slli(R11, R20, 3);
    a.li(R9, rng.gen_range(2i32..=4)); // outer loop: re-run the whole text
    let top = a.new_label();
    a.bind(top);
    for _ in 0..rng.gen_range(6usize..=14) {
        match rng.gen_range(0u32..1000) {
            // Single-bank hammer burst: every access in the burst (from
            // every core at once) lands on bank 0.
            0..=449 => {
                for _ in 0..rng.gen_range(3usize..=8) {
                    let r = *choose(rng, &regs);
                    let off = rng.gen_range(0i16..=15) * stride;
                    match rng.gen_range(0u32..4) {
                        0 => a.sw(r, R10, off),
                        1 => a.lw(r, R10, off),
                        2 => a.sh(r, R10, off),
                        _ => a.lbu(r, R10, off),
                    };
                }
            }
            // Straight-line filler: bloats the text so the outer loop
            // thrashes the small I$; mul/mac add multi-cycle timing.
            450..=649 => {
                for _ in 0..rng.gen_range(12usize..=32) {
                    let (rd, ra, rb) = (
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                    );
                    match rng.gen_range(0u32..4) {
                        0 => a.add(rd, ra, rb),
                        1 => a.mul(rd, ra, rb),
                        2 => a.mac(rd, ra, rb),
                        _ => a.addi(rd, ra, rng.gen_range(-128i16..=127)),
                    };
                }
            }
            // Re-align the cores so the next burst collides again.
            650..=799 => {
                a.barrier();
            }
            // Shared hot word: cross-core write/read on the same address
            // inside one speculation window (the data-flow hazard case).
            800..=899 => {
                let r = *choose(rng, &regs);
                a.sw(r, R10, 0);
                a.lw(*choose(rng, &regs), R10, 0);
            }
            // Core-divergent skip: cores fall out of lockstep briefly.
            _ => {
                let skip = a.new_label();
                a.blt(R11, *choose(rng, &regs), skip);
                a.add(*choose(rng, &regs), R11, *choose(rng, &regs));
                a.bind(skip);
            }
        }
    }
    a.addi(R9, R9, -1);
    a.bne(R9, R0, top);
    a.barrier();
    let done = a.new_label();
    a.bne(R20, R0, done);
    a.sev(EVT_EOC);
    a.bind(done);
    a.halt();
    a.finish().expect("contention program must assemble")
}

/// Part A'': 150 seeded contention-heavy programs per unit of
/// `ULP_BATTERY_SCALE`, all four engines, every observable compared — the
/// adversarial stream for the epoch engine's bank-conflict repair,
/// data-flow hazard abort, and I$-miss fallback. Every case must halt.
#[test]
fn engines_match_reference_on_contention_heavy_programs() {
    let scale = ulp_par::battery_scale();
    let cases = 150 * scale;
    let mut rng = XorShiftRng::seed_from_u64(CONTENTION_SEED);
    for case in 0..cases {
        let cfg = contention_config(&mut rng);
        let prog = random_contention_program(&mut rng, cfg.tcdm_banks);
        let ctx = format!(
            "contention case {case} ({} cores, {} banks, {}B I$)",
            cfg.num_cores, cfg.tcdm_banks, cfg.icache_size
        );
        let repro = format!(
            "engines_match_reference_on_contention_heavy_programs: \
             seed={CONTENTION_SEED:#x} case={case} ULP_BATTERY_SCALE={scale}"
        );
        let outcome = assert_four_way(
            &cfg,
            &prog,
            case % 16 == 0,
            "contention_differential",
            &ctx,
            &repro,
        );
        assert!(
            outcome.is_ok(),
            "{ctx}: contention program must halt: {outcome:?}"
        );
    }
}

/// Part B: the full offload pipeline on every Table I benchmark, link
/// faults off and on, through systems differing only in engine choice.
/// Reports, resilience stats and link counters are compared via their
/// `Debug` rendering, which covers every field.
#[test]
fn engines_match_reference_on_all_benchmarks_with_and_without_faults() {
    use ulp_kernels::{Benchmark, TargetEnv};
    use ulp_offload::{FaultConfig, HetSystem, HetSystemConfig, OffloadOptions};

    let fault_modes = [
        FaultConfig::default(),
        FaultConfig {
            seed: 0xFA17,
            bit_error_rate: 2e-6,
            drop_rate: 1e-3,
            late_eoc_rate: 5e-3,
            ..FaultConfig::default()
        },
    ];
    for benchmark in Benchmark::ALL {
        let accel = benchmark.build(&TargetEnv::pulp_parallel());
        let host = benchmark.build(&TargetEnv::host_m4());
        for fault in &fault_modes {
            let observe = |engine: Engine| {
                let mut sys = HetSystem::new(HetSystemConfig {
                    fault: *fault,
                    ..HetSystemConfig::default()
                });
                sys.set_engine(engine);
                let opts = OffloadOptions {
                    iterations: 2,
                    ..OffloadOptions::default()
                };
                let report = sys
                    .offload_with_fallback(&accel, &host, &opts)
                    .unwrap_or_else(|e| panic!("{benchmark:?} offload failed: {e}"));
                format!("{report:?} {:?}", sys.link_stats())
            };
            let golden = observe(Engine::Reference);
            for engine in [Engine::Turbo, Engine::Microop, Engine::Epoch] {
                assert_eq!(
                    observe(engine),
                    golden,
                    "{benchmark:?} (faults active: {}) diverged: {} vs reference",
                    fault.is_active(),
                    engine.name()
                );
            }
        }
    }
}
