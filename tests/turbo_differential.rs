//! Differential battery for the turbo cluster engine.
//!
//! The turbo scheduler batches instructions on the frontmost core instead
//! of rescanning before every step (see `DESIGN.md`). Its contract is
//! *bit-identity* with the reference scheduler — not "close", identical:
//! same `RunResult`, same error (deadlocks and timeouts included), same
//! memory image, same trace, on every program and every configuration.
//!
//! Part A drives both engines over hundreds of seeded random SPMD
//! programs on random cluster shapes (core count, TCDM banking, cache and
//! barrier latencies), including programs that deadlock or fault. Part B
//! replays the full offload pipeline — all ten Table I benchmarks, with
//! the link fault injector both off and on — through two `HetSystem`
//! instances that differ only in engine choice.

use ulp_cluster::{
    Cluster, ClusterConfig, ClusterError, RunResult, EVT_BROADCAST, EVT_EOC, L2_BASE, TCDM_BASE,
};
use ulp_isa::prelude::*;
use ulp_rng::gen::choose;
use ulp_rng::XorShiftRng;
use ulp_trace::Tracer;

/// Bytes of the per-run TCDM scratch window compared across engines.
const SCRATCH_BYTES: usize = 512;

fn random_config(rng: &mut XorShiftRng) -> ClusterConfig {
    ClusterConfig {
        num_cores: *choose(rng, &[1, 2, 2, 3, 4, 4, 4, 8]),
        tcdm_banks: *choose(rng, &[1, 2, 4, 8]),
        icache_miss_penalty: rng.gen_range(1u32..=20),
        l2_data_latency: rng.gen_range(1u32..=10),
        barrier_latency: rng.gen_range(0u32..=8),
        ..ClusterConfig::default()
    }
}

/// A seeded random SPMD program: every core runs the same text, with
/// per-core divergence coming from the core-id CSR (different register
/// values, different branch outcomes, colliding TCDM accesses). Some
/// programs include a fork/join prologue; ~halting is likely but not
/// guaranteed — non-halting programs must produce the *same* deadlock or
/// timeout under both engines.
fn random_program(rng: &mut XorShiftRng) -> Program {
    let regs = [R1, R2, R3, R4, R5, R6];
    let mut a = Asm::new();
    a.insn(Insn::Csrr(R20, Csr::CoreId));

    if rng.gen_bool(0.3) {
        // fork/join prologue: workers sleep until the master broadcasts.
        let worker = a.new_label();
        let body = a.new_label();
        a.bne(R20, R0, worker);
        a.sev(EVT_BROADCAST);
        a.jmp(body);
        a.bind(worker);
        a.wfe();
        a.bind(body);
    }

    // Seed the register pool, then a per-core scratch pointer.
    for (k, &r) in regs.iter().enumerate() {
        a.li(r, rng.gen::<u32>() as i32 ^ k as i32);
    }
    a.la(R10, TCDM_BASE);
    a.slli(R11, R20, 4);
    a.add(R10, R10, R11);

    let blocks = rng.gen_range(5usize..=30);
    for _ in 0..blocks {
        match rng.gen_range(0u32..1000) {
            // Rare hazard blocks: orphan wfe (→ deadlock unless a latched
            // broadcast absorbs it), misaligned access (→ exec fault on a
            // specific core), and an infinite loop (→ timeout). Engines
            // must agree on the exact error, faulting core included.
            980..=983 => {
                a.wfe();
            }
            984..=986 => {
                let off = rng.gen_range(0i16..=15) * 4 + rng.gen_range(1i16..=3);
                a.lw(*choose(rng, &regs), R10, off);
            }
            987..=989 => {
                let spin = a.new_label();
                a.bind(spin);
                a.jmp(spin);
            }
            0..=349 => {
                let (rd, ra, rb) = (
                    *choose(rng, &regs),
                    *choose(rng, &regs),
                    *choose(rng, &regs),
                );
                match rng.gen_range(0u32..5) {
                    0 => a.add(rd, ra, rb),
                    1 => a.sub(rd, ra, rb),
                    2 => a.mul(rd, ra, rb),
                    3 => a.mac(rd, ra, rb),
                    _ => a.addi(rd, ra, rng.gen_range(-128i16..=127)),
                };
            }
            350..=499 => {
                let (rd, ra) = (*choose(rng, &regs), *choose(rng, &regs));
                let sh = rng.gen_range(0u8..=31);
                match rng.gen_range(0u32..3) {
                    0 => a.slli(rd, ra, sh),
                    1 => a.srli(rd, ra, sh),
                    _ => a.srai(rd, ra, sh),
                };
            }
            500..=799 => {
                // TCDM traffic: word/half/byte, offsets overlap between
                // cores so bank arbitration and ordering are exercised.
                let r = *choose(rng, &regs);
                match rng.gen_range(0u32..6) {
                    0 => a.sw(r, R10, rng.gen_range(0i16..=63) * 4),
                    1 => a.lw(r, R10, rng.gen_range(0i16..=63) * 4),
                    2 => a.sh(r, R10, rng.gen_range(0i16..=127) * 2),
                    3 => a.lh(r, R10, rng.gen_range(0i16..=127) * 2),
                    4 => a.sb(r, R10, rng.gen_range(0i16..=255)),
                    _ => a.lbu(r, R10, rng.gen_range(0i16..=255)),
                };
            }
            800..=899 => {
                // Forward branch over 1–2 ALU ops; outcome differs per
                // core, so engines must agree on divergent control flow.
                let skip = a.new_label();
                let (ra, rb) = (*choose(rng, &regs), *choose(rng, &regs));
                match rng.gen_range(0u32..3) {
                    0 => a.beq(ra, rb, skip),
                    1 => a.blt(ra, rb, skip),
                    _ => a.bgeu(ra, rb, skip),
                };
                for _ in 0..rng.gen_range(1usize..=2) {
                    let (rd, r1, r2) = (
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                        *choose(rng, &regs),
                    );
                    a.add(rd, r1, r2);
                }
                a.bind(skip);
            }
            _ => {
                a.barrier();
            }
        }
    }

    // Epilogue: rendezvous, master raises EOC, everyone halts.
    a.barrier();
    let done = a.new_label();
    a.bne(R20, R0, done);
    a.sev(EVT_EOC);
    a.bind(done);
    a.halt();
    a.finish().expect("generated program must assemble")
}

/// Runs one (config, program) pair on the given engine and returns every
/// observable: the run result or error, and the TCDM scratch window.
fn run_engine(
    cfg: &ClusterConfig,
    prog: &Program,
    turbo: bool,
    tracer: Option<Tracer>,
) -> (Result<RunResult, ClusterError>, Vec<u8>) {
    let mut cl = Cluster::new(*cfg);
    cl.set_turbo(turbo);
    if let Some(t) = tracer {
        cl.set_tracer(t);
    }
    cl.load_binary(prog, L2_BASE).expect("program fits in L2");
    cl.start(L2_BASE, &[], 0);
    let result = cl.run_until_halt(200_000);
    let scratch = cl
        .read_tcdm(TCDM_BASE, SCRATCH_BYTES)
        .expect("scratch readback");
    (result, scratch)
}

/// Seed of the Part A battery stream.
const BATTERY_SEED: u64 = 0x70B0_D1FF;

/// Part A: 600 seeded random (config, program) pairs per unit of
/// `ULP_BATTERY_SCALE` (default 1; the nightly CI job raises it), both
/// engines, every observable compared for equality. Every 16th pair also
/// runs with a tracer attached on both sides and compares the exported
/// Chrome JSON byte-for-byte. A failing case appends its reproduction
/// line to `target/battery-failures/` before panicking.
#[test]
fn turbo_matches_reference_on_600_random_programs() {
    let scale = ulp_par::battery_scale();
    let cases = 600 * scale;
    let mut rng = XorShiftRng::seed_from_u64(BATTERY_SEED);
    let mut halted = 0usize;
    let mut errored = 0usize;
    for case in 0..cases {
        let cfg = random_config(&mut rng);
        let prog = random_program(&mut rng);
        let trace = case % 16 == 0;
        let (turbo_tracer, ref_tracer) = if trace {
            (
                Some(Tracer::with_capacity(8192)),
                Some(Tracer::with_capacity(8192)),
            )
        } else {
            (None, None)
        };
        let (fast, fast_mem) = run_engine(&cfg, &prog, true, turbo_tracer.clone());
        let (slow, slow_mem) = run_engine(&cfg, &prog, false, ref_tracer.clone());
        let ctx = format!(
            "case {case} ({} cores, {} banks)",
            cfg.num_cores, cfg.tcdm_banks
        );
        let repro = format!(
            "turbo_matches_reference_on_600_random_programs: \
             seed={BATTERY_SEED:#x} case={case} ULP_BATTERY_SCALE={scale}"
        );
        ulp_par::battery_case("turbo_differential", &repro, || {
            assert_eq!(fast, slow, "{ctx}: result diverged");
            assert_eq!(fast_mem, slow_mem, "{ctx}: TCDM image diverged");
            if let (Some(ft), Some(rt)) = (&turbo_tracer, &ref_tracer) {
                assert_eq!(ft.chrome_json(), rt.chrome_json(), "{ctx}: trace diverged");
            }
        });
        match fast {
            Ok(_) => halted += 1,
            Err(_) => errored += 1,
        }
    }
    // The battery must exercise both completion and failure paths.
    assert!(
        halted * 3 >= cases * 2,
        "only {halted}/{cases} programs completed"
    );
    assert!(
        errored * 60 >= cases,
        "only {errored}/{cases} programs hit an error path"
    );
}

/// Part B: the full offload pipeline on every Table I benchmark, link
/// faults off and on, through two systems differing only in engine.
/// Reports, resilience stats and link counters are compared via their
/// `Debug` rendering, which covers every field.
#[test]
fn turbo_matches_reference_on_all_benchmarks_with_and_without_faults() {
    use ulp_kernels::{Benchmark, TargetEnv};
    use ulp_offload::{FaultConfig, HetSystem, HetSystemConfig, OffloadOptions};

    let fault_modes = [
        FaultConfig::default(),
        FaultConfig {
            seed: 0xFA17,
            bit_error_rate: 2e-6,
            drop_rate: 1e-3,
            late_eoc_rate: 5e-3,
            ..FaultConfig::default()
        },
    ];
    for benchmark in Benchmark::ALL {
        let accel = benchmark.build(&TargetEnv::pulp_parallel());
        let host = benchmark.build(&TargetEnv::host_m4());
        for fault in &fault_modes {
            let observe = |turbo: bool| {
                let mut sys = HetSystem::new(HetSystemConfig {
                    fault: *fault,
                    ..HetSystemConfig::default()
                });
                sys.set_turbo(turbo);
                let opts = OffloadOptions {
                    iterations: 2,
                    ..OffloadOptions::default()
                };
                let report = sys
                    .offload_with_fallback(&accel, &host, &opts)
                    .unwrap_or_else(|e| panic!("{benchmark:?} offload failed: {e}"));
                format!("{report:?} {:?}", sys.link_stats())
            };
            assert_eq!(
                observe(true),
                observe(false),
                "{benchmark:?} (faults active: {}) diverged between engines",
                fault.is_active()
            );
        }
    }
}
