//! Fleet-scale regressions: the sharded, autoscaled fleet study is a
//! pure function of its seed, its committed artifacts re-render
//! byte-identically under every `--jobs` setting, and rendezvous
//! sharding keeps every stability promise under group add/remove.
//!
//! The committed `BENCH_fleet.json`, the golden `fleet_table.txt`, and
//! the pinned autoscaler decision log `fleet_autoscale.txt` must all
//! re-render byte-identically on any machine — the whole study
//! (arrivals, scaling decisions, admission pricing) lives on the
//! virtual clock.

use ulp_rng::XorShiftRng;
use ulp_serve::place_tenant;

/// The committed artifact, the golden table, and the pinned autoscaler
/// decision log must re-render byte-identically whether a fleet's node
/// groups simulate serially (`--jobs 1`) or concurrently (`--jobs 4`),
/// the sweep must offer at least a million requests in total, every
/// cell must scale in *both* directions, and no per-group or
/// fleet-wide invariant may break.
#[test]
fn bench_fleet_json_is_byte_identical_across_jobs() {
    ulp_par::set_jobs(Some(1));
    let serial_cells = ulp_bench::fleet::study();
    let json_1 = ulp_bench::fleet::render_json(&serial_cells);
    let table_1 = ulp_bench::fleet::render_table(&serial_cells);
    let log_1 = ulp_bench::fleet::render_decision_log(&serial_cells);
    for c in &serial_cells {
        assert!(
            c.violations.is_empty(),
            "cell {}w: {:?}",
            c.spec.max_workers(),
            c.violations
        );
        assert!(
            c.report.scale_ups() > 0 && c.report.scale_downs() > 0,
            "cell {}w must scale both up and down ({} ups, {} downs)",
            c.spec.max_workers(),
            c.report.scale_ups(),
            c.report.scale_downs()
        );
    }
    let offered: u64 = serial_cells.iter().map(|c| c.report.offered).sum();
    assert!(
        offered >= 1_000_000,
        "the fleet sweep must offer at least a million requests, got {offered}"
    );
    drop(serial_cells); // two studies of raw outcomes need not coexist

    ulp_par::set_jobs(Some(4));
    let parallel_cells = ulp_bench::fleet::study();
    ulp_par::set_jobs(None);
    let json_4 = ulp_bench::fleet::render_json(&parallel_cells);
    let log_4 = ulp_bench::fleet::render_decision_log(&parallel_cells);
    assert_eq!(json_1, json_4, "BENCH_fleet.json must not depend on --jobs");
    assert_eq!(
        log_1, log_4,
        "the autoscaler decision log must not depend on --jobs"
    );
    assert_eq!(
        json_1,
        include_str!("../BENCH_fleet.json"),
        "committed BENCH_fleet.json is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin fleet -- --json BENCH_fleet.json \
         --scale-log tests/golden/fleet_autoscale.txt`"
    );
    assert_eq!(
        table_1,
        include_str!("golden/fleet_table.txt"),
        "golden fleet table is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin fleet > tests/golden/fleet_table.txt`"
    );
    assert_eq!(
        log_1,
        include_str!("golden/fleet_autoscale.txt"),
        "pinned autoscaler decision log is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin fleet -- --json BENCH_fleet.json \
         --scale-log tests/golden/fleet_autoscale.txt`"
    );
}

/// Seeded sharding battery: random tenant populations and group counts,
/// checking every rendezvous-placement promise the fleet layer relies
/// on. Scaled by `ULP_BATTERY_SCALE`; a failing case is recorded to
/// `target/battery-failures/` for the CI artifact upload.
///
/// Per case:
/// * placement is pure and in range for every tenant;
/// * growing `G → G+1` moves tenants **only onto the new group**, and
///   no more than twice the expected `n/(G+1)` of them;
/// * shrinking `G → G-1` moves **only** the removed group's tenants;
/// * a tenant is never split: every request of a tenant lands on the
///   group `place_tenant` names, under any group count.
#[test]
fn sharding_battery_keeps_rendezvous_promises_for_every_seed() {
    const BATTERY_SEED: u64 = 0xF1EE_2026;
    let scale = ulp_par::battery_scale();
    let cases: Vec<usize> = (0..8 * scale).collect();
    let verdicts = ulp_par::par_map(&cases, |_, &case| {
        let repro = format!(
            "sharding battery case {case}: seed {BATTERY_SEED:#x} scale {scale} — rerun with \
             ULP_BATTERY_SCALE={scale} cargo test sharding_battery"
        );
        ulp_par::battery_case_in("battery-failures", "fleet_sharding", &repro, || {
            let mut rng = XorShiftRng::seed_from_u64(BATTERY_SEED ^ ((case as u64) << 17));
            let n = 64 + (rng.next_u64() % 1024) as usize;
            let groups = 2 + (rng.next_u64() % 31) as usize;
            let names: Vec<String> = (0..n)
                .map(|i| format!("tenant-{:x}-{i}", rng.next_u64()))
                .collect();

            let before: Vec<usize> = names.iter().map(|t| place_tenant(t, groups)).collect();
            for (t, &g) in names.iter().zip(&before) {
                assert!(g < groups, "{t} placed on group {g} of {groups}");
                assert_eq!(g, place_tenant(t, groups), "{t}: placement must be pure");
            }

            // Growing: only the new group gains tenants, boundedly many.
            let grown: Vec<usize> = names.iter().map(|t| place_tenant(t, groups + 1)).collect();
            let mut moved = 0usize;
            for (t, (&b, &a)) in names.iter().zip(before.iter().zip(&grown)) {
                if b != a {
                    assert_eq!(
                        a, groups,
                        "{t} moved {b} -> {a} on grow; only the new group may win"
                    );
                    moved += 1;
                }
            }
            assert!(
                moved <= 2 * n / (groups + 1),
                "grow moved {moved} of {n} tenants across {groups} -> {} groups",
                groups + 1
            );

            // Shrinking: only the removed group's tenants relocate.
            let shrunk: Vec<usize> = names.iter().map(|t| place_tenant(t, groups - 1)).collect();
            for (t, (&b, &a)) in names.iter().zip(before.iter().zip(&shrunk)) {
                if b < groups - 1 {
                    assert_eq!(
                        b, a,
                        "{t} moved {b} -> {a} on shrink; its group still exists"
                    );
                }
            }

            // No tenant splits: the whole-table helper agrees with the
            // per-tenant placement for every tenant, under both counts.
            let specs: Vec<ulp_serve::TenantSpec> = names
                .iter()
                .map(|t| ulp_serve::TenantSpec::new(t))
                .collect();
            assert_eq!(ulp_serve::place_tenants(&specs, groups), before);
            assert_eq!(ulp_serve::place_tenants(&specs, groups + 1), grown);
            n
        })
    });
    assert!(verdicts.iter().all(|&n| n > 0));
}
