//! Property-based tests over the coupled system and the kernel code
//! generators.

// Gated off by default: needs the external `proptest` crate (no registry
// access in CI). See the `proptest` feature note in Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use het_accel::prelude::*;
use ulp_kernels::matmul::{build_sized, MatVariant};
use ulp_offload::OffloadCost;
use ulp_power::{busy_activity, PulpPowerModel};

fn default_cost() -> OffloadCost {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let build = build_sized(MatVariant::Char, &TargetEnv::pulp_parallel(), 16);
    sys.measure_cost(&build).expect("small matmul offloads")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Matmul is bit-exact across every target for random sizes.
    #[test]
    fn matmul_correct_for_random_sizes(log_n in 3u32..6, variant in 0usize..3) {
        let n = 1usize << log_n;
        let variant = [MatVariant::Char, MatVariant::Short, MatVariant::Fixed][variant];
        for env in [TargetEnv::baseline(), TargetEnv::host_m4(), TargetEnv::pulp_parallel()] {
            let build = build_sized(variant, &env, n);
            ulp_kernels::run(&build, &env)
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", build.name));
        }
    }

    /// Offload timing model: total time grows with iterations, efficiency
    /// never decreases, double buffering never hurts.
    #[test]
    fn offload_prediction_monotone(iters in 1usize..200) {
        let cost = default_cost();
        let sys = HetSystem::new(HetSystemConfig::default());
        let at = |i: usize, db: bool| {
            sys.predict(&cost, &OffloadOptions { iterations: i, double_buffer: db,
                ..Default::default() }, true)
        };
        let a = at(iters, false);
        let b = at(iters + 1, false);
        prop_assert!(b.total_seconds() > a.total_seconds());
        prop_assert!(b.efficiency() >= a.efficiency() - 1e-12);
        let d = at(iters, true);
        prop_assert!(d.total_seconds() <= a.total_seconds() + 1e-15);
    }

    /// The envelope solver never exceeds its budget and is monotone in it.
    #[test]
    fn envelope_solver_budget_safety(budget_mw in 0.3f64..40.0) {
        let model = PulpPowerModel::pulp3();
        let act = busy_activity(4, 8);
        let budget = budget_mw * 1e-3;
        if let Some(op) = model.max_freq_under_power(budget, &act) {
            prop_assert!(op.total_power_w <= budget * 1.0001);
            prop_assert!((0.5..=1.0).contains(&op.vdd));
            prop_assert!(op.freq_hz <= model.fmax_hz(op.vdd) * 1.0001);
            // Monotonicity: 10% more budget never yields a slower point.
            if let Some(op2) = model.max_freq_under_power(budget * 1.1, &act) {
                prop_assert!(op2.freq_hz >= op.freq_hz * 0.999);
            }
        }
    }

    /// MCU frequency scaling: transfer phases shrink with a faster host
    /// clock (the SPI follows the core clock).
    #[test]
    fn faster_host_clock_never_slows_transfers(mhz in 2.0f64..80.0) {
        let cost = default_cost();
        let mk = |hz: f64| {
            let sys = HetSystem::new(HetSystemConfig { mcu_freq_hz: hz, ..Default::default() });
            sys.predict(&cost, &OffloadOptions { iterations: 4, ..Default::default() }, true)
        };
        let slow = mk(mhz * 1e6 / 2.0);
        let fast = mk(mhz * 1e6);
        prop_assert!(fast.input_seconds < slow.input_seconds);
        prop_assert!(fast.binary_seconds < slow.binary_seconds);
        // Compute time is untouched by the host clock.
        prop_assert!((fast.compute_seconds - slow.compute_seconds).abs() < 1e-15);
    }
}

/// The power model is continuous enough for the solver: no cliffs between
/// adjacent operating points (sampled densely).
#[test]
fn power_model_is_smooth() {
    let model = PulpPowerModel::pulp3();
    let act = busy_activity(4, 8);
    let mut prev: Option<f64> = None;
    let mut v = 0.5f64;
    while v <= 1.0 {
        let p = model.total_power_w(model.fmax_hz(v), v, &act);
        if let Some(q) = prev {
            let ratio = p / q;
            assert!(
                (0.9..1.6).contains(&ratio),
                "power cliff at {v:.3} V: ×{ratio:.2}"
            );
        }
        prev = Some(p);
        v += 0.01;
    }
}
