//! Cross-crate integration tests: the full offload path for every Table I
//! benchmark, end-to-end invariants of the heterogeneous platform.

use het_accel::prelude::*;
use ulp_offload::OffloadError;

/// Every benchmark survives the complete offload path — binary over the
/// link, inputs marshalled, SPMD execution on the 4-core cluster, outputs
/// read back and verified bit-exact against the golden reference.
#[test]
fn every_benchmark_offloads_end_to_end() {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    for b in Benchmark::ALL {
        let build = b.build(&TargetEnv::pulp_parallel());
        let report = sys
            .offload(
                &build,
                &OffloadOptions {
                    iterations: 2,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{b}: {e}"));
        assert!(report.compute_seconds > 0.0, "{b}");
        // Warm runs drop the cold I$ misses, but cores left in closer
        // phase alignment can collide systematically in the TCDM banks
        // when SPMD code streams the same shared operand (e.g. the BT
        // matrix); both effects are real, so only bound the jitter.
        assert!(
            report.cycles_warm as f64 <= report.cycles_cold as f64 * 1.2,
            "{b}: warm {} vs cold {}",
            report.cycles_warm,
            report.cycles_cold
        );
        assert!(report.total_energy_joules() > 0.0, "{b}");
    }
}

/// The headline claim of the paper, reproduced end to end: each benchmark,
/// offloaded with amortization, runs an order of magnitude faster than the
/// 32 MHz host-only baseline while the platform stays under 10 mW during
/// compute.
#[test]
fn headline_order_of_magnitude_speedup_under_10mw() {
    let host_sys = HetSystem::new(HetSystemConfig {
        mcu_freq_hz: 32.0e6,
        ..Default::default()
    });
    for b in [Benchmark::Strassen, Benchmark::SvmRbf, Benchmark::Cnn] {
        let host = host_sys
            .run_on_host(&b.build(&TargetEnv::host_m4()))
            .unwrap();

        let mut sys = HetSystem::new(HetSystemConfig::default());
        let report = sys
            .offload(
                &b.build(&TargetEnv::pulp_parallel()),
                &OffloadOptions {
                    iterations: 32,
                    double_buffer: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let per_iter = report.total_seconds() / 32.0;
        let speedup = host.seconds / per_iter;
        assert!(
            speedup > 10.0,
            "{b}: end-to-end speedup {speedup:.1}× below one order"
        );

        let power = sys.compute_phase_power_watts(&report.activity);
        assert!(
            power < 10.0e-3,
            "{b}: compute-phase power {:.2} mW",
            power * 1e3
        );
    }
}

/// Host-side execution of the same kernels produces the same verified
/// outputs (the runner checks against the shared golden reference), so
/// host and accelerator implementations agree functionally.
#[test]
fn host_and_accelerator_agree_functionally() {
    for b in [
        Benchmark::MatMulFixed,
        Benchmark::SvmPoly,
        Benchmark::CnnApprox,
    ] {
        let host_env = TargetEnv::host_m4();
        ulp_kernels::run(&b.build(&host_env), &host_env).unwrap_or_else(|e| panic!("{b}: {e}"));
        let accel_env = TargetEnv::pulp_parallel();
        ulp_kernels::run(&b.build(&accel_env), &accel_env).unwrap_or_else(|e| panic!("{b}: {e}"));
    }
}

/// The resident-binary optimization: a second offload of the same kernel
/// skips the program transfer; switching kernels pays it again.
#[test]
fn binary_residency_across_kernel_switches() {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let svm = Benchmark::SvmLinear.build(&TargetEnv::pulp_parallel());
    let cnn = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());

    let first_svm = sys.offload(&svm, &OffloadOptions::default()).unwrap();
    let second_svm = sys.offload(&svm, &OffloadOptions::default()).unwrap();
    let first_cnn = sys.offload(&cnn, &OffloadOptions::default()).unwrap();
    let back_to_svm = sys.offload(&svm, &OffloadOptions::default()).unwrap();

    assert!(first_svm.binary_seconds > 0.0);
    assert_eq!(second_svm.binary_seconds, 0.0);
    assert!(first_cnn.binary_seconds > 0.0, "kernel switch reloads");
    assert!(back_to_svm.binary_seconds > 0.0, "svm was evicted by cnn");
}

/// Link statistics account every transferred byte.
#[test]
fn link_accounting_is_consistent() {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let iters = 4;
    let _ = sys
        .offload(
            &build,
            &OffloadOptions {
                iterations: iters,
                ..Default::default()
            },
        )
        .unwrap();
    let stats = sys.link_stats();
    // binary + iters × inputs (plus frame headers).
    let min_tx = build.offload_binary_bytes() + iters * build.input_bytes();
    let min_rx = iters * build.output_bytes();
    assert!(
        stats.bytes_tx >= min_tx as u64,
        "{} < {min_tx}",
        stats.bytes_tx
    );
    assert!(stats.bytes_rx >= min_rx as u64);
    assert!(stats.busy_seconds > 0.0);
}

/// Scaling the cluster: more cores help up to the work-sharing limit.
#[test]
fn core_count_scaling() {
    let cycles_with = |cores: usize| {
        let env = TargetEnv::pulp_with_cores(cores);
        let build = Benchmark::MatMul.build(&env);
        ulp_kernels::run(&build, &env).unwrap().cycles
    };
    let c1 = cycles_with(1);
    let c2 = cycles_with(2);
    let c4 = cycles_with(4);
    let c8 = cycles_with(8);
    assert!(
        c1 > c2 && c2 > c4 && c4 > c8,
        "{c1} > {c2} > {c4} > {c8} violated"
    );
    let s8 = c1 as f64 / c8 as f64;
    assert!(s8 > 5.0 && s8 < 8.0, "8-core speedup {s8:.2}");
}

/// Golden-figure regression: the Table I reproduction is bit-identical to
/// the snapshot in `tests/golden/table1.txt`. The bench binary prints the
/// same string, so any drift in kernel cycle counts, link modeling or
/// energy accounting — intended or not — shows up as a diff here and the
/// snapshot must be re-captured deliberately (`cargo run --release -p
/// ulp-bench --bin table1 > tests/golden/table1.txt`).
#[test]
fn table1_matches_golden_snapshot() {
    assert_eq!(
        format!("{}\n", ulp_bench::table1::run()),
        include_str!("golden/table1.txt"),
        "Table I output drifted from tests/golden/table1.txt"
    );
}

/// Same regression guard for the Figure 3 speedup/efficiency sweep
/// (`tests/golden/fig3.txt`).
#[test]
fn fig3_matches_golden_snapshot() {
    assert_eq!(
        format!("{}\n", ulp_bench::fig3::run()),
        include_str!("golden/fig3.txt"),
        "Figure 3 output drifted from tests/golden/fig3.txt"
    );
}

/// The parallel sweep harness is invisible in the output: Table I (the
/// full `measure_all` sweep) rendered with 4 worker threads is
/// byte-identical to the serial rendering — and to the golden snapshot,
/// via `table1_matches_golden_snapshot` running in the same process.
#[test]
fn table1_with_jobs_is_byte_identical_to_serial() {
    ulp_par::set_jobs(Some(1));
    let serial = ulp_bench::table1::run();
    ulp_par::set_jobs(Some(4));
    let parallel = ulp_bench::table1::run();
    ulp_par::set_jobs(None);
    assert_eq!(parallel, serial, "worker count changed Table I output");
}

/// Satellite guard for the micro-op engine: the golden Table I and
/// Figure 3 snapshots hold with the block-caching engine pinned on
/// *explicitly* (not merely as the ambient default), and the full
/// experiments report — every table and figure the bench binaries write —
/// is byte-identical between 1 and 4 worker threads under that engine. A
/// future change to the engine default can therefore never silently
/// re-capture the goldens under a different interpreter, and the micro-op
/// block cache introduces no scheduling- or parallelism-dependent state.
#[test]
fn microop_engine_reproduces_goldens_and_is_jobs_deterministic() {
    ulp_cluster::set_default_engine(ulp_cluster::Engine::Microop);
    assert_eq!(
        format!("{}\n", ulp_bench::table1::run()),
        include_str!("golden/table1.txt"),
        "Table I under the pinned micro-op engine drifted from the golden snapshot"
    );
    assert_eq!(
        format!("{}\n", ulp_bench::fig3::run()),
        include_str!("golden/fig3.txt"),
        "Figure 3 under the pinned micro-op engine drifted from the golden snapshot"
    );

    let full_report = || {
        let measurements = ulp_bench::measure::measure_all();
        let mut report = String::new();
        report.push_str(&ulp_bench::table1::render(&measurements));
        report.push_str(&ulp_bench::fig3::run());
        report.push_str(&ulp_bench::fig4::render(&measurements));
        report.push_str(&ulp_bench::fig5a::render(&ulp_bench::fig5a::compute(
            &measurements,
        )));
        report.push_str(&ulp_bench::fig5b::run());
        report
    };
    ulp_par::set_jobs(Some(1));
    let serial = full_report();
    ulp_par::set_jobs(Some(4));
    let parallel = full_report();
    ulp_par::set_jobs(None);
    assert_eq!(
        parallel, serial,
        "worker count changed the experiments report under the micro-op engine"
    );
}

/// Same regression guard for the pipelined-offload study
/// (`tests/golden/pipeline_table.txt`): serialized and pipelined modeled
/// times per benchmark, chunk counts and overlap accounting. Re-capture
/// deliberately with `cargo run --release -p ulp-bench --bin
/// pipeline_table > tests/golden/pipeline_table.txt`.
#[test]
fn pipeline_table_matches_golden_snapshot() {
    assert_eq!(
        format!("{}\n", ulp_bench::pipeline::run()),
        include_str!("golden/pipeline_table.txt"),
        "pipeline study output drifted from tests/golden/pipeline_table.txt"
    );
}

/// Empty `map` clauses are a no-op end to end: a zero-length buffer adds
/// no frames, no link bytes, no DMA bursts and no modeled time — with the
/// pipeline engine off and on — instead of tripping the empty-burst
/// assert downstream.
#[test]
fn empty_map_clauses_are_a_no_op() {
    let with_empty_maps = |build: &ulp_kernels::KernelBuild| {
        let mut b = build.clone();
        for (role, addr) in [
            (ulp_kernels::BufferRole::Input, 0x1000_f000),
            (ulp_kernels::BufferRole::Output, 0x1000_f800),
        ] {
            b.buffers.push(ulp_kernels::Buffer {
                name: "empty",
                addr,
                len: 0,
                init: ulp_kernels::BufferInit::Zero,
                role,
            });
        }
        b
    };
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let padded = with_empty_maps(&build);
    for pipeline in [PipelineConfig::default(), PipelineConfig::enabled()] {
        let opts = OffloadOptions {
            iterations: 3,
            pipeline,
            ..Default::default()
        };
        let mut plain_sys = HetSystem::new(HetSystemConfig::default());
        let plain = plain_sys.offload(&build, &opts).unwrap();
        let mut padded_sys = HetSystem::new(HetSystemConfig::default());
        let padded_report = padded_sys.offload(&padded, &opts).unwrap();
        assert_eq!(plain.input_seconds, padded_report.input_seconds);
        assert_eq!(plain.output_seconds, padded_report.output_seconds);
        assert_eq!(plain.overlapped_seconds, padded_report.overlapped_seconds);
        assert_eq!(plain.total_seconds(), padded_report.total_seconds());
        assert_eq!(plain.link_energy_joules, padded_report.link_energy_joules);
        assert_eq!(
            plain_sys.link_stats().bytes_tx,
            padded_sys.link_stats().bytes_tx
        );
        assert_eq!(
            plain_sys.link_stats().bytes_rx,
            padded_sys.link_stats().bytes_rx
        );
    }
}

/// A mismatching golden reference is detected by the offload runtime (the
/// verification path actually verifies).
#[test]
fn corrupted_reference_detected() {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let mut build = Benchmark::SvmLinear.build(&TargetEnv::pulp_parallel());
    let (_, expected) = &mut build.expected[0];
    expected[0] ^= 0xFF;
    match sys.offload(&build, &OffloadOptions::default()) {
        Err(OffloadError::OutputMismatch(names)) => assert!(!names.is_empty()),
        other => panic!("expected mismatch, got {other:?}"),
    }
}
