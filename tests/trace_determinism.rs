//! Determinism and reconciliation guarantees of the observability layer:
//! tracing the same workload twice yields byte-identical Chrome JSON, the
//! perf counters are internally consistent and agree with the activity
//! numbers in the [`OffloadReport`], and attaching a tracer never changes
//! what the simulation computes.

use het_accel::prelude::*;
use ulp_trace::{Component, EventKind, Tracer};

/// Runs the reference workload (matmul, 4 iterations, double-buffered)
/// with the given tracer attached and returns the report.
fn offload_traced(tracer: &Tracer) -> OffloadReport {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    sys.set_tracer(tracer.clone());
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let opts = OffloadOptions {
        iterations: 4,
        double_buffer: true,
        ..Default::default()
    };
    sys.offload(&build, &opts).unwrap()
}

/// Same seed, same workload, same capacity ⇒ byte-identical trace export.
/// This is the contract that makes traces diffable across runs and
/// machines.
#[test]
fn chrome_export_is_byte_identical_across_runs() {
    let t1 = Tracer::enabled();
    offload_traced(&t1);
    let t2 = Tracer::enabled();
    offload_traced(&t2);
    assert_eq!(t1.chrome_json(), t2.chrome_json());
    assert!(!t1.events().is_empty(), "the workload must produce events");
}

/// Byte-identity also holds under ring-buffer pressure: a capacity small
/// enough to drop events drops the *same* events both times.
#[test]
fn chrome_export_is_deterministic_under_drops() {
    let t1 = Tracer::with_capacity(256);
    offload_traced(&t1);
    let t2 = Tracer::with_capacity(256);
    offload_traced(&t2);
    assert!(
        t1.dropped() > 0,
        "capacity 256 must overflow on this workload"
    );
    assert_eq!(t1.dropped(), t2.dropped());
    assert_eq!(t1.chrome_json(), t2.chrome_json());
}

/// Every counter is internally consistent: busy + idle == total and the
/// utilization is a fraction.
#[test]
fn counters_are_internally_consistent() {
    let tracer = Tracer::enabled();
    offload_traced(&tracer);
    let counters = tracer.counters();
    assert!(!counters.is_empty());
    for (component, k) in counters {
        assert!(
            k.busy <= k.total,
            "{component:?}: busy {} > total {}",
            k.busy,
            k.total
        );
        assert_eq!(k.busy + k.idle(), k.total, "{component:?}");
        assert!((0.0..=1.0).contains(&k.utilization()), "{component:?}");
    }
}

/// The trace counters reconcile exactly with the activity the offload
/// report carries: both come from the steady-state (warm) run.
#[test]
fn counters_reconcile_with_offload_report() {
    let tracer = Tracer::enabled();
    let report = offload_traced(&tracer);
    let activity = &report.activity;

    for (i, active) in activity.core_active_cycles.iter().enumerate() {
        let k = tracer.counter(Component::Core(i as u8)).unwrap();
        assert_eq!(k.busy, *active, "core {i} busy cycles");
        assert_eq!(k.total, activity.total_cycles, "core {i} total cycles");
    }
    let tcdm = tracer.counter(Component::Tcdm).unwrap();
    assert_eq!(tcdm.busy, activity.tcdm_busy_cycles);
    assert_eq!(
        tcdm.total,
        activity.total_cycles * activity.tcdm_banks as u64
    );
    let dma = tracer.counter(Component::Dma).unwrap();
    assert_eq!(dma.busy, activity.dma_busy_cycles);
}

/// Observability must not perturb the simulation: the report produced with
/// a tracer attached is bit-identical (via exhaustive `Debug` formatting,
/// which round-trips every f64 exactly) to the report produced without.
#[test]
fn tracer_does_not_perturb_the_report() {
    let mut plain = HetSystem::new(HetSystemConfig::default());
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let opts = OffloadOptions {
        iterations: 4,
        double_buffer: true,
        ..Default::default()
    };
    let without = plain.offload(&build, &opts).unwrap();

    let with = offload_traced(&Tracer::enabled());
    assert_eq!(format!("{without:?}"), format!("{with:?}"));
}

/// Runs the reference workload with the pipelined engine on.
fn offload_pipelined(tracer: &Tracer) -> OffloadReport {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    sys.set_tracer(tracer.clone());
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let opts = OffloadOptions {
        iterations: 4,
        pipeline: PipelineConfig::enabled(),
        ..Default::default()
    };
    sys.offload(&build, &opts).unwrap()
}

/// The overlap counters the pipelined engine publishes to the tracer
/// reconcile: each pairwise overlap is bounded by its members' busy
/// times, the triple overlap by each pairwise one, every busy time by
/// the schedule span — and what the tracer holds is exactly what the
/// report carries.
#[test]
fn pipelined_overlap_counters_reconcile() {
    let tracer = Tracer::enabled();
    let report = offload_pipelined(&tracer);
    let overlap = tracer
        .overlap()
        .expect("pipelined offload must publish overlap counters");
    assert_eq!(overlap, report.overlap, "tracer and report disagree");
    overlap.check().unwrap();
    assert!(
        overlap.engaged,
        "the reference workload must engage the engine"
    );
    assert!(overlap.chunks > 0);
    // The hidden time is what the report subtracts (up to ns rounding of
    // the schedule, and never more than the engine's concurrency).
    assert!(overlap.hidden_ns() > 0);
    assert!(
        report.overlapped_seconds <= overlap.hidden_ns() as f64 / 1e9 + 1e-9,
        "report hides {} s but the schedule only overlapped {} ns",
        report.overlapped_seconds,
        overlap.hidden_ns()
    );
    // The overlap table renders every row from these counters.
    let table = tracer.overlap_table();
    for needle in [
        "link busy",
        "dma busy",
        "core busy",
        "all three",
        "pipelined",
    ] {
        assert!(
            table.contains(needle),
            "overlap table missing {needle:?}:\n{table}"
        );
    }
}

/// Byte-identical Chrome export with the pipelined engine on: chunked
/// transfers, the engine's scheduling and the overlap accounting are all
/// deterministic.
#[test]
fn chrome_export_is_byte_identical_with_pipelining_on() {
    let t1 = Tracer::enabled();
    let r1 = offload_pipelined(&t1);
    let t2 = Tracer::enabled();
    let r2 = offload_pipelined(&t2);
    assert_eq!(t1.chrome_json(), t2.chrome_json());
    assert_eq!(t1.overlap(), t2.overlap());
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    assert!(!t1.events().is_empty());
}

/// A serialized offload never publishes overlap counters — the pipelined
/// engine is the only writer, so a trace with overlap rows is proof the
/// engine ran.
#[test]
fn serialized_offloads_publish_no_overlap() {
    let tracer = Tracer::enabled();
    offload_traced(&tracer);
    assert_eq!(tracer.overlap(), None);
}

/// The host-side phase spans cover the report's phase breakdown: summed
/// per-phase trace durations equal the report's per-phase seconds (to ns
/// rounding).
#[test]
fn phase_spans_cover_the_report_breakdown() {
    let tracer = Tracer::enabled();
    let report = offload_traced(&tracer);
    let phase_ns: u64 = tracer
        .events_of(Component::Host)
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Phase(_)))
        .map(|e| e.dur)
        .sum();
    let report_ns = (report.binary_seconds
        + report.input_seconds
        + report.compute_seconds
        + report.output_seconds
        + report.sync_seconds)
        * 1e9;
    let diff = (phase_ns as f64 - report_ns).abs();
    // One ns of truncation per emitted span is the worst case.
    assert!(
        diff <= 8.0,
        "phase spans {phase_ns} ns vs report {report_ns:.0} ns"
    );
}
