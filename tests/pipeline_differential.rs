//! Differential battery for the pipelined offload engine: across >1k
//! seeded random configurations, the pipelined prediction must be
//! **bit-identical** to the serialized one in every phase and energy
//! field, never slower end to end, internally consistent in its overlap
//! accounting, and deterministic run to run. A smaller set of *full*
//! offloads (cluster simulation, real link bytes) rides along: the
//! runtime verifies every output buffer against the golden reference, so
//! a passing offload **is** the bit-identical-results proof.

use het_accel::prelude::*;
use ulp_offload::{LinkClocking, OffloadCost};
use ulp_rng::XorShiftRng;

/// Kernels the battery samples from: three matmul sizes plus two
/// shaped-differently benchmarks (SVM: big read-mostly model; CNN:
/// image in, small maps out). Costs are measured once on the default
/// platform — the cycle counts and byte totals they carry do not depend
/// on the host/link parameters the battery varies.
fn kernel_costs() -> Vec<(String, OffloadCost)> {
    let env = TargetEnv::pulp_parallel();
    let mut builds: Vec<ulp_kernels::KernelBuild> = [8usize, 16, 32]
        .iter()
        .map(|&n| ulp_kernels::matmul::build_sized(ulp_kernels::matmul::MatVariant::Char, &env, n))
        .collect();
    builds.push(Benchmark::SvmLinear.build(&env));
    builds.push(Benchmark::CnnApprox.build(&env));
    let mut sys = HetSystem::new(HetSystemConfig::default());
    builds
        .into_iter()
        .map(|b| {
            let cost = sys
                .measure_cost(&b)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            (b.name, cost)
        })
        .collect()
}

/// One random platform + offload-options draw.
fn sample(rng: &mut XorShiftRng) -> (HetSystemConfig, OffloadOptions, OffloadOptions) {
    let mcu_freq_hz = [8.0e6, 16.0e6, 32.0e6, 48.0e6][rng.gen_range(0usize..4)];
    let cfg = HetSystemConfig {
        mcu_freq_hz,
        link_width: if rng.gen_bool(0.5) {
            SpiWidth::Quad
        } else {
            SpiWidth::Single
        },
        link_prescaler: [2u32, 4, 8][rng.gen_range(0usize..3)],
        link_clocking: match rng.gen_range(0u32..3) {
            0 => LinkClocking::McuDivided,
            1 => LinkClocking::BoostedMcu { mcu_hz: 48.0e6 },
            _ => LinkClocking::Independent { spi_hz: 25.0e6 },
        },
        ..HetSystemConfig::default()
    };
    let serialized = OffloadOptions {
        iterations: rng.gen_range(1usize..=8),
        double_buffer: rng.gen_bool(0.5),
        sensor_direct: rng.gen_bool(0.2),
        ..OffloadOptions::default()
    };
    // log-uniform chunk size in [32, 4096]
    let chunk_bytes = 1usize << rng.gen_range(5u32..=12);
    let pipelined = OffloadOptions {
        pipeline: PipelineConfig {
            enabled: true,
            chunk_bytes: chunk_bytes + rng.gen_range(0usize..chunk_bytes),
            window: rng.gen_range(1usize..=8),
        },
        ..serialized
    };
    (cfg, serialized, pipelined)
}

fn assert_phases_bit_identical(s: &OffloadReport, p: &OffloadReport, ctx: &str) {
    for (name, a, b) in [
        ("binary_seconds", s.binary_seconds, p.binary_seconds),
        ("input_seconds", s.input_seconds, p.input_seconds),
        ("output_seconds", s.output_seconds, p.output_seconds),
        ("compute_seconds", s.compute_seconds, p.compute_seconds),
        ("sync_seconds", s.sync_seconds, p.sync_seconds),
        (
            "mcu_energy_joules",
            s.mcu_energy_joules,
            p.mcu_energy_joules,
        ),
        (
            "pulp_energy_joules",
            s.pulp_energy_joules,
            p.pulp_energy_joules,
        ),
        (
            "link_energy_joules",
            s.link_energy_joules,
            p.link_energy_joules,
        ),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: {name} drifted ({a} vs {b})"
        );
    }
    assert_eq!(s.iterations, p.iterations, "{ctx}");
    assert_eq!(s.cycles_cold, p.cycles_cold, "{ctx}");
    assert_eq!(s.cycles_warm, p.cycles_warm, "{ctx}");
}

/// Seed of the prediction battery stream.
const BATTERY_SEED: u64 = 0x00D1_FFE6;

/// The battery: 1200 seeded configurations per unit of
/// `ULP_BATTERY_SCALE` (default 1; the nightly CI job raises it) through
/// `predict`, serialized vs pipelined. A failing case appends its
/// reproduction line to `target/battery-failures/` before panicking.
#[test]
fn pipelined_predictions_differ_only_in_overlap_across_1200_configs() {
    let scale = ulp_par::battery_scale();
    let cases = 1200 * scale;
    let costs = kernel_costs();
    let mut rng = XorShiftRng::seed_from_u64(BATTERY_SEED);
    let mut engaged = 0usize;
    for case in 0..cases {
        let (name, cost) = &costs[rng.gen_range(0..costs.len())];
        let (cfg, opts_s, opts_p) = sample(&mut rng);
        let include_binary = rng.gen_bool(0.8);
        let sys = HetSystem::new(cfg);
        let s = sys.predict(cost, &opts_s, include_binary);
        let p = sys.predict(cost, &opts_p, include_binary);
        let ctx = format!(
            "case {case} ({name}, chunk {} B, window {}, iters {})",
            opts_p.pipeline.chunk_bytes, opts_p.pipeline.window, opts_p.iterations
        );
        let repro = format!(
            "pipelined_predictions_differ_only_in_overlap_across_1200_configs: \
             seed={BATTERY_SEED:#x} case={case} ULP_BATTERY_SCALE={scale}"
        );

        ulp_par::battery_case("pipeline_differential", &repro, || {
            // Identical ledger, modulo the one field pipelining may grow.
            assert_phases_bit_identical(&s, &p, &ctx);
            assert!(
                p.overlapped_seconds >= s.overlapped_seconds,
                "{ctx}: pipelining shrank the hidden time ({} < {})",
                p.overlapped_seconds,
                s.overlapped_seconds
            );
            // Modeled cycles never exceed the serialized schedule.
            assert!(
                p.total_seconds() <= s.total_seconds() * (1.0 + 1e-12),
                "{ctx}: pipelined {} > serialized {}",
                p.total_seconds(),
                s.total_seconds()
            );
            // The engine's own concurrency ledger reconciles.
            p.overlap.check().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert!(
                s.overlap == Overlap::default(),
                "{ctx}: serialized run grew overlap counters"
            );
            if p.overlap.engaged {
                assert!(p.overlap.chunks > 0, "{ctx}: engaged without chunks");
                assert!(
                    p.overlap.hidden_ns() > 0,
                    "{ctx}: engaged without concurrency"
                );
            }

            // Determinism: the same prediction twice is bit-identical.
            let p2 = sys.predict(cost, &opts_p, include_binary);
            assert_eq!(
                p.total_seconds().to_bits(),
                p2.total_seconds().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                p.overlapped_seconds.to_bits(),
                p2.overlapped_seconds.to_bits(),
                "{ctx}"
            );
            assert!(
                p.overlap == p2.overlap,
                "{ctx}: overlap counters nondeterministic"
            );
        });
        if p.overlap.engaged {
            engaged += 1;
        }
    }
    // The battery must actually exercise the engine, not trivially pass
    // with every schedule rejected.
    assert!(
        engaged * 4 > cases,
        "engine engaged in only {engaged}/{cases} configs"
    );
}

/// The whole battery replays bit-identically from its seed: running it
/// twice produces the same totals, so any failure above reproduces.
#[test]
fn the_battery_itself_is_deterministic() {
    let costs = kernel_costs();
    let run = || {
        let mut rng = XorShiftRng::seed_from_u64(0x5EED);
        let mut acc: u64 = 0;
        for _ in 0..64 {
            let (_, cost) = &costs[rng.gen_range(0..costs.len())];
            let (cfg, _, opts_p) = sample(&mut rng);
            let p = HetSystem::new(cfg).predict(cost, &opts_p, true);
            acc = acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(p.total_seconds().to_bits())
                .wrapping_add(p.overlap.hidden_ns());
        }
        acc
    };
    assert_eq!(run(), run(), "battery digest diverged between runs");
}

/// Full offloads with pipelining on: the cluster really executes, real
/// frames cross the link, and the runtime verifies every output buffer
/// against the golden reference — so success here proves the pipelined
/// path produces bit-identical results, not just bit-identical ledgers.
#[test]
fn full_offloads_stay_bit_identical_with_pipelining_on() {
    for b in [
        Benchmark::MatMulFixed,
        Benchmark::SvmRbf,
        Benchmark::CnnApprox,
    ] {
        let build = b.build(&TargetEnv::pulp_parallel());
        let mut serial_sys = HetSystem::new(HetSystemConfig::default());
        let serial = serial_sys
            .offload(
                &build,
                &OffloadOptions {
                    iterations: 4,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{b}: {e}"));
        let mut pipe_sys = HetSystem::new(HetSystemConfig::default());
        let pipelined = pipe_sys
            .offload(
                &build,
                &OffloadOptions {
                    iterations: 4,
                    pipeline: PipelineConfig::enabled(),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{b} (pipelined): {e}"));

        let ctx = format!("{b}");
        assert_phases_bit_identical(&serial, &pipelined, &ctx);
        assert!(
            pipelined.total_seconds() <= serial.total_seconds() * (1.0 + 1e-12),
            "{ctx}"
        );
        pipelined
            .overlap
            .check()
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        // The chunked transfer moves the same payload bytes; only frame
        // headers multiply (one per chunk instead of one per buffer).
        let (s_stats, p_stats) = (serial_sys.link_stats(), pipe_sys.link_stats());
        assert!(
            p_stats.bytes_tx >= s_stats.bytes_tx,
            "{ctx}: chunking lost payload bytes"
        );
        assert!(p_stats.bytes_rx >= s_stats.bytes_rx, "{ctx}");
    }
}
