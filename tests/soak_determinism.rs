//! Chaos-at-serve-scale regressions: the million-request soak study is
//! a pure function of its seed, every invariant of its reports holds,
//! the SLO-miss ledger is exact against raw outcomes, and a 100× flash
//! crowd cannot break queue bounds or starve the background tenant.
//!
//! The committed `BENCH_soak.json` and the golden `soak_table.txt` must
//! re-render byte-identically on any machine and under any `--jobs`
//! setting — the whole soak (faults, bursts, blackouts, churn) lives on
//! the virtual clock.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::{HetSystemConfig, PipelineConfig};
use ulp_serve::{
    run_soak, BatchPolicy, Burst, ChaosConfig, CostBook, FaultProfile, ServeConfig, ServePool,
    SloLedger, SoakSpec, TenantLoad, TenantSpec, WorkloadSpec,
};

/// The committed artifact and the golden table must both re-render
/// byte-identically whether the two soak cells simulate serially
/// (`--jobs 1`) or concurrently (`--jobs 4`), and the chaos cell must
/// clear one million offered requests with zero invariant violations.
#[test]
fn bench_soak_json_is_byte_identical_across_jobs() {
    ulp_par::set_jobs(Some(1));
    let serial_cells = ulp_bench::soak::study();
    let json_1 = ulp_bench::soak::render_json(&serial_cells);
    let table_1 = ulp_bench::soak::render_table(&serial_cells);
    for c in &serial_cells {
        assert!(
            c.outcome.violations.is_empty(),
            "cell {}: {:?}",
            c.label,
            c.outcome.violations
        );
    }
    let chaos = serial_cells
        .iter()
        .find(|c| c.label == "chaos")
        .expect("chaos cell");
    assert!(
        chaos.outcome.requests >= 1_000_000,
        "the soak must offer at least a million requests, got {}",
        chaos.outcome.requests
    );
    assert!(
        chaos.outcome.report.chaos.any(),
        "the chaos cell must record fault activity"
    );
    drop(serial_cells); // two studies of raw outcomes need not coexist

    ulp_par::set_jobs(Some(4));
    let parallel_cells = ulp_bench::soak::study();
    ulp_par::set_jobs(None);
    let json_4 = ulp_bench::soak::render_json(&parallel_cells);
    assert_eq!(json_1, json_4, "BENCH_soak.json must not depend on --jobs");
    assert_eq!(
        json_1,
        include_str!("../BENCH_soak.json"),
        "committed BENCH_soak.json is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin soak -- --json BENCH_soak.json`"
    );
    assert_eq!(
        table_1,
        include_str!("golden/soak_table.txt"),
        "golden soak table is stale; regenerate with \
         `cargo run --release -p ulp-bench --bin soak > tests/golden/soak_table.txt`"
    );
}

fn full_book(config: &HetSystemConfig) -> CostBook {
    CostBook::measure_with_host(
        &TargetEnv::pulp_parallel(),
        &TargetEnv::host_m4(),
        config,
        &Benchmark::ALL,
    )
    .expect("cost book")
}

/// A small two-tenant workload with a scripted 100× flash crowd on the
/// hot tenant.
fn burst_workload(seed: u64, book: &CostBook) -> (Vec<TenantSpec>, WorkloadSpec, Burst) {
    let kernels = [Benchmark::MatMul, Benchmark::Cnn, Benchmark::SvmLinear];
    let mean_ns: f64 = kernels
        .iter()
        .map(|&b| book.est_ns(b, 1) as f64)
        .sum::<f64>()
        / kernels.len() as f64;
    let capacity_rps = 2.0 * 1e9 / mean_ns;

    let mut bg = TenantSpec::new("bg");
    bg.queue_cap = 64;
    let mut hot = TenantSpec::weighted("hot", 2);
    hot.queue_cap = 64;
    let workload = WorkloadSpec {
        seed,
        duration_ns: 2_000_000_000,
        tenants: vec![
            TenantLoad::uniform(bg.clone(), capacity_rps * 0.2, &kernels),
            TenantLoad::uniform(hot.clone(), capacity_rps * 0.5, &kernels),
        ],
    };
    let burst = Burst {
        tenant: 1,
        start_ns: 600_000_000,
        end_ns: 800_000_000,
        factor: 100.0,
    };
    (vec![bg, hot], workload, burst)
}

/// A 100× flash crowd on the hot tenant must be absorbed by admission
/// control — queues stay within their caps, the overflow is rejected
/// explicitly (never dropped silently: conservation still holds), and
/// the background tenant's p99 stays within its serial-FIFO baseline.
#[test]
fn flash_crowd_is_rejected_not_absorbed_unboundedly() {
    let config = HetSystemConfig::default();
    let book = full_book(&config);
    let (tenants, workload, burst) = burst_workload(1_001, &book);
    let requests = workload.generate_with_bursts(&[burst]);
    let base_requests = workload.generate();
    assert!(
        requests.len() >= base_requests.len() + 1_000,
        "the 100x window must add real load ({} vs {})",
        requests.len(),
        base_requests.len()
    );

    let cap_sum: usize = tenants.iter().map(|t| t.queue_cap).sum();
    let mut fair = ServePool::new(
        &config,
        tenants.clone(),
        book.clone(),
        ServeConfig {
            pool: 2,
            policy: BatchPolicy::KernelAware { max_batch: 8 },
            ..ServeConfig::default()
        },
    );
    let report = fair.run(&requests).expect("pool must serve the burst");

    // Bounded queues, explicit rejections, exact conservation.
    assert!(
        report.max_queue_depth <= cap_sum,
        "queue depth {} exceeded the cap sum {cap_sum}",
        report.max_queue_depth
    );
    assert!(
        report.rejected > 0,
        "a 100x flash crowd over bounded queues must reject overflow"
    );
    let violations = ulp_serve::invariants::check(requests.len() as u64, &report);
    assert!(violations.is_empty(), "{violations:?}");

    // Fairness under the burst: the background tenant's p99 must not
    // exceed what serial per-request FIFO dispatch (no tenant isolation)
    // gives it under the identical bursty stream.
    let mut fifo = ServePool::new(
        &config,
        tenants,
        book,
        ServeConfig {
            pool: 2,
            policy: BatchPolicy::Serial,
            fair: false,
            pipeline: PipelineConfig::default(),
            ..ServeConfig::default()
        },
    );
    let fifo_report = fifo.run(&requests).expect("baseline must serve the burst");
    let bg_fair = &report.tenants[0];
    let bg_fifo = &fifo_report.tenants[0];
    assert!(bg_fair.latency.count > 0 && bg_fifo.latency.count > 0);
    assert!(
        bg_fair.latency.p99_ns <= bg_fifo.latency.p99_ns,
        "background p99 {} ns exceeds its serial-FIFO baseline {} ns \
         despite weighted fairness under the 100x burst",
        bg_fair.latency.p99_ns,
        bg_fifo.latency.p99_ns
    );
}

/// SLO-ledger exactness: per-tenant × deadline-class miss counts
/// recomputed from the raw per-request outcomes must match the
/// incrementally maintained ledger bit-for-bit, and the per-tenant
/// aggregates must agree with the ledger's rows.
#[test]
fn slo_ledger_is_exact_against_raw_outcomes() {
    let config = HetSystemConfig::default();
    let book = full_book(&config);
    let (tenants, workload, burst) = burst_workload(7_373, &book);
    let requests = workload.generate_with_bursts(&[burst]);

    let mut pool = ServePool::new(
        &config,
        tenants,
        book,
        ServeConfig {
            pool: 2,
            policy: BatchPolicy::KernelAware { max_batch: 8 },
            ..ServeConfig::default()
        },
    )
    .with_chaos(ChaosConfig::uniform(
        99,
        FaultProfile {
            bit_error_rate: 1e-5,
            drop_rate: 0.02,
            hang_rate: 0.01,
            ..FaultProfile::default()
        },
    ));
    let report = pool.run(&requests).expect("chaos pool must serve");
    assert!(report.chaos.any(), "chaos must leave a trace");

    let recomputed = SloLedger::recompute(report.tenants.len(), &report.outcomes);
    assert_eq!(
        recomputed, report.slo,
        "incremental SLO ledger drifted from the raw outcomes"
    );
    assert_eq!(report.slo.total_missed(), report.deadline_misses);
    for (t, tenant) in report.tenants.iter().enumerate() {
        let row = &report.slo.cells[t];
        let missed: u64 = row.iter().map(|c| c.missed).sum();
        let rejected: u64 = row.iter().map(|c| c.rejected).sum();
        let finished: u64 = row.iter().map(|c| c.completed + c.failed_over).sum();
        assert_eq!(missed, tenant.deadline_misses, "tenant {}", tenant.name);
        assert_eq!(rejected, tenant.rejected, "tenant {}", tenant.name);
        assert_eq!(finished, tenant.latency.count, "tenant {}", tenant.name);
    }
}

/// Seeded chaos battery: every seed must produce a soak whose report
/// holds every invariant. Scaled by `ULP_BATTERY_SCALE`; a failing seed
/// is recorded to `target/soak-failures/` for the CI artifact upload.
#[test]
fn chaos_soak_battery_holds_invariants_for_every_seed() {
    let config = HetSystemConfig::default();
    let book = full_book(&config);
    let cases = 3 * ulp_par::battery_scale();
    let seeds: Vec<u64> = (0..cases).map(|i| 0x50AC_2026_u64 + i as u64).collect();
    let specs: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
    let verdicts = ulp_par::par_map(&specs, |_, &(case, seed)| {
        let repro = format!(
            "soak battery case {case}: seed {seed} scale {} — rerun with \
             ULP_BATTERY_SCALE={} cargo test chaos_soak_battery",
            ulp_par::battery_scale(),
            ulp_par::battery_scale()
        );
        ulp_par::battery_case_in("soak-failures", "chaos_soak", &repro, || {
            let kernels = [Benchmark::MatMul, Benchmark::Hog, Benchmark::Cnn];
            let spec = SoakSpec {
                workload: WorkloadSpec {
                    seed,
                    duration_ns: 400_000_000,
                    tenants: vec![
                        TenantLoad::uniform(TenantSpec::weighted("app", 2), 400.0, &kernels),
                        TenantLoad::uniform(TenantSpec::new("bg"), 100.0, &kernels),
                    ],
                },
                bursts: vec![Burst {
                    tenant: 0,
                    start_ns: 100_000_000,
                    end_ns: 120_000_000,
                    factor: 50.0,
                }],
                blackouts: vec![ulp_serve::Blackout {
                    worker: seed as usize % 2,
                    start_ns: 200_000_000,
                    end_ns: 260_000_000,
                }],
                churn_period_ns: 100_000_000,
                chaos: ChaosConfig::uniform(
                    seed.rotate_left(17),
                    FaultProfile {
                        bit_error_rate: 1e-5,
                        drop_rate: 0.01 + (seed % 5) as f64 * 0.01,
                        hang_rate: 0.005,
                        late_eoc_rate: 0.02,
                        late_eoc_cycles: 1_024,
                        ..FaultProfile::default()
                    },
                ),
                serve: ServeConfig {
                    pool: 2,
                    policy: BatchPolicy::KernelAware { max_batch: 8 },
                    ..ServeConfig::default()
                },
            };
            let out = run_soak(&config, book.clone(), &spec).expect("soak spec fits the pool");
            assert!(out.violations.is_empty(), "{:?}", out.violations);
            out.requests
        })
    });
    assert!(verdicts.iter().all(|&n| n > 0));
}
