//! Fixed-point arithmetic used by the benchmark kernels.
//!
//! The paper's learning/vision benchmarks run on 16-bit fixed-point data
//! (Q2.13: 2 integer bits, 13 fractional bits) and `hog` on 32-bit
//! fixed-point (Q16.15) with software-emulated 64-bit accumulation. The
//! helpers here define the *reference semantics*: the UIR code generators
//! must produce bit-identical results, so every operation is specified in
//! wrapping two's-complement arithmetic exactly as the generated
//! instruction sequences compute it.

/// Fractional bits of the 16-bit Q2.13 format.
pub const Q13: u32 = 13;
/// Fractional bits of the 32-bit Q16.15 format.
pub const Q15: u32 = 15;

/// Converts a float to Q2.13 (saturating to the representable range).
#[must_use]
pub fn to_q13(x: f64) -> i16 {
    let v = (x * f64::from(1 << Q13)).round();
    v.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
}

/// Converts Q2.13 to float.
#[must_use]
pub fn from_q13(x: i16) -> f64 {
    f64::from(x) / f64::from(1 << Q13)
}

/// Converts a float to Q16.15 (saturating).
#[must_use]
pub fn to_q15_32(x: f64) -> i32 {
    let v = (x * f64::from(1u32 << Q15)).round();
    v.clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32
}

/// Converts Q16.15 to float.
#[must_use]
pub fn from_q15_32(x: i32) -> f64 {
    f64::from(x) / f64::from(1u32 << Q15)
}

/// Q2.13 multiply exactly as the kernels compute it: 32-bit wrapping
/// product, arithmetic shift right by 13, truncated to 16 bits.
///
/// This is the `mul`/`srai 13` sequence the code generator emits — there is
/// deliberately **no** rounding and **no** saturation, matching the plain
/// portable-C `(int16_t)((a * b) >> 13)`.
#[must_use]
pub fn q13_mul(a: i16, b: i16) -> i16 {
    ((i32::from(a).wrapping_mul(i32::from(b))) >> Q13) as i16
}

/// Q2.13 multiply keeping the full 32-bit shifted result (used when
/// accumulating in 32-bit before a final truncation).
#[must_use]
pub fn q13_mul_wide(a: i16, b: i16) -> i32 {
    i32::from(a).wrapping_mul(i32::from(b)) >> Q13
}

/// Q16.15 multiply via a full 64-bit product (the sequence `hog` emulates
/// in software on OR10N and maps to `SMULL` on Cortex-M).
#[must_use]
pub fn q15_mul(a: i32, b: i32) -> i32 {
    ((i64::from(a).wrapping_mul(i64::from(b))) >> Q15) as i32
}

/// Unsigned integer square root of a 64-bit value, by the classic
/// bit-by-bit (non-restoring) method — exactly the algorithm the `hog`
/// code generator emits as a software routine.
#[must_use]
pub fn isqrt_u64(v: u64) -> u32 {
    let mut x = v;
    let mut result: u64 = 0;
    let mut bit: u64 = 1 << 62;
    while bit > x {
        bit >>= 2;
    }
    while bit != 0 {
        if x >= result + bit {
            x -= result + bit;
            result = (result >> 1) + bit;
        } else {
            result >>= 1;
        }
        bit >>= 2;
    }
    result as u32
}

/// Unsigned 32-bit division by the shift-subtract method — the software
/// routine emitted for cores without a hardware divider (OR10N).
///
/// Division by zero returns `u32::MAX`, matching the UIR `divu` semantics.
#[must_use]
pub fn udiv_u32(num: u32, den: u32) -> u32 {
    if den == 0 {
        return u32::MAX;
    }
    // The bit-serial loop computes the same quotient as hardware division.
    num / den
}

/// Builds a lookup table of `exp(-x)` in Q2.13 over `x ∈ [0, range)`,
/// with `n` entries indexed by `floor(x / range * n)`.
///
/// Used by the RBF SVM kernel; the generated code performs the same
/// truncating indexing, so reference and simulation agree bit-exactly.
#[must_use]
pub fn exp_neg_lut_q13(n: usize, range: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64 * range;
            to_q13((-x).exp())
        })
        .collect()
}

/// Builds a `tanh(x)` lookup table in Q2.13 over `x ∈ [-range, range)`,
/// `n` entries, indexed by `floor((x + range) / (2·range) * n)` with
/// clamping. Used by the CNN activation.
#[must_use]
pub fn tanh_lut_q13(n: usize, range: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let x = (i as f64 / n as f64) * 2.0 * range - range;
            to_q13(x.tanh())
        })
        .collect()
}

/// Looks up `exp(-x)` for a Q2.13 operand `x` in a table produced by
/// [`exp_neg_lut_q13`], with the exact index arithmetic the generated code
/// uses: `idx = (x * n / (range << 13))`, clamped to the table.
#[must_use]
pub fn exp_neg_lookup_q13(lut: &[i16], x_q13: i32, range: f64) -> i16 {
    if x_q13 <= 0 {
        return to_q13(1.0);
    }
    let denom = (range * f64::from(1 << Q13)) as i32;
    let idx = (x_q13 as i64 * lut.len() as i64 / i64::from(denom)) as usize;
    if idx >= lut.len() {
        0
    } else {
        lut[idx]
    }
}

/// Looks up `tanh(x)` for a Q2.13 operand in a table from
/// [`tanh_lut_q13`], clamped at the range ends.
#[must_use]
pub fn tanh_lookup_q13(lut: &[i16], x_q13: i32, range: f64) -> i16 {
    let half = (range * f64::from(1 << Q13)) as i32;
    let shifted = x_q13.saturating_add(half);
    if shifted < 0 {
        return lut[0];
    }
    let idx = (shifted as i64 * lut.len() as i64 / i64::from(2 * half)) as usize;
    if idx >= lut.len() {
        lut[lut.len() - 1]
    } else {
        lut[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q13_roundtrip_accuracy() {
        for &x in &[0.0, 1.0, -1.0, 0.5, 3.999, -4.0, 0.123] {
            let q = to_q13(x);
            assert!((from_q13(q) - x).abs() < 1.0 / 8192.0 + 1e-9, "{x}");
        }
    }

    #[test]
    fn q13_saturates() {
        assert_eq!(to_q13(100.0), i16::MAX);
        assert_eq!(to_q13(-100.0), i16::MIN);
    }

    #[test]
    fn q13_mul_matches_float_for_small_values() {
        for &(a, b) in &[(0.5, 0.5), (1.5, -2.0), (0.1, 0.1), (-3.0, 1.2)] {
            let qa = to_q13(a);
            let qb = to_q13(b);
            let prod = from_q13(q13_mul(qa, qb));
            assert!((prod - a * b).abs() < 2.0 / 8192.0, "{a}*{b} -> {prod}");
        }
    }

    #[test]
    fn q15_mul_matches_float() {
        for &(a, b) in &[(100.5, 2.0), (-7.25, 3.0), (0.001, 1000.0)] {
            let qa = to_q15_32(a);
            let qb = to_q15_32(b);
            let prod = from_q15_32(q15_mul(qa, qb));
            assert!((prod - a * b).abs() < 0.01, "{a}*{b} -> {prod}");
        }
    }

    #[test]
    fn isqrt_exact_squares() {
        for v in [0u64, 1, 4, 9, 144, 1 << 40, (1u64 << 31) * (1u64 << 31)] {
            let r = isqrt_u64(v);
            assert_eq!(u64::from(r) * u64::from(r), v);
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in [
            2u64,
            3,
            5,
            10,
            99,
            1000,
            123_456_789,
            u64::from(u32::MAX) + 17,
        ] {
            let r = u64::from(isqrt_u64(v));
            assert!(r * r <= v);
            assert!((r + 1) * (r + 1) > v);
        }
    }

    #[test]
    fn isqrt_max_input() {
        let r = u64::from(isqrt_u64(u64::MAX));
        assert_eq!(r, u64::from(u32::MAX));
    }

    #[test]
    fn udiv_semantics() {
        assert_eq!(udiv_u32(100, 7), 14);
        assert_eq!(udiv_u32(0, 5), 0);
        assert_eq!(udiv_u32(123, 0), u32::MAX);
    }

    #[test]
    fn exp_lut_monotone_decreasing() {
        let lut = exp_neg_lut_q13(256, 8.0);
        assert_eq!(lut[0], to_q13(1.0));
        for w in lut.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(lut[255] >= 0);
    }

    #[test]
    fn exp_lookup_accuracy() {
        let lut = exp_neg_lut_q13(256, 8.0);
        for &x in &[0.0f64, 0.5, 1.0, 2.0, 4.0, 7.5] {
            let q = (x * 8192.0) as i32;
            let got = from_q13(exp_neg_lookup_q13(&lut, q, 8.0));
            assert!((got - (-x).exp()).abs() < 0.05, "exp(-{x}) -> {got}");
        }
        // Out of range saturates to zero / one.
        assert_eq!(exp_neg_lookup_q13(&lut, 100 * 8192, 8.0), 0);
        assert_eq!(exp_neg_lookup_q13(&lut, -5, 8.0), to_q13(1.0));
    }

    #[test]
    fn tanh_lookup_accuracy_and_clamping() {
        let lut = tanh_lut_q13(512, 4.0);
        for &x in &[-3.5f64, -1.0, -0.25, 0.0, 0.25, 1.0, 3.5] {
            let q = (x * 8192.0) as i32;
            let got = from_q13(tanh_lookup_q13(&lut, q, 4.0));
            assert!((got - x.tanh()).abs() < 0.05, "tanh({x}) -> {got}");
        }
        assert_eq!(tanh_lookup_q13(&lut, i32::MIN / 2, 4.0), lut[0]);
        assert_eq!(tanh_lookup_q13(&lut, i32::MAX / 2, 4.0), lut[511]);
    }
}
