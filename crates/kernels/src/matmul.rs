//! Matrix multiplication benchmarks (`matmul`, `matmul (short)`,
//! `matmul (fixed)` of Table I).
//!
//! `C = A · B` on 64×64 matrices. As in optimized embedded kernels
//! (including the PULP test suite the paper draws from), the second
//! operand is stored **transposed** (`BT`), so both the `A` row and the
//! `BT` row are walked with unit stride — that is what lets OR10N's
//! sub-word dot products (`sdot.v4`/`sdot.v2`) consume packed operands
//! with plain word loads.
//!
//! Per-target lowering of the inner dot product:
//!
//! | target | char | short | fixed (Q2.13) |
//! |---|---|---|---|
//! | OR10N      | `lw ×2, sdot.v4` per 4 | `lw ×2, sdot.v2` ×2 per 4 | `lh ×2, mul, srai, add` ×2, HW loop |
//! | Cortex-M   | `lb.pi ×2, mla` ×4 | `lh.pi ×2, mla` ×4 | `lh.pi ×2, mul, asr, add` ×2 |
//! | baseline   | `lb ×2, mul, add, addi ×2` | same with `lh` | `lh ×2, mul, srai, add, addi ×2` |
//!
//! The fixed-point variant shifts **every product** before accumulating
//! ("there is no multiply-shift-add operation", paper §IV-B), so neither
//! the MAC nor the SIMD dot product applies — exactly why the paper's
//! fixed-point kernels gain less from the OR10N extensions.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn, MemSize, Reg};
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, range_loop, spmd_kernel, static_chunk};
use crate::codegen::{DataLayout, KernelBuild, TargetEnv};

/// Matrix dimension of the Table I configuration.
pub const N: usize = 64;

/// Element type of a matmul variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatVariant {
    /// 8-bit integers (`matmul` — 8 kB in, 4 kB out).
    Char,
    /// 16-bit integers (`matmul (short)` — 16 kB in, 8 kB out).
    Short,
    /// Q2.13 fixed-point (`matmul (fixed)` — per-product shift).
    Fixed,
}

impl MatVariant {
    /// Element size in bytes.
    #[must_use]
    pub fn elem_bytes(self) -> usize {
        match self {
            MatVariant::Char => 1,
            MatVariant::Short | MatVariant::Fixed => 2,
        }
    }

    /// Table I row name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MatVariant::Char => "matmul",
            MatVariant::Short => "matmul (short)",
            MatVariant::Fixed => "matmul (fixed)",
        }
    }
}

/// Bit-exact reference: `char` variant (i32 accumulation, truncating
/// store to i8).
#[must_use]
pub fn reference_char(a: &[i8], bt: &[i8], n: usize) -> Vec<i8> {
    let mut c = vec![0i8; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc
                    .wrapping_add(i32::from(a[i * n + k]).wrapping_mul(i32::from(bt[j * n + k])));
            }
            c[i * n + j] = acc as i8;
        }
    }
    c
}

/// Bit-exact reference: `short` variant (i32 accumulation, truncating
/// store to i16).
#[must_use]
pub fn reference_short(a: &[i16], bt: &[i16], n: usize) -> Vec<i16> {
    let mut c = vec![0i16; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc
                    .wrapping_add(i32::from(a[i * n + k]).wrapping_mul(i32::from(bt[j * n + k])));
            }
            c[i * n + j] = acc as i16;
        }
    }
    c
}

/// Bit-exact reference: Q2.13 variant — every product is shifted before
/// accumulation.
#[must_use]
pub fn reference_fixed(a: &[i16], bt: &[i16], n: usize) -> Vec<i16> {
    let mut c = vec![0i16; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(crate::fixed::q13_mul_wide(a[i * n + k], bt[j * n + k]));
            }
            c[i * n + j] = acc as i16;
        }
    }
    c
}

fn log2(v: usize) -> u8 {
    debug_assert!(v.is_power_of_two());
    v.trailing_zeros() as u8
}

/// Emits the inner dot-product loop: `acc(R17) = Σ_k a_row[k]·bt_row[k]`,
/// advancing `a_ptr` (R18) and `bt_ptr` (R14) across the full row.
///
/// Register contract: acc R17, a_ptr R18, bt_ptr R14, count R7,
/// scratch R1, temps R20–R22.
fn emit_dot(a: &mut Asm, env: &TargetEnv, variant: MatVariant, n: usize) {
    let f = env.features();
    let acc = R17;
    let ap = R18;
    let bp = R14;
    let (t0, t1, t2) = (R20, R21, R22);

    a.li(acc, 0);
    match variant {
        MatVariant::Char if f.simd_dot => {
            // 4 elements per iteration: two word loads + sdot.v4.
            a.li(R7, (n / 4) as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                a.lw(t0, ap, 0);
                a.lw(t1, bp, 0);
                a.insn(Insn::SdotV4(acc, t0, t1));
                a.addi(ap, ap, 4);
                a.addi(bp, bp, 4);
            });
        }
        MatVariant::Short if f.simd_dot => {
            // 4 elements per iteration: two sdot.v2 pairs.
            a.li(R7, (n / 4) as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                a.lw(t0, ap, 0);
                a.lw(t1, bp, 0);
                a.insn(Insn::SdotV2(acc, t0, t1));
                a.lw(t0, ap, 4);
                a.lw(t1, bp, 4);
                a.insn(Insn::SdotV2(acc, t0, t1));
                a.addi(ap, ap, 8);
                a.addi(bp, bp, 8);
            });
        }
        MatVariant::Char | MatVariant::Short if f.mac => {
            // Cortex-M path: unrolled 4-element MAC with post-indexed loads.
            let (size, step) = match variant {
                MatVariant::Char => (MemSize::Byte, 1i16),
                _ => (MemSize::Half, 2i16),
            };
            a.li(R7, (n / 4) as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                for u in 0..4i16 {
                    if f.post_increment {
                        a.insn(Insn::LoadPi {
                            rd: t0,
                            base: ap,
                            inc: step,
                            size,
                            signed: true,
                        });
                        a.insn(Insn::LoadPi {
                            rd: t1,
                            base: bp,
                            inc: step,
                            size,
                            signed: true,
                        });
                    } else {
                        let off = u * step;
                        a.insn(Insn::Load {
                            rd: t0,
                            base: ap,
                            offset: off,
                            size,
                            signed: true,
                        });
                        a.insn(Insn::Load {
                            rd: t1,
                            base: bp,
                            offset: off,
                            size,
                            signed: true,
                        });
                    }
                    a.mac(acc, t0, t1);
                }
                if !f.post_increment {
                    a.addi(ap, ap, 4 * step);
                    a.addi(bp, bp, 4 * step);
                }
            });
        }
        MatVariant::Fixed if f.mac || f.hw_loops => {
            // Optimized fixed-point: per-product shift, unrolled ×2.
            a.li(R7, (n / 2) as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                for u in 0..2i16 {
                    if f.post_increment {
                        a.insn(Insn::LoadPi {
                            rd: t0,
                            base: ap,
                            inc: 2,
                            size: MemSize::Half,
                            signed: true,
                        });
                        a.insn(Insn::LoadPi {
                            rd: t1,
                            base: bp,
                            inc: 2,
                            size: MemSize::Half,
                            signed: true,
                        });
                    } else {
                        a.lh(t0, ap, u * 2);
                        a.lh(t1, bp, u * 2);
                    }
                    a.mul(t2, t0, t1);
                    a.srai(t2, t2, 13);
                    a.add(acc, acc, t2);
                }
                if !f.post_increment {
                    a.addi(ap, ap, 4);
                    a.addi(bp, bp, 4);
                }
            });
        }
        _ => {
            // RISC baseline: plain element loop, no unrolling.
            let (size, step) = match variant {
                MatVariant::Char => (MemSize::Byte, 1i16),
                _ => (MemSize::Half, 2i16),
            };
            a.li(R7, n as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                a.insn(Insn::Load {
                    rd: t0,
                    base: ap,
                    offset: 0,
                    size,
                    signed: true,
                });
                a.insn(Insn::Load {
                    rd: t1,
                    base: bp,
                    offset: 0,
                    size,
                    signed: true,
                });
                a.mul(t2, t0, t1);
                if variant == MatVariant::Fixed {
                    a.srai(t2, t2, 13);
                }
                a.add(acc, acc, t2);
                a.addi(ap, ap, step);
                a.addi(bp, bp, step);
            });
        }
    }
}

/// Builds the Table I matmul (64×64). See [`build_sized`] for reduced
/// problem sizes used in fast tests.
#[must_use]
pub fn build(variant: MatVariant, env: &TargetEnv) -> KernelBuild {
    build_sized(variant, env, N)
}

/// Builds an `n×n` matmul kernel for the given target. `n` must be a
/// multiple of 8.
///
/// # Panics
///
/// Panics if `n` is not a power of two multiple of 8 (the generator uses
/// shift-based addressing).
#[must_use]
pub fn build_sized(variant: MatVariant, env: &TargetEnv, n: usize) -> KernelBuild {
    assert!(
        n >= 8 && n.is_power_of_two(),
        "n must be a power of two ≥ 8"
    );
    let mut rng = XorShiftRng::seed_from_u64(0xDA7E_2016 ^ n as u64 ^ variant.elem_bytes() as u64);

    let esz = variant.elem_bytes();
    let (a_bytes, bt_bytes, expect): (Vec<u8>, Vec<u8>, Vec<u8>) = match variant {
        MatVariant::Char => {
            let a: Vec<i8> = (0..n * n).map(|_| rng.gen()).collect();
            let bt: Vec<i8> = (0..n * n).map(|_| rng.gen()).collect();
            let c = reference_char(&a, &bt, n);
            (
                a.iter().map(|v| *v as u8).collect(),
                bt.iter().map(|v| *v as u8).collect(),
                c.iter().map(|v| *v as u8).collect(),
            )
        }
        MatVariant::Short => {
            let a: Vec<i16> = (0..n * n).map(|_| rng.gen()).collect();
            let bt: Vec<i16> = (0..n * n).map(|_| rng.gen()).collect();
            let c = reference_short(&a, &bt, n);
            (
                a.iter().flat_map(|v| v.to_le_bytes()).collect(),
                bt.iter().flat_map(|v| v.to_le_bytes()).collect(),
                c.iter().flat_map(|v| v.to_le_bytes()).collect(),
            )
        }
        MatVariant::Fixed => {
            // Values in (-1, 1) Q2.13, the typical normalized-data regime.
            let a: Vec<i16> = (0..n * n).map(|_| rng.gen_range(-8192..8192)).collect();
            let bt: Vec<i16> = (0..n * n).map(|_| rng.gen_range(-8192..8192)).collect();
            let c = reference_fixed(&a, &bt, n);
            (
                a.iter().flat_map(|v| v.to_le_bytes()).collect(),
                bt.iter().flat_map(|v| v.to_le_bytes()).collect(),
                c.iter().flat_map(|v| v.to_le_bytes()).collect(),
            )
        }
    };

    let mut l = DataLayout::new(env, 64 * 1024);
    let a_addr = l.input("A", a_bytes);
    let bt_addr = l.input("BT", bt_bytes);
    let c_addr = l.output("C", n * n * esz);
    let buffers = l.finish();

    let in_row_shift = log2(n * esz);
    let out_row_shift = in_row_shift; // C has the same element size

    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        // Work-share the rows of C.
        static_chunk(a, env, n as u32, R10, R11, R12);
        range_loop(a, R12, R10, R11, |a| {
            // a_row = A + i·n·esz ; c_ptr = C + i·n·esz ; bt_ptr = BT
            a.slli(R13, R12, in_row_shift);
            a.add(R16, R3, R13);
            a.slli(R13, R12, out_row_shift);
            a.add(R15, R5, R13);
            a.mv(R14, R4);
            a.li(R6, n as i32);
            counted_loop(a, env, 1, R6, R2, |a| {
                a.mv(R18, R16);
                emit_dot(a, env, variant, n);
                let size = match variant {
                    MatVariant::Char => MemSize::Byte,
                    _ => MemSize::Half,
                };
                a.insn(Insn::Store {
                    rs: R17,
                    base: R15,
                    offset: 0,
                    size,
                });
                a.addi(R15, R15, esz as i16);
            });
        });
    });
    let program = asm.finish().expect("matmul generator emits valid code");

    KernelBuild {
        name: format!("{}[{}x{n}]", variant.name(), env.model.name),
        program,
        args: vec![(R3, a_addr), (R4, bt_addr), (R5, c_addr)],
        buffers,
        expected: vec![(2, expect)],
    }
}

/// Registers used as kernel arguments by the matmul builds.
pub const ARG_REGS: [Reg; 3] = [R3, R4, R5];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    const TEST_N: usize = 16;

    fn all_envs() -> [TargetEnv; 5] {
        [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ]
    }

    #[test]
    fn char_correct_on_all_targets() {
        for env in all_envs() {
            let build = build_sized(MatVariant::Char, &env, TEST_N);
            run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
        }
    }

    #[test]
    fn short_correct_on_all_targets() {
        for env in all_envs() {
            let build = build_sized(MatVariant::Short, &env, TEST_N);
            run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
        }
    }

    #[test]
    fn fixed_correct_on_all_targets() {
        for env in all_envs() {
            let build = build_sized(MatVariant::Fixed, &env, TEST_N);
            run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
        }
    }

    #[test]
    fn table1_sizes_match_paper() {
        for (variant, input_kb, output_kb) in [
            (MatVariant::Char, 8, 4),
            (MatVariant::Short, 16, 8),
            (MatVariant::Fixed, 16, 8),
        ] {
            let build = build(variant, &TargetEnv::pulp_single());
            assert_eq!(build.input_bytes(), input_kb * 1024, "{}", variant.name());
            assert_eq!(build.output_bytes(), output_kb * 1024, "{}", variant.name());
        }
    }

    #[test]
    fn architectural_speedup_in_paper_band() {
        // Paper Fig. 4 left: integer matmul 2–2.5×, fixed-point lower but
        // above 1. We accept a slightly wider band (see EXPERIMENTS.md).
        let n = 32;
        for (variant, lo, hi) in [
            (MatVariant::Char, 2.0, 4.0),
            (MatVariant::Short, 1.5, 3.5),
            (MatVariant::Fixed, 1.0, 2.2),
        ] {
            let m4 = run(
                &build_sized(variant, &TargetEnv::host_m4(), n),
                &TargetEnv::host_m4(),
            )
            .unwrap();
            let or10n = run(
                &build_sized(variant, &TargetEnv::pulp_single(), n),
                &TargetEnv::pulp_single(),
            )
            .unwrap();
            let speedup = m4.cycles as f64 / or10n.cycles as f64;
            assert!(
                (lo..hi).contains(&speedup),
                "{}: arch speedup {speedup:.2} outside [{lo}, {hi})",
                variant.name()
            );
        }
    }

    #[test]
    fn parallel_speedup_near_ideal() {
        let n = 32;
        let single = run(
            &build_sized(MatVariant::Char, &TargetEnv::pulp_single(), n),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let quad = run(
            &build_sized(MatVariant::Char, &TargetEnv::pulp_parallel(), n),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let speedup = single.cycles as f64 / quad.cycles as f64;
        assert!(
            (3.0..4.0).contains(&speedup),
            "4-core matmul speedup {speedup:.2} outside [3, 4)"
        );
    }

    #[test]
    fn m3_not_faster_than_m4() {
        let n = 16;
        for variant in [MatVariant::Char, MatVariant::Fixed] {
            let m4 = run(
                &build_sized(variant, &TargetEnv::host_m4(), n),
                &TargetEnv::host_m4(),
            )
            .unwrap();
            let m3 = run(
                &build_sized(variant, &TargetEnv::host_m3(), n),
                &TargetEnv::host_m3(),
            )
            .unwrap();
            assert!(m3.cycles >= m4.cycles, "{}", variant.name());
        }
    }

    #[test]
    fn riscops_of_table1_config_near_paper() {
        // Paper Table I: matmul = 2.4M RISC ops. Count retired instructions
        // on the baseline core for the full 64×64 problem.
        let env = TargetEnv::baseline();
        let r = run(&build(MatVariant::Char, &env), &env).unwrap();
        let mops = r.retired as f64 / 1.0e6;
        assert!(
            (1.8..3.0).contains(&mops),
            "matmul RISC ops {mops:.2}M outside the 2.4M anchor band"
        );
    }

    #[test]
    fn reference_known_values() {
        // 2×2-ish sanity on the 8×8 minimum size: identity times X = X.
        let n = 8;
        let mut ident = vec![0i8; n * n];
        for i in 0..n {
            ident[i * n + i] = 1;
        }
        let x: Vec<i8> = (0..(n * n) as i32).map(|v| v as i8).collect();
        // C = I·X with BT = X^T ... using reference directly: A=I, BT = X^T
        let mut xt = vec![0i8; n * n];
        for i in 0..n {
            for j in 0..n {
                xt[j * n + i] = x[i * n + j];
            }
        }
        assert_eq!(reference_char(&ident, &xt, n), x);
    }
}
