//! Strassen fast matrix multiplication (Table I `strassen`).
//!
//! One level of Strassen recursion over the 64×64 `char` matmul: the four
//! 32×32 blocks of `A` and `Bᵀ` combine into ten sum/difference matrices,
//! seven 32×32 base-case products `M1…M7`, and the final recombination
//! into `C`.
//!
//! Everything is computed in **wrapping 8-bit arithmetic**. This is
//! bit-exact for the i8 output: `(x·y) mod 2⁸` depends only on
//! `x mod 2⁸` and `y mod 2⁸`, and all Strassen recombinations are sums, so
//! truncating every intermediate to 8 bits preserves the low 8 bits of the
//! exact result (asserted against the plain matmul reference in the
//! tests). Keeping intermediates in i8 lets the base case reuse the
//! `sdot.v4`-vectorized dot product and the sums use the packed
//! `add.v4`/`sub.v4` instructions on OR10N.
//!
//! Parallelization: for each product, the team splits the 32 rows of the
//! operand sums and of the base matmul, with HW barriers between phases —
//! a sequence of `#pragma omp for` regions in OpenMP terms.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn, MemSize};
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, range_loop, spmd_kernel, static_chunk};
use crate::codegen::{DataLayout, KernelBuild, TargetEnv};

/// Full matrix dimension.
pub const N: usize = 64;
/// Block dimension.
pub const H: usize = N / 2;

/// Block index into a 64×64 row-major i8 matrix: `(row_block, col_block)`.
type Blk = (usize, usize);

const A11: Blk = (0, 0);
const A12: Blk = (0, 1);
const A21: Blk = (1, 0);
const A22: Blk = (1, 1);
// Blocks of Bᵀ: (Bᵀ)₁₂ = (B₂₁)ᵀ etc.
const BT11: Blk = (0, 0);
const BT12: Blk = (0, 1);
const BT21: Blk = (1, 0);
const BT22: Blk = (1, 1);

/// One operand of a base-case product: `first ± second` (or just `first`).
#[derive(Clone, Copy, Debug)]
struct Operand {
    first: Blk,
    second: Option<(Blk, bool)>, // (block, subtract?)
}

fn op1(first: Blk) -> Operand {
    Operand {
        first,
        second: None,
    }
}
fn add(first: Blk, second: Blk) -> Operand {
    Operand {
        first,
        second: Some((second, false)),
    }
}
fn sub(first: Blk, second: Blk) -> Operand {
    Operand {
        first,
        second: Some((second, true)),
    }
}

/// The seven products, phrased over `A` and `Bᵀ` blocks.
fn products() -> [(Operand, Operand); 7] {
    [
        (add(A11, A22), add(BT11, BT22)), // M1 = (A11+A22)(B11+B22)
        (add(A21, A22), op1(BT11)),       // M2 = (A21+A22)·B11
        (op1(A11), sub(BT21, BT22)),      // M3 = A11·(B12−B22)
        (op1(A22), sub(BT12, BT11)),      // M4 = A22·(B21−B11)
        (add(A11, A12), op1(BT22)),       // M5 = (A11+A12)·B22
        (sub(A21, A11), add(BT11, BT21)), // M6 = (A21−A11)(B11+B12)
        (sub(A12, A22), add(BT12, BT22)), // M7 = (A12−A22)(B21+B22)
    ]
}

/// `C` recombination: each output block is a signed sum of products.
/// `(block, [(product index, sign)])`.
fn recombination() -> [(Blk, Vec<(usize, bool)>); 4] {
    [
        ((0, 0), vec![(0, false), (3, false), (4, true), (6, false)]), // C11
        ((0, 1), vec![(2, false), (4, false)]),                        // C12
        ((1, 0), vec![(1, false), (3, false)]),                        // C21
        ((1, 1), vec![(0, false), (1, true), (2, false), (5, false)]), // C22
    ]
}

/// Bit-exact reference following the generated code's wrapping-i8
/// evaluation order.
#[must_use]
pub fn reference(a: &[i8], bt: &[i8]) -> Vec<i8> {
    let blk = |m: &[i8], (r, c): Blk, i: usize, j: usize| m[(r * H + i) * N + c * H + j];
    let mut ms = vec![[0i8; H * H]; 7];
    for (p, (oa, ob)) in products().iter().enumerate() {
        let mut sa = [0i8; H * H];
        let mut sb = [0i8; H * H];
        for i in 0..H {
            for j in 0..H {
                let mut va = blk(a, oa.first, i, j);
                if let Some((s, neg)) = oa.second {
                    let v2 = blk(a, s, i, j);
                    va = if neg {
                        va.wrapping_sub(v2)
                    } else {
                        va.wrapping_add(v2)
                    };
                }
                sa[i * H + j] = va;
                let mut vb = blk(bt, ob.first, i, j);
                if let Some((s, neg)) = ob.second {
                    let v2 = blk(bt, s, i, j);
                    vb = if neg {
                        vb.wrapping_sub(v2)
                    } else {
                        vb.wrapping_add(v2)
                    };
                }
                sb[i * H + j] = vb;
            }
        }
        // Base case: 32×32 char matmul (i32 accumulate, i8 truncate),
        // second operand already transposed.
        for i in 0..H {
            for j in 0..H {
                let mut acc = 0i32;
                for k in 0..H {
                    acc = acc.wrapping_add(
                        i32::from(sa[i * H + k]).wrapping_mul(i32::from(sb[j * H + k])),
                    );
                }
                ms[p][i * H + j] = acc as i8;
            }
        }
    }
    let mut c = vec![0i8; N * N];
    for (blk_pos, combo) in recombination() {
        for i in 0..H {
            for j in 0..H {
                let mut acc = 0i8;
                for &(p, neg) in &combo {
                    let v = ms[p][i * H + j];
                    acc = if neg {
                        acc.wrapping_sub(v)
                    } else {
                        acc.wrapping_add(v)
                    };
                }
                c[(blk_pos.0 * H + i) * N + blk_pos.1 * H + j] = acc;
            }
        }
    }
    c
}

fn blk_offset(b: Blk) -> u32 {
    (b.0 * H * N + b.1 * H) as u32
}

/// Builds the Strassen kernel for a target.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build(env: &TargetEnv) -> KernelBuild {
    let mut rng = XorShiftRng::seed_from_u64(0x5714_55E2);
    let a_data: Vec<i8> = (0..N * N).map(|_| rng.gen()).collect();
    let bt_data: Vec<i8> = (0..N * N).map(|_| rng.gen()).collect();
    let expect: Vec<u8> = reference(&a_data, &bt_data)
        .iter()
        .map(|v| *v as u8)
        .collect();

    let mut l = DataLayout::new(env, 64 * 1024);
    let a_addr = l.input("A", a_data.iter().map(|v| *v as u8).collect());
    let bt_addr = l.input("BT", bt_data.iter().map(|v| *v as u8).collect());
    let c_addr = l.output("C", N * N);
    let sa_addr = l.scratch("SA", H * H);
    let sb_addr = l.scratch("SB", H * H);
    let m_addr = l.scratch("M", 7 * H * H);
    let buffers = l.finish();

    let simd = env.features().simd_dot;
    let f = *env.features();

    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        // Args: R3 = A, R4 = BT, R5 = C; scratch bases are constants.
        for (p, (oa, ob)) in products().iter().enumerate() {
            // ---- phase 1: operand sums into SA / SB, rows split --------
            static_chunk(a, env, H as u32, R10, R11, R12);
            range_loop(a, R12, R10, R11, |a| {
                for (dst, src_base_reg, operand) in [(sa_addr, R3, oa), (sb_addr, R4, ob)] {
                    // src row pointers (stride N), dst row (stride H)
                    // R13 = i*N + blk_offset(first)
                    a.li(R13, N as i32);
                    a.mul(R13, R12, R13);
                    a.add(R13, R13, src_base_reg);
                    a.li(R14, H as i32);
                    a.mul(R14, R12, R14);
                    a.la(R15, dst);
                    a.add(R14, R14, R15); // dst ptr
                    let first_off = blk_offset(operand.first) as i32;
                    a.li(R15, first_off);
                    a.add(R15, R15, R13); // src1 ptr
                    if let Some((sblk, _)) = operand.second {
                        a.li(R16, blk_offset(sblk) as i32);
                        a.add(R16, R16, R13); // src2 ptr
                    }
                    if simd {
                        // 4 lanes per iteration with packed add/sub.
                        a.li(R6, (H / 4) as i32);
                        counted_loop(a, env, 0, R6, R2, |a| {
                            a.lw(R20, R15, 0);
                            match operand.second {
                                None => a.sw(R20, R14, 0),
                                Some((_, neg)) => {
                                    a.lw(R21, R16, 0);
                                    if neg {
                                        a.insn(Insn::SubV4(R20, R20, R21));
                                    } else {
                                        a.insn(Insn::AddV4(R20, R20, R21));
                                    }
                                    a.addi(R16, R16, 4);
                                    a.sw(R20, R14, 0)
                                }
                            };
                            a.addi(R15, R15, 4);
                            a.addi(R14, R14, 4);
                        });
                    } else {
                        a.li(R6, H as i32);
                        counted_loop(a, env, 0, R6, R2, |a| {
                            if f.post_increment {
                                a.insn(Insn::LoadPi {
                                    rd: R20,
                                    base: R15,
                                    inc: 1,
                                    size: MemSize::Byte,
                                    signed: true,
                                });
                            } else {
                                a.lb(R20, R15, 0);
                                a.addi(R15, R15, 1);
                            }
                            if let Some((_, neg)) = operand.second {
                                if f.post_increment {
                                    a.insn(Insn::LoadPi {
                                        rd: R21,
                                        base: R16,
                                        inc: 1,
                                        size: MemSize::Byte,
                                        signed: true,
                                    });
                                } else {
                                    a.lb(R21, R16, 0);
                                    a.addi(R16, R16, 1);
                                }
                                if neg {
                                    a.sub(R20, R20, R21);
                                } else {
                                    a.add(R20, R20, R21);
                                }
                            }
                            if f.post_increment {
                                a.insn(Insn::StorePi {
                                    rs: R20,
                                    base: R14,
                                    inc: 1,
                                    size: MemSize::Byte,
                                });
                            } else {
                                a.sb(R20, R14, 0);
                                a.addi(R14, R14, 1);
                            }
                        });
                    }
                }
            });
            if env.is_parallel() {
                a.barrier();
            }

            // ---- phase 2: base matmul SA(32×32) × SB(32×32)ᵀ → M_p -----
            static_chunk(a, env, H as u32, R10, R11, R12);
            range_loop(a, R12, R10, R11, |a| {
                // a_row = SA + i*H ; m_ptr = M_p + i*H ; sb_ptr = SB
                a.li(R13, H as i32);
                a.mul(R13, R12, R13);
                a.la(R16, sa_addr);
                a.add(R16, R16, R13);
                a.la(R15, m_addr + (p * H * H) as u32);
                a.add(R15, R15, R13);
                a.la(R14, sb_addr);
                a.li(R6, H as i32);
                counted_loop(a, env, 1, R6, R2, |a| {
                    a.mv(R18, R16);
                    emit_char_dot(a, env, H);
                    a.insn(Insn::Store {
                        rs: R17,
                        base: R15,
                        offset: 0,
                        size: MemSize::Byte,
                    });
                    a.addi(R15, R15, 1);
                });
            });
            if env.is_parallel() {
                a.barrier();
            }
        }

        // ---- phase 3: recombination into C, rows split ------------------
        static_chunk(a, env, H as u32, R10, R11, R12);
        range_loop(a, R12, R10, R11, |a| {
            for (blk_pos, combo) in recombination() {
                // c_ptr = C + (blk_r*H + i)*N + blk_c*H
                a.li(R13, N as i32);
                a.mul(R13, R12, R13);
                a.add(R13, R13, R5);
                a.li(R14, (blk_pos.0 * H * N + blk_pos.1 * H) as i32);
                a.add(R13, R13, R14); // dst
                                      // m_ptrs = M_p + i*H
                a.li(R14, H as i32);
                a.mul(R14, R12, R14);
                a.li(R6, H as i32);
                // Walk j with an index register.
                a.li(R19, 0);
                counted_loop(a, env, 0, R6, R2, |a| {
                    a.add(R20, R14, R19); // i*H + j
                    a.li(R17, 0);
                    for &(pi, neg) in &combo {
                        a.la(R21, m_addr + (pi * H * H) as u32);
                        a.add(R21, R21, R20);
                        a.lb(R22, R21, 0);
                        if neg {
                            a.sub(R17, R17, R22);
                        } else {
                            a.add(R17, R17, R22);
                        }
                    }
                    a.add(R21, R13, R19);
                    a.sb(R17, R21, 0);
                    a.addi(R19, R19, 1);
                });
            }
        });
    });
    let program = asm.finish().expect("strassen generator emits valid code");

    KernelBuild {
        name: format!("strassen[{}]", env.model.name),
        program,
        args: vec![(R3, a_addr), (R4, bt_addr), (R5, c_addr)],
        buffers,
        expected: vec![(2, expect)],
    }
}

/// Char dot product over `n` elements: acc R17, a_ptr R18, b_ptr R14
/// (both advanced), count R7, scratch R1, temps R20–R22.
fn emit_char_dot(a: &mut Asm, env: &TargetEnv, n: usize) {
    let f = *env.features();
    a.li(R17, 0);
    if f.simd_dot {
        a.li(R7, (n / 4) as i32);
        counted_loop(a, env, 0, R7, R1, |a| {
            a.lw(R20, R18, 0);
            a.lw(R21, R14, 0);
            a.insn(Insn::SdotV4(R17, R20, R21));
            a.addi(R18, R18, 4);
            a.addi(R14, R14, 4);
        });
    } else if f.mac {
        a.li(R7, (n / 4) as i32);
        counted_loop(a, env, 0, R7, R1, |a| {
            for u in 0..4i16 {
                if f.post_increment {
                    a.insn(Insn::LoadPi {
                        rd: R20,
                        base: R18,
                        inc: 1,
                        size: MemSize::Byte,
                        signed: true,
                    });
                    a.insn(Insn::LoadPi {
                        rd: R21,
                        base: R14,
                        inc: 1,
                        size: MemSize::Byte,
                        signed: true,
                    });
                } else {
                    a.lb(R20, R18, u);
                    a.lb(R21, R14, u);
                }
                a.mac(R17, R20, R21);
            }
            if !f.post_increment {
                a.addi(R18, R18, 4);
                a.addi(R14, R14, 4);
            }
        });
    } else {
        a.li(R7, n as i32);
        counted_loop(a, env, 0, R7, R1, |a| {
            a.lb(R20, R18, 0);
            a.lb(R21, R14, 0);
            a.mul(R22, R20, R21);
            a.add(R17, R17, R22);
            a.addi(R18, R18, 1);
            a.addi(R14, R14, 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    #[test]
    fn strassen_equals_plain_matmul_reference() {
        // Strassen is exact over wrapping integer arithmetic: the i8
        // result must match the classical algorithm bit-for-bit.
        let mut rng = XorShiftRng::seed_from_u64(99);
        let a: Vec<i8> = (0..N * N).map(|_| rng.gen()).collect();
        let bt: Vec<i8> = (0..N * N).map(|_| rng.gen()).collect();
        assert_eq!(
            reference(&a, &bt),
            crate::matmul::reference_char(&a, &bt, N)
        );
    }

    #[test]
    fn correct_on_all_targets() {
        for env in [
            TargetEnv::baseline(),
            TargetEnv::host_m4(),
            TargetEnv::host_m3(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ] {
            let build = build(&env);
            run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
        }
    }

    #[test]
    fn table1_sizes() {
        let build = build(&TargetEnv::pulp_single());
        assert_eq!(build.input_bytes(), 8 * 1024);
        assert_eq!(build.output_bytes(), 4 * 1024);
    }

    #[test]
    fn fewer_multiplies_than_plain_matmul() {
        // The whole point of Strassen: 7 < 8 base products. On the
        // baseline core the retired-instruction count must come in below
        // the plain char matmul.
        let env = TargetEnv::baseline();
        let st = run(&build(&env), &env).unwrap();
        let mm = run(
            &crate::matmul::build(crate::matmul::MatVariant::Char, &env),
            &env,
        )
        .unwrap();
        assert!(
            st.retired < mm.retired,
            "strassen {} ops must be below matmul {} ops",
            st.retired,
            mm.retired
        );
    }

    #[test]
    fn architectural_speedup_in_integer_band() {
        let m4 = run(&build(&TargetEnv::host_m4()), &TargetEnv::host_m4()).unwrap();
        let or10n = run(&build(&TargetEnv::pulp_single()), &TargetEnv::pulp_single()).unwrap();
        let speedup = m4.cycles as f64 / or10n.cycles as f64;
        assert!(
            (1.8..3.5).contains(&speedup),
            "strassen arch speedup {speedup:.2} outside the integer band"
        );
    }

    #[test]
    fn parallel_speedup_reasonable() {
        let single = run(&build(&TargetEnv::pulp_single()), &TargetEnv::pulp_single()).unwrap();
        let quad = run(
            &build(&TargetEnv::pulp_parallel()),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let speedup = single.cycles as f64 / quad.cycles as f64;
        assert!(
            (2.5..4.0).contains(&speedup),
            "strassen 4-core speedup {speedup:.2} outside [2.5, 4)"
        );
    }
}
