//! The benchmark suite: one entry per Table I row.

use std::fmt;

use crate::codegen::{KernelBuild, TargetEnv};
use crate::runner::{run, RunError};
use crate::{cnn, hog, matmul, strassen, svm};

/// Application field of a benchmark (Table I "Field" column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Field {
    /// Linear algebra kernels from the PULP test set.
    LinearAlgebra,
    /// Machine learning / vision classifiers.
    LearningVision,
    /// Pure vision feature extraction.
    Vision,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::LinearAlgebra => f.write_str("linear algebra"),
            Field::LearningVision => f.write_str("learning / vision"),
            Field::Vision => f.write_str("vision"),
        }
    }
}

/// Every benchmark of the paper's Table I.
///
/// # Example
///
/// ```
/// use ulp_kernels::{Benchmark, TargetEnv};
///
/// // Build the CNN for the quad-core accelerator and check its Table I
/// // footprint.
/// let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
/// assert_eq!(build.input_bytes(), 2048);
/// assert_eq!(build.output_bytes(), 40);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// Matrix multiplication on char data.
    MatMul,
    /// Matrix multiplication on short data.
    MatMulShort,
    /// Matrix multiplication on 16-bit fixed-point data.
    MatMulFixed,
    /// Strassen fast matrix multiplication.
    Strassen,
    /// SVM classifier, linear kernel.
    SvmLinear,
    /// SVM classifier, polynomial kernel.
    SvmPoly,
    /// SVM classifier, RBF kernel.
    SvmRbf,
    /// Convolutional neural network.
    Cnn,
    /// Approximated convolutional neural network.
    CnnApprox,
    /// Histogram-of-oriented-gradients descriptor.
    Hog,
}

impl Benchmark {
    /// All ten benchmarks in Table I order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::MatMul,
        Benchmark::MatMulShort,
        Benchmark::MatMulFixed,
        Benchmark::Strassen,
        Benchmark::SvmLinear,
        Benchmark::SvmPoly,
        Benchmark::SvmRbf,
        Benchmark::Cnn,
        Benchmark::CnnApprox,
        Benchmark::Hog,
    ];

    /// Table I row name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::MatMul => "matmul",
            Benchmark::MatMulShort => "matmul (short)",
            Benchmark::MatMulFixed => "matmul (fixed)",
            Benchmark::Strassen => "strassen",
            Benchmark::SvmLinear => "svm (linear)",
            Benchmark::SvmPoly => "svm (poly)",
            Benchmark::SvmRbf => "svm (RBF)",
            Benchmark::Cnn => "cnn",
            Benchmark::CnnApprox => "cnn (approx)",
            Benchmark::Hog => "hog",
        }
    }

    /// Table I description.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::MatMul => "Matrix multiplication on char data",
            Benchmark::MatMulShort => "Matrix multiplication on short data",
            Benchmark::MatMulFixed => "Matrix multiplication on 16-bit fixed-point data",
            Benchmark::Strassen => "Strassen algorithm for fast matrix multiplication",
            Benchmark::SvmLinear => "Support Vector Machine classifier (linear kernel)",
            Benchmark::SvmPoly => "Support Vector Machine classifier (polynomial kernel)",
            Benchmark::SvmRbf => "Support Vector Machine classifier (radial basis function kernel)",
            Benchmark::Cnn => "Convolutional Neural Network",
            Benchmark::CnnApprox => "Convolutional Neural Network (approximated)",
            Benchmark::Hog => "Histogram of Oriented Gradients feature descriptor",
        }
    }

    /// Application field.
    #[must_use]
    pub fn field(self) -> Field {
        match self {
            Benchmark::MatMul
            | Benchmark::MatMulShort
            | Benchmark::MatMulFixed
            | Benchmark::Strassen => Field::LinearAlgebra,
            Benchmark::SvmLinear
            | Benchmark::SvmPoly
            | Benchmark::SvmRbf
            | Benchmark::Cnn
            | Benchmark::CnnApprox => Field::LearningVision,
            Benchmark::Hog => Field::Vision,
        }
    }

    /// Whether the paper groups this benchmark with the fixed-point set
    /// (the low architectural-speedup group of Fig. 4).
    #[must_use]
    pub fn is_fixed_point(self) -> bool {
        matches!(
            self,
            Benchmark::MatMulFixed
                | Benchmark::SvmLinear
                | Benchmark::SvmPoly
                | Benchmark::SvmRbf
                | Benchmark::Cnn
                | Benchmark::CnnApprox
        )
    }

    /// Builds the benchmark for a target environment (full Table I size).
    #[must_use]
    pub fn build(self, env: &TargetEnv) -> KernelBuild {
        match self {
            Benchmark::MatMul => matmul::build(matmul::MatVariant::Char, env),
            Benchmark::MatMulShort => matmul::build(matmul::MatVariant::Short, env),
            Benchmark::MatMulFixed => matmul::build(matmul::MatVariant::Fixed, env),
            Benchmark::Strassen => strassen::build(env),
            Benchmark::SvmLinear => svm::build(svm::SvmKernel::Linear, env),
            Benchmark::SvmPoly => svm::build(svm::SvmKernel::Poly, env),
            Benchmark::SvmRbf => svm::build(svm::SvmKernel::Rbf, env),
            Benchmark::Cnn => cnn::build(false, env),
            Benchmark::CnnApprox => cnn::build(true, env),
            Benchmark::Hog => hog::build(env),
        }
    }

    /// Builds a reduced-size variant where the benchmark supports it
    /// (used by fast tests; falls back to the full size otherwise).
    #[must_use]
    pub fn build_reduced(self, env: &TargetEnv) -> KernelBuild {
        match self {
            Benchmark::MatMul => matmul::build_sized(matmul::MatVariant::Char, env, 16),
            Benchmark::MatMulShort => matmul::build_sized(matmul::MatVariant::Short, env, 16),
            Benchmark::MatMulFixed => matmul::build_sized(matmul::MatVariant::Fixed, env, 16),
            Benchmark::Hog => hog::build_sized(env, 16),
            other => other.build(env),
        }
    }

    /// Counts the benchmark's **RISC ops** — retired instructions on the
    /// featureless baseline core (paper §IV footnote 1).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the baseline run fails (it should not).
    pub fn risc_ops(self) -> Result<u64, RunError> {
        let env = TargetEnv::baseline();
        Ok(run(&self.build(&env), &env)?.retired)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_unique_rows() {
        assert_eq!(Benchmark::ALL.len(), 10);
        for (i, a) in Benchmark::ALL.iter().enumerate() {
            for b in &Benchmark::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_match_table1() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            [
                "matmul",
                "matmul (short)",
                "matmul (fixed)",
                "strassen",
                "svm (linear)",
                "svm (poly)",
                "svm (RBF)",
                "cnn",
                "cnn (approx)",
                "hog"
            ]
        );
    }

    #[test]
    fn fields_match_table1() {
        assert_eq!(Benchmark::MatMul.field(), Field::LinearAlgebra);
        assert_eq!(Benchmark::SvmRbf.field(), Field::LearningVision);
        assert_eq!(Benchmark::Hog.field(), Field::Vision);
    }

    #[test]
    fn fixed_point_group_matches_paper() {
        let fixed: Vec<_> = Benchmark::ALL
            .iter()
            .filter(|b| b.is_fixed_point())
            .map(|b| b.name())
            .collect();
        assert_eq!(
            fixed,
            [
                "matmul (fixed)",
                "svm (linear)",
                "svm (poly)",
                "svm (RBF)",
                "cnn",
                "cnn (approx)"
            ]
        );
    }

    #[test]
    fn every_benchmark_builds_and_runs_reduced() {
        let env = TargetEnv::pulp_parallel();
        for b in Benchmark::ALL {
            let build = b.build_reduced(&env);
            run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
        }
    }
}
