//! On-cluster DMA double buffering: a streaming kernel whose *generated
//! code* programs the cluster DMA through its memory-mapped registers.
//!
//! The paper (§IV-B): "traditional double buffering schemes can be
//! implemented to overlap data transfers with useful computation". This
//! module demonstrates exactly that, inside the accelerator: a 16 kB
//! input lives in L2 (standing in for data staged by the SPI slave), and
//! the kernel pulls it into the TCDM in 1 kB tiles:
//!
//! * **sequential**: program DMA → poll until done → process tile;
//! * **double-buffered**: poll tile *t* → immediately launch the DMA for
//!   tile *t+1* into the other buffer → process tile *t* while it flies.
//!
//! The computation is a simple streaming map, `out[i] = 3·in[i] + 1`
//! (wrapping), heavy enough that the transfer fully hides behind it.
//! Both variants are verified bit-exact against the Rust reference; the
//! cycle difference is the measured overlap win.

use ulp_isa::reg::named::*;
use ulp_isa::Asm;
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, spmd_kernel};
use crate::codegen::{Buffer, BufferInit, BufferRole, DataLayout, KernelBuild, TargetEnv};

/// Words per DMA tile (1 kB).
pub const TILE_WORDS: usize = 256;
/// Total words streamed (16 kB).
pub const N_WORDS: usize = 4096;
/// Number of tiles.
pub const NTILES: usize = N_WORDS / TILE_WORDS;

/// L2 staging address of the input (after the code region).
pub const L2_STAGING: u32 = 0x1C00_8000;
/// The cluster's DMA register window (mirrors `ulp_cluster::DMA_MMIO_BASE`).
pub const DMA_MMIO: u32 = 0x1B00_0000;

/// Bit-exact reference: `out[i] = 3·in[i] + 1` (wrapping).
#[must_use]
pub fn reference(input: &[i32]) -> Vec<i32> {
    input
        .iter()
        .map(|v| v.wrapping_mul(3).wrapping_add(1))
        .collect()
}

/// Deterministic input data.
#[must_use]
pub fn generate_input(seed: u64) -> Vec<i32> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    (0..N_WORDS).map(|_| rng.gen()).collect()
}

/// Builds the streaming kernel (single-core OR10N; `double_buffer`
/// selects the overlapped schedule).
///
/// # Panics
///
/// Panics if `env` is not a single-core accelerator target (the demo
/// drives the single shared DMA register set from core 0).
#[must_use]
pub fn build(env: &TargetEnv, double_buffer: bool) -> KernelBuild {
    assert_eq!(env.num_cores, 1, "the streaming demo is single-core");
    assert_eq!(
        env.data_base, 0x1000_0000,
        "the streaming demo targets the cluster"
    );

    let input = generate_input(0x57AE_AA11);
    let expect: Vec<u8> = reference(&input)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();

    // TCDM: output + two tile buffers. Input stages in L2.
    let mut l = DataLayout::new(env, 64 * 1024);
    let out_addr = l.output("out", N_WORDS * 4);
    let buf0 = l.scratch("tile0", TILE_WORDS * 4);
    let buf1 = l.scratch("tile1", TILE_WORDS * 4);
    let mut buffers = l.finish();
    buffers.push(Buffer {
        name: "input(L2)",
        addr: L2_STAGING,
        len: N_WORDS * 4,
        init: BufferInit::Data(input.iter().flat_map(|v| v.to_le_bytes()).collect()),
        role: BufferRole::Input,
    });

    let tile_bytes = (TILE_WORDS * 4) as i32;

    // Programs the DMA: src in R21 (advanced by the caller), dst in `dst`.
    let emit_dma_start = |a: &mut Asm, dst: ulp_isa::Reg| {
        a.sw(R21, R20, 0); // src
        a.sw(dst, R20, 4); // dst
        a.li(R19, tile_bytes);
        a.sw(R19, R20, 8); // len
        a.sw(R19, R20, 12); // go
        a.add(R21, R21, R19); // advance the input cursor by one tile
    };
    let emit_dma_wait = |a: &mut Asm| {
        let poll = a.new_label();
        a.bind(poll);
        a.lw(R19, R20, 12);
        a.beq(R19, R0, poll);
    };
    // Processes TILE_WORDS words from `R15` into the output cursor R22.
    let emit_process = |a: &mut Asm, env: &TargetEnv| {
        a.mv(R14, R15);
        a.li(R7, TILE_WORDS as i32);
        counted_loop(a, env, 0, R7, R1, |a| {
            a.lw(R16, R14, 0);
            a.slli(R17, R16, 1);
            a.add(R16, R17, R16);
            a.addi(R16, R16, 1);
            a.sw(R16, R22, 0);
            a.addi(R14, R14, 4);
            a.addi(R22, R22, 4);
        });
    };

    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        a.la(R20, DMA_MMIO);
        a.la(R21, L2_STAGING); // input cursor
        a.mv(R22, R3); // output cursor (R3 = out)
        a.mv(R15, R5); // current tile buffer (R5 = buf0)
        a.mv(R18, R6); // next tile buffer (R6 = buf1)
        if double_buffer {
            // Prologue: fetch tile 0, then per tile: wait → launch next →
            // compute current while it flies.
            emit_dma_start(a, R15);
            a.li(R23, NTILES as i32);
            let top = a.new_label();
            a.bind(top);
            emit_dma_wait(a);
            {
                // Launch the next transfer unless this is the last tile.
                let last = a.new_label();
                a.li(R19, 1);
                a.beq(R23, R19, last);
                emit_dma_start(a, R18);
                a.bind(last);
            }
            emit_process(a, env);
            // Swap buffers.
            a.mv(R19, R15);
            a.mv(R15, R18);
            a.mv(R18, R19);
            a.addi(R23, R23, -1);
            a.bne(R23, R0, top);
        } else {
            a.li(R23, NTILES as i32);
            let top = a.new_label();
            a.bind(top);
            emit_dma_start(a, R15);
            emit_dma_wait(a);
            emit_process(a, env);
            a.addi(R23, R23, -1);
            a.bne(R23, R0, top);
        }
    });
    let program = asm.finish().expect("streaming generator emits valid code");

    KernelBuild {
        name: format!(
            "streaming/{}[{}]",
            if double_buffer {
                "double-buffered"
            } else {
                "sequential"
            },
            env.model.name
        ),
        program,
        args: vec![(R3, out_addr), (R5, buf0), (R6, buf1)],
        buffers,
        expected: vec![(0, expect)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    #[test]
    fn both_schedules_are_bit_exact() {
        let env = TargetEnv::pulp_single();
        for db in [false, true] {
            let b = build(&env, db);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn double_buffering_hides_the_transfers() {
        let env = TargetEnv::pulp_single();
        let seq = run(&build(&env, false), &env).unwrap();
        let db = run(&build(&env, true), &env).unwrap();
        assert!(
            (db.cycles as f64) < seq.cycles as f64 * 0.95,
            "double-buffered {} must beat sequential {}",
            db.cycles,
            seq.cycles
        );
        // The hidden time is bounded by the total DMA busy time.
        let dma_busy = seq.activity.as_ref().unwrap().dma_busy_cycles;
        assert!(seq.cycles - db.cycles <= dma_busy);
    }

    #[test]
    fn dma_moves_every_byte() {
        let env = TargetEnv::pulp_single();
        let r = run(&build(&env, true), &env).unwrap();
        let act = r.activity.unwrap();
        assert_eq!(act.dma_bytes as usize, N_WORDS * 4);
        assert!(act.dma_busy_cycles > 0);
    }

    #[test]
    fn reference_semantics() {
        assert_eq!(
            reference(&[0, 1, -1, i32::MAX]),
            vec![1, 4, -2, i32::MAX.wrapping_mul(3).wrapping_add(1)]
        );
    }
}
