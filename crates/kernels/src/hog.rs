//! Histogram-of-oriented-gradients descriptor (Table I `hog`).
//!
//! A VLFeat-style HOG on 32-bit Q16.15 fixed point:
//!
//! 1. **Gradients & binning** — for every interior pixel, central
//!    differences give `(dx, dy)`; the orientation bin is the argmax of
//!    the projection `|dx·cosθ_k + dy·sinθ_k|` over 9 undirected bins
//!    (VLFeat's trick to avoid `atan2`); the gradient *magnitude*
//!    `√(dx²+dy²)` is accumulated into the pixel's 4×4-cell histogram.
//! 2. **Block normalization** — 2×2-cell blocks at stride 1 are
//!    L2-normalized: `out = c·(2³⁰/(√Σc² + 1)) >> 15`.
//!
//! This benchmark is the paper's showcase of the *architectural slowdown*:
//! `dx²+dy²` and `Σc²` exceed 32 bits ("we had to employ 32-bit fixed
//! point numbers and SW-emulated 64-bit variables for accumulation",
//! §IV-B). On Cortex-M the wide math is `SMULL`/`SMLAL`/`UDIV`
//! instructions; on OR10N it is the software runtime of
//! [`rtlib`](crate::codegen::rtlib) — so OR10N loses its usual edge here.
//!
//! Both the integer square root and the reference implementation share the
//! bit-by-bit algorithm of [`fixed::isqrt_u64`](crate::fixed::isqrt_u64),
//! keeping simulation and golden outputs identical.
//!
//! Work distribution: gradient rows are owned by the core that owns the
//! pixel's *cell row*, so no two cores ever accumulate into the same
//! histogram cell (races are structurally impossible); block rows are
//! work-shared in the normalization phase, with one barrier in between.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn};
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, range_loop, spmd_kernel, static_chunk};
use crate::codegen::rtlib::{emit_mac64, emit_mul64, emit_sra64_const, Rtlib};
use crate::codegen::{DataLayout, KernelBuild, TargetEnv};
use crate::fixed::isqrt_u64;

/// Default image side (Table I configuration: 64×64×4 B = 16 kB input).
pub const IMG_W: usize = 64;
/// Cell side in pixels.
pub const CELL: usize = 4;
/// Orientation bins (undirected, over [0, π)).
pub const BINS: usize = 9;

/// cos(θ_k)·128 for bin centers θ_k = (k+0.5)·π/9.
#[must_use]
pub fn cos_q7() -> [i32; BINS] {
    let mut t = [0i32; BINS];
    for (k, v) in t.iter_mut().enumerate() {
        *v = ((std::f64::consts::PI * (k as f64 + 0.5) / BINS as f64).cos() * 128.0).round() as i32;
    }
    t
}

/// sin(θ_k)·128 for bin centers θ_k = (k+0.5)·π/9.
#[must_use]
pub fn sin_q7() -> [i32; BINS] {
    let mut t = [0i32; BINS];
    for (k, v) in t.iter_mut().enumerate() {
        *v = ((std::f64::consts::PI * (k as f64 + 0.5) / BINS as f64).sin() * 128.0).round() as i32;
    }
    t
}

/// Derived geometry for an image width.
#[derive(Clone, Copy, Debug)]
pub struct HogGeometry {
    /// Image side in pixels.
    pub width: usize,
    /// Cells per side.
    pub cells: usize,
    /// Blocks per side (2×2 cells, stride 1).
    pub blocks: usize,
}

impl HogGeometry {
    /// Computes the geometry for a `width×width` image.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is a multiple of `CELL` of at least 8.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 * CELL && width.is_multiple_of(CELL),
            "width must be a multiple of {CELL}"
        );
        let cells = width / CELL;
        HogGeometry {
            width,
            cells,
            blocks: cells - 1,
        }
    }

    /// Histogram size in bytes (`cells² × 9 × 4`).
    #[must_use]
    pub fn hist_bytes(self) -> usize {
        self.cells * self.cells * BINS * 4
    }

    /// Descriptor size in bytes (`blocks² × 36 × 4`).
    #[must_use]
    pub fn descriptor_bytes(self) -> usize {
        self.blocks * self.blocks * 4 * BINS * 4
    }
}

fn wrapping_abs_xor(v: i32) -> i32 {
    let m = v >> 31;
    (v ^ m).wrapping_sub(m)
}

/// Bit-exact reference: cell histograms, then the normalized descriptor.
#[must_use]
pub fn reference(image: &[i32], geo: HogGeometry) -> Vec<i32> {
    let w = geo.width;
    let cos = cos_q7();
    let sin = sin_q7();
    let mut hist = vec![0u32; geo.cells * geo.cells * BINS];
    for y in 1..w - 1 {
        for x in 1..w - 1 {
            let dx = image[y * w + x + 1].wrapping_sub(image[y * w + x - 1]);
            let dy = image[(y + 1) * w + x].wrapping_sub(image[(y - 1) * w + x]);
            // Orientation: argmax |projection| (strictly-greater update).
            let mut best = -1i32;
            let mut bin = 0usize;
            for k in 0..BINS {
                let proj = dx
                    .wrapping_mul(cos[k])
                    .wrapping_add(dy.wrapping_mul(sin[k]));
                let mag = wrapping_abs_xor(proj);
                if mag > best {
                    best = mag;
                    bin = k;
                }
            }
            let sq =
                (i64::from(dx) * i64::from(dx)) as u64 + (i64::from(dy) * i64::from(dy)) as u64;
            let mag = isqrt_u64(sq);
            let (cy, cx) = (y / CELL, x / CELL);
            let idx = (cy * geo.cells + cx) * BINS + bin;
            hist[idx] = hist[idx].wrapping_add(mag);
        }
    }
    // Block normalization.
    let mut out = vec![0i32; geo.blocks * geo.blocks * 4 * BINS];
    for by in 0..geo.blocks {
        for bx in 0..geo.blocks {
            let mut s: u64 = 0;
            let cells = [(0, 0), (0, 1), (1, 0), (1, 1)];
            for &(dy, dx) in &cells {
                for k in 0..BINS {
                    let c = hist[((by + dy) * geo.cells + bx + dx) * BINS + k];
                    s = s.wrapping_add((i64::from(c as i32) * i64::from(c as i32)) as u64);
                }
            }
            let norm = isqrt_u64(s).wrapping_add(1);
            let inv = (1u32 << 30) / norm;
            let base = (by * geo.blocks + bx) * 4 * BINS;
            for (ci, &(dy, dx)) in cells.iter().enumerate() {
                for k in 0..BINS {
                    let c = hist[((by + dy) * geo.cells + bx + dx) * BINS + k];
                    let prod = i64::from(c as i32) * i64::from(inv as i32);
                    out[base + ci * BINS + k] = (prod >> 15) as i32;
                }
            }
        }
    }
    out
}

/// Generates a deterministic Q16.15 test image in (−1, 1).
#[must_use]
pub fn generate_image(width: usize, seed: u64) -> Vec<i32> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    (0..width * width)
        .map(|_| rng.gen_range(-32768..32768))
        .collect()
}

/// Builds the Table I HOG kernel (64×64 image).
#[must_use]
pub fn build(env: &TargetEnv) -> KernelBuild {
    build_sized(env, IMG_W)
}

/// Builds a HOG kernel over a `width×width` image (smaller widths for fast
/// tests).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_sized(env: &TargetEnv, width: usize) -> KernelBuild {
    let geo = HogGeometry::new(width);
    assert!(
        geo.cells.is_power_of_two(),
        "cell count must be a power of two (shift addressing)"
    );
    let image = generate_image(width, 0x09_0609);
    let expect: Vec<u8> = reference(&image, geo)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();

    let mut l = DataLayout::new(env, 64 * 1024);
    let img_addr = l.input(
        "image",
        image.iter().flat_map(|v| v.to_le_bytes()).collect(),
    );
    let out_addr = l.output("descriptor", geo.descriptor_bytes());
    let hist_addr = l.scratch("hist", geo.hist_bytes());
    let buffers = l.finish();

    let w = geo.width as i32;
    let cells = geo.cells as u32;
    let blocks = geo.blocks as u32;
    let cos = cos_q7();
    let sin = sin_q7();

    let mut rt = Rtlib::new();
    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        // Args: R3 = image, R4 = hist, R5 = out.
        //
        // ---- phase 1: gradients, orientation, magnitude, binning -------
        // Cell rows are work-shared; each cell row owns pixel rows
        // 4c..4c+4, so histogram updates never race.
        static_chunk(a, env, cells, R10, R11, R12);
        a.slli(R10, R10, 2);
        a.slli(R6, R11, 2); // pixel-row end kept in R6 (survives rtlib calls)
        range_loop(a, R23, R10, R6, |a| {
            let row_done = a.new_label();
            // Skip border rows y == 0 and y == width-1.
            a.beq(R23, R0, row_done);
            a.li(R22, w - 1);
            a.beq(R23, R22, row_done);
            // x loop over 1..width-1 in R24.
            a.li(R24, 1);
            let xtop = a.new_label();
            a.bind(xtop);
            {
                // pix = image + (y·w + x)·4
                a.li(R22, w);
                a.mul(R22, R23, R22);
                a.add(R22, R22, R24);
                a.slli(R22, R22, 2);
                a.add(R22, R22, R3);
                // dx = pix[+4] - pix[-4] ; dy = pix[+4w] - pix[-4w]
                a.lw(R20, R22, 4);
                a.lw(R21, R22, -4);
                a.sub(R20, R20, R21);
                a.insn(Insn::Load {
                    rd: R21,
                    base: R22,
                    offset: (w * 4) as i16,
                    size: ulp_isa::MemSize::Word,
                    signed: true,
                });
                a.insn(Insn::Load {
                    rd: R19,
                    base: R22,
                    offset: (-w * 4) as i16,
                    size: ulp_isa::MemSize::Word,
                    signed: true,
                });
                a.sub(R21, R21, R19);
                // Orientation argmax over 9 unrolled bins: best |proj| in
                // R8, bin in R26.
                a.li(R8, -1);
                a.li(R26, 0);
                for k in 0..BINS {
                    a.li(R16, cos[k]);
                    a.mul(R17, R20, R16);
                    a.li(R16, sin[k]);
                    a.mul(R18, R21, R16);
                    a.add(R17, R17, R18);
                    // |proj| branchlessly: (p ^ (p>>31)) - (p>>31)
                    a.srai(R18, R17, 31);
                    a.insn(Insn::Xor(R17, R17, R18));
                    a.sub(R17, R17, R18);
                    let keep = a.new_label();
                    a.bge(R8, R17, keep);
                    a.mv(R8, R17);
                    a.li(R26, k as i32);
                    a.bind(keep);
                }
                // mag² = dx² + dy² (64-bit) → isqrt.
                a.mv(R22, R20);
                emit_mul64(a, env, R14, R15, R20, R22, [R16, R17, R18, R19]);
                a.mv(R22, R21);
                emit_mac64(a, env, R14, R15, R21, R22, [R16, R17, R18, R19, R10, R11]);
                rt.emit_isqrt64(a, env, R20, R14, R15);
                // hist[(cy·cells + cx)·9 + bin] += mag
                a.srli(R14, R23, 2); // cy
                a.srli(R15, R24, 2); // cx
                a.slli(R14, R14, geo.cells.trailing_zeros() as u8);
                a.add(R14, R14, R15);
                // ×9 = ×8 + ×1
                a.slli(R15, R14, 3);
                a.add(R14, R14, R15);
                a.add(R14, R14, R26);
                a.slli(R14, R14, 2);
                a.add(R14, R14, R4);
                a.lw(R15, R14, 0);
                a.add(R15, R15, R20);
                a.sw(R15, R14, 0);
            }
            a.addi(R24, R24, 1);
            a.li(R22, w - 1);
            a.blt(R24, R22, xtop);
            a.bind(row_done);
        });
        if env.is_parallel() {
            a.barrier();
        }

        // ---- phase 2: block normalization, block rows work-shared ------
        static_chunk(a, env, blocks, R10, R11, R12);
        a.mv(R6, R10);
        // The image pointer is dead in this phase; its register keeps the
        // loop bound alive across the rtlib calls (which clobber r11-r19).
        a.mv(R3, R11);
        range_loop(a, R23, R6, R3, |a| {
            // bx loop in R24.
            a.li(R24, 0);
            let bxtop = a.new_label();
            a.bind(bxtop);
            {
                // S (R8:R9) = Σ c² over the 4 cells × 9 bins.
                a.li(R8, 0);
                a.li(R9, 0);
                for (dy, dx) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
                    // cell ptr R26 = hist + ((by+dy)·cells + bx+dx)·36
                    a.addi(R26, R23, dy as i16);
                    a.slli(R26, R26, geo.cells.trailing_zeros() as u8);
                    a.add(R26, R26, R24);
                    a.addi(R26, R26, dx as i16);
                    // ×36 = ×32 + ×4
                    a.slli(R27, R26, 5);
                    a.slli(R26, R26, 2);
                    a.add(R26, R26, R27);
                    a.add(R26, R26, R4);
                    a.li(R7, BINS as i32);
                    counted_loop(a, env, 0, R7, R1, |a| {
                        a.lw(R27, R26, 0);
                        a.mv(R13, R27);
                        emit_mac64(a, env, R8, R9, R27, R13, [R14, R15, R16, R17, R18, R19]);
                        a.addi(R26, R26, 4);
                    });
                }
                // norm = isqrt(S) + 1 ; inv = 2³⁰ / norm (kept in R27).
                rt.emit_isqrt64(a, env, R20, R8, R9);
                a.addi(R20, R20, 1);
                a.li(R21, 1 << 30);
                rt.emit_udiv32(a, env, R27, R21, R20);
                // out_ptr R10 = out + (by·blocks + bx)·144
                a.li(R20, blocks as i32);
                a.mul(R20, R23, R20);
                a.add(R20, R20, R24);
                a.li(R21, (4 * BINS * 4) as i32);
                a.mul(R10, R20, R21);
                a.add(R10, R10, R5);
                for (dy, dx) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
                    a.addi(R26, R23, dy as i16);
                    a.slli(R26, R26, geo.cells.trailing_zeros() as u8);
                    a.add(R26, R26, R24);
                    a.addi(R26, R26, dx as i16);
                    a.slli(R22, R26, 5);
                    a.slli(R26, R26, 2);
                    a.add(R26, R26, R22);
                    a.add(R26, R26, R4);
                    a.li(R7, BINS as i32);
                    counted_loop(a, env, 0, R7, R1, |a| {
                        a.lw(R13, R26, 0);
                        emit_mul64(a, env, R14, R15, R13, R27, [R16, R17, R18, R19]);
                        emit_sra64_const(a, R14, R15, 15, R16);
                        a.sw(R15, R10, 0);
                        a.addi(R10, R10, 4);
                        a.addi(R26, R26, 4);
                    });
                }
            }
            a.addi(R24, R24, 1);
            a.li(R22, blocks as i32);
            a.blt(R24, R22, bxtop);
        });
    });
    asm.halt(); // unreachable (spmd_kernel halts); keeps rtlib separate
    rt.emit_bodies(&mut asm);
    let program = asm.finish().expect("hog generator emits valid code");

    KernelBuild {
        name: format!("hog[{}x{width}]", env.model.name),
        program,
        args: vec![(R3, img_addr), (R4, hist_addr), (R5, out_addr)],
        buffers,
        expected: vec![(1, expect)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    const TEST_W: usize = 32;

    #[test]
    fn correct_on_all_targets() {
        for env in [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ] {
            let b = build_sized(&env, TEST_W);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn table1_io_sizes() {
        let b = build(&TargetEnv::pulp_single());
        assert_eq!(b.input_bytes(), 16 * 1024, "16 kB input image");
        // Paper: 36 kB output; our 15×15 blocks × 36 × 4 B = 32.4 kB.
        let kb = b.output_bytes() as f64 / 1024.0;
        assert!((30.0..38.0).contains(&kb), "descriptor {kb:.1} kB");
    }

    #[test]
    fn architectural_slowdown_on_or10n() {
        // The paper's headline hog result: OR10N is *slower* per cycle
        // than Cortex-M4 because of the software 64-bit arithmetic.
        let m4 = run(
            &build_sized(&TargetEnv::host_m4(), TEST_W),
            &TargetEnv::host_m4(),
        )
        .unwrap();
        let or10n = run(
            &build_sized(&TargetEnv::pulp_single(), TEST_W),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let s = m4.cycles as f64 / or10n.cycles as f64;
        assert!(
            (0.4..1.0).contains(&s),
            "hog arch 'speedup' {s:.2} must be below 1 (slowdown)"
        );
    }

    #[test]
    fn parallel_speedup_band() {
        let single = run(
            &build_sized(&TargetEnv::pulp_single(), TEST_W),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let quad = run(
            &build_sized(&TargetEnv::pulp_parallel(), TEST_W),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let s = single.cycles as f64 / quad.cycles as f64;
        assert!((2.8..4.0).contains(&s), "hog 4-core speedup {s:.2}");
    }

    #[test]
    fn descriptor_is_normalized() {
        // After L2 normalization every component is ≤ 2^15 (≈1.0 in Q15)
        // and blocks with energy have nonzero output.
        let geo = HogGeometry::new(TEST_W);
        let img = generate_image(TEST_W, 7);
        let out = reference(&img, geo);
        assert!(out.iter().all(|&v| (0..=40000).contains(&v)));
        assert!(out.iter().any(|&v| v > 0));
    }

    #[test]
    fn flat_image_has_empty_histograms() {
        let geo = HogGeometry::new(TEST_W);
        let img = vec![12345i32; TEST_W * TEST_W];
        let out = reference(&img, geo);
        assert!(out.iter().all(|&v| v == 0), "no gradients on a flat image");
    }

    #[test]
    fn trig_tables_consistent() {
        let c = cos_q7();
        let s = sin_q7();
        for k in 0..BINS {
            let mag = c[k] * c[k] + s[k] * s[k];
            assert!((mag - 128 * 128).abs() < 600, "bin {k}: cos²+sin² = {mag}");
        }
        // First bin points near θ=10°: cos > 0, sin > 0, cos > sin.
        assert!(c[0] > s[0] && s[0] > 0);
        // Last bin near 170°: cos < 0.
        assert!(c[BINS - 1] < 0);
    }

    #[test]
    fn geometry() {
        let g = HogGeometry::new(64);
        assert_eq!(g.cells, 16);
        assert_eq!(g.blocks, 15);
        assert_eq!(g.hist_bytes(), 16 * 16 * 9 * 4);
        assert_eq!(g.descriptor_bytes(), 15 * 15 * 36 * 4);
    }
}
