//! Kernel execution harness: runs a [`KernelBuild`] on a host core (flat
//! memory) or on the PULP cluster, and verifies outputs against the golden
//! reference.

use std::error::Error;
use std::fmt;

use ulp_cluster::{Cluster, ClusterActivity, ClusterConfig, ClusterError, L2_BASE};
use ulp_isa::{Core, CoreModel, CoreState, ExecError, FlatMemory};

use crate::codegen::{BufferInit, KernelBuild, TargetEnv};

/// Error raised while running a kernel build.
#[derive(Debug)]
pub enum RunError {
    /// Host-core fault.
    Exec(ExecError),
    /// Cluster fault.
    Cluster(ClusterError),
    /// Memory image problem (program or buffer did not fit).
    Bus(ulp_isa::BusError),
    /// The program did not halt within the cycle budget.
    Timeout,
    /// Simulated outputs disagree with the golden reference.
    OutputMismatch(Vec<String>),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "kernel faulted: {e}"),
            RunError::Cluster(e) => write!(f, "cluster run failed: {e}"),
            RunError::Bus(e) => write!(f, "image load failed: {e}"),
            RunError::Timeout => f.write_str("kernel did not halt within the cycle budget"),
            RunError::OutputMismatch(m) => {
                write!(f, "outputs differ from the reference: {}", m.join("; "))
            }
        }
    }
}

impl Error for RunError {}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> Self {
        RunError::Exec(e)
    }
}
impl From<ClusterError> for RunError {
    fn from(e: ClusterError) -> Self {
        RunError::Cluster(e)
    }
}
impl From<ulp_isa::BusError> for RunError {
    fn from(e: ulp_isa::BusError) -> Self {
        RunError::Bus(e)
    }
}

/// Measured result of a kernel run.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Cycles from start to the end-of-computation event (cluster runs) or
    /// to halt (host runs).
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub retired: u64,
    /// Cluster activity (cluster runs only) for the power model.
    pub activity: Option<ClusterActivity>,
}

/// Default cycle budget for kernel runs.
pub const MAX_KERNEL_CYCLES: u64 = 4_000_000_000;

/// Runs a host/baseline build on a single core over flat memory and
/// verifies its outputs.
///
/// # Errors
///
/// Returns [`RunError`] on faults, timeout, or output mismatch.
pub fn run_on_flat(build: &KernelBuild, model: CoreModel) -> Result<KernelRun, RunError> {
    const CODE_BASE: u32 = 0x2000_0000;
    let mut mem = FlatMemory::new(CODE_BASE, 512 * 1024);
    mem.load_program(&build.program, CODE_BASE)?;
    for buf in &build.buffers {
        match &buf.init {
            BufferInit::Data(d) => mem.write_bytes(buf.addr, d)?,
            BufferInit::Zero => mem.write_bytes(buf.addr, &vec![0u8; buf.len])?,
        }
    }
    let mut core = Core::new(0, model);
    core.reset(CODE_BASE);
    for &(r, v) in &build.args {
        core.set_reg(r, v);
    }
    let summary = core.run(&mut mem, MAX_KERNEL_CYCLES)?;
    if summary.state != CoreState::Halted {
        return Err(RunError::Timeout);
    }
    let mismatches = verify(build, |addr, len| {
        mem.read_bytes(addr, len).map(<[u8]>::to_vec)
    });
    if !mismatches.is_empty() {
        return Err(RunError::OutputMismatch(mismatches));
    }
    Ok(KernelRun {
        cycles: summary.cycles,
        retired: summary.retired,
        activity: None,
    })
}

/// Runs a PULP build on a cluster configured for the build's core count
/// and verifies its outputs. Returns the run measurements.
///
/// # Errors
///
/// Returns [`RunError`] on faults, deadlock, timeout, or output mismatch.
pub fn run_on_cluster(build: &KernelBuild, env: &TargetEnv) -> Result<KernelRun, RunError> {
    let mut cluster = Cluster::new(ClusterConfig {
        num_cores: env.num_cores,
        ..ClusterConfig::default()
    });
    run_on_existing_cluster(build, &mut cluster)
}

/// Like [`run_on_cluster`], reusing a caller-provided cluster (so harnesses
/// can customize the configuration or keep caches warm across iterations).
///
/// # Errors
///
/// Returns [`RunError`] on faults, deadlock, timeout, or output mismatch.
pub fn run_on_existing_cluster(
    build: &KernelBuild,
    cluster: &mut Cluster,
) -> Result<KernelRun, RunError> {
    cluster.load_binary(&build.program, L2_BASE)?;
    // Buffers may live in the TCDM or in L2 (streaming kernels stage
    // their inputs there); route by address.
    let in_l2 = |addr: u32| addr >= 0x1C00_0000;
    for buf in &build.buffers {
        let data_owned;
        let data: &[u8] = match &buf.init {
            BufferInit::Data(d) => d,
            BufferInit::Zero => {
                data_owned = vec![0u8; buf.len];
                &data_owned
            }
        };
        if in_l2(buf.addr) {
            cluster.write_l2(buf.addr, data)?;
        } else {
            cluster.write_tcdm(buf.addr, data)?;
        }
    }
    cluster.start(L2_BASE, &build.args, 0);
    let res = cluster.run_until_halt(MAX_KERNEL_CYCLES)?;
    let mismatches = verify(build, |addr, len| {
        if in_l2(addr) {
            cluster
                .read_l2(addr, len)
                .map_err(|_| ulp_isa::BusError::Unmapped { addr })
        } else {
            cluster
                .read_tcdm(addr, len)
                .map_err(|_| ulp_isa::BusError::Unmapped { addr })
        }
    });
    if !mismatches.is_empty() {
        return Err(RunError::OutputMismatch(mismatches));
    }
    Ok(KernelRun {
        cycles: res.eoc_at.unwrap_or(res.end_time),
        retired: res.activity.total_retired(),
        activity: Some(res.activity),
    })
}

/// Runs a build on whatever its environment implies (cluster for
/// accelerator builds, flat memory otherwise).
///
/// # Errors
///
/// Returns [`RunError`] on any failure (see [`run_on_flat`] /
/// [`run_on_cluster`]).
pub fn run(build: &KernelBuild, env: &TargetEnv) -> Result<KernelRun, RunError> {
    if env.data_base == 0x1000_0000 {
        run_on_cluster(build, env)
    } else {
        run_on_flat(build, env.model)
    }
}

fn verify<E>(build: &KernelBuild, read: impl Fn(u32, usize) -> Result<Vec<u8>, E>) -> Vec<String> {
    let mut mismatches = Vec::new();
    for (idx, expected) in &build.expected {
        let buf = &build.buffers[*idx];
        assert_eq!(
            expected.len(),
            buf.len,
            "golden output length for {}",
            buf.name
        );
        let Ok(actual) = read(buf.addr, buf.len) else {
            mismatches.push(format!("{}: unreadable", buf.name));
            continue;
        };
        if &actual != expected {
            let first = actual
                .iter()
                .zip(expected)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            mismatches.push(format!(
                "{}: first diff at byte {first} (got {:#04x}, want {:#04x})",
                buf.name, actual[first], expected[first]
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::emit::{spmd_kernel, static_chunk};
    use crate::codegen::{DataLayout, KernelBuild};
    use ulp_isa::prelude::*;

    /// Tiny vector-add kernel exercising the whole pipeline: layout,
    /// SPMD harness, chunking, loops, verification.
    fn vec_add_build(env: &TargetEnv, n: usize) -> KernelBuild {
        let xs: Vec<i32> = (0..n as i32).collect();
        let ys: Vec<i32> = (0..n as i32).map(|v| v * 10).collect();
        let expect: Vec<u8> = xs
            .iter()
            .zip(&ys)
            .flat_map(|(x, y)| (x + y).to_le_bytes())
            .collect();

        let mut l = DataLayout::new(env, 64 * 1024);
        let xa = l.input("x", xs.iter().flat_map(|v| v.to_le_bytes()).collect());
        let ya = l.input("y", ys.iter().flat_map(|v| v.to_le_bytes()).collect());
        let oa = l.output("out", n * 4);
        let buffers = l.finish();

        let mut a = Asm::new();
        spmd_kernel(&mut a, env, |a, env| {
            // r3 = x, r4 = y, r5 = out (args); slice rows over cores.
            static_chunk(a, env, n as u32, R10, R11, R12);
            // ptrs = base + start*4
            a.slli(R12, R10, 2);
            a.add(R13, R3, R12);
            a.add(R14, R4, R12);
            a.add(R15, R5, R12);
            a.sub(R16, R11, R10); // trip count
            crate::codegen::emit::counted_loop(a, env, 0, R16, R2, |a| {
                a.lw(R17, R13, 0);
                a.lw(R18, R14, 0);
                a.add(R17, R17, R18);
                a.sw(R17, R15, 0);
                a.addi(R13, R13, 4);
                a.addi(R14, R14, 4);
                a.addi(R15, R15, 4);
            });
        });
        let program = a.finish().unwrap();
        KernelBuild {
            name: format!("vec_add/{}", env.model.name),
            program,
            args: vec![(R3, xa), (R4, ya), (R5, oa)],
            buffers,
            expected: vec![(2, expect)],
        }
    }

    #[test]
    fn vec_add_on_every_target() {
        for env in [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ] {
            let build = vec_add_build(&env, 64);
            let run = run(&build, &env).unwrap_or_else(|e| {
                panic!(
                    "vec_add failed on {} ({} cores): {e}",
                    env.model.name, env.num_cores
                )
            });
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn parallel_run_is_faster_than_single() {
        let n = 512;
        let single = run(
            &vec_add_build(&TargetEnv::pulp_single(), n),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let quad = run(
            &vec_add_build(&TargetEnv::pulp_parallel(), n),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let speedup = single.cycles as f64 / quad.cycles as f64;
        assert!(
            speedup > 2.0 && speedup <= 4.0,
            "vec_add 4-core speedup {speedup:.2} outside (2, 4]"
        );
    }

    #[test]
    fn cluster_activity_collected() {
        let env = TargetEnv::pulp_parallel();
        let run = run_on_cluster(&vec_add_build(&env, 128), &env).unwrap();
        let act = run.activity.unwrap();
        assert_eq!(act.core_active_cycles.len(), 4);
        assert!(act.total_retired() > 0);
        assert!(act.barriers >= 1);
    }

    #[test]
    fn output_mismatch_detected() {
        let env = TargetEnv::baseline();
        let mut build = vec_add_build(&env, 8);
        // Corrupt the golden output.
        build.expected[0].1[0] ^= 0xFF;
        match run(&build, &env) {
            Err(RunError::OutputMismatch(m)) => assert!(m[0].contains("out")),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn baseline_retires_more_than_or10n() {
        // The whole point of the RISC-ops methodology: the featureless
        // baseline retires at least as many instructions.
        let n = 256;
        let base = run(
            &vec_add_build(&TargetEnv::baseline(), n),
            &TargetEnv::baseline(),
        )
        .unwrap();
        let or10n = run(
            &vec_add_build(&TargetEnv::pulp_single(), n),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        assert!(base.retired >= or10n.retired);
        assert!(
            base.cycles > or10n.cycles,
            "hw loops + post-increment must win cycles"
        );
    }
}
