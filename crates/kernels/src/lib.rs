//! # ulp-kernels — the DATE'16 benchmark suite
//!
//! Implements every kernel of the paper's Table I as a pair of:
//!
//! 1. a **bit-exact golden reference** in plain Rust, and
//! 2. a **UIR code generator** producing optimized code for each target
//!    ([`TargetEnv`]): OR10N single/quad-core, Cortex-M4, Cortex-M3, and
//!    the featureless RISC baseline whose retired-instruction count
//!    defines a benchmark's *RISC ops* (paper §IV footnote 1).
//!
//! | kernel | field | data |
//! |---|---|---|
//! | `matmul` (char/short/fixed) | linear algebra | i8 / i16 / Q2.13 |
//! | `strassen` | linear algebra | i8 |
//! | `svm` (linear/poly/RBF) | learning/vision | Q2.13 |
//! | `cnn` (+approx) | learning/vision | Q2.13 |
//! | `hog` | vision | Q16.15 + 64-bit SW accumulation |
//!
//! Beyond Table I, [`streaming`] demonstrates on-cluster DMA double
//! buffering (generated code programs the memory-mapped DMA), and
//! [`codegen::emit`] provides both `schedule(static)` and a lock-based
//! `schedule(dynamic)` work-sharing runtime.
//!
//! Every build carries its input data and the reference-computed expected
//! outputs; the [`runner`] verifies simulation against reference on every
//! run, so the performance numbers are always backed by correct results.
//!
//! # Example
//!
//! ```
//! use ulp_kernels::{Benchmark, TargetEnv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = Benchmark::MatMul.build(&TargetEnv::pulp_single());
//! let run = ulp_kernels::runner::run(&build, &TargetEnv::pulp_single())?;
//! assert!(run.cycles > 0); // outputs already verified against reference
//! # Ok(())
//! # }
//! ```

pub mod cnn;
pub mod codegen;
pub mod fixed;
pub mod hog;
pub mod matmul;
pub mod runner;
pub mod strassen;
pub mod streaming;
pub mod suite;
pub mod svm;

pub use codegen::{Buffer, BufferInit, BufferRole, DataLayout, KernelBuild, TargetEnv};
pub use runner::{run, KernelRun, RunError};
pub use suite::Benchmark;
