//! Convolutional neural network inference (Table I `cnn` / `cnn (approx)`).
//!
//! A small LeNet-class network in Q2.13 fixed point, in the spirit of the
//! CConvNet library the paper extends:
//!
//! ```text
//! input  1×32×32
//! conv1  4 maps, 5×5 ──→ 28×28 ─ maxpool 2×2 ─ tanh ──→ 4×14×14
//! conv2  8 maps, 5×5 over all 4 maps ──→ 10×10 ─ maxpool ─ tanh ──→ 8×5×5
//! fc     10 classes over the 200 pooled activations
//! ```
//!
//! `cnn (approx)` is the paper's *approximated* variant: each conv2 output
//! map connects to only **two** input maps instead of four, cutting the
//! multiply count by ≈40 % (the paper reports 2.6 M vs 3.3 M RISC ops).
//!
//! Implementation notes shared by reference and generated code (bit-exact):
//!
//! * convolutions accumulate `(x·w) >> 13` per product in i32 (fixed-point,
//!   so no MAC/SIMD fusion applies — paper §IV-B), add the bias, truncate
//!   to i16;
//! * max-pooling runs over the truncated conv outputs;
//! * `tanh` is a 512-entry lookup over the full i16 range (±4.0 in Q2.13),
//!   index `= (v + 32768) >> 7` — no clamping needed by construction;
//! * weights and the tanh table are constant data shipped with the binary.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn, MemSize};
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, index_loop, range_loop, spmd_kernel, static_chunk};
use crate::codegen::{DataLayout, KernelBuild, TargetEnv};
use crate::fixed::{q13_mul_wide, tanh_lut_q13};

/// Input image side.
pub const IN_W: usize = 32;
/// conv1 output maps.
pub const C1_MAPS: usize = 4;
/// conv1 pooled side (((32−5+1)/2) = 14).
pub const P1_W: usize = 14;
/// conv2 output maps.
pub const C2_MAPS: usize = 8;
/// conv2 pooled side (((14−5+1)/2) = 5).
pub const P2_W: usize = 5;
/// Classifier outputs.
pub const CLASSES: usize = 10;
/// Kernel side.
pub const K: usize = 5;
/// tanh lookup entries.
pub const TANH_LUT_N: usize = 512;

/// Network parameters (Q2.13).
#[derive(Clone, Debug)]
pub struct CnnParams {
    /// conv1 weights `[map][25]`.
    pub w1: Vec<i16>,
    /// conv1 biases.
    pub b1: Vec<i16>,
    /// conv2 weights `[out_map][in_tap][25]` (4 taps full, 2 approx).
    pub w2: Vec<i16>,
    /// conv2 biases.
    pub b2: Vec<i16>,
    /// fc weights `[class][200]`.
    pub wf: Vec<i16>,
    /// fc biases.
    pub bf: Vec<i16>,
    /// Whether this is the approximated topology.
    pub approx: bool,
}

/// Input taps of conv2 output map `m`: all four maps, or two for the
/// approximated network.
#[must_use]
pub fn conv2_taps(m: usize, approx: bool) -> Vec<usize> {
    if approx {
        vec![m % C1_MAPS, (m + 1) % C1_MAPS]
    } else {
        (0..C1_MAPS).collect()
    }
}

/// Generates network parameters (small weights, realistic activations).
#[must_use]
pub fn generate_params(seed: u64, approx: bool) -> CnnParams {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let taps = if approx { 2 } else { C1_MAPS };
    let mut gen = |n: usize, scale: i16| -> Vec<i16> {
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
    };
    CnnParams {
        w1: gen(C1_MAPS * K * K, 2048),
        b1: gen(C1_MAPS, 1024),
        w2: gen(C2_MAPS * taps * K * K, 1024),
        b2: gen(C2_MAPS, 1024),
        wf: gen(CLASSES * C2_MAPS * P2_W * P2_W, 2048),
        bf: gen(CLASSES, 1024),
        approx,
    }
}

/// Generates a deterministic input image (Q2.13 in (−1, 1)).
#[must_use]
pub fn generate_image(seed: u64) -> Vec<i16> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    (0..IN_W * IN_W)
        .map(|_| rng.gen_range(-8192..8192))
        .collect()
}

fn tanh_idx(v: i16) -> usize {
    ((i32::from(v) + 32768) >> 7) as usize
}

/// Bit-exact reference inference: returns the 10 class scores (i32).
#[must_use]
pub fn reference(image: &[i16], p: &CnnParams, tanh_lut: &[i16]) -> Vec<i32> {
    let conv_out_w1 = IN_W - K + 1; // 28
                                    // conv1 + pool + tanh
    let mut p1 = vec![0i16; C1_MAPS * P1_W * P1_W];
    for m in 0..C1_MAPS {
        for pi in 0..P1_W {
            for pj in 0..P1_W {
                let mut best = i16::MIN;
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let (oi, oj) = (2 * pi + di, 2 * pj + dj);
                    debug_assert!(oi < conv_out_w1 && oj < conv_out_w1);
                    let mut acc = 0i32;
                    for ki in 0..K {
                        for kj in 0..K {
                            acc = acc.wrapping_add(q13_mul_wide(
                                image[(oi + ki) * IN_W + oj + kj],
                                p.w1[m * K * K + ki * K + kj],
                            ));
                        }
                    }
                    acc = acc.wrapping_add(i32::from(p.b1[m]));
                    let v = acc as i16;
                    if v > best {
                        best = v;
                    }
                }
                p1[m * P1_W * P1_W + pi * P1_W + pj] = tanh_lut[tanh_idx(best)];
            }
        }
    }
    // conv2 + pool + tanh
    let mut p2 = vec![0i16; C2_MAPS * P2_W * P2_W];
    for m in 0..C2_MAPS {
        let taps = conv2_taps(m, p.approx);
        for pi in 0..P2_W {
            for pj in 0..P2_W {
                let mut best = i16::MIN;
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let (oi, oj) = (2 * pi + di, 2 * pj + dj);
                    let mut acc = 0i32;
                    for (t, &im) in taps.iter().enumerate() {
                        for ki in 0..K {
                            for kj in 0..K {
                                acc = acc.wrapping_add(q13_mul_wide(
                                    p1[im * P1_W * P1_W + (oi + ki) * P1_W + oj + kj],
                                    p.w2[(m * taps.len() + t) * K * K + ki * K + kj],
                                ));
                            }
                        }
                    }
                    acc = acc.wrapping_add(i32::from(p.b2[m]));
                    let v = acc as i16;
                    if v > best {
                        best = v;
                    }
                }
                p2[m * P2_W * P2_W + pi * P2_W + pj] = tanh_lut[tanh_idx(best)];
            }
        }
    }
    // fully connected
    (0..CLASSES)
        .map(|c| {
            let mut acc = 0i32;
            for (i, &v) in p2.iter().enumerate() {
                acc = acc.wrapping_add(q13_mul_wide(v, p.wf[c * p2.len() + i]));
            }
            acc.wrapping_add(i32::from(p.bf[c]))
        })
        .collect()
}

/// Builds the CNN kernel. `approx` selects the approximated topology.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build(approx: bool, env: &TargetEnv) -> KernelBuild {
    let params = generate_params(0xC0FF_EE00 | u64::from(approx), approx);
    let image = generate_image(0x1111_2222);
    let tanh_lut = tanh_lut_q13(TANH_LUT_N, 4.0);
    let scores = reference(&image, &params, &tanh_lut);
    let expect: Vec<u8> = scores.iter().flat_map(|v| v.to_le_bytes()).collect();

    let le16 = |v: &[i16]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };

    let mut l = DataLayout::new(env, 64 * 1024);
    let in_addr = l.input("image", le16(&image));
    let out_addr = l.output("scores", CLASSES * 4);
    let w1_addr = l.constant("w1", le16(&params.w1));
    let w2_addr = l.constant("w2", le16(&params.w2));
    let b2_addr = l.constant("b2", le16(&params.b2));
    let wf_addr = l.constant("wf", le16(&params.wf));
    let bf_addr = l.constant("bf", le16(&params.bf));
    let lut_addr = l.constant("tanh_lut", le16(&tanh_lut));
    let p1_addr = l.scratch("P1", C1_MAPS * P1_W * P1_W * 2);
    let p2_addr = l.scratch("P2", C2_MAPS * P2_W * P2_W * 2);
    let buffers = l.finish();

    let f = *env.features();
    let taps = if approx { 2 } else { C1_MAPS };

    // Emits a 5×5 convolution accumulation into R17: input top-left in
    // R18 (clobbered), weight pointer in R19 (clobbered), input row
    // stride `stride` bytes. Temps R20-R22, counter R7, scratch R1.
    let emit_conv5x5_reg = |a: &mut Asm, env: &TargetEnv, stride: i16| {
        a.li(R7, K as i32);
        counted_loop(a, env, 0, R7, R1, |a| {
            for kj in 0..K as i16 {
                a.lh(R20, R18, kj * 2);
                if f.post_increment {
                    a.insn(Insn::LoadPi {
                        rd: R21,
                        base: R19,
                        inc: 2,
                        size: MemSize::Half,
                        signed: true,
                    });
                } else {
                    a.lh(R21, R19, kj * 2);
                }
                a.mul(R22, R20, R21);
                a.srai(R22, R22, 13);
                a.add(R17, R17, R22);
            }
            a.addi(R18, R18, stride);
            if !f.post_increment {
                a.addi(R19, R19, (K * 2) as i16);
            }
        });
    };

    // Truncate R17 to i16, max into R24.
    let emit_trunc_max = |a: &mut Asm| {
        a.slli(R17, R17, 16);
        a.srai(R17, R17, 16);
        a.insn(Insn::Max(R24, R24, R17));
    };

    // tanh lookup of R24 into R24.
    let emit_tanh = |a: &mut Asm| {
        a.li(R20, 32768);
        a.add(R24, R24, R20);
        a.srai(R24, R24, 7);
        a.slli(R24, R24, 1);
        a.la(R20, lut_addr);
        a.add(R20, R20, R24);
        a.lh(R24, R20, 0);
    };

    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        // ---- stage 1: conv1 + pool + tanh, rows of P1 work-shared ------
        for m in 0..C1_MAPS {
            static_chunk(a, env, P1_W as u32, R10, R11, R12);
            range_loop(a, R12, R10, R11, |a| {
                index_loop(a, R13, R2, P1_W as u32, |a| {
                    // R23 = image + (2·pi·32 + 2·pj)·2
                    a.slli(R23, R12, 7); // 2·pi·32·2 = pi·128
                    a.slli(R20, R13, 2); // 2·pj·2 = pj·4
                    a.add(R23, R23, R20);
                    a.add(R23, R23, R3); // R3 = image
                    a.li(R24, i32::from(i16::MIN));
                    for (di, dj) in [(0i16, 0i16), (0, 1), (1, 0), (1, 1)] {
                        a.li(R17, i32::from(params.b1[m]));
                        a.mv(R18, R23);
                        let off = di * (IN_W as i16) * 2 + dj * 2;
                        if off != 0 {
                            a.addi(R18, R18, off);
                        }
                        a.la(R19, w1_addr + (m * K * K * 2) as u32);
                        emit_conv5x5_reg(a, env, (IN_W * 2) as i16);
                        emit_trunc_max(a);
                    }
                    emit_tanh(a);
                    // store to P1[m][pi][pj]
                    a.li(R20, (P1_W * 2) as i32);
                    a.mul(R20, R12, R20);
                    a.slli(R21, R13, 1);
                    a.add(R20, R20, R21);
                    a.la(R21, p1_addr + (m * P1_W * P1_W * 2) as u32);
                    a.add(R20, R20, R21);
                    a.sh(R24, R20, 0);
                });
            });
        }
        if env.is_parallel() {
            a.barrier();
        }

        // ---- stage 2: conv2 + pool + tanh, output maps work-shared -----
        //
        // All cores execute the same code with runtime-indexed weights and
        // taps (a per-map unrolled dispatch would make the cores run
        // disjoint code regions and thrash the shared instruction cache).
        static_chunk(a, env, C2_MAPS as u32, R10, R11, R12);
        range_loop(a, R12, R10, R11, |a| {
            // R27 = weight base for map m; R9 = bias for map m.
            a.li(R20, (taps * K * K * 2) as i32);
            a.mul(R27, R12, R20);
            a.la(R20, w2_addr);
            a.add(R27, R27, R20);
            a.slli(R20, R12, 1);
            a.la(R21, b2_addr);
            a.add(R20, R20, R21);
            a.lh(R9, R20, 0);
            index_loop(a, R13, R2, P2_W as u32, |a| {
                index_loop(a, R25, R26, P2_W as u32, |a| {
                    // R23 = (2·pi·14 + 2·pj)·2 relative offset
                    a.li(R23, (P1_W * 4) as i32);
                    a.mul(R23, R13, R23);
                    a.slli(R20, R25, 2);
                    a.add(R23, R23, R20);
                    a.li(R24, i32::from(i16::MIN));
                    for (di, dj) in [(0i16, 0i16), (0, 1), (1, 0), (1, 1)] {
                        a.mv(R17, R9); // acc = bias
                        for t in 0..taps {
                            // in-map index: t (full) or (m + t) & 3 (approx)
                            if approx {
                                a.addi(R20, R12, t as i16);
                                a.insn(Insn::Andi(R20, R20, 3));
                            } else {
                                a.li(R20, t as i32);
                            }
                            a.li(R21, (P1_W * P1_W * 2) as i32);
                            a.mul(R20, R20, R21);
                            a.la(R18, p1_addr);
                            a.add(R18, R18, R20);
                            a.add(R18, R18, R23);
                            let off = di * (P1_W as i16) * 2 + dj * 2;
                            if off != 0 {
                                a.addi(R18, R18, off);
                            }
                            a.addi(R19, R27, (t * K * K * 2) as i16);
                            emit_conv5x5_reg(a, env, (P1_W * 2) as i16);
                        }
                        emit_trunc_max(a);
                    }
                    emit_tanh(a);
                    // store to P2[m][pi][pj]
                    a.li(R20, (P2_W * P2_W * 2) as i32);
                    a.mul(R20, R12, R20);
                    a.li(R21, (P2_W * 2) as i32);
                    a.mul(R21, R13, R21);
                    a.add(R20, R20, R21);
                    a.slli(R21, R25, 1);
                    a.add(R20, R20, R21);
                    a.la(R21, p2_addr);
                    a.add(R20, R20, R21);
                    a.sh(R24, R20, 0);
                });
            });
        });
        if env.is_parallel() {
            a.barrier();
        }

        // ---- stage 3: fully connected, classes work-shared -------------
        let fc_in = C2_MAPS * P2_W * P2_W;
        static_chunk(a, env, CLASSES as u32, R10, R11, R12);
        range_loop(a, R12, R10, R11, |a| {
            // acc = bias[c] (loaded from the bias table)
            a.slli(R20, R12, 1);
            a.la(R21, bf_addr);
            a.add(R21, R21, R20);
            a.lh(R17, R21, 0);
            // w_ptr = wf + c·fc_in·2 ; in_ptr = P2
            a.li(R20, (fc_in * 2) as i32);
            a.mul(R20, R12, R20);
            a.la(R19, wf_addr);
            a.add(R19, R19, R20);
            a.la(R18, p2_addr);
            a.li(R7, fc_in as i32);
            counted_loop(a, env, 0, R7, R1, |a| {
                if f.post_increment {
                    a.insn(Insn::LoadPi {
                        rd: R20,
                        base: R18,
                        inc: 2,
                        size: MemSize::Half,
                        signed: true,
                    });
                    a.insn(Insn::LoadPi {
                        rd: R21,
                        base: R19,
                        inc: 2,
                        size: MemSize::Half,
                        signed: true,
                    });
                } else {
                    a.lh(R20, R18, 0);
                    a.lh(R21, R19, 0);
                    a.addi(R18, R18, 2);
                    a.addi(R19, R19, 2);
                }
                a.mul(R22, R20, R21);
                a.srai(R22, R22, 13);
                a.add(R17, R17, R22);
            });
            a.slli(R20, R12, 2);
            a.add(R20, R20, R5); // R5 = scores
            a.sw(R17, R20, 0);
        });
    });
    let program = asm.finish().expect("cnn generator emits valid code");

    KernelBuild {
        name: format!(
            "cnn{}[{}]",
            if approx { " (approx)" } else { "" },
            env.model.name
        ),
        program,
        args: vec![(R3, in_addr), (R5, out_addr)],
        buffers,
        expected: vec![(1, expect)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    fn all_envs() -> [TargetEnv; 5] {
        [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ]
    }

    #[test]
    fn full_cnn_correct_on_all_targets() {
        for env in all_envs() {
            let b = build(false, &env);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn approx_cnn_correct_on_all_targets() {
        for env in all_envs() {
            let b = build(true, &env);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn table1_io_sizes() {
        let b = build(false, &TargetEnv::pulp_single());
        assert_eq!(b.input_bytes(), 2048, "2 kB input image");
        assert_eq!(b.output_bytes(), 40, "40 B of class scores");
    }

    #[test]
    fn approx_cuts_multiplies() {
        // Paper: 3.3M vs 2.6M RISC ops (≈21% fewer). Ours cuts conv2 taps
        // from 4 to 2.
        let env = TargetEnv::baseline();
        let full = run(&build(false, &env), &env).unwrap().retired;
        let approx = run(&build(true, &env), &env).unwrap().retired;
        let ratio = approx as f64 / full as f64;
        assert!(
            (0.55..0.95).contains(&ratio),
            "approx/full op ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn conv2_tap_topology() {
        assert_eq!(conv2_taps(0, false), vec![0, 1, 2, 3]);
        assert_eq!(conv2_taps(3, true), vec![3, 0]);
        assert_eq!(conv2_taps(7, true), vec![3, 0]);
    }

    #[test]
    fn fixed_point_arch_speedup_band() {
        let m4 = run(&build(false, &TargetEnv::host_m4()), &TargetEnv::host_m4()).unwrap();
        let or10n = run(
            &build(false, &TargetEnv::pulp_single()),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let s = m4.cycles as f64 / or10n.cycles as f64;
        assert!(
            (0.9..2.2).contains(&s),
            "cnn arch speedup {s:.2} outside fixed-point band"
        );
    }

    #[test]
    fn parallel_speedup_band() {
        let single = run(
            &build(false, &TargetEnv::pulp_single()),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let quad = run(
            &build(false, &TargetEnv::pulp_parallel()),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let s = single.cycles as f64 / quad.cycles as f64;
        // conv2 map-parallelism and the 10-class fc leave some imbalance.
        assert!((2.5..4.0).contains(&s), "cnn 4-core speedup {s:.2}");
    }

    #[test]
    fn scores_depend_on_input() {
        let p = generate_params(1, false);
        let lut = tanh_lut_q13(TANH_LUT_N, 4.0);
        let s1 = reference(&generate_image(1), &p, &lut);
        let s2 = reference(&generate_image(2), &p, &lut);
        assert_ne!(s1, s2);
        assert_eq!(s1.len(), CLASSES);
    }
}
