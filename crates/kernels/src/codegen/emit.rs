//! Structured emission helpers: SPMD fork/join harness, counted loops,
//! static work distribution.
//!
//! The SPMD harness is the streamlined OpenMP runtime of the paper in
//! generated-code form: a `#pragma omp parallel` region becomes
//!
//! * master (core 0): serial prologue → `sev`-broadcast to release the
//!   team (fork) → its chunk of the work-shared loop → HW barrier (join)
//!   → serial epilogue → end-of-computation event → halt;
//! * workers: `wfe` in the idle pool → their chunk → HW barrier → halt.
//!
//! The measured gap between ideal and actual 4-core speedup therefore has
//! exactly the paper's two components: Amdahl serial sections and the
//! runtime's fork/join/barrier overhead (reported at ≈6 % on average).

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Csr, Insn, Label, Reg};

use super::{TargetEnv, CORE_ID_REG};

/// Event id of the end-of-computation wire (shared constant with
/// `ulp_cluster::EVT_EOC`).
pub const EVT_EOC: u8 = 0;
/// Event id of the broadcast wake (shared constant with
/// `ulp_cluster::EVT_BROADCAST`).
pub const EVT_BROADCAST: u8 = 33;

/// Wraps `body` in the SPMD fork/join harness appropriate for the target.
///
/// `body` receives the assembler and must leave the core-id register
/// ([`CORE_ID_REG`]) intact; it runs on every core. Phase changes inside
/// the body synchronize with [`Asm::barrier`] directly.
///
/// For `num_cores == 1` no harness is emitted: the body runs serially and
/// the end-of-computation event is still raised (host offload needs it).
pub fn spmd_kernel(a: &mut Asm, env: &TargetEnv, body: impl FnOnce(&mut Asm, &TargetEnv)) {
    if env.is_parallel() {
        let worker = a.new_label();
        let begin = a.new_label();
        a.insn(Insn::Csrr(CORE_ID_REG, Csr::CoreId));
        a.bne(CORE_ID_REG, R0, worker);
        // Master: release the sleeping team (fork).
        a.sev(EVT_BROADCAST);
        a.jmp(begin);
        // Workers: sleep in the pool until the master forks.
        a.bind(worker);
        a.wfe();
        a.bind(begin);
        body(a, env);
        // Join barrier, then the master signals the host.
        a.barrier();
        let not_master = a.new_label();
        a.bne(CORE_ID_REG, R0, not_master);
        a.sev(EVT_EOC);
        a.bind(not_master);
        a.halt();
    } else {
        // Serial code: core id is constant zero.
        a.insn(Insn::Csrr(CORE_ID_REG, Csr::CoreId));
        body(a, env);
        a.sev(EVT_EOC);
        a.halt();
    }
}

/// Computes this core's `[start, end)` slice of `0..n` into
/// `start_reg`/`end_reg` using a static (compile-time chunk size) schedule,
/// the OpenMP `schedule(static)` of the runtime.
///
/// Uses `tmp` as scratch. With one core it degenerates to `0..n`.
pub fn static_chunk(a: &mut Asm, env: &TargetEnv, n: u32, start_reg: Reg, end_reg: Reg, tmp: Reg) {
    if env.num_cores <= 1 {
        a.li(start_reg, 0);
        a.li(end_reg, n as i32);
        return;
    }
    let chunk = n.div_ceil(env.num_cores as u32);
    a.li(tmp, chunk as i32);
    a.mul(start_reg, CORE_ID_REG, tmp);
    a.add(end_reg, start_reg, tmp);
    a.li(tmp, n as i32);
    a.insn(Insn::Min(end_reg, end_reg, tmp));
    // start may exceed n when n < cores·chunk; clamp.
    a.insn(Insn::Min(start_reg, start_reg, tmp));
}

/// Emits a loop executing `body` the number of times held in `count`
/// (runtime value, may be zero). Uses a zero-overhead hardware loop when
/// the target has one (`hw_idx` selects the loop unit, 0 = innermost),
/// otherwise a decrement-and-branch software loop on `scratch`.
///
/// The body must not clobber `scratch` (software-loop case) and must emit
/// at least two instructions when hardware loops are in use.
pub fn counted_loop(
    a: &mut Asm,
    env: &TargetEnv,
    hw_idx: u8,
    count: Reg,
    scratch: Reg,
    body: impl FnOnce(&mut Asm),
) {
    if env.features().hw_loops {
        a.hw_loop(hw_idx, count, body);
    } else {
        let end = a.new_label();
        let top = a.new_label();
        a.beq(count, R0, end);
        a.mv(scratch, count);
        a.bind(top);
        body(a);
        a.addi(scratch, scratch, -1);
        a.bne(scratch, R0, top);
        a.bind(end);
    }
}

/// [`counted_loop`] with a compile-time trip count loaded into `count_reg`.
pub fn counted_loop_const(
    a: &mut Asm,
    env: &TargetEnv,
    hw_idx: u8,
    n: u32,
    count_reg: Reg,
    scratch: Reg,
    body: impl FnOnce(&mut Asm),
) {
    a.li(count_reg, n as i32);
    counted_loop(a, env, hw_idx, count_reg, scratch, body);
}

/// Emits a loop over `start..end` register range: `idx` runs from `start`
/// (inclusive) to `end` (exclusive). Software loop only (range loops drive
/// outer dimensions where the HW loop's fixed count does not fit).
///
/// The body must preserve `idx` and `end`.
pub fn range_loop(a: &mut Asm, idx: Reg, start: Reg, end: Reg, body: impl FnOnce(&mut Asm)) {
    let done = a.new_label();
    let top = a.new_label();
    a.mv(idx, start);
    a.bge(idx, end, done);
    a.bind(top);
    body(a);
    a.addi(idx, idx, 1);
    a.blt(idx, end, top);
    a.bind(done);
}

/// Emits an OpenMP `schedule(dynamic, 1)` work-shared loop: every core
/// repeatedly claims the next undone item of `0..n` from a shared counter
/// in TCDM and runs `body` with the item index in `idx`.
///
/// The counter lives at `queue_addr` (8 bytes: a test-and-set lock word
/// followed by the next-item counter, both zero-initialised). Claiming an
/// item costs a lock/fetch/increment/unlock sequence (~10 cycles plus
/// contention) — the classic dynamic-scheduling overhead that static
/// chunking avoids, now measurable in simulation.
///
/// Register contract: `idx` receives the item; `t0`, `t1` are clobbered
/// (`t1` holds the lock address across the body, so the body must
/// preserve it). The body must preserve `idx` only until it finishes
/// using it.
#[allow(clippy::too_many_arguments)]
pub fn dynamic_loop(
    a: &mut Asm,
    _env: &TargetEnv,
    queue_addr: u32,
    n: u32,
    idx: Reg,
    t0: Reg,
    t1: Reg,
    body: impl FnOnce(&mut Asm),
) {
    let claim = a.new_label();
    let retry = a.new_label();
    let done = a.new_label();
    a.la(t1, queue_addr);
    a.bind(claim);
    // Acquire the queue lock.
    a.bind(retry);
    a.insn(Insn::Tas(t0, t1));
    a.bne(t0, R0, retry);
    // idx = counter++ under the lock.
    a.lw(idx, t1, 4);
    a.addi(t0, idx, 1);
    a.sw(t0, t1, 4);
    a.sw(R0, t1, 0); // release
                     // Past the end? Then this core is done.
    a.li(t0, n as i32);
    a.bge(idx, t0, done);
    body(a);
    a.jmp(claim);
    a.bind(done);
}

/// Emits a loop with a live index register: `idx` counts `0..n`
/// (compile-time bound). `tmp` holds the bound for the comparison; the
/// body must preserve both. Software loop on every target (the index is
/// needed as a value, which the HW-loop counter does not expose).
pub fn index_loop(a: &mut Asm, idx: Reg, tmp: Reg, n: u32, body: impl FnOnce(&mut Asm)) {
    if n == 0 {
        return;
    }
    a.li(idx, 0);
    a.li(tmp, n as i32);
    let top = a.new_label();
    a.bind(top);
    body(a);
    a.addi(idx, idx, 1);
    a.blt(idx, tmp, top);
}

/// Loads `rd = mem[base + idx*scale]` address computation: `rd = base +
/// (idx << log2_scale)` using `rd` as its own scratch.
pub fn addr_of(a: &mut Asm, rd: Reg, base: Reg, idx: Reg, log2_scale: u8) {
    if log2_scale == 0 {
        a.add(rd, base, idx);
    } else {
        a.slli(rd, idx, log2_scale);
        a.add(rd, rd, base);
    }
}

/// Returns the label binding used by tests to ensure helpers compose; also
/// a convenience for forward jumps in generators.
pub fn forward(a: &mut Asm) -> Label {
    a.new_label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::prelude::*;
    use ulp_isa::CoreState;

    fn run_serial(env: &TargetEnv, build: impl FnOnce(&mut Asm)) -> (Core, FlatMemory) {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let prog = a.finish().expect("assembles");
        let mut mem = FlatMemory::new(0x2000_0000, 256 * 1024);
        mem.load_program(&prog, 0x2000_0000).unwrap();
        let mut core = Core::new(0, env.model);
        core.reset(0x2000_0000);
        core.run(&mut mem, 100_000_000).unwrap();
        assert_eq!(core.state(), CoreState::Halted);
        (core, mem)
    }

    #[test]
    fn counted_loop_sw_and_hw_agree() {
        for env in [TargetEnv::baseline(), TargetEnv::pulp_single()] {
            let (core, _) = run_serial(&env, |a| {
                a.li(R10, 0);
                counted_loop_const(a, &env, 0, 17, R1, R2, |a| {
                    a.addi(R10, R10, 3);
                    a.nop();
                });
            });
            assert_eq!(core.reg(R10), 51, "on {}", env.model.name);
        }
    }

    #[test]
    fn counted_loop_zero_trip() {
        for env in [TargetEnv::baseline(), TargetEnv::pulp_single()] {
            let (core, _) = run_serial(&env, |a| {
                a.li(R10, 7);
                counted_loop_const(a, &env, 0, 0, R1, R2, |a| {
                    a.li(R10, 999);
                    a.nop();
                });
            });
            assert_eq!(
                core.reg(R10),
                7,
                "zero-trip body must not run on {}",
                env.model.name
            );
        }
    }

    #[test]
    fn nested_counted_loops() {
        for env in [TargetEnv::baseline(), TargetEnv::pulp_single()] {
            let (core, _) = run_serial(&env, |a| {
                a.li(R10, 0);
                counted_loop_const(a, &env, 1, 5, R1, R2, |a| {
                    a.nop();
                    counted_loop_const(a, &env, 0, 3, R3, R4, |a| {
                        a.addi(R10, R10, 1);
                        a.nop();
                    });
                });
            });
            assert_eq!(core.reg(R10), 15, "on {}", env.model.name);
        }
    }

    #[test]
    fn range_loop_sums_indices() {
        let env = TargetEnv::baseline();
        let (core, _) = run_serial(&env, |a| {
            a.li(R11, 2);
            a.li(R12, 7);
            a.li(R10, 0);
            range_loop(a, R13, R11, R12, |a| {
                a.add(R10, R10, R13);
            });
        });
        assert_eq!(core.reg(R10), 2 + 3 + 4 + 5 + 6);
    }

    #[test]
    fn range_loop_empty_when_start_ge_end() {
        let env = TargetEnv::baseline();
        let (core, _) = run_serial(&env, |a| {
            a.li(R11, 7);
            a.li(R12, 7);
            a.li(R10, 42);
            range_loop(a, R13, R11, R12, |a| {
                a.li(R10, 0);
            });
        });
        assert_eq!(core.reg(R10), 42);
    }

    #[test]
    fn static_chunk_serial_covers_all() {
        let env = TargetEnv::pulp_single();
        let (core, _) = run_serial(&env, |a| {
            a.insn(Insn::Csrr(CORE_ID_REG, Csr::CoreId));
            static_chunk(a, &env, 64, R10, R11, R12);
        });
        assert_eq!(core.reg(R10), 0);
        assert_eq!(core.reg(R11), 64);
    }

    #[test]
    fn static_chunk_partitions_exactly() {
        // Simulate the chunk computation on 4 cores for n = 64 and an
        // uneven n = 10.
        for (n, cores) in [(64u32, 4usize), (10, 4), (3, 4), (1, 4)] {
            let env = TargetEnv::pulp_with_cores(cores);
            let chunk = n.div_ceil(cores as u32);
            let mut covered = vec![false; n as usize];
            for id in 0..cores as u32 {
                let start = (id * chunk).min(n);
                let end = (start + chunk).min(n);
                for i in start..end {
                    assert!(!covered[i as usize], "overlap at {i} (n={n})");
                    covered[i as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "gap for n={n} cores={cores}");
            let _ = env;
        }
    }

    /// Builds a deliberately imbalanced workload: item `i` performs `i·8`
    /// additions into `out[i]`. Compares `schedule(static)` against
    /// `schedule(dynamic)`.
    fn imbalanced_build(
        env: &TargetEnv,
        dynamic: bool,
        n: u32,
        per_item: u32,
    ) -> crate::KernelBuild {
        use crate::codegen::DataLayout;
        let mut l = DataLayout::new(env, 64 * 1024);
        let queue = l.scratch("queue", 8);
        let out = l.output("out", n as usize * 4);
        let buffers = l.finish();
        let expect: Vec<u8> = (0..n)
            .flat_map(|i| (3 * i * per_item).to_le_bytes())
            .collect();

        let mut a = Asm::new();
        spmd_kernel(&mut a, env, |a, env| {
            let body = |a: &mut Asm| {
                // acc(R15) = 3 · idx · per_item via a unit-work loop.
                a.li(R15, 0);
                a.li(R16, per_item as i32);
                a.mul(R16, R12, R16);
                let top = a.new_label();
                let skip = a.new_label();
                a.beq(R16, R0, skip);
                a.bind(top);
                a.addi(R15, R15, 3);
                a.addi(R16, R16, -1);
                a.bne(R16, R0, top);
                a.bind(skip);
                a.slli(R17, R12, 2);
                a.add(R17, R17, R3); // R3 = out
                a.sw(R15, R17, 0);
            };
            if dynamic {
                dynamic_loop(a, env, queue, n, R12, R13, R14, body);
            } else {
                static_chunk(a, env, n, R10, R11, R13);
                range_loop(a, R12, R10, R11, body);
            }
        });
        crate::KernelBuild {
            name: format!("imbalanced/{}", if dynamic { "dynamic" } else { "static" }),
            program: a.finish().unwrap(),
            args: vec![(R3, out)],
            buffers,
            expected: vec![(1, expect)],
        }
    }

    #[test]
    fn dynamic_schedule_balances_triangular_work() {
        let env = TargetEnv::pulp_parallel();
        let stat = crate::runner::run(&imbalanced_build(&env, false, 32, 64), &env).unwrap();
        let dyn_ = crate::runner::run(&imbalanced_build(&env, true, 32, 64), &env).unwrap();
        // Static chunking hands the heavy tail (items 24..32) to one core;
        // the dynamic queue balances it.
        assert!(
            (dyn_.cycles as f64) < stat.cycles as f64 * 0.75,
            "dynamic {} should clearly beat static {} on triangular work",
            dyn_.cycles,
            stat.cycles
        );
    }

    #[test]
    fn static_schedule_wins_on_uniform_tiny_items() {
        // With uniform unit-work items, the dynamic queue's lock traffic
        // is pure overhead.
        let env = TargetEnv::pulp_parallel();
        let mk = |dynamic: bool| {
            use crate::codegen::DataLayout;
            let mut l = DataLayout::new(&env, 64 * 1024);
            let queue = l.scratch("queue", 8);
            let out = l.output("out", 64 * 4);
            let buffers = l.finish();
            let expect: Vec<u8> = (0..64u32).flat_map(|i| (i * 2).to_le_bytes()).collect();
            let mut a = Asm::new();
            spmd_kernel(&mut a, &env, |a, env| {
                let body = |a: &mut Asm| {
                    a.slli(R17, R12, 1);
                    a.slli(R16, R12, 2);
                    a.add(R16, R16, R3);
                    a.sw(R17, R16, 0);
                };
                if dynamic {
                    dynamic_loop(a, env, queue, 64, R12, R13, R14, body);
                } else {
                    static_chunk(a, env, 64, R10, R11, R13);
                    range_loop(a, R12, R10, R11, body);
                }
            });
            crate::KernelBuild {
                name: "uniform".into(),
                program: a.finish().unwrap(),
                args: vec![(R3, out)],
                buffers,
                expected: vec![(1, expect)],
            }
        };
        let stat = crate::runner::run(&mk(false), &env).unwrap();
        let dyn_ = crate::runner::run(&mk(true), &env).unwrap();
        assert!(
            stat.cycles < dyn_.cycles,
            "static {} must beat dynamic {} on uniform tiny items",
            stat.cycles,
            dyn_.cycles
        );
    }

    #[test]
    fn dynamic_schedule_correct_on_single_core() {
        let env = TargetEnv::pulp_single();
        crate::runner::run(&imbalanced_build(&env, true, 16, 8), &env).unwrap();
    }

    #[test]
    fn addr_of_scales() {
        let env = TargetEnv::baseline();
        let (core, _) = run_serial(&env, |a| {
            a.li(R11, 0x1000);
            a.li(R12, 5);
            addr_of(a, R10, R11, R12, 2);
            addr_of(a, R13, R11, R12, 0);
        });
        assert_eq!(core.reg(R10), 0x1000 + 20);
        assert_eq!(core.reg(R13), 0x1000 + 5);
    }
}
