//! Kernel code generation: targets, data layout, and build products.
//!
//! Each benchmark ships a *code generator* that lowers the kernel to UIR
//! for a concrete [`TargetEnv`] — the role the OR10N LLVM and ARM GCC
//! toolchains play in the paper. The generator consults the target's
//! feature set exactly as a compiler consults `-m` flags: it emits
//! `sdot.v4` inner loops on OR10N, `smlal` accumulation on Cortex-M4,
//! plain RISC sequences on the baseline, hardware or software loops, and
//! post-increment or explicit pointer bumps.
//!
//! # Register conventions
//!
//! | register | use |
//! |---|---|
//! | `r1`, `r2` | software-loop counters, rtlib scratch |
//! | `r3`–`r9`  | kernel arguments (buffer addresses, parameters) |
//! | `r10`–`r27`| kernel temporaries |
//! | `r28`      | core id (set by the SPMD harness) |
//! | `r29`      | harness scratch |
//! | `r31`      | link register for rtlib calls |

pub mod emit;
pub mod rtlib;

use ulp_isa::{CoreModel, Features, Program, Reg};

/// Conventional register holding the core id inside kernels.
pub const CORE_ID_REG: Reg = Reg::new(28);

/// A compilation target: microarchitecture + memory layout + parallelism.
#[derive(Clone, Copy, Debug)]
pub struct TargetEnv {
    /// Core microarchitecture the code must run on.
    pub model: CoreModel,
    /// Number of cores the kernel is parallelized over (1 = serial code,
    /// no fork/join harness).
    pub num_cores: usize,
    /// Base address where kernel data buffers are laid out (TCDM base on
    /// the accelerator, SRAM data base on the host).
    pub data_base: u32,
}

impl TargetEnv {
    /// The quad-core PULP cluster (parallel OpenMP-style code).
    #[must_use]
    pub fn pulp_parallel() -> Self {
        TargetEnv {
            model: CoreModel::or10n(),
            num_cores: 4,
            data_base: ulp_cluster_tcdm_base(),
        }
    }

    /// A single OR10N core (the paper's Fig. 4-left configuration).
    #[must_use]
    pub fn pulp_single() -> Self {
        TargetEnv {
            model: CoreModel::or10n(),
            num_cores: 1,
            data_base: ulp_cluster_tcdm_base(),
        }
    }

    /// A PULP cluster with an arbitrary core count (scaling studies).
    #[must_use]
    pub fn pulp_with_cores(num_cores: usize) -> Self {
        TargetEnv {
            model: CoreModel::or10n(),
            num_cores,
            data_base: ulp_cluster_tcdm_base(),
        }
    }

    /// Host Cortex-M4.
    #[must_use]
    pub fn host_m4() -> Self {
        TargetEnv {
            model: CoreModel::cortex_m4(),
            num_cores: 1,
            data_base: host_data_base(),
        }
    }

    /// Host Cortex-M3 (the paper's "M4 flags deactivated" estimate).
    #[must_use]
    pub fn host_m3() -> Self {
        TargetEnv {
            model: CoreModel::cortex_m3(),
            num_cores: 1,
            data_base: host_data_base(),
        }
    }

    /// The RISC-ops reference core (paper footnote 1).
    #[must_use]
    pub fn baseline() -> Self {
        TargetEnv {
            model: CoreModel::risc_baseline(),
            num_cores: 1,
            data_base: host_data_base(),
        }
    }

    /// The target's ISA feature set.
    #[must_use]
    pub fn features(&self) -> &Features {
        &self.model.features
    }

    /// Whether the SPMD fork/join harness is required.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.num_cores > 1
    }
}

// Address constants duplicated from ulp-cluster / ulp-mcu to keep this
// crate's dependency surface minimal; asserted equal in integration tests.
fn ulp_cluster_tcdm_base() -> u32 {
    0x1000_0000
}
fn host_data_base() -> u32 {
    0x2001_0000
}

/// How a buffer's contents come to exist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BufferInit {
    /// Filled with concrete bytes before the run (inputs, constants).
    Data(Vec<u8>),
    /// Zero-initialized (outputs, scratch).
    Zero,
}

/// What a buffer means to the offload runtime (drives what is transferred
/// over the SPI link and when).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufferRole {
    /// Fresh input data, transferred host → accelerator every iteration.
    Input,
    /// Constant data (weights, lookup tables): transferred once with the
    /// binary, counted in the offload binary size.
    Const,
    /// Results, transferred accelerator → host every iteration.
    Output,
    /// Accelerator-private scratch (never transferred).
    Scratch,
}

/// A named data region used by a kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Buffer {
    /// Name for diagnostics ("A", "weights", …).
    pub name: &'static str,
    /// Absolute address in the target's data region.
    pub addr: u32,
    /// Length in bytes.
    pub len: usize,
    /// Initial contents.
    pub init: BufferInit,
    /// Transfer semantics.
    pub role: BufferRole,
}

/// Sequential allocator for kernel buffers in the target data region.
#[derive(Clone, Debug)]
pub struct DataLayout {
    next: u32,
    limit: u32,
    buffers: Vec<Buffer>,
}

impl DataLayout {
    /// Starts laying out buffers at the target's data base. `capacity` is
    /// the size of the data region (TCDM size on the accelerator).
    #[must_use]
    pub fn new(env: &TargetEnv, capacity: usize) -> Self {
        DataLayout {
            next: env.data_base,
            limit: env.data_base + capacity as u32,
            buffers: vec![],
        }
    }

    fn alloc(&mut self, name: &'static str, len: usize, init: BufferInit, role: BufferRole) -> u32 {
        // Word-align every buffer (the SIMD loads require it).
        self.next = (self.next + 3) & !3;
        let addr = self.next;
        assert!(
            addr + len as u32 <= self.limit,
            "buffer {name} ({len} B) overflows the data region at {addr:#x} (limit {:#x})",
            self.limit
        );
        self.next += len as u32;
        self.buffers.push(Buffer {
            name,
            addr,
            len,
            init,
            role,
        });
        addr
    }

    /// Allocates an input buffer with concrete data.
    pub fn input(&mut self, name: &'static str, data: Vec<u8>) -> u32 {
        let len = data.len();
        self.alloc(name, len, BufferInit::Data(data), BufferRole::Input)
    }

    /// Allocates a constant buffer (weights, LUTs).
    pub fn constant(&mut self, name: &'static str, data: Vec<u8>) -> u32 {
        let len = data.len();
        self.alloc(name, len, BufferInit::Data(data), BufferRole::Const)
    }

    /// Allocates a zeroed output buffer.
    pub fn output(&mut self, name: &'static str, len: usize) -> u32 {
        self.alloc(name, len, BufferInit::Zero, BufferRole::Output)
    }

    /// Allocates accelerator-private scratch.
    pub fn scratch(&mut self, name: &'static str, len: usize) -> u32 {
        self.alloc(name, len, BufferInit::Zero, BufferRole::Scratch)
    }

    /// Finalizes the layout.
    #[must_use]
    pub fn finish(self) -> Vec<Buffer> {
        self.buffers
    }

    /// Bytes allocated so far.
    #[must_use]
    pub fn used(&self) -> usize {
        (self.next - self.buffers.first().map_or(self.next, |b| b.addr)) as usize
    }
}

/// A fully built kernel: program, data, and golden outputs.
#[derive(Clone, Debug)]
pub struct KernelBuild {
    /// Kernel name (Table I row).
    pub name: String,
    /// The generated UIR program.
    pub program: Program,
    /// Initial register arguments (buffer addresses, parameters).
    pub args: Vec<(Reg, u32)>,
    /// Data buffers (inputs with data, outputs zeroed).
    pub buffers: Vec<Buffer>,
    /// Expected output contents: `(buffer index, bytes)`, computed by the
    /// bit-exact reference implementation.
    pub expected: Vec<(usize, Vec<u8>)>,
}

impl KernelBuild {
    /// Total bytes of [`BufferRole::Input`] buffers (Table I "Input").
    #[must_use]
    pub fn input_bytes(&self) -> usize {
        self.role_bytes(BufferRole::Input)
    }

    /// Total bytes of [`BufferRole::Output`] buffers (Table I "Output").
    #[must_use]
    pub fn output_bytes(&self) -> usize {
        self.role_bytes(BufferRole::Output)
    }

    /// Total bytes of [`BufferRole::Const`] buffers.
    #[must_use]
    pub fn const_bytes(&self) -> usize {
        self.role_bytes(BufferRole::Const)
    }

    /// Offload binary size: text + rodata + constant data (weights and
    /// LUTs ship with the binary — Table I "Binary Size").
    #[must_use]
    pub fn offload_binary_bytes(&self) -> usize {
        self.program.binary_size() + self.const_bytes()
    }

    fn role_bytes(&self, role: BufferRole) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.role == role)
            .map(|b| b.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_presets() {
        assert_eq!(TargetEnv::pulp_parallel().num_cores, 4);
        assert!(TargetEnv::pulp_parallel().is_parallel());
        assert!(!TargetEnv::pulp_single().is_parallel());
        assert!(TargetEnv::host_m4().features().mul64);
        assert!(!TargetEnv::baseline().features().mac);
        assert_eq!(TargetEnv::pulp_single().data_base, 0x1000_0000);
        assert_eq!(TargetEnv::host_m4().data_base, 0x2001_0000);
    }

    #[test]
    fn layout_allocates_aligned_and_ordered() {
        let env = TargetEnv::pulp_single();
        let mut l = DataLayout::new(&env, 64 * 1024);
        let a = l.input("a", vec![1, 2, 3]); // 3 bytes, next aligns
        let b = l.output("b", 8);
        assert_eq!(a, 0x1000_0000);
        assert_eq!(b % 4, 0);
        assert!(b > a);
        let bufs = l.finish();
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].role, BufferRole::Input);
        assert_eq!(bufs[1].role, BufferRole::Output);
    }

    #[test]
    #[should_panic(expected = "overflows the data region")]
    fn layout_overflow_panics() {
        let env = TargetEnv::pulp_single();
        let mut l = DataLayout::new(&env, 16);
        let _ = l.output("big", 64);
    }

    #[test]
    fn build_accounting() {
        let env = TargetEnv::pulp_single();
        let mut l = DataLayout::new(&env, 1024);
        let _ = l.input("in", vec![0; 100]);
        let _ = l.constant("lut", vec![0; 40]);
        let _ = l.output("out", 20);
        let _ = l.scratch("tmp", 16);
        let mut a = ulp_isa::Asm::new();
        a.halt();
        let build = KernelBuild {
            name: "t".into(),
            program: a.finish().unwrap(),
            args: vec![],
            buffers: l.finish(),
            expected: vec![],
        };
        assert_eq!(build.input_bytes(), 100);
        assert_eq!(build.const_bytes(), 40);
        assert_eq!(build.output_bytes(), 20);
        assert_eq!(build.offload_binary_bytes(), 4 + 40);
    }
}
