//! Compiler runtime library: software emulation of wide arithmetic.
//!
//! OR10N has no 32×32→64 multiplier and no hardware divider, so the
//! paper's `hog` benchmark pays for "SW-emulated 64-bit variables for
//! accumulation" (§IV-B) — the very reason it shows an architectural
//! *slowdown* versus Cortex-M, whose `SMULL`/`SMLAL`/`UDIV` do the same
//! work in 1–8 cycles. This module is that software runtime:
//!
//! * [`emit_mul64`] / [`emit_mac64`] — signed 64-bit multiply
//!   (-accumulate): one `mull`/`mlal` instruction on `mul64` targets, a
//!   ~25-instruction 16-bit partial-product sequence elsewhere;
//! * [`emit_add64`] / [`emit_sub64`] — carry-propagating pair arithmetic;
//! * [`Rtlib`] subroutines `udiv32` (restoring division) and `isqrt64`
//!   (bit-by-bit square root), shared across call sites via `jal`.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn, Label, Reg};

use super::TargetEnv;

/// Emits `hi:lo = x * y` (signed 64-bit product).
///
/// Uses the single `smull` instruction on `mul64` targets; otherwise emits
/// the 16-bit partial-product sequence. `hi`, `lo`, `x`, `y` and the four
/// temporaries must all be distinct registers; `x`/`y` are preserved.
#[allow(clippy::many_single_char_names)]
pub fn emit_mul64(a: &mut Asm, env: &TargetEnv, hi: Reg, lo: Reg, x: Reg, y: Reg, t: [Reg; 4]) {
    assert_distinct(&[hi, lo, x, y, t[0], t[1], t[2], t[3]]);
    if env.features().mul64 {
        a.insn(Insn::Mull {
            rd_hi: hi,
            rd_lo: lo,
            ra: x,
            rb: y,
            signed: true,
        });
        return;
    }
    let [t0, t1, t2, t3] = t;
    // Split into 16-bit halves: x = x1:x0, y = y1:y0.
    a.srli(t0, x, 16); // x1
    a.slli(t1, x, 16);
    a.srli(t1, t1, 16); // x0
    a.srli(t2, y, 16); // y1
    a.slli(t3, y, 16);
    a.srli(t3, t3, 16); // y0
    a.mul(lo, t1, t3); // p00 = x0*y0
    a.insn(Insn::Mul(hi, t0, t2)); // p11 = x1*y1
    a.mul(t1, t1, t2); // p01 = x0*y1
    a.mul(t0, t0, t3); // p10 = x1*y0
                       // mid = (p00 >> 16) + (p01 & 0xffff) + (p10 & 0xffff)
    a.srli(t2, lo, 16);
    a.slli(t3, t1, 16);
    a.srli(t3, t3, 16);
    a.add(t2, t2, t3);
    a.slli(t3, t0, 16);
    a.srli(t3, t3, 16);
    a.add(t2, t2, t3);
    // lo = (p00 & 0xffff) | (mid << 16)
    a.slli(lo, lo, 16);
    a.srli(lo, lo, 16);
    a.slli(t3, t2, 16);
    a.insn(Insn::Or(lo, lo, t3));
    // hi += (p01 >> 16) + (p10 >> 16) + (mid >> 16)
    a.srli(t1, t1, 16);
    a.add(hi, hi, t1);
    a.srli(t0, t0, 16);
    a.add(hi, hi, t0);
    a.srli(t2, t2, 16);
    a.add(hi, hi, t2);
    // Signed correction: hi -= (x < 0 ? y : 0) + (y < 0 ? x : 0).
    a.srai(t0, x, 31);
    a.insn(Insn::And(t0, t0, y));
    a.sub(hi, hi, t0);
    a.srai(t0, y, 31);
    a.insn(Insn::And(t0, t0, x));
    a.sub(hi, hi, t0);
}

/// Emits `acc_hi:acc_lo += x * y` (signed 64-bit multiply-accumulate).
///
/// One `smlal` on `mul64` targets; otherwise [`emit_mul64`] into the first
/// two temporaries plus a carry-propagating add. Six distinct temporaries
/// are required in the software case.
pub fn emit_mac64(
    a: &mut Asm,
    env: &TargetEnv,
    acc_hi: Reg,
    acc_lo: Reg,
    x: Reg,
    y: Reg,
    t: [Reg; 6],
) {
    if env.features().mul64 {
        a.insn(Insn::Mlal {
            rd_hi: acc_hi,
            rd_lo: acc_lo,
            ra: x,
            rb: y,
            signed: true,
        });
        return;
    }
    let [p_hi, p_lo, t0, t1, t2, t3] = t;
    emit_mul64(a, env, p_hi, p_lo, x, y, [t0, t1, t2, t3]);
    emit_add64(a, acc_hi, acc_lo, p_hi, p_lo, t0);
}

/// Emits `hi:lo += add_hi:add_lo` with carry (4 instructions).
///
/// `tmp` must differ from all operands; `add_lo` is read after `lo` is
/// written, so `lo` must not alias `add_lo`.
pub fn emit_add64(a: &mut Asm, hi: Reg, lo: Reg, add_hi: Reg, add_lo: Reg, tmp: Reg) {
    assert_distinct(&[hi, lo, add_lo, tmp]);
    a.add(lo, lo, add_lo);
    a.insn(Insn::Sltu(tmp, lo, add_lo)); // carry out
    a.add(hi, hi, add_hi);
    a.add(hi, hi, tmp);
}

/// Emits `hi:lo -= sub_hi:sub_lo` with borrow (4 instructions).
pub fn emit_sub64(a: &mut Asm, hi: Reg, lo: Reg, sub_hi: Reg, sub_lo: Reg, tmp: Reg) {
    assert_distinct(&[hi, lo, sub_lo, tmp]);
    a.insn(Insn::Sltu(tmp, lo, sub_lo)); // borrow
    a.sub(lo, lo, sub_lo);
    a.sub(hi, hi, sub_hi);
    a.sub(hi, hi, tmp);
}

/// Emits an arithmetic shift right of the pair `hi:lo` by a constant
/// `0 < sh < 32` (sign-propagating, result back in `hi:lo`).
pub fn emit_sra64_const(a: &mut Asm, hi: Reg, lo: Reg, sh: u8, tmp: Reg) {
    assert!(sh > 0 && sh < 32, "shift must be in 1..32");
    assert_distinct(&[hi, lo, tmp]);
    a.srli(lo, lo, sh);
    a.slli(tmp, hi, 32 - sh);
    a.insn(Insn::Or(lo, lo, tmp));
    a.srai(hi, hi, sh);
}

fn assert_distinct(regs: &[Reg]) {
    for (i, r) in regs.iter().enumerate() {
        for s in &regs[i + 1..] {
            assert_ne!(r, s, "register operands must be distinct");
        }
    }
}

/// Shared software routines, called by `jal r31, <label>`.
///
/// # ABI
///
/// * `udiv32`: numerator in `r11`, denominator in `r12` → quotient in
///   `r13`; clobbers `r11, r14–r16`. Division by zero yields `u32::MAX`.
/// * `isqrt64`: operand in `r11:r12` (hi:lo) → floor square root in `r13`;
///   clobbers `r11–r19`.
///
/// Create before generating kernel code, call
/// [`Rtlib::emit_bodies`] once after the final `halt`.
#[derive(Debug, Default)]
pub struct Rtlib {
    udiv32: Option<Label>,
    isqrt64: Option<Label>,
}

impl Rtlib {
    /// Creates an empty runtime library; routine bodies are only emitted
    /// for the routines actually referenced.
    #[must_use]
    pub fn new() -> Self {
        Rtlib::default()
    }

    /// Emits `quot = num / den` (unsigned). Uses the hardware divider when
    /// the target has one, otherwise calls the shared `udiv32` routine
    /// (clobbering `r11–r16` and `r31`).
    pub fn emit_udiv32(&mut self, a: &mut Asm, env: &TargetEnv, quot: Reg, num: Reg, den: Reg) {
        if env.features().div {
            a.insn(Insn::Divu(quot, num, den));
            return;
        }
        let label = *self.udiv32.get_or_insert_with(|| a.new_label());
        a.mv(R11, num);
        a.mv(R12, den);
        a.jal_to(R31, label);
        if quot != R13 {
            a.mv(quot, R13);
        }
    }

    /// Emits `result = floor(sqrt(hi:lo))` by calling the shared `isqrt64`
    /// routine (clobbers `r11–r19` and `r31`). All targets use the same
    /// bit-by-bit algorithm — neither ARM-M nor OR10N has a hardware root.
    pub fn emit_isqrt64(
        &mut self,
        a: &mut Asm,
        _env: &TargetEnv,
        result: Reg,
        x_hi: Reg,
        x_lo: Reg,
    ) {
        let label = *self.isqrt64.get_or_insert_with(|| a.new_label());
        if x_hi != R11 {
            a.mv(R11, x_hi);
        }
        if x_lo != R12 {
            a.mv(R12, x_lo);
        }
        a.jal_to(R31, label);
        if result != R13 {
            a.mv(result, R13);
        }
    }

    /// Emits the bodies of every referenced routine. Call once, after the
    /// kernel's final `halt`.
    pub fn emit_bodies(self, a: &mut Asm) {
        if let Some(label) = self.udiv32 {
            a.bind(label);
            Self::body_udiv32(a);
        }
        if let Some(label) = self.isqrt64 {
            a.bind(label);
            Self::body_isqrt64(a);
        }
    }

    /// Restoring (shift-subtract) unsigned division, 32 iterations.
    fn body_udiv32(a: &mut Asm) {
        let loop_top = a.new_label();
        let skip = a.new_label();
        let div0 = a.new_label();
        let out = a.new_label();
        a.beq(R12, R0, div0);
        a.li(R13, 0); // quotient
        a.li(R14, 0); // remainder
        a.li(R15, 32); // bit counter
        a.bind(loop_top);
        a.slli(R14, R14, 1);
        a.srli(R16, R11, 31);
        a.insn(Insn::Or(R14, R14, R16));
        a.slli(R11, R11, 1);
        a.slli(R13, R13, 1);
        a.bltu(R14, R12, skip);
        a.sub(R14, R14, R12);
        a.insn(Insn::Ori(R13, R13, 1));
        a.bind(skip);
        a.addi(R15, R15, -1);
        a.bne(R15, R0, loop_top);
        a.jmp(out);
        a.bind(div0);
        a.li(R13, -1); // u32::MAX, matching `divu` semantics
        a.bind(out);
        a.ret(R31);
    }

    /// Bit-by-bit 64-bit integer square root (the algorithm of
    /// `ulp_kernels::fixed::isqrt_u64`).
    fn body_isqrt64(a: &mut Asm) {
        // x = r11:r12, res = r13:r14, bit = r15:r16, temps r17-r19.
        let find = a.new_label();
        let do_shift = a.new_label();
        let start = a.new_label();
        let loop_top = a.new_label();
        let less = a.new_label();
        let geq = a.new_label();
        let next = a.new_label();
        let done = a.new_label();

        a.li(R13, 0);
        a.li(R14, 0);
        // bit = 1 << 62: bit 30 of the high word.
        a.addi(R15, R0, 1);
        a.slli(R15, R15, 30); // bit_hi = 1 << 30
        a.li(R16, 0); // bit_lo = 0

        // while bit > x: bit >>= 2
        a.bind(find);
        a.bltu(R15, R11, start); // bit_hi < x_hi  => bit < x
        a.bne(R15, R11, do_shift); // bit_hi > x_hi => shift
        a.bgeu(R12, R16, start); // hi equal, x_lo >= bit_lo => start
        a.bind(do_shift);
        a.srli(R16, R16, 2);
        a.slli(R17, R15, 30);
        a.insn(Insn::Or(R16, R16, R17));
        a.srli(R15, R15, 2);
        a.insn(Insn::Or(R17, R15, R16));
        a.bne(R17, R0, find);
        a.jmp(done); // x == 0

        a.bind(start);
        a.bind(loop_top);
        // t(r17:r18) = res + bit
        a.add(R18, R14, R16);
        a.insn(Insn::Sltu(R19, R18, R16));
        a.add(R17, R13, R15);
        a.add(R17, R17, R19);
        // compare x with t
        a.bltu(R11, R17, less);
        a.bne(R11, R17, geq);
        a.bltu(R12, R18, less);
        a.bind(geq);
        // x -= t
        a.insn(Insn::Sltu(R19, R12, R18));
        a.sub(R12, R12, R18);
        a.sub(R11, R11, R17);
        a.sub(R11, R11, R19);
        // res = (res >> 1) + bit
        a.slli(R19, R13, 31);
        a.srli(R14, R14, 1);
        a.insn(Insn::Or(R14, R14, R19));
        a.srli(R13, R13, 1);
        a.add(R14, R14, R16);
        a.insn(Insn::Sltu(R19, R14, R16));
        a.add(R13, R13, R15);
        a.add(R13, R13, R19);
        a.jmp(next);
        a.bind(less);
        // res >>= 1
        a.slli(R19, R13, 31);
        a.srli(R14, R14, 1);
        a.insn(Insn::Or(R14, R14, R19));
        a.srli(R13, R13, 1);
        a.bind(next);
        // bit >>= 2; loop while bit != 0
        a.srli(R16, R16, 2);
        a.slli(R19, R15, 30);
        a.insn(Insn::Or(R16, R16, R19));
        a.srli(R15, R15, 2);
        a.insn(Insn::Or(R19, R15, R16));
        a.bne(R19, R0, loop_top);
        a.bind(done);
        a.mv(R13, R14);
        a.ret(R31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed;
    use ulp_isa::prelude::*;
    use ulp_isa::CoreState;
    use ulp_rng::XorShiftRng;

    fn run(env: &TargetEnv, build: impl FnOnce(&mut Asm)) -> Core {
        let mut a = Asm::new();
        build(&mut a);
        let prog = a.finish().expect("assembles");
        let mut mem = FlatMemory::new(0x2000_0000, 128 * 1024);
        mem.load_program(&prog, 0x2000_0000).unwrap();
        let mut core = Core::new(0, env.model);
        core.reset(0x2000_0000);
        core.run(&mut mem, 100_000_000).unwrap();
        assert_eq!(core.state(), CoreState::Halted);
        core
    }

    fn mul64_on(env: &TargetEnv, x: i32, y: i32) -> i64 {
        let core = run(env, |a| {
            a.li(R20, x);
            a.li(R21, y);
            a.li(R22, 0);
            a.li(R23, 0);
            emit_mul64(a, env, R22, R23, R20, R21, [R10, R11, R12, R13]);
            a.halt();
        });
        (i64::from(core.reg(R22) as i32) << 32) | i64::from(core.reg(R23))
    }

    #[test]
    fn mul64_matches_native_product() {
        let cases = [
            (0i32, 0i32),
            (1, 1),
            (-1, 1),
            (-1, -1),
            (i32::MAX, i32::MAX),
            (i32::MIN, 2),
            (i32::MIN, i32::MIN),
            (100_000, 100_000),
            (-100_000, 99_999),
            (65536, 65536),
            (-65536, 65537),
        ];
        for env in [
            TargetEnv::pulp_single(),
            TargetEnv::host_m4(),
            TargetEnv::baseline(),
        ] {
            for &(x, y) in &cases {
                assert_eq!(
                    mul64_on(&env, x, y),
                    i64::from(x) * i64::from(y),
                    "{x}*{y} on {}",
                    env.model.name
                );
            }
        }
    }

    #[test]
    fn mul64_random_against_reference() {
        let mut rng = XorShiftRng::seed_from_u64(42);
        let env = TargetEnv::pulp_single(); // software path
        for _ in 0..40 {
            let x: i32 = rng.gen();
            let y: i32 = rng.gen();
            assert_eq!(mul64_on(&env, x, y), i64::from(x) * i64::from(y), "{x}*{y}");
        }
    }

    #[test]
    fn mac64_accumulates() {
        for env in [TargetEnv::pulp_single(), TargetEnv::host_m4()] {
            let core = run(&env, |a| {
                a.li(R20, -7);
                a.li(R21, 100_000);
                a.li(R22, 0);
                a.li(R23, 0);
                for _ in 0..3 {
                    emit_mac64(a, &env, R22, R23, R20, R21, [R10, R11, R12, R13, R14, R15]);
                }
                a.halt();
            });
            let acc = (i64::from(core.reg(R22) as i32) << 32) | i64::from(core.reg(R23));
            assert_eq!(acc, -2_100_000, "on {}", env.model.name);
        }
    }

    #[test]
    fn add64_sub64_carry_chains() {
        let env = TargetEnv::baseline();
        let core = run(&env, |a| {
            // acc = 0x00000001_FFFFFFFF; add 0x0_00000001 -> 0x2_00000000
            a.li(R20, 1);
            a.li(R21, -1); // 0xFFFF_FFFF
            a.li(R22, 0);
            a.li(R23, 1);
            emit_add64(a, R20, R21, R22, R23, R10);
            // now subtract 1 -> back to 0x1_FFFFFFFF
            emit_sub64(a, R20, R21, R22, R23, R10);
            a.halt();
        });
        assert_eq!(core.reg(R20), 1);
        assert_eq!(core.reg(R21), 0xFFFF_FFFF);
    }

    #[test]
    fn sra64_shifts_pair() {
        let env = TargetEnv::baseline();
        let core = run(&env, |a| {
            // value = -(1 << 40); >> 15 = -(1 << 25)
            a.li(R20, -256); // hi = 0xFFFFFF00 = -(1<<40) >> 32
            a.li(R21, 0);
            emit_sra64_const(a, R20, R21, 15, R10);
            a.halt();
        });
        let v = (i64::from(core.reg(R20) as i32) << 32) | i64::from(core.reg(R21));
        assert_eq!(v, -(1i64 << 40) >> 15);
    }

    fn isqrt_on(env: &TargetEnv, v: u64) -> u32 {
        let core = run(env, |a| {
            let mut rt = Rtlib::new();
            a.li(R20, (v >> 32) as i32);
            a.li(R21, v as i32);
            rt.emit_isqrt64(a, env, R22, R20, R21);
            a.halt();
            rt.emit_bodies(a);
        });
        core.reg(R22)
    }

    #[test]
    fn isqrt64_matches_reference() {
        let env = TargetEnv::pulp_single();
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            15,
            16,
            144,
            1 << 20,
            (1 << 20) + 1,
            u64::from(u32::MAX),
            1 << 40,
            u64::MAX,
        ] {
            assert_eq!(isqrt_on(&env, v), fixed::isqrt_u64(v), "sqrt({v})");
        }
    }

    #[test]
    fn isqrt64_random() {
        let mut rng = XorShiftRng::seed_from_u64(7);
        let env = TargetEnv::host_m4();
        for _ in 0..25 {
            let v: u64 = rng.gen();
            assert_eq!(isqrt_on(&env, v), fixed::isqrt_u64(v), "sqrt({v})");
        }
    }

    fn udiv_on(env: &TargetEnv, n: u32, d: u32) -> u32 {
        let core = run(env, |a| {
            let mut rt = Rtlib::new();
            a.li(R20, n as i32);
            a.li(R21, d as i32);
            rt.emit_udiv32(a, env, R22, R20, R21);
            a.halt();
            rt.emit_bodies(a);
        });
        core.reg(R22)
    }

    #[test]
    fn udiv32_matches_reference_on_both_paths() {
        let cases = [
            (0u32, 1u32),
            (1, 1),
            (100, 7),
            (u32::MAX, 1),
            (u32::MAX, u32::MAX),
            (5, 10),
            (1 << 31, 3),
        ];
        // or10n takes the software loop, M4 the hardware divider.
        for env in [TargetEnv::pulp_single(), TargetEnv::host_m4()] {
            for &(n, d) in &cases {
                assert_eq!(udiv_on(&env, n, d), n / d, "{n}/{d} on {}", env.model.name);
            }
            assert_eq!(
                udiv_on(&env, 123, 0),
                u32::MAX,
                "div by zero on {}",
                env.model.name
            );
        }
    }

    #[test]
    fn udiv32_random() {
        let mut rng = XorShiftRng::seed_from_u64(11);
        let env = TargetEnv::pulp_single();
        for _ in 0..25 {
            let n: u32 = rng.gen();
            let d: u32 = rng.gen_range(1..=u32::MAX);
            assert_eq!(udiv_on(&env, n, d), n / d);
        }
    }

    #[test]
    fn m4_wide_mac_much_cheaper_than_or10n() {
        // The root cause of the paper's hog slowdown: count cycles for 64
        // wide MACs on each target.
        let cycles = |env: &TargetEnv| {
            let core = run(env, |a| {
                a.li(R20, 12345);
                a.li(R21, -6789);
                for _ in 0..64 {
                    emit_mac64(a, env, R22, R23, R20, R21, [R10, R11, R12, R13, R14, R15]);
                }
                a.halt();
            });
            core.time()
        };
        let m4 = cycles(&TargetEnv::host_m4());
        let or10n = cycles(&TargetEnv::pulp_single());
        assert!(
            or10n > m4 * 5,
            "software 64-bit MAC ({or10n} cy) must dwarf SMLAL ({m4} cy)"
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn aliased_registers_rejected() {
        let env = TargetEnv::baseline();
        let mut a = Asm::new();
        emit_mul64(&mut a, &env, R1, R1, R2, R3, [R4, R5, R6, R7]);
    }
}
