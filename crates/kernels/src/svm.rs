//! Support-vector-machine classification (Table I `svm` linear/poly/RBF).
//!
//! A LIBSVM-style decision function on 16-bit Q2.13 fixed point, ported
//! after the paper's "C porting of libsvm": for each test sample `x`,
//!
//! ```text
//! margin(x) = Σ_v α_v · K(x, sv_v) + b      label(x) = margin ≥ 0
//! ```
//!
//! with three kernels:
//!
//! * **linear**: `K = ⟨x, v⟩` (per-product shift, as in the fixed-point
//!   matmul),
//! * **poly**: `K = (γ·⟨x, v⟩ + c)³` (powers by repeated Q2.13 multiply),
//! * **RBF**: `K = exp(−γ·‖x − v‖²)` via a 256-entry `exp(−t)` lookup
//!   table over `t ∈ [0, 8)` — the table travels with the binary as
//!   constant data.
//!
//! The workload: 64 test samples × 32 features against 40 support
//! vectors (≈6.7 kB of input, matching Table I's 6.9 kB). Outputs are the
//! per-sample margin (Q2.13 in i32) and the binary label.
//!
//! Being fixed-point, none of the sub-word SIMD applies (paper §IV-B);
//! OR10N's advantage comes from hardware loops only, which is why the
//! paper's svm bars sit in the low architectural-speedup group.

use ulp_isa::reg::named::*;
use ulp_isa::{Asm, Insn, MemSize};
use ulp_rng::XorShiftRng;

use crate::codegen::emit::{counted_loop, range_loop, spmd_kernel, static_chunk};
use crate::codegen::{DataLayout, KernelBuild, TargetEnv};
use crate::fixed::{exp_neg_lut_q13, q13_mul, q13_mul_wide};

/// Number of test samples classified per kernel invocation.
pub const SAMPLES: usize = 64;
/// Feature-vector dimensionality.
pub const FEATURES: usize = 32;
/// Number of support vectors.
pub const NSV: usize = 40;
/// RBF/poly γ in raw Q2.13 (= 1/32).
pub const GAMMA_Q13: i16 = 256;
/// Poly kernel offset `c` in raw Q2.13 (= 0.5).
pub const COEF0_Q13: i16 = 4096;
/// Decision bias in raw Q2.13.
pub const BIAS_Q13: i16 = -1024;
/// Entries in the RBF exponential table.
pub const EXP_LUT_N: usize = 256;
/// Input range covered by the exponential table.
pub const EXP_LUT_RANGE: f64 = 8.0;

/// Kernel function selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SvmKernel {
    /// `K = ⟨x, v⟩`
    Linear,
    /// `K = (γ⟨x, v⟩ + c)³`
    Poly,
    /// `K = exp(−γ‖x−v‖²)`
    Rbf,
}

impl SvmKernel {
    /// Table I row name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SvmKernel::Linear => "svm (linear)",
            SvmKernel::Poly => "svm (poly)",
            SvmKernel::Rbf => "svm (RBF)",
        }
    }
}

/// The classification problem data (generated deterministically).
#[derive(Clone, Debug)]
pub struct SvmData {
    /// Test samples, row-major `SAMPLES × FEATURES`, Q2.13.
    pub x: Vec<i16>,
    /// Support vectors, row-major `NSV × FEATURES`, Q2.13.
    pub sv: Vec<i16>,
    /// Dual coefficients α, Q2.13.
    pub alpha: Vec<i16>,
}

/// Generates the benchmark data set (values in the unit box).
#[must_use]
pub fn generate_data(seed: u64) -> SvmData {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    SvmData {
        x: (0..SAMPLES * FEATURES)
            .map(|_| rng.gen_range(-8192..8192))
            .collect(),
        sv: (0..NSV * FEATURES)
            .map(|_| rng.gen_range(-8192..8192))
            .collect(),
        alpha: (0..NSV).map(|_| rng.gen_range(-4096..4096)).collect(),
    }
}

/// Truncate an i32 to the low 16 bits, sign-extended (the `slli 16; srai
/// 16` sequence of the generated code).
fn trunc16(v: i32) -> i16 {
    v as i16
}

/// Evaluates `K(x_s, sv_v)` with bit-exact generated-code semantics.
fn kernel_value(kind: SvmKernel, x: &[i16], v: &[i16], exp_lut: &[i16]) -> i16 {
    match kind {
        SvmKernel::Linear => {
            let mut acc = 0i32;
            for k in 0..FEATURES {
                acc = acc.wrapping_add(q13_mul_wide(x[k], v[k]));
            }
            trunc16(acc)
        }
        SvmKernel::Poly => {
            let mut acc = 0i32;
            for k in 0..FEATURES {
                acc = acc.wrapping_add(q13_mul_wide(x[k], v[k]));
            }
            let dot = trunc16(acc);
            let g1 = trunc16(i32::from(q13_mul(GAMMA_Q13, dot)) + i32::from(COEF0_Q13));
            let sq = q13_mul(g1, g1);
            q13_mul(sq, g1)
        }
        SvmKernel::Rbf => {
            let mut d2 = 0i32;
            for k in 0..FEATURES {
                let diff = x[k].wrapping_sub(v[k]);
                d2 = d2.wrapping_add(q13_mul_wide(diff, diff));
            }
            // t = (γ · d2) >> 13 in i32; index = t >> 8 (LUT_N/range scale)
            let t = (i32::from(GAMMA_Q13).wrapping_mul(d2)) >> 13;
            if t <= 0 {
                return 8192; // exp(0) = 1.0
            }
            let idx = (t >> 8) as usize;
            if idx >= EXP_LUT_N {
                0
            } else {
                exp_lut[idx]
            }
        }
    }
}

/// Bit-exact reference: per-sample `(margin_q13_i32, label)`.
#[must_use]
pub fn reference(kind: SvmKernel, data: &SvmData, exp_lut: &[i16]) -> Vec<(i32, i32)> {
    (0..SAMPLES)
        .map(|s| {
            let x = &data.x[s * FEATURES..(s + 1) * FEATURES];
            let mut margin = 0i32;
            for v in 0..NSV {
                let sv = &data.sv[v * FEATURES..(v + 1) * FEATURES];
                let k = kernel_value(kind, x, sv, exp_lut);
                margin = margin.wrapping_add(q13_mul_wide(data.alpha[v], k));
            }
            margin = margin.wrapping_add(i32::from(BIAS_Q13));
            (margin, i32::from(margin >= 0))
        })
        .collect()
}

/// Builds the SVM kernel for a target.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build(kind: SvmKernel, env: &TargetEnv) -> KernelBuild {
    let data = generate_data(0x53D6_0000 ^ kind as u64);
    let exp_lut = exp_neg_lut_q13(EXP_LUT_N, EXP_LUT_RANGE);
    let expect: Vec<u8> = reference(kind, &data, &exp_lut)
        .iter()
        .flat_map(|(m, l)| {
            let mut b = m.to_le_bytes().to_vec();
            b.extend_from_slice(&l.to_le_bytes());
            b
        })
        .collect();

    let mut l = DataLayout::new(env, 64 * 1024);
    let x_addr = l.input("X", data.x.iter().flat_map(|v| v.to_le_bytes()).collect());
    let sv_addr = l.input("SV", data.sv.iter().flat_map(|v| v.to_le_bytes()).collect());
    let alpha_addr = l.input(
        "alpha",
        data.alpha.iter().flat_map(|v| v.to_le_bytes()).collect(),
    );
    let out_addr = l.output("out", SAMPLES * 8);
    let lut_addr = if kind == SvmKernel::Rbf {
        l.constant(
            "exp_lut",
            exp_lut.iter().flat_map(|v| v.to_le_bytes()).collect(),
        )
    } else {
        0
    };
    let buffers = l.finish();

    let f = *env.features();
    let row_bytes = (FEATURES * 2) as i16;

    let mut asm = Asm::new();
    spmd_kernel(&mut asm, env, |a, env| {
        // Args: R3=X, R4=SV, R5=alpha, R8=out, R9=exp lut.
        static_chunk(a, env, SAMPLES as u32, R10, R11, R12);
        range_loop(a, R12, R10, R11, |a| {
            // x_row = X + s·row ; out_ptr = out + s·8
            a.li(R13, i32::from(row_bytes));
            a.mul(R13, R12, R13);
            a.add(R16, R3, R13);
            a.slli(R13, R12, 3);
            a.add(R15, R8, R13);
            a.mv(R14, R4); // sv_ptr walks all support vectors
            a.mv(R24, R5); // alpha_ptr
            a.li(R23, 0); // margin accumulator
            a.li(R6, NSV as i32);
            counted_loop(a, env, 1, R6, R2, |a| {
                a.mv(R18, R16); // x_ptr
                                // ---- inner feature loop: dot or distance² --------------
                a.li(R17, 0);
                let rbf = kind == SvmKernel::Rbf;
                a.li(R7, (FEATURES / 2) as i32);
                counted_loop(a, env, 0, R7, R1, |a| {
                    for u in 0..2i16 {
                        if f.post_increment {
                            a.insn(Insn::LoadPi {
                                rd: R20,
                                base: R18,
                                inc: 2,
                                size: MemSize::Half,
                                signed: true,
                            });
                            a.insn(Insn::LoadPi {
                                rd: R21,
                                base: R14,
                                inc: 2,
                                size: MemSize::Half,
                                signed: true,
                            });
                        } else {
                            a.lh(R20, R18, u * 2);
                            a.lh(R21, R14, u * 2);
                        }
                        if rbf {
                            a.sub(R20, R20, R21);
                            // Truncate the difference to i16 semantics.
                            a.slli(R20, R20, 16);
                            a.srai(R20, R20, 16);
                            a.mul(R22, R20, R20);
                        } else {
                            a.mul(R22, R20, R21);
                        }
                        a.srai(R22, R22, 13);
                        a.add(R17, R17, R22);
                    }
                    if !f.post_increment {
                        a.addi(R18, R18, 4);
                        a.addi(R14, R14, 4);
                    }
                });
                // ---- kernel-function postlude --------------------------
                match kind {
                    SvmKernel::Linear => {
                        // K = trunc16(dot)
                        a.slli(R17, R17, 16);
                        a.srai(R17, R17, 16);
                    }
                    SvmKernel::Poly => {
                        a.slli(R17, R17, 16);
                        a.srai(R17, R17, 16);
                        // g1 = trunc16((γ·K)>>13 + c)
                        a.li(R20, i32::from(GAMMA_Q13));
                        a.mul(R17, R20, R17);
                        a.srai(R17, R17, 13);
                        a.slli(R17, R17, 16);
                        a.srai(R17, R17, 16); // q13_mul truncation
                        a.li(R20, i32::from(COEF0_Q13));
                        a.add(R17, R17, R20);
                        a.slli(R17, R17, 16);
                        a.srai(R17, R17, 16);
                        // K = ((g1²)>>13 as i16 · g1) >> 13 as i16
                        a.mul(R20, R17, R17);
                        a.srai(R20, R20, 13);
                        a.slli(R20, R20, 16);
                        a.srai(R20, R20, 16);
                        a.mul(R17, R20, R17);
                        a.srai(R17, R17, 13);
                        a.slli(R17, R17, 16);
                        a.srai(R17, R17, 16);
                    }
                    SvmKernel::Rbf => {
                        // t = (γ·d2) >> 13 ; K via LUT
                        a.li(R20, i32::from(GAMMA_Q13));
                        a.mul(R17, R20, R17);
                        a.srai(R17, R17, 13);
                        let in_range = a.new_label();
                        let done = a.new_label();
                        a.blt(R0, R17, in_range); // 0 < t ?
                        a.li(R17, 8192);
                        a.jmp(done);
                        a.bind(in_range);
                        a.srai(R20, R17, 8); // idx
                        a.li(R21, EXP_LUT_N as i32);
                        let lookup = a.new_label();
                        a.blt(R20, R21, lookup);
                        a.li(R17, 0);
                        a.jmp(done);
                        a.bind(lookup);
                        a.slli(R20, R20, 1);
                        a.la(R21, lut_addr);
                        a.add(R21, R21, R20);
                        a.lh(R17, R21, 0);
                        a.bind(done);
                    }
                }
                // margin += (α_v · K) >> 13
                if f.post_increment {
                    a.insn(Insn::LoadPi {
                        rd: R20,
                        base: R24,
                        inc: 2,
                        size: MemSize::Half,
                        signed: true,
                    });
                } else {
                    a.lh(R20, R24, 0);
                    a.addi(R24, R24, 2);
                }
                a.mul(R20, R20, R17);
                a.srai(R20, R20, 13);
                a.add(R23, R23, R20);
            });
            // margin += bias ; store margin and label
            a.li(R20, i32::from(BIAS_Q13));
            a.add(R23, R23, R20);
            a.sw(R23, R15, 0);
            a.insn(Insn::Slt(R20, R23, R0));
            a.insn(Insn::Xori(R20, R20, 1));
            a.sw(R20, R15, 4);
        });
    });
    let program = asm.finish().expect("svm generator emits valid code");

    let mut args = vec![
        (R3, x_addr),
        (R4, sv_addr),
        (R5, alpha_addr),
        (R8, out_addr),
    ];
    if kind == SvmKernel::Rbf {
        args.push((R9, lut_addr));
    }
    KernelBuild {
        name: format!("{}[{}]", kind.name(), env.model.name),
        program,
        args,
        buffers,
        expected: vec![(3, expect)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    fn all_envs() -> [TargetEnv; 5] {
        [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ]
    }

    #[test]
    fn linear_correct_on_all_targets() {
        for env in all_envs() {
            let b = build(SvmKernel::Linear, &env);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn poly_correct_on_all_targets() {
        for env in all_envs() {
            let b = build(SvmKernel::Poly, &env);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn rbf_correct_on_all_targets() {
        for env in all_envs() {
            let b = build(SvmKernel::Rbf, &env);
            run(&b, &env).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn input_size_near_table1() {
        let b = build(SvmKernel::Linear, &TargetEnv::pulp_single());
        // Paper: 6.9 kB input; our workload is ≈6.6 kB.
        let kb = b.input_bytes() as f64 / 1024.0;
        assert!((6.0..7.5).contains(&kb), "svm input {kb:.1} kB");
    }

    #[test]
    fn riscops_ordering_matches_table1() {
        // Paper: linear 650k < poly 684k < RBF 781k RISC ops.
        let env = TargetEnv::baseline();
        let lin = run(&build(SvmKernel::Linear, &env), &env).unwrap().retired;
        let poly = run(&build(SvmKernel::Poly, &env), &env).unwrap().retired;
        let rbf = run(&build(SvmKernel::Rbf, &env), &env).unwrap().retired;
        assert!(
            lin < poly && poly < rbf,
            "ordering {lin} < {poly} < {rbf} violated"
        );
        // Within a factor-2 band of the paper's absolute counts.
        for (ops, anchor) in [(lin, 650_000.0), (poly, 684_000.0), (rbf, 781_000.0)] {
            let ratio = ops as f64 / anchor;
            assert!((0.5..2.0).contains(&ratio), "{ops} vs anchor {anchor}");
        }
    }

    #[test]
    fn rbf_margins_decrease_with_distance() {
        // Semantics: a sample identical to a positive-α support vector
        // must get a larger RBF response than a far sample. Use the
        // reference directly.
        let mut data = generate_data(1);
        // Make sample 0 == support vector 0, sample 1 far away.
        for k in 0..FEATURES {
            data.x[k] = data.sv[k];
            data.x[FEATURES + k] = data.sv[k].wrapping_add(8000);
        }
        let lut = exp_neg_lut_q13(EXP_LUT_N, EXP_LUT_RANGE);
        let near = kernel_value(
            SvmKernel::Rbf,
            &data.x[0..FEATURES],
            &data.sv[0..FEATURES],
            &lut,
        );
        let far = kernel_value(
            SvmKernel::Rbf,
            &data.x[FEATURES..2 * FEATURES],
            &data.sv[0..FEATURES],
            &lut,
        );
        assert_eq!(near, 8192, "zero distance must give exp(0) = 1");
        assert!(far < near);
    }

    #[test]
    fn fixed_point_arch_speedup_band() {
        // svm belongs to the paper's low (fixed-point) speedup group.
        let m4 = run(
            &build(SvmKernel::Linear, &TargetEnv::host_m4()),
            &TargetEnv::host_m4(),
        )
        .unwrap();
        let or10n = run(
            &build(SvmKernel::Linear, &TargetEnv::pulp_single()),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let s = m4.cycles as f64 / or10n.cycles as f64;
        assert!(
            (0.9..2.2).contains(&s),
            "svm arch speedup {s:.2} outside fixed-point band"
        );
    }

    #[test]
    fn parallel_speedup_band() {
        let single = run(
            &build(SvmKernel::Rbf, &TargetEnv::pulp_single()),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        let quad = run(
            &build(SvmKernel::Rbf, &TargetEnv::pulp_parallel()),
            &TargetEnv::pulp_parallel(),
        )
        .unwrap();
        let s = single.cycles as f64 / quad.cycles as f64;
        assert!((3.0..4.0).contains(&s), "svm 4-core speedup {s:.2}");
    }
}
