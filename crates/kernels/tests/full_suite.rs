//! The full Table I suite at paper-scale problem sizes, on every target,
//! every run verified bit-exact against its golden reference.

use ulp_kernels::runner::run;
use ulp_kernels::{Benchmark, TargetEnv};

#[test]
fn full_suite_all_targets_bit_exact() {
    for b in Benchmark::ALL {
        for env in [
            TargetEnv::baseline(),
            TargetEnv::host_m3(),
            TargetEnv::host_m4(),
            TargetEnv::pulp_single(),
            TargetEnv::pulp_parallel(),
        ] {
            let build = b.build(&env);
            let r = run(&build, &env).unwrap_or_else(|e| panic!("{}: {e}", build.name));
            assert!(r.cycles > 0 && r.retired > 0, "{}", build.name);
        }
    }
}

#[test]
fn fig4_shape_holds_at_full_size() {
    // The complete Fig. 4 ordering on full-size inputs: every integer
    // benchmark's architectural speedup exceeds every fixed-point one's,
    // and hog sits below 1.
    let arch = |b: Benchmark| {
        let m4 = run(&b.build(&TargetEnv::host_m4()), &TargetEnv::host_m4()).unwrap();
        let or = run(
            &b.build(&TargetEnv::pulp_single()),
            &TargetEnv::pulp_single(),
        )
        .unwrap();
        m4.cycles as f64 / or.cycles as f64
    };
    let integer_min = [
        Benchmark::MatMul,
        Benchmark::MatMulShort,
        Benchmark::Strassen,
    ]
    .map(arch)
    .into_iter()
    .fold(f64::INFINITY, f64::min);
    let fixed_max = [Benchmark::MatMulFixed, Benchmark::SvmLinear, Benchmark::Cnn]
        .map(arch)
        .into_iter()
        .fold(0.0, f64::max);
    let hog = arch(Benchmark::Hog);
    assert!(
        integer_min > fixed_max,
        "integer group ({integer_min:.2}) must beat fixed-point group ({fixed_max:.2})"
    );
    assert!(hog < 1.0, "hog must show a slowdown, got {hog:.2}");
}

#[test]
fn riscops_are_stable_across_rebuilds() {
    // Builds are deterministic: the RISC-op methodology must give the same
    // answer every time.
    let env = TargetEnv::baseline();
    for b in [Benchmark::SvmPoly, Benchmark::CnnApprox] {
        let a = run(&b.build(&env), &env).unwrap().retired;
        let c = run(&b.build(&env), &env).unwrap().retired;
        assert_eq!(a, c, "{b}");
    }
}
