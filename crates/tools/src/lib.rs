//! # ulp-tools — command-line front-ends for the het-accel platform
//!
//! | binary | purpose |
//! |---|---|
//! | `uir-asm` | assemble textual UIR into a `.uir` image |
//! | `uir-dis` | disassemble a `.uir` image back to text |
//! | `uir-run` | run a program on a single core or the 4-core cluster |
//! | `het-sim` | simulate a benchmark offload on the coupled platform |
//!
//! This crate also defines the tiny on-disk **UIR image format** the tools
//! exchange:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "UIR1"
//! 4       4     u32 LE: text words (N)
//! 8       4     u32 LE: rodata bytes (M)
//! 12      4·N   instruction words, LE
//! 12+4N   M     rodata
//! ```

use std::error::Error;
use std::fmt;

use ulp_isa::{decode, Asm, Program};

/// Magic bytes of a UIR image.
pub const MAGIC: &[u8; 4] = b"UIR1";

/// Error produced while reading a UIR image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// The file does not start with the `UIR1` magic.
    BadMagic,
    /// The header claims more data than the file holds.
    Truncated,
    /// An instruction word failed to decode.
    BadWord {
        /// Word index within the text section.
        index: usize,
        /// The offending word.
        word: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => f.write_str("not a UIR image (bad magic)"),
            ImageError::Truncated => f.write_str("truncated UIR image"),
            ImageError::BadWord { index, word } => {
                write!(f, "invalid instruction word {word:#010x} at index {index}")
            }
        }
    }
}

impl Error for ImageError {}

/// Serializes a program into the UIR image format.
#[must_use]
pub fn to_image(prog: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + prog.text_bytes() + prog.rodata().len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(prog.words().len() as u32).to_le_bytes());
    out.extend_from_slice(&(prog.rodata().len() as u32).to_le_bytes());
    for w in prog.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(prog.rodata());
    out
}

/// Deserializes a UIR image back into a [`Program`].
///
/// # Errors
///
/// Returns [`ImageError`] on malformed images.
pub fn from_image(bytes: &[u8]) -> Result<Program, ImageError> {
    if bytes.len() < 12 {
        return Err(ImageError::Truncated);
    }
    if &bytes[0..4] != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let words = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let rodata_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let need = 12 + words * 4 + rodata_len;
    if bytes.len() < need {
        return Err(ImageError::Truncated);
    }
    let mut asm = Asm::new();
    for i in 0..words {
        let off = 12 + i * 4;
        let word = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let insn = decode(word).map_err(|_| ImageError::BadWord { index: i, word })?;
        asm.insn(insn);
    }
    let rodata_start = 12 + words * 4;
    asm.add_rodata(&bytes[rodata_start..rodata_start + rodata_len]);
    asm.finish().map_err(|_| ImageError::Truncated)
}

/// Minimal command-line option scanner: `--key value` and `--flag` pairs
/// plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    opts: Vec<(String, Option<String>)>,
    /// Positional (non-option) arguments in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`-style input; `flags` lists the options
    /// that take no value.
    #[must_use]
    pub fn parse(args: impl Iterator<Item = String>, flags: &[&str]) -> Self {
        let mut out = Args::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if flags.contains(&key) {
                    out.opts.push((key.to_owned(), None));
                } else {
                    out.opts.push((key.to_owned(), it.next()));
                }
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Value of `--key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--key` was given (flag or valued).
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.opts.iter().any(|(k, _)| k == key)
    }

    /// Every value given for a repeatable `--key`.
    #[must_use]
    pub fn values(&self, key: &str) -> Vec<&str> {
        self.opts
            .iter()
            .filter(|(k, _)| k == key)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Value of `--key` parsed as `f64`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: expected a number, got `{v}`")),
        }
    }

    /// Value of `--key` parsed as `usize`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: expected an integer, got `{v}`")),
        }
    }
}

/// Resolves a benchmark name (Table I spelling or shorthand).
///
/// # Errors
///
/// Returns the list of valid names when `name` is unknown.
pub fn parse_benchmark(name: &str) -> Result<ulp_kernels::Benchmark, String> {
    use ulp_kernels::Benchmark as B;
    Ok(match name.to_ascii_lowercase().as_str() {
        "matmul" => B::MatMul,
        "matmul-short" | "matmul (short)" => B::MatMulShort,
        "matmul-fixed" | "matmul (fixed)" => B::MatMulFixed,
        "strassen" => B::Strassen,
        "svm-linear" | "svm (linear)" => B::SvmLinear,
        "svm-poly" | "svm (poly)" => B::SvmPoly,
        "svm-rbf" | "svm (rbf)" => B::SvmRbf,
        "cnn" => B::Cnn,
        "cnn-approx" | "cnn (approx)" => B::CnnApprox,
        "hog" => B::Hog,
        other => {
            return Err(format!(
                "unknown benchmark `{other}`; choose one of: matmul, matmul-short, \
                 matmul-fixed, strassen, svm-linear, svm-poly, svm-rbf, cnn, cnn-approx, hog"
            ))
        }
    })
}

/// Resolves a core-model name.
///
/// # Errors
///
/// Returns the list of valid names when `name` is unknown.
pub fn parse_model(name: &str) -> Result<ulp_isa::CoreModel, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "or10n" => ulp_isa::CoreModel::or10n(),
        "m4" | "cortex-m4" => ulp_isa::CoreModel::cortex_m4(),
        "m3" | "cortex-m3" => ulp_isa::CoreModel::cortex_m3(),
        "baseline" | "risc" => ulp_isa::CoreModel::risc_baseline(),
        other => {
            return Err(format!(
                "unknown model `{other}`; choose or10n, m4, m3 or baseline"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::prelude::*;

    fn sample_program() -> Program {
        let mut a = Asm::new();
        a.li(R1, 123456);
        a.mac(R2, R1, R1);
        a.halt();
        a.add_rodata(&[1, 2, 3, 4, 5]);
        a.finish().unwrap()
    }

    #[test]
    fn image_roundtrip() {
        let prog = sample_program();
        let img = to_image(&prog);
        let back = from_image(&img).unwrap();
        assert_eq!(back.insns(), prog.insns());
        assert_eq!(back.words(), prog.words());
        assert_eq!(back.rodata(), prog.rodata());
    }

    #[test]
    fn image_errors() {
        assert_eq!(from_image(b"bogus"), Err(ImageError::Truncated));
        assert_eq!(
            from_image(b"NOPE\0\0\0\0\0\0\0\0"),
            Err(ImageError::BadMagic)
        );
        let mut img = to_image(&sample_program());
        img.truncate(img.len() - 3);
        assert_eq!(from_image(&img), Err(ImageError::Truncated));
        // Corrupt an instruction word (opcode 0xFF is invalid).
        let mut img = to_image(&sample_program());
        img[15] = 0xFF;
        assert!(matches!(
            from_image(&img),
            Err(ImageError::BadWord { index: 0, .. })
        ));
    }

    #[test]
    fn args_parsing() {
        let args = Args::parse(
            ["--model", "or10n", "file.s", "--trace", "--iters", "32"]
                .iter()
                .map(|s| (*s).to_owned()),
            &["trace"],
        );
        assert_eq!(args.get("model"), Some("or10n"));
        assert!(args.has("trace"));
        assert_eq!(args.get_usize("iters", 1).unwrap(), 32);
        assert_eq!(args.get_f64("missing", 2.5).unwrap(), 2.5);
        assert_eq!(args.positional, vec!["file.s"]);
        assert!(args.get_usize("model", 0).is_err());
    }

    #[test]
    fn benchmark_and_model_lookup() {
        assert_eq!(
            parse_benchmark("svm-rbf").unwrap(),
            ulp_kernels::Benchmark::SvmRbf
        );
        assert!(parse_benchmark("quicksort").is_err());
        assert_eq!(parse_model("M4").unwrap().name, "cortex-m4");
        assert!(parse_model("z80").is_err());
    }
}

// Needs the external `proptest` crate; see the `proptest` feature note in
// Cargo.toml.
#[cfg(all(test, feature = "proptest"))]
mod fuzz {
    use proptest::prelude::*;

    proptest! {
        /// Image parsing never panics on arbitrary bytes.
        #[test]
        fn from_image_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = super::from_image(&bytes);
        }

        /// Valid headers with truncated bodies are rejected, not panicked on.
        #[test]
        fn truncated_bodies_rejected(words in 1u32..64, cut in 0usize..16) {
            let mut img = Vec::new();
            img.extend_from_slice(super::MAGIC);
            img.extend_from_slice(&words.to_le_bytes());
            img.extend_from_slice(&0u32.to_le_bytes());
            // Provide fewer bytes than the header claims.
            let full = words as usize * 4;
            img.extend(std::iter::repeat_n(0u8, full.saturating_sub(cut + 1)));
            prop_assert!(super::from_image(&img).is_err());
        }
    }
}
