//! `uir-dis` — disassemble a `.uir` image back to text.
//!
//! ```sh
//! uir-dis program.uir
//! ```

use std::fs;
use std::process::ExitCode;

use ulp_tools::{from_image, Args};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1), &["help"]);
    if args.has("help") || args.positional.is_empty() {
        eprintln!("usage: uir-dis <image.uir>");
        return if args.has("help") {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let input = &args.positional[0];
    let bytes = match fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("uir-dis: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match from_image(&bytes) {
        Ok(prog) => {
            print!("{}", prog.listing());
            if !prog.rodata().is_empty() {
                println!(
                    "# rodata: {} bytes at text+{:#x}",
                    prog.rodata().len(),
                    prog.rodata_offset()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("uir-dis: {input}: {e}");
            ExitCode::FAILURE
        }
    }
}
