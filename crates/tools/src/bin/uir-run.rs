//! `uir-run` — execute a UIR program on a simulated core or cluster.
//!
//! ```sh
//! uir-run prog.uir --model or10n               # single core
//! uir-run prog.s   --model m4 --trace 20       # assemble + run + trace
//! uir-run prog.uir --cluster 4                 # 4-core PULP cluster
//! uir-run prog.uir --reg r3=256 --dump r5      # set args, print results
//! ```
//!
//! Accepts both `.uir` images and assembly source (decided by content).
//! Single-core runs execute over flat memory at `0x2000_0000`; cluster
//! runs load the binary into L2 and start every core at the entry, with
//! the TCDM at `0x1000_0000`.

use std::fs;
use std::process::ExitCode;

use ulp_cluster::{Cluster, ClusterConfig, L2_BASE};
use ulp_isa::{parse_program, Core, CoreState, FlatMemory, Program, Reg};
use ulp_tools::{from_image, parse_model, Args};

fn load_input(path: &str) -> Result<Program, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(ulp_tools::MAGIC) {
        from_image(&bytes).map_err(|e| e.to_string())
    } else {
        let text = String::from_utf8(bytes).map_err(|_| "input is neither UIR nor UTF-8 text")?;
        parse_program(&text).map_err(|e| e.to_string())
    }
}

fn parse_reg_assignments(args: &Args) -> Result<Vec<(Reg, u32)>, String> {
    let mut out = Vec::new();
    for v in args.values("reg") {
        let (r, val) = v
            .split_once('=')
            .ok_or_else(|| format!("--reg {v}: expected rN=VALUE"))?;
        let idx: u8 = r
            .trim_start_matches('r')
            .parse()
            .map_err(|_| format!("--reg {v}: bad register"))?;
        let reg = Reg::try_new(idx).ok_or_else(|| format!("--reg {v}: register out of range"))?;
        let value = if let Some(hex) = val.strip_prefix("0x") {
            u32::from_str_radix(hex, 16)
        } else {
            val.parse()
        }
        .map_err(|_| format!("--reg {v}: bad value"))?;
        out.push((reg, value));
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1), &["help"]);
    if args.has("help") || args.positional.is_empty() {
        return Err(
            "usage: uir-run <prog.uir|prog.s> [--model or10n|m4|m3|baseline] \
             [--cluster N] [--max-cycles N] [--trace N] [--reg rN=V]... [--dump rN,rM,...]"
                .to_owned(),
        );
    }
    let prog = load_input(&args.positional[0])?;
    let max_cycles = args.get_usize("max-cycles", 100_000_000)? as u64;
    let regs = parse_reg_assignments(&args)?;
    let dump: Vec<Reg> = args
        .get("dump")
        .map(|d| {
            d.split(',')
                .map(|r| {
                    r.trim()
                        .trim_start_matches('r')
                        .parse::<u8>()
                        .ok()
                        .and_then(Reg::try_new)
                        .ok_or_else(|| format!("--dump: bad register `{r}`"))
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()?
        .unwrap_or_default();

    if args.has("cluster") {
        let cores = args.get_usize("cluster", 4)?;
        let mut cluster = Cluster::new(ClusterConfig {
            num_cores: cores,
            ..ClusterConfig::default()
        });
        cluster
            .load_binary(&prog, L2_BASE)
            .map_err(|e| e.to_string())?;
        cluster.start(L2_BASE, &regs, 0);
        let res = cluster
            .run_until_halt(max_cycles)
            .map_err(|e| e.to_string())?;
        println!("cluster: {} cores, {} cycles", cores, res.cycles);
        if let Some(eoc) = res.eoc_at {
            println!("end-of-computation at cycle {eoc}");
        }
        println!(
            "retired {} instructions, IPC {:.2}, {} TCDM conflicts, {} barriers",
            res.activity.total_retired(),
            res.activity.ipc(),
            res.activity.tcdm_conflicts,
            res.activity.barriers
        );
        for r in dump {
            println!("core0 {r} = {:#010x}", cluster.core(0).reg(r));
        }
    } else {
        let model = parse_model(args.get("model").unwrap_or("or10n"))?;
        const BASE: u32 = 0x2000_0000;
        let mut mem = FlatMemory::new(BASE, 1 << 20);
        mem.load_program(&prog, BASE).map_err(|e| e.to_string())?;
        let mut core = Core::new(0, model);
        let trace_n = args.get_usize("trace", 0)?;
        if trace_n > 0 {
            core.enable_trace(trace_n);
        }
        core.reset(BASE);
        for (r, v) in regs {
            core.set_reg(r, v);
        }
        let summary = core.run(&mut mem, max_cycles).map_err(|e| e.to_string())?;
        if summary.state != CoreState::Halted {
            return Err(format!("program did not halt within {max_cycles} cycles"));
        }
        println!(
            "{}: {} cycles, {} instructions, IPC {:.2}",
            model.name,
            summary.cycles,
            summary.retired,
            summary.retired as f64 / summary.cycles as f64
        );
        for t in core.trace() {
            println!(
                "  {:#010x}  {:<30} @{}",
                t.pc,
                t.insn.to_string(),
                t.retired_at
            );
        }
        for r in dump {
            println!("{r} = {:#010x} ({})", core.reg(r), core.reg(r) as i32);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("uir-run: {e}");
            ExitCode::FAILURE
        }
    }
}
