//! `uir-asm` — assemble textual UIR into a `.uir` image.
//!
//! ```sh
//! uir-asm input.s -o out.uir        # assemble
//! uir-asm input.s --listing         # assemble and print the listing
//! ```

use std::fs;
use std::process::ExitCode;

use ulp_isa::parse_program;
use ulp_tools::{to_image, Args};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1), &["listing", "help"]);
    if args.has("help") || args.positional.is_empty() {
        eprintln!("usage: uir-asm <input.s> [-o|--output out.uir] [--listing]");
        return if args.has("help") {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let input = &args.positional[0];
    let source = match fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("uir-asm: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("uir-asm: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("listing") {
        print!("{}", prog.listing());
    }
    let output = args
        .get("output")
        .or_else(|| args.get("o"))
        .unwrap_or("a.uir");
    let image = to_image(&prog);
    if let Err(e) = fs::write(output, &image) {
        eprintln!("uir-asm: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "uir-asm: {} instructions, {} B rodata -> {output} ({} B)",
        prog.insns().len(),
        prog.rodata().len(),
        image.len()
    );
    ExitCode::SUCCESS
}
