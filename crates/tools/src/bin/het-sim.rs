//! `het-sim` — simulate a benchmark offload on the coupled platform.
//!
//! ```sh
//! het-sim --benchmark cnn
//! het-sim --benchmark hog --mcu-mhz 8 --iterations 32 --double-buffer
//! het-sim --benchmark matmul --link spi --sensor-direct --host-task
//! het-sim --benchmark svm-rbf --link-clock 25   # independent 25 MHz link
//! het-sim --benchmark strassen --budget-mw 10   # auto op point in budget
//! het-sim --benchmark matmul --ber 1e-6 --fault-seed 7   # noisy link
//! het-sim --benchmark cnn --stuck-eoc            # hang → watchdog → host
//! het-sim --benchmark cnn --trace cnn.json --counters   # cycle timeline
//! ```
//!
//! Prints the offload report (time/energy breakdown, efficiency), the
//! host-only comparison, and the compute-phase platform power. With any
//! fault knob set, a resilience section reports recovery activity and its
//! cost. `--trace FILE` records a cycle-level timeline of every component
//! and writes Chrome `trace_event` JSON (open in `chrome://tracing` or
//! Perfetto); `--counters` prints per-component busy/idle counters and the
//! per-phase breakdown.

use std::process::ExitCode;

use ulp_kernels::TargetEnv;
use ulp_link::SpiWidth;
use ulp_offload::{
    FaultConfig, HetSystem, HetSystemConfig, LinkClocking, OffloadOptions, OffloadPolicy,
    PipelineConfig, TargetRegion, DEFAULT_CHUNK_BYTES, DEFAULT_WINDOW,
};
use ulp_power::busy_activity;
use ulp_tools::{parse_benchmark, Args};
use ulp_trace::Tracer;

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let args = Args::parse(
        std::env::args().skip(1),
        &[
            "double-buffer",
            "pipeline",
            "sensor-direct",
            "host-task",
            "stuck-eoc",
            "stuck-fetch-enable",
            "no-fallback",
            "counters",
            "perf",
            "no-turbo",
            "serve",
            "soak",
            "serial",
            "no-fair",
            "fleet",
            "autoscale",
            "help",
        ],
    );
    if args.has("help") || !args.has("benchmark") {
        return Err(
            "usage: het-sim --benchmark NAME [--mcu-mhz F] [--iterations N] \
             [--double-buffer] [--pipeline] [--chunk-bytes N] [--window N] \
             [--sensor-direct] [--host-task] [--link spi|qspi] \
             [--link-clock SPI_MHZ] [--boost-mhz F] [--budget-mw P] \
             [--ber RATE] [--drop-rate R] [--truncate-rate R] [--hang-rate R] \
             [--late-eoc-rate R] [--late-eoc-cycles N] [--stuck-eoc] \
             [--stuck-fetch-enable] [--fault-seed N] [--max-retries N] \
             [--backoff-cycles N] [--watchdog-cycles N] [--no-fallback] \
             [--trace FILE] [--trace-cap N] [--counters] \
             [--perf] [--engine reference|turbo|microop|epoch] [--no-turbo] [--jobs N] \
             [--serve] [--pool N] [--max-batch N] [--serial] [--no-fair] \
             [--serve-seed N] [--duration-ms N] [--tenants N] \
             [--soak] [--burst-factor F] [--blackout-ms N] [--churn-ms N] \
             [--fleet] [--groups N] [--autoscale] [--max-pool N] \
             [--record-trace FILE] [--replay-trace FILE]"
                .to_owned(),
        );
    }
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or(""))?;
    let mcu_hz = args.get_f64("mcu-mhz", 16.0)? * 1e6;
    let iterations = args.get_usize("iterations", 16)?;
    // Engine selection must precede system construction, which latches the
    // choice. `--engine` picks one of the bit-identical engines;
    // `--no-turbo` stays as the original escape hatch to the reference
    // scheduler.
    if let Some(name) = args.get("engine") {
        let engine = ulp_cluster::Engine::from_name(name).ok_or_else(|| {
            let valid = ulp_cluster::Engine::ALL
                .iter()
                .map(|e| e.name())
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "--engine: `{name}` is not a known engine (valid engines, \
                 all bit-identical: {valid})"
            )
        })?;
        ulp_cluster::set_default_engine(engine);
    }
    if args.has("no-turbo") {
        ulp_cluster::set_default_turbo(false);
    }
    if args.has("jobs") {
        let jobs = args.get_usize("jobs", 1)?;
        if jobs == 0 {
            return Err("--jobs requires a positive integer".to_owned());
        }
        ulp_par::set_jobs(Some(jobs));
    }

    let mut cfg = HetSystemConfig {
        mcu_freq_hz: mcu_hz,
        ..HetSystemConfig::default()
    };
    if let Some(link) = args.get("link") {
        cfg.link_width = match link {
            "spi" => SpiWidth::Single,
            "qspi" => SpiWidth::Quad,
            other => return Err(format!("--link: `{other}` is not spi or qspi")),
        };
    }
    if args.has("link-clock") {
        cfg.link_clocking = LinkClocking::Independent {
            spi_hz: args.get_f64("link-clock", 25.0)? * 1e6,
        };
    } else if args.has("boost-mhz") {
        cfg.link_clocking = LinkClocking::BoostedMcu {
            mcu_hz: args.get_f64("boost-mhz", 32.0)? * 1e6,
        };
    }
    cfg.fault = FaultConfig {
        seed: args.get_usize("fault-seed", 1)? as u64,
        bit_error_rate: args.get_f64("ber", 0.0)?,
        drop_rate: args.get_f64("drop-rate", 0.0)?,
        truncate_rate: args.get_f64("truncate-rate", 0.0)?,
        hang_rate: args.get_f64("hang-rate", 0.0)?,
        late_eoc_rate: args.get_f64("late-eoc-rate", 0.0)?,
        late_eoc_cycles: args.get_usize("late-eoc-cycles", 10_000)? as u64,
        stuck_fetch_enable: args.has("stuck-fetch-enable"),
        stuck_eoc: args.has("stuck-eoc"),
    };
    if args.has("budget-mw") {
        let budget = args.get_f64("budget-mw", 10.0)? * 1e-3;
        let residual = budget - cfg.mcu.run_power_w(mcu_hz) - 20.0e-6;
        let op = cfg
            .power
            .max_freq_under_power(residual, &busy_activity(4, 8))
            .ok_or_else(|| format!("the MCU alone exceeds the {:.1} mW budget", budget * 1e3))?;
        cfg.pulp_vdd = op.vdd;
        cfg.pulp_freq_hz = op.freq_hz;
    }

    if args.has("fleet") {
        return run_fleet(&args, benchmark, &cfg);
    }
    if args.has("serve") || args.has("soak") {
        return run_serve(&args, benchmark, &cfg, args.has("soak"));
    }

    let mut sys = HetSystem::new(cfg);
    let trace_file = args.get("trace").map(str::to_owned);
    if let Some(path) = &trace_file {
        probe_trace_path(path)?;
    }
    let tracer = if trace_file.is_some() || args.has("counters") {
        Tracer::with_capacity(args.get_usize("trace-cap", ulp_trace::DEFAULT_RING_CAP)?)
    } else {
        Tracer::disabled()
    };
    sys.set_tracer(tracer.clone());
    let build = benchmark.build(&TargetEnv::pulp_parallel());
    println!(
        "benchmark : {} — {}",
        benchmark.name(),
        benchmark.description()
    );
    println!("region    : {}", TargetRegion::from_kernel(&build));
    println!(
        "platform  : {} @{:.0} MHz + PULP @{:.0} MHz ({:.2} V) over {} ({:?})",
        sys.config().mcu.name,
        sys.config().mcu_freq_hz / 1e6,
        sys.config().pulp_freq_hz / 1e6,
        sys.config().pulp_vdd,
        sys.config().link_width,
        sys.config().link_clocking,
    );

    let pipeline = PipelineConfig {
        enabled: args.has("pipeline"),
        chunk_bytes: args.get_usize("chunk-bytes", DEFAULT_CHUNK_BYTES)?,
        window: args.get_usize("window", DEFAULT_WINDOW)?,
    }
    .normalized();
    let opts = OffloadOptions {
        iterations,
        double_buffer: args.has("double-buffer"),
        sensor_direct: args.has("sensor-direct"),
        host_task: args.has("host-task"),
        force_reload: false,
        pipeline,
        policy: OffloadPolicy {
            max_retries: u32::try_from(args.get_usize("max-retries", 3)?)
                .map_err(|_| "--max-retries out of range".to_owned())?,
            backoff_cycles: args.get_usize("backoff-cycles", 64)? as u64,
            watchdog_cycles: args.get_usize("watchdog-cycles", 0)? as u64,
            fallback_to_host: !args.has("no-fallback"),
            ..OffloadPolicy::default()
        },
    };
    let host_build = benchmark.build(&TargetEnv::host_m4());
    let perf_retired_before = ulp_isa::perf::retired_total();
    let perf_clock = std::time::Instant::now();
    let report = sys
        .offload_with_fallback(&build, &host_build, &opts)
        .map_err(|e| e.to_string())?;
    let perf_host_seconds = perf_clock.elapsed().as_secs_f64();
    let perf_retired = ulp_isa::perf::retired_total() - perf_retired_before;

    println!("\noffload ({iterations} iterations):");
    println!("  binary    {:>10.3} ms", report.binary_seconds * 1e3);
    println!("  inputs    {:>10.3} ms", report.input_seconds * 1e3);
    println!(
        "  compute   {:>10.3} ms   ({} cycles cold / {} warm)",
        report.compute_seconds * 1e3,
        report.cycles_cold,
        report.cycles_warm
    );
    println!("  outputs   {:>10.3} ms", report.output_seconds * 1e3);
    println!(
        "  overlap   {:>10.3} ms hidden",
        report.overlapped_seconds * 1e3
    );
    println!(
        "  total     {:>10.3} ms   efficiency {:.1}%",
        report.total_seconds() * 1e3,
        report.efficiency() * 100.0
    );
    println!(
        "  energy    mcu {:.1} µJ + pulp {:.1} µJ + link {:.2} µJ = {:.1} µJ",
        report.mcu_energy_joules * 1e6,
        report.pulp_energy_joules * 1e6,
        report.link_energy_joules * 1e6,
        report.total_energy_joules() * 1e6
    );
    if pipeline.enabled {
        let serialized = report.total_seconds() + report.overlapped_seconds;
        println!(
            "  pipeline  chunk {} B, window {}: serialized {:.3} ms -> pipelined {:.3} ms \
             ({:.1}% of modeled cycles hidden{})",
            pipeline.chunk_bytes,
            pipeline.window,
            serialized * 1e3,
            report.total_seconds() * 1e3,
            report.overlapped_seconds / serialized.max(f64::MIN_POSITIVE) * 100.0,
            if report.overlap.engaged {
                ""
            } else {
                "; legacy double-buffer bound won"
            }
        );
    }
    if report.host_task_cycles > 0 {
        println!(
            "  host task {:.2} M cycles gained",
            report.host_task_cycles as f64 / 1e6
        );
    }
    println!(
        "  compute-phase platform power {:.2} mW",
        sys.compute_phase_power_watts(&report.activity) * 1e3
    );
    if args.has("perf") {
        println!(
            "\nsimulator perf ({} engine):",
            ulp_cluster::default_engine().name()
        );
        println!("  host wall-clock  {perf_host_seconds:>10.4} s");
        println!("  target retired   {perf_retired:>10} insns");
        println!(
            "  simulated MIPS   {:>10.2}",
            perf_retired as f64 / perf_host_seconds.max(f64::MIN_POSITIVE) / 1e6
        );
    }

    if sys.config().fault.is_active() {
        let r = &report.resilience;
        println!("\nresilience (seed {}):", sys.config().fault.seed);
        println!(
            "  crc errors {} detected / {} escaped, {} dropped frames",
            r.crc_errors_detected, r.crc_errors_escaped, r.frames_dropped
        );
        println!(
            "  {} retransmissions, {} watchdog trips, {} backoff cycles",
            r.retransmissions, r.watchdog_trips, r.backoff_cycles
        );
        println!(
            "  recovery cost {:.3} ms, {:.2} µJ",
            r.extra_seconds * 1e3,
            r.extra_energy_joules * 1e6
        );
        if r.fell_back_to_host {
            println!(
                "  FELL BACK TO HOST for {} iterations: +{:.3} ms, +{:.1} µJ",
                r.fallback_iterations,
                r.fallback_seconds * 1e3,
                r.fallback_energy_joules * 1e6
            );
        }
    }

    let host = sys.run_on_host(&host_build).map_err(|e| e.to_string())?;
    let per_iter = report.total_seconds() / iterations as f64;
    println!(
        "\nhost only : {:.3} ms, {:.1} µJ",
        host.seconds * 1e3,
        host.energy_joules * 1e6
    );
    println!(
        "speedup   : {:.1}×   energy gain {:.1}×",
        host.seconds / per_iter,
        host.energy_joules / (report.total_energy_joules() / iterations as f64)
    );

    if args.has("counters") {
        println!("\nper-component utilization (warm run, cluster cycles):");
        print!("{}", tracer.counters_table());
        println!("\nphase breakdown (host timeline):");
        print!("{}", tracer.phase_table());
        if pipeline.enabled {
            println!("\npipeline overlap (engine schedule):");
            print!("{}", tracer.overlap_table());
        }
    }
    if let Some(path) = trace_file {
        let json = tracer.chrome_json();
        std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        let dropped = tracer.dropped();
        println!(
            "\ntrace     : {} events → {path}{}",
            tracer.events().len(),
            if dropped > 0 {
                format!(" ({dropped} oldest events dropped; raise --trace-cap)")
            } else {
                String::new()
            }
        );
    }
    Ok(())
}

/// `--serve` / `--soak`: run the multi-tenant serving layer over a pool
/// of simulated workers, with the selected benchmark as the hot kernel.
/// The single-offload fault knobs (`--ber`, `--drop-rate`, `--hang-rate`,
/// …) arm per-worker chaos injection; `--soak` adds scripted disruption
/// phases (tenant bursts, a worker blackout, residency churn) and
/// cross-checks every accounting invariant of the resulting report.
#[allow(clippy::too_many_lines)]
fn run_serve(
    args: &Args,
    hot: ulp_kernels::Benchmark,
    cfg: &HetSystemConfig,
    soak: bool,
) -> Result<(), String> {
    use ulp_kernels::Benchmark;
    use ulp_serve::{
        fmt_ms, BatchPolicy, Blackout, Burst, ChaosConfig, CostBook, FaultProfile, ServeConfig,
        ServePool, SoakSpec, TenantLoad, TenantSpec, WorkloadSpec,
    };

    let mode = if soak { "--soak" } else { "--serve" };
    if cfg.fault.stuck_eoc || cfg.fault.stuck_fetch_enable {
        return Err(format!(
            "--stuck-eoc / --stuck-fetch-enable model a permanently wedged wire and cannot \
             apply to {mode}: the pool would simply never schedule that worker. Script a \
             finite outage with {mode}'s --blackout-ms instead."
        ));
    }

    let pool = args.get_usize("pool", 2)?.max(1);
    let max_batch = args.get_usize("max-batch", 8)?.max(1);
    let seed = args.get_usize("serve-seed", 42)? as u64;
    let duration_ms = args.get_usize("duration-ms", 1000)?.max(1);
    let n_tenants = args.get_usize("tenants", 2)?.max(1);
    let serial = args.has("serial");
    let fair = !args.has("no-fair");

    // The single-offload fault knobs translate directly into a uniform
    // per-worker chaos profile on the pool's virtual clock.
    let profile = FaultProfile {
        bit_error_rate: cfg.fault.bit_error_rate,
        drop_rate: cfg.fault.drop_rate,
        truncate_rate: cfg.fault.truncate_rate,
        hang_rate: cfg.fault.hang_rate,
        late_eoc_rate: cfg.fault.late_eoc_rate,
        late_eoc_cycles: cfg.fault.late_eoc_cycles,
    };
    let watchdog_cycles = args.get_usize("watchdog-cycles", 0)? as u64;
    let chaos = ChaosConfig {
        seed: cfg.fault.seed,
        profiles: vec![profile],
        max_retries: u32::try_from(args.get_usize("max-retries", 3)?)
            .map_err(|_| "--max-retries out of range".to_owned())?,
        backoff_cycles: args.get_usize("backoff-cycles", 64)? as u64,
        watchdog_ns: (watchdog_cycles as f64 * 1e9 / cfg.pulp_freq_hz).round() as u64,
        fallback_to_host: !args.has("no-fallback"),
    };

    let trace_file = args.get("trace").map(str::to_owned);
    if let Some(path) = &trace_file {
        probe_trace_path(path)?;
    }
    let tracer = if trace_file.is_some() || args.has("counters") {
        Tracer::with_capacity(args.get_usize("trace-cap", ulp_trace::DEFAULT_RING_CAP)?)
    } else {
        Tracer::disabled()
    };

    let env = TargetEnv::pulp_parallel();
    let book = if chaos.is_active() && chaos.fallback_to_host {
        CostBook::measure_with_host(&env, &TargetEnv::host_m4(), cfg, &Benchmark::ALL)
    } else {
        CostBook::measure(&env, cfg, &Benchmark::ALL)
    }
    .map_err(|e| format!("cost book: {e}"))?;
    let mix: Vec<(Benchmark, f64)> = Benchmark::ALL
        .iter()
        .map(|&b| (b, if b == hot { 9.0 } else { 1.0 }))
        .collect();
    let mix_total: f64 = mix.iter().map(|(_, w)| *w).sum();
    let mean_ns: f64 = mix
        .iter()
        .map(|&(b, w)| book.est_ns(b, 1) as f64 * w / mix_total)
        .sum();
    // Offered load sized to keep the pool saturated, split evenly.
    let rate = 1.5 * pool as f64 * 1e9 / mean_ns;

    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            let mut t = if i == 0 {
                TenantSpec::weighted("app", 2)
            } else {
                TenantSpec::new(&format!("bg{i}"))
            };
            t.queue_cap = 256;
            t
        })
        .collect();
    let workload = WorkloadSpec {
        seed,
        duration_ns: duration_ms as u64 * 1_000_000,
        tenants: tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| TenantLoad {
                spec: spec.clone(),
                rate_rps: rate / n_tenants as f64,
                kernel_mix: mix.clone(),
                class_mix: if i == 0 {
                    [0.3, 0.6, 0.1]
                } else {
                    [0.0, 0.6, 0.4]
                },
                iterations: 1,
            })
            .collect(),
    };
    let policy = if serial {
        BatchPolicy::Serial
    } else {
        BatchPolicy::KernelAware { max_batch }
    };
    let serve_cfg = ServeConfig {
        pool,
        policy,
        fair,
        ..ServeConfig::default()
    };

    let duration_ns = duration_ms as u64 * 1_000_000;
    let (report, offered, violations) = if soak {
        // Scripted disruption phases: a flash crowd on the app tenant, a
        // mid-run blackout of worker 0, and periodic residency churn.
        let burst_factor = args.get_f64("burst-factor", 100.0)?;
        let blackout_ms = args.get_usize("blackout-ms", duration_ms / 10)? as u64;
        let churn_ms = args.get_usize("churn-ms", duration_ms / 4)? as u64;
        let spec = SoakSpec {
            workload,
            bursts: vec![Burst {
                tenant: 0,
                start_ns: duration_ns * 2 / 5,
                end_ns: duration_ns * 9 / 20,
                factor: burst_factor,
            }],
            blackouts: if blackout_ms > 0 {
                vec![Blackout {
                    worker: 0,
                    start_ns: duration_ns / 2,
                    end_ns: duration_ns / 2 + blackout_ms * 1_000_000,
                }]
            } else {
                Vec::new()
            },
            churn_period_ns: churn_ms * 1_000_000,
            chaos,
            serve: serve_cfg,
        };
        let out = ulp_serve::run_soak(cfg, book, &spec)?;
        (out.report, out.requests, out.violations)
    } else {
        let requests = workload.generate();
        let mut serve_pool = ServePool::new(cfg, tenants, book, serve_cfg)
            .with_chaos(chaos)
            .with_tracer(tracer.clone());
        let report = serve_pool.run(&requests).map_err(|e| e.to_string())?;
        (report, requests.len() as u64, Vec::new())
    };

    println!(
        "{}     : hot kernel {}, pool {pool}, {} dispatch{}, {} tenants, seed {seed}",
        if soak { "soak " } else { "serve" },
        hot.name(),
        if serial {
            "serial".to_owned()
        } else {
            format!("batched (max {max_batch})")
        },
        if fair { ", weighted-fair" } else { ", FIFO" },
        n_tenants,
    );
    println!(
        "load      : {offered} requests over {duration_ms} ms of virtual time ({rate:.1} rps base)"
    );
    println!(
        "\nserved    : {} completed, {} rejected, {} failed over, {} failed, {} deadline misses",
        report.completed,
        report.rejected,
        report.failed_over,
        report.failed,
        report.deadline_misses
    );
    println!(
        "throughput: {:.1} rps over {} ms makespan",
        report.throughput_rps(),
        fmt_ms(report.makespan_ns)
    );
    println!(
        "batching  : mean batch {:.2}, {} binary uploads, max queue depth {}",
        report.mean_batch(),
        report.uploads,
        report.max_queue_depth
    );
    println!(
        "latency   : p50 {} ms, p95 {} ms, p99 {} ms",
        fmt_ms(report.latency.p50_ns),
        fmt_ms(report.latency.p95_ns),
        fmt_ms(report.latency.p99_ns)
    );
    println!(
        "pool      : utilization {:.1}%  busy ms per worker: {}",
        report.utilization() * 100.0,
        report
            .worker_busy_ns
            .iter()
            .map(|&ns| fmt_ms(ns))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\nper tenant:");
    println!(
        "  {:<8} {:>6} {:>9} {:>10} {:>10} {:>10} {:>8} {:>7}",
        "name", "weight", "completed", "p50 ms", "p95 ms", "p99 ms", "rejected", "misses"
    );
    for t in &report.tenants {
        println!(
            "  {:<8} {:>6} {:>9} {:>10} {:>10} {:>10} {:>8} {:>7}",
            t.name,
            t.weight,
            t.latency.count,
            fmt_ms(t.latency.p50_ns),
            fmt_ms(t.latency.p95_ns),
            fmt_ms(t.latency.p99_ns),
            t.rejected,
            t.deadline_misses
        );
    }

    if report.chaos.any() {
        let c = &report.chaos;
        println!("\nchaos (seed {}):", cfg.fault.seed);
        println!(
            "  link      : {} frames, {} damaged, {} bits flipped, {} crc escapes",
            c.frames, c.frames_damaged, c.bits_flipped, c.crc_escapes
        );
        println!(
            "  recovery  : {} retransmissions, {} watchdog fires, {} late events",
            c.retransmissions, c.watchdog_fires, c.late_events
        );
        println!(
            "  fallback  : {} batches / {} requests to host, {} requests failed",
            c.fallback_batches, c.fallback_requests, c.failed_requests
        );
        println!(
            "  timeline  : {} residency flushes, {} blackout stalls",
            c.residency_flushes, c.blackout_windows
        );
        println!("\nSLO ledger (tenant x class: finished/missed):");
        for (ti, row) in report.slo.cells.iter().enumerate() {
            let cells: Vec<String> = ulp_serve::DeadlineClass::ALL
                .iter()
                .zip(row.iter())
                .map(|(cl, cell)| {
                    format!(
                        "{} {}/{}",
                        cl.name(),
                        cell.completed + cell.failed_over,
                        cell.missed
                    )
                })
                .collect();
            println!("  {:<8} {}", report.tenants[ti].name, cells.join("  "));
        }
    }

    if soak {
        if violations.is_empty() {
            println!(
                "\ninvariants: OK — {} requests conserved, ledger exact, no queue leaks",
                offered
            );
        } else {
            for v in &violations {
                eprintln!("invariant VIOLATION: {v}");
            }
            return Err(format!(
                "{} invariant violation(s) in soak seed {seed}",
                violations.len()
            ));
        }
    }

    if args.has("counters") {
        println!("\nper-worker utilization counters:");
        print!("{}", tracer.counters_table());
    }
    if let Some(path) = trace_file {
        let json = tracer.chrome_json();
        std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\ntrace     : {} events → {path}", tracer.events().len());
    }
    Ok(())
}

/// `--fleet`: shard tenants across node groups and serve the stream
/// through per-group pools, optionally autoscaled (`--autoscale` grows
/// and shrinks each group between `--pool` and `--max-pool` workers
/// against queue depth and tail latency). `--record-trace` captures the
/// offered request stream to the versioned trace format (`.json` for
/// the JSON encoding, anything else binary); `--replay-trace` serves a
/// previously recorded trace instead of generating a workload, so two
/// fleet configurations can be compared on a byte-identical stream.
#[allow(clippy::too_many_lines)]
fn run_fleet(
    args: &Args,
    hot: ulp_kernels::Benchmark,
    cfg: &HetSystemConfig,
) -> Result<(), String> {
    use ulp_kernels::Benchmark;
    use ulp_serve::{
        fmt_ms, render_scale_log, AdmissionPricing, AutoscalePolicy, BatchPolicy, CostBook, Fleet,
        FleetConfig, ServeConfig, TenantLoad, TenantSpec, TraceRecorder, TraceReplayer,
        WorkloadSpec,
    };

    if cfg.fault.is_active() {
        return Err(
            "--fleet shards tenants across independent node groups and does not arm \
             chaos injection; use --serve/--soak for fault studies"
                .to_owned(),
        );
    }

    let groups = args.get_usize("groups", 2)?.max(1);
    let pool = args.get_usize("pool", 2)?.max(1);
    let max_pool = args.get_usize("max-pool", pool * 4)?.max(pool);
    let max_batch = args.get_usize("max-batch", 8)?.max(1);
    let seed = args.get_usize("serve-seed", 42)? as u64;
    let duration_ms = args.get_usize("duration-ms", 1000)?.max(1);
    let n_tenants = args.get_usize("tenants", groups * 4)?.max(1);
    let autoscale = args.has("autoscale");

    let env = TargetEnv::pulp_parallel();
    let book =
        CostBook::measure(&env, cfg, &Benchmark::ALL).map_err(|e| format!("cost book: {e}"))?;

    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            let mut t = TenantSpec::new(&format!("tenant-{i}"));
            t.queue_cap = 256;
            t
        })
        .collect();

    let requests = if let Some(path) = args.get("replay-trace") {
        let bytes =
            std::fs::read(path).map_err(|e| format!("--replay-trace: cannot read {path}: {e}"))?;
        let replay =
            TraceReplayer::decode(&bytes).map_err(|e| format!("--replay-trace: {path}: {e}"))?;
        let max_tenant = replay.requests().iter().map(|r| r.tenant).max();
        if let Some(m) = max_tenant {
            if m >= tenants.len() {
                return Err(format!(
                    "--replay-trace: trace names tenant {m} but only {} tenants are \
                     configured; raise --tenants to at least {}",
                    tenants.len(),
                    m + 1
                ));
            }
        }
        println!(
            "replay    : {} requests from {path}",
            replay.requests().len()
        );
        replay.into_requests()
    } else {
        let mix: Vec<(Benchmark, f64)> = Benchmark::ALL
            .iter()
            .map(|&b| (b, if b == hot { 9.0 } else { 1.0 }))
            .collect();
        let mix_total: f64 = mix.iter().map(|(_, w)| *w).sum();
        let mean_ns: f64 = mix
            .iter()
            .map(|&(b, w)| book.est_ns(b, 1) as f64 * w / mix_total)
            .sum();
        // Offered load sized against the configured per-group floor.
        let rate = 1.5 * (groups * pool) as f64 * 1e9 / mean_ns;
        let workload = WorkloadSpec {
            seed,
            duration_ns: duration_ms as u64 * 1_000_000,
            tenants: tenants
                .iter()
                .map(|spec| TenantLoad {
                    spec: spec.clone(),
                    rate_rps: rate / n_tenants as f64,
                    kernel_mix: mix.clone(),
                    class_mix: [0.3, 0.5, 0.2],
                    iterations: 1,
                })
                .collect(),
        };
        workload.generate()
    };

    if let Some(path) = args.get("record-trace") {
        let mut rec = TraceRecorder::new();
        rec.record_all(&requests);
        let bytes = if path.ends_with(".json") {
            rec.encode_json().into_bytes()
        } else {
            rec.encode()
        };
        std::fs::write(path, &bytes)
            .map_err(|e| format!("--record-trace: cannot write {path}: {e}"))?;
        println!(
            "trace     : recorded {} requests ({} bytes) -> {path}",
            requests.len(),
            bytes.len()
        );
    }

    let serve_cfg = ServeConfig {
        pool,
        policy: if args.has("serial") {
            BatchPolicy::Serial
        } else {
            BatchPolicy::KernelAware { max_batch }
        },
        fair: !args.has("no-fair"),
        autoscale: autoscale.then(|| AutoscalePolicy::new(pool, max_pool)),
        admission: if autoscale {
            AdmissionPricing::enabled()
        } else {
            AdmissionPricing::default()
        },
        ..ServeConfig::default()
    };
    let fleet = Fleet::new(
        cfg,
        tenants.clone(),
        book,
        FleetConfig {
            groups,
            serve: serve_cfg,
        },
    );
    let report = fleet.run(&requests).map_err(|e| e.to_string())?;

    println!(
        "fleet     : hot kernel {}, {groups} groups x {} workers, {} tenants, seed {seed}",
        hot.name(),
        if autoscale {
            format!("{pool}-{max_pool} (autoscaled)")
        } else {
            format!("{pool}")
        },
        n_tenants,
    );
    println!("load      : {} requests offered", report.offered);
    println!(
        "served    : {} completed, {} rejected ({} priced out), {} failed, {} deadline misses",
        report.completed(),
        report.rejected(),
        report.priced_out(),
        report.failed(),
        report.deadline_misses()
    );
    println!(
        "throughput: {:.1} rps over {} ms makespan, utilization {:.1}%",
        report.throughput_rps(),
        fmt_ms(report.makespan_ns),
        report.utilization() * 100.0
    );
    println!(
        "latency   : p50 {} ms, p95 {} ms, p99 {} ms",
        fmt_ms(report.latency.p50_ns),
        fmt_ms(report.latency.p95_ns),
        fmt_ms(report.latency.p99_ns)
    );
    println!("\nper group:");
    println!(
        "  {:<6} {:>7} {:>9} {:>9} {:>8} {:>10}",
        "group", "tenants", "offered", "completed", "rejected", "p99 ms"
    );
    for g in &report.groups {
        println!(
            "  {:<6} {:>7} {:>9} {:>9} {:>8} {:>10}",
            g.group,
            g.tenants.len(),
            g.offered,
            g.report.completed,
            g.report.rejected,
            fmt_ms(g.report.latency.p99_ns)
        );
    }
    if autoscale {
        println!(
            "\nautoscaler: {} ups, {} downs",
            report.scale_ups(),
            report.scale_downs()
        );
        print!("{}", render_scale_log(&report.scale_events));
    }

    let violations = ulp_serve::invariants::check_fleet(&report);
    if violations.is_empty() {
        println!(
            "\ninvariants: OK — {} requests conserved across {groups} groups",
            report.offered
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant VIOLATION: {v}");
        }
        Err(format!(
            "{} fleet invariant violation(s) at seed {seed}",
            violations.len()
        ))
    }
}

/// Probes a `--trace` output path up front, before any simulation runs: a
/// long run whose trace cannot be written at the very end is pure waste.
/// On success an empty placeholder file is left behind; the real trace
/// overwrites it. On failure the error carries the path and the OS cause.
fn probe_trace_path(path: &str) -> Result<(), String> {
    std::fs::write(path, b"").map_err(|e| {
        format!("--trace: cannot write {path}: {e} (checked before simulating, nothing was run)")
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("het-sim: {e}");
            ExitCode::FAILURE
        }
    }
}
