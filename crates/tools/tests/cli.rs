//! End-to-end tests of the command-line tools, driving the real binaries.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ulp-tools-test-{}-{name}", std::process::id()));
    p
}

const DEMO: &str = "
# triangular number of r3's initial value
    addi r1, r0, 100
    addi r3, r0, 0
top:
    add  r3, r3, r1
    addi r1, r1, -1
    bne  r1, r0, top
    halt
";

#[test]
fn asm_dis_run_pipeline() {
    let src = tmp("demo.s");
    let img = tmp("demo.uir");
    fs::write(&src, DEMO).unwrap();

    // Assemble.
    let out = Command::new(env!("CARGO_BIN_EXE_uir-asm"))
        .arg(&src)
        .args(["--output", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "uir-asm failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(img.exists());

    // Disassemble: the listing must contain the loop body.
    let out = Command::new(env!("CARGO_BIN_EXE_uir-dis"))
        .arg(&img)
        .output()
        .unwrap();
    assert!(out.status.success());
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("add r3, r3, r1"), "listing:\n{listing}");
    assert!(!listing.contains("bne r1, r1"));

    // Run on each model and check the architected result via --dump.
    for model in ["baseline", "m3", "m4", "or10n"] {
        let out = Command::new(env!("CARGO_BIN_EXE_uir-run"))
            .arg(&img)
            .args(["--model", model, "--dump", "r3"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{model}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("(5050)"), "{model} output:\n{stdout}");
    }

    let _ = fs::remove_file(src);
    let _ = fs::remove_file(img);
}

#[test]
fn run_accepts_assembly_source_directly_with_trace() {
    let src = tmp("direct.s");
    fs::write(&src, "addi r5, r0, 7\nslli r5, r5, 2\nhalt\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_uir-run"))
        .arg(&src)
        .args(["--model", "or10n", "--trace", "10", "--dump", "r5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(28)"), "{stdout}");
    assert!(
        stdout.contains("slli r5, r5, 2"),
        "trace missing:\n{stdout}"
    );
    let _ = fs::remove_file(src);
}

#[test]
fn run_on_cluster_reports_activity() {
    let src = tmp("cluster.s");
    // Every core stores its id+40 into TCDM, master raises EOC.
    fs::write(
        &src,
        "
    csrr r1, CoreId
    slli r2, r1, 2
    lui  r3, 0x4000
    add  r3, r3, r2
    addi r4, r1, 40
    sw   r4, 0(r3)
    beq  r1, r0, eoc
    halt
eoc:
    sev 0
    halt
",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_uir-run"))
        .arg(&src)
        .args(["--cluster", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cluster: 4 cores"), "{stdout}");
    assert!(stdout.contains("end-of-computation"), "{stdout}");
    let _ = fs::remove_file(src);
}

#[test]
fn het_sim_smoke() {
    let out = Command::new(env!("CARGO_BIN_EXE_het-sim"))
        .args([
            "--benchmark",
            "svm-linear",
            "--mcu-mhz",
            "16",
            "--iterations",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("svm (linear)"));
    assert!(stdout.contains("speedup"));
    assert!(stdout.contains("compute-phase platform power"));
}

#[test]
fn het_sim_engine_flag_selects_and_validates() {
    for engine in ["reference", "turbo", "microop", "epoch"] {
        let out = Command::new(env!("CARGO_BIN_EXE_het-sim"))
            .args([
                "--benchmark",
                "svm-linear",
                "--iterations",
                "2",
                "--perf",
                "--engine",
                engine,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--engine {engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("simulator perf ({engine} engine)")),
            "--engine {engine} not reflected in --perf:\n{stdout}"
        );
    }

    let out = Command::new(env!("CARGO_BIN_EXE_het-sim"))
        .args(["--benchmark", "svm-linear", "--engine", "warp"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The rejection must name the bad value and list every valid engine.
    assert!(
        stderr.contains("`warp` is not a known engine"),
        "missing contextful rejection:\n{stderr}"
    );
    for valid in ["reference", "turbo", "microop", "epoch"] {
        assert!(
            stderr.contains(valid),
            "error must list `{valid}`:\n{stderr}"
        );
    }
}

#[test]
fn het_sim_unwritable_trace_path_fails_fast_with_context() {
    // The parent directory does not exist, so the trace can never be
    // written; het-sim must report that up front (before simulating) with
    // the path and the OS cause, not panic or waste a run.
    let path = tmp("no-such-dir").join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_het-sim"))
        .args([
            "--benchmark",
            "svm-linear",
            "--iterations",
            "2",
            "--trace",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write") && stderr.contains(path.to_str().unwrap()),
        "stderr must name the path and cause:\n{stderr}"
    );
    assert!(
        stderr.contains("nothing was run"),
        "error must say the check ran up front:\n{stderr}"
    );
    // Fast failure: the offload report header is never printed.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("offload ("),
        "simulation must not have run:\n{stdout}"
    );
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown benchmark.
    let out = Command::new(env!("CARGO_BIN_EXE_het-sim"))
        .args(["--benchmark", "quicksort"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));

    // Syntax error with the line number.
    let src = tmp("bad.s");
    fs::write(&src, "nop\nfrobnicate r1\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_uir-asm"))
        .arg(&src)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = fs::remove_file(src);
}
