//! Lightweight multi-channel cluster DMA.
//!
//! Models the PULP DMA (paper §III-B, ref. 31): a multi-channel engine with a
//! direct connection to the TCDM, moving one 32-bit word per cycle after a
//! short programming phase. Transfers copy data functionally at start time
//! and report a completion time; the caller (runtime or double-buffering
//! schedule) decides what overlaps with what.

use ulp_trace::{Component, EventKind, Tracer};

#[derive(Clone, Copy, Debug, Default)]
struct Channel {
    busy_until: u64,
}

/// The DMA engine: channel allocation and transfer timing.
///
/// # Example
///
/// ```
/// use ulp_cluster::Dma;
///
/// let mut dma = Dma::new(2, 10);
/// // 256 bytes = 64 words: 10 setup + 64 transfer cycles.
/// assert_eq!(dma.schedule(0, 256), 74);
/// // A second transfer takes the other channel and runs in parallel.
/// assert_eq!(dma.schedule(0, 256), 74);
/// ```
#[derive(Clone, Debug)]
pub struct Dma {
    channels: Vec<Channel>,
    setup_cycles: u32,
    busy_cycles: u64,
    transfers: u64,
    bytes_moved: u64,
    tracer: Tracer,
}

impl Dma {
    /// Creates a DMA with `channels` channels and the given per-transfer
    /// programming overhead.
    #[must_use]
    pub fn new(channels: usize, setup_cycles: u32) -> Self {
        assert!(channels >= 1, "DMA needs at least one channel");
        Dma {
            channels: vec![Channel::default(); channels],
            setup_cycles,
            busy_cycles: 0,
            transfers: 0,
            bytes_moved: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a structured event tracer (records burst intervals).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Schedules a transfer of `len` bytes requested at time `now`.
    ///
    /// Picks the earliest-free channel; the transfer occupies it for
    /// `setup + ceil(len/4)` cycles starting when both the request time and
    /// the channel allow. Returns the completion time.
    ///
    /// An empty burst (`len == 0`) is a complete no-op: it occupies no
    /// channel, charges no setup cycles and records nothing. Empty `map`
    /// clauses reach the runtime as zero-length frames and must cost
    /// nothing end to end.
    pub fn schedule(&mut self, now: u64, len: usize) -> u64 {
        if len == 0 {
            return now;
        }
        let ch = self
            .channels
            .iter_mut()
            .min_by_key(|c| c.busy_until)
            .expect("at least one channel");
        let start = now.max(ch.busy_until);
        let duration = u64::from(self.setup_cycles) + (len as u64).div_ceil(4);
        ch.busy_until = start + duration;
        let done = ch.busy_until;
        self.busy_cycles += duration;
        self.transfers += 1;
        self.bytes_moved += len as u64;
        self.tracer.emit(
            Component::Dma,
            EventKind::DmaBurst { bytes: len as u32 },
            start,
            duration,
        );
        done
    }

    /// Earliest time at which every outstanding transfer has completed.
    #[must_use]
    pub fn idle_at(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.busy_until)
            .max()
            .unwrap_or(0)
    }

    /// Total channel-busy cycles (activity factor numerator for the power
    /// model's χ_dma).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes moved.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Resets the PMU counters and frees all channels.
    pub fn reset_stats(&mut self) {
        for c in &mut self.channels {
            c.busy_until = 0;
        }
        self.busy_cycles = 0;
        self.transfers = 0;
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_timing_setup_plus_words() {
        let mut dma = Dma::new(2, 10);
        let done = dma.schedule(100, 256);
        assert_eq!(done, 100 + 10 + 64);
        assert_eq!(dma.bytes_moved(), 256);
    }

    #[test]
    fn odd_length_rounds_up_to_words() {
        let mut dma = Dma::new(1, 0);
        assert_eq!(dma.schedule(0, 5), 2);
    }

    #[test]
    fn two_channels_overlap() {
        let mut dma = Dma::new(2, 0);
        let a = dma.schedule(0, 400); // ch0: 0..100
        let b = dma.schedule(0, 400); // ch1: 0..100 (parallel)
        assert_eq!(a, 100);
        assert_eq!(b, 100);
        let c = dma.schedule(0, 400); // queues behind one of them
        assert_eq!(c, 200);
        assert_eq!(dma.idle_at(), 200);
    }

    #[test]
    fn requests_after_busy_start_late() {
        let mut dma = Dma::new(1, 0);
        let a = dma.schedule(0, 40); // 0..10
        let b = dma.schedule(50, 40); // starts at 50
        assert_eq!(a, 10);
        assert_eq!(b, 60);
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let mut dma = Dma::new(1, 10);
        let tracer = Tracer::enabled();
        dma.set_tracer(tracer.clone());
        assert_eq!(dma.schedule(42, 0), 42, "no setup cycles charged");
        assert_eq!(dma.transfers(), 0);
        assert_eq!(dma.busy_cycles(), 0);
        assert_eq!(dma.idle_at(), 0, "no channel occupied");
        assert!(tracer.events().is_empty(), "no burst recorded");
        // A real burst after the no-op is unaffected.
        assert_eq!(dma.schedule(0, 4), 11);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut dma = Dma::new(1, 5);
        let _ = dma.schedule(0, 100);
        assert_eq!(dma.transfers(), 1);
        assert_eq!(dma.busy_cycles(), 5 + 25);
        dma.reset_stats();
        assert_eq!(dma.busy_cycles(), 0);
        assert_eq!(dma.idle_at(), 0);
    }
}
