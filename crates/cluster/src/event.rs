//! Hardware event unit / synchronizer.
//!
//! The PULP cluster "contains a HW synchronizer used to accelerate
//! synchronization between the cores, making sure that they can be put to
//! sleep and woken up in just a few cycles" (paper §III-B). This module
//! tracks barrier arrivals and the end-of-computation (EOC) wire towards
//! the host; the [`Cluster`](crate::Cluster) routes `sev`/`wfe`/`barrier`
//! instruction outcomes through it.

/// Barrier and event bookkeeping for one cluster.
///
/// # Example
///
/// ```
/// use ulp_cluster::EventUnit;
///
/// let mut eu = EventUnit::new(2);
/// assert_eq!(eu.barrier_arrive(0, 100), None); // first core waits
/// assert_eq!(eu.barrier_arrive(1, 140), Some(140)); // release at last arrival
/// ```
#[derive(Clone, Debug)]
pub struct EventUnit {
    participants: usize,
    arrived: Vec<Option<u64>>,
    barriers_completed: u64,
    eoc_at: Option<u64>,
}

impl EventUnit {
    /// Creates an event unit for `participants` cores.
    #[must_use]
    pub fn new(participants: usize) -> Self {
        EventUnit {
            participants,
            arrived: vec![None; participants],
            barriers_completed: 0,
            eoc_at: None,
        }
    }

    /// Number of cores that take part in barriers.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Registers the arrival of `core` at the barrier at time `at`.
    ///
    /// Returns `Some(release_time)` when this was the last expected arrival:
    /// all waiting cores should be woken at that time. The release time is
    /// the latest arrival (the barrier cannot release before everyone is
    /// in); the per-core wake-up latency is charged by
    /// [`Core::wake`](ulp_isa::Core::wake).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or arrives twice at the same
    /// barrier generation (both indicate a simulator bug).
    pub fn barrier_arrive(&mut self, core: usize, at: u64) -> Option<u64> {
        assert!(
            core < self.participants,
            "core {core} outside barrier group"
        );
        assert!(
            self.arrived[core].is_none(),
            "core {core} arrived twice at the barrier"
        );
        self.arrived[core] = Some(at);
        if self.arrived.iter().all(Option::is_some) {
            let release = self.arrived.iter().map(|t| t.unwrap()).max().unwrap();
            self.arrived.fill(None);
            self.barriers_completed += 1;
            Some(release)
        } else {
            None
        }
    }

    /// How many cores are currently waiting at the barrier.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.arrived.iter().filter(|t| t.is_some()).count()
    }

    /// Barriers completed since the last reset (PMU).
    #[must_use]
    pub fn barriers_completed(&self) -> u64 {
        self.barriers_completed
    }

    /// Raises the end-of-computation wire at time `at` (first edge wins).
    pub fn raise_eoc(&mut self, at: u64) {
        if self.eoc_at.is_none() {
            self.eoc_at = Some(at);
        }
    }

    /// Time at which EOC was raised, if it was.
    #[must_use]
    pub fn eoc_at(&self) -> Option<u64> {
        self.eoc_at
    }

    /// Clears barrier state and the EOC wire (new offload).
    pub fn reset(&mut self) {
        self.arrived.fill(None);
        self.eoc_at = None;
        self.barriers_completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_at_last_arrival() {
        let mut eu = EventUnit::new(3);
        assert_eq!(eu.barrier_arrive(0, 100), None);
        assert_eq!(eu.barrier_arrive(2, 250), None);
        assert_eq!(eu.waiting(), 2);
        assert_eq!(eu.barrier_arrive(1, 180), Some(250));
        assert_eq!(eu.waiting(), 0);
        assert_eq!(eu.barriers_completed(), 1);
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let mut eu = EventUnit::new(2);
        assert_eq!(eu.barrier_arrive(0, 10), None);
        assert_eq!(eu.barrier_arrive(1, 20), Some(20));
        assert_eq!(eu.barrier_arrive(1, 30), None);
        assert_eq!(eu.barrier_arrive(0, 50), Some(50));
        assert_eq!(eu.barriers_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_is_a_bug() {
        let mut eu = EventUnit::new(2);
        let _ = eu.barrier_arrive(0, 10);
        let _ = eu.barrier_arrive(0, 11);
    }

    #[test]
    fn eoc_first_edge_wins() {
        let mut eu = EventUnit::new(4);
        assert_eq!(eu.eoc_at(), None);
        eu.raise_eoc(500);
        eu.raise_eoc(900);
        assert_eq!(eu.eoc_at(), Some(500));
        eu.reset();
        assert_eq!(eu.eoc_at(), None);
    }

    #[test]
    fn single_core_barrier_releases_immediately() {
        let mut eu = EventUnit::new(1);
        assert_eq!(eu.barrier_arrive(0, 42), Some(42));
    }
}
