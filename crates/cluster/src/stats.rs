//! Performance-monitoring-unit output: component activity factors.
//!
//! The paper's FPGA emulator is "augmented with a performance monitoring
//! unit that is used to measure active and idle cycles for cores, DMAs and
//! interconnects" (§IV-A); the measured activity ratios χᵢ drive the
//! dynamic power model P_d = f·Σᵢ χᵢ·ρᵢ. [`ClusterActivity`] is the
//! equivalent record produced by a simulation run.

/// Activity snapshot of one cluster run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterActivity {
    /// Wall-clock duration of the run in cluster cycles.
    pub total_cycles: u64,
    /// Per-core cycles spent actively executing (not clock-gated).
    pub core_active_cycles: Vec<u64>,
    /// Per-core retired instructions.
    pub core_retired: Vec<u64>,
    /// TCDM bank-busy cycles (summed over banks).
    pub tcdm_busy_cycles: u64,
    /// Number of TCDM banks.
    pub tcdm_banks: usize,
    /// TCDM accesses that stalled on a bank conflict.
    pub tcdm_conflicts: u64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// L2 data accesses from cores.
    pub l2_accesses: u64,
    /// DMA channel-busy cycles.
    pub dma_busy_cycles: u64,
    /// DMA bytes moved.
    pub dma_bytes: u64,
    /// Barriers completed.
    pub barriers: u64,
}

impl ClusterActivity {
    /// Activity factor χ of core `i`: active cycles over total cycles.
    #[must_use]
    pub fn chi_core(&self, i: usize) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.core_active_cycles
            .get(i)
            .map_or(0.0, |&a| a as f64 / self.total_cycles as f64)
    }

    /// Mean activity factor across all cores.
    #[must_use]
    pub fn chi_cores_mean(&self) -> f64 {
        if self.core_active_cycles.is_empty() {
            return 0.0;
        }
        (0..self.core_active_cycles.len())
            .map(|i| self.chi_core(i))
            .sum::<f64>()
            / self.core_active_cycles.len() as f64
    }

    /// Activity factor of the TCDM (bank-busy cycles over bank-cycles).
    #[must_use]
    pub fn chi_tcdm(&self) -> f64 {
        let denom = self.total_cycles.saturating_mul(self.tcdm_banks as u64);
        if denom == 0 {
            return 0.0;
        }
        self.tcdm_busy_cycles as f64 / denom as f64
    }

    /// Activity factor of the DMA.
    #[must_use]
    pub fn chi_dma(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        (self.dma_busy_cycles as f64 / self.total_cycles as f64).min(1.0)
    }

    /// Instruction-cache hit rate.
    #[must_use]
    pub fn icache_hit_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            return 0.0;
        }
        self.icache_hits as f64 / total as f64
    }

    /// Total retired instructions across all cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.core_retired.iter().sum()
    }

    /// Instructions per cycle aggregated over the cluster.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.total_retired() as f64 / self.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterActivity {
        ClusterActivity {
            total_cycles: 1000,
            core_active_cycles: vec![900, 800, 800, 500],
            core_retired: vec![850, 700, 700, 400],
            tcdm_busy_cycles: 2000,
            tcdm_banks: 8,
            tcdm_conflicts: 50,
            icache_hits: 990,
            icache_misses: 10,
            l2_accesses: 4,
            dma_busy_cycles: 100,
            dma_bytes: 4096,
            barriers: 3,
        }
    }

    #[test]
    fn chi_factors_in_unit_range() {
        let a = sample();
        for i in 0..4 {
            let chi = a.chi_core(i);
            assert!((0.0..=1.0).contains(&chi));
        }
        assert!((a.chi_core(0) - 0.9).abs() < 1e-12);
        assert!((a.chi_tcdm() - 0.25).abs() < 1e-12);
        assert!((a.chi_dma() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn aggregates() {
        let a = sample();
        assert_eq!(a.total_retired(), 2650);
        assert!((a.ipc() - 2.65).abs() < 1e-12);
        assert!((a.icache_hit_rate() - 0.99).abs() < 1e-12);
        assert!((a.chi_cores_mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let a = ClusterActivity::default();
        assert_eq!(a.chi_core(0), 0.0);
        assert_eq!(a.chi_tcdm(), 0.0);
        assert_eq!(a.ipc(), 0.0);
        assert_eq!(a.icache_hit_rate(), 0.0);
    }
}
