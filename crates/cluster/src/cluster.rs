//! The cluster stepping engine: cores + shared memories + event unit.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ulp_isa::{
    Access, Block, BlockExit, Bus, BusError, Core, CoreModel, CoreState, ExecError, Fetched,
    MemSize, Program, Reg, StepOutcome,
};
use ulp_trace::{Component, EventKind, Tracer};

use crate::config::ClusterConfig;
use crate::dma::Dma;
use crate::event::EventUnit;
use crate::icache::ICache;
use crate::l2::L2Memory;
use crate::stats::ClusterActivity;
use crate::tcdm::{Tcdm, TcdmTimingSnapshot};
use crate::{EVT_BROADCAST, EVT_EOC, L2_BASE, TCDM_BASE};

/// Epoch engine: first lookahead horizon tried after `start`.
const EPOCH_HORIZON_START: u64 = 128;
/// Epoch engine: horizon floor after repeated rollbacks.
const EPOCH_HORIZON_MIN: u64 = 64;
/// Epoch engine: horizon ceiling after repeated commits.
const EPOCH_HORIZON_MAX: u64 = 4096;
/// Cycles of exact interleaved execution appended past an epoch-failure
/// point, so clustered causes (cold-I$ fill trains, barrier flurries) are
/// absorbed by one fallback window instead of one rollback each.
const EPOCH_FALLBACK_GRACE: u64 = 64;
/// Fetch-timing result for a speculative I$ miss: far past any horizon, so
/// the replay exits on its bound check right after the conflicting op.
/// Small enough that the time arithmetic of a few more ops cannot wrap.
const EPOCH_CONFLICT_STALL: u64 = 1 << 40;
/// Epoch engine: maximum boundary top-up rounds (replaying cores that
/// stopped short of the exact commit boundary a little further) before
/// the epoch gives up and falls back to exact execution. Rounds are
/// cheap — each replays only a few cycles per lagging core.
const EPOCH_TOPUP_ROUNDS: u32 = 8;
/// Epoch engine: modelled cycles a top-up replay aims past the boundary.
/// Deliberately tiny: overshooting moves the boundary itself (the
/// extension's own accesses raise the largest committed issue time),
/// which would make the other cores lag in turn.
const EPOCH_TOPUP_GRACE: u64 = 1;
/// Marks a logged TCDM access as a write (bit 31 of the word index).
const EPOCH_WRITE_BIT: u32 = 1 << 31;
/// Epoch engine: repair merge pops between state checkpoints (see
/// [`RepairCkpt`]). Bounds a resumed pass's re-popped prefix.
const EPOCH_REPAIR_CKPT_EVERY: u64 = 256;
/// Epoch engine: modelled cycles per replay chunk round. Wide epochs
/// replay in chunk rounds with an incremental repair pass between them,
/// so a data-order violation is detected within a chunk of where it
/// happened instead of after the whole window was speculated.
const EPOCH_CHUNK: u64 = 1024;

/// Error raised while running a cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusterError {
    /// A core faulted.
    Exec {
        /// Index of the faulting core.
        core: usize,
        /// The underlying execution error.
        err: ExecError,
    },
    /// Every non-halted core is asleep with no event in flight.
    Deadlock,
    /// The run exceeded the cycle budget.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A memory operation outside simulation (loader, readback) failed.
    Bus(BusError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Exec { core, err } => write!(f, "core {core} faulted: {err}"),
            ClusterError::Deadlock => write!(f, "all cores asleep with no event in flight"),
            ClusterError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            ClusterError::Bus(e) => write!(f, "bus access failed: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Exec { err, .. } => Some(err),
            ClusterError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusError> for ClusterError {
    fn from(e: BusError) -> Self {
        ClusterError::Bus(e)
    }
}

/// Result of a completed cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Cycles elapsed between start and the last core halting.
    pub cycles: u64,
    /// Absolute cluster time at completion.
    pub end_time: u64,
    /// Time at which the end-of-computation wire was raised, if it was.
    pub eoc_at: Option<u64>,
    /// Component activity counters for the run (power-model input).
    pub activity: ClusterActivity,
}

/// Why a sleeping core is asleep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum WaitReason {
    #[default]
    None,
    Event,
    Barrier,
}

/// Shared memory system: TCDM + L2 + shared instruction cache + the
/// memory-mapped DMA programming interface.
#[derive(Clone, Debug)]
struct ClusterBus {
    tcdm: Tcdm,
    l2: L2Memory,
    icache: ICache,
    l2_data_latency: u32,
    dma: Dma,
    dma_src: u32,
    dma_dst: u32,
    dma_len: u32,
    dma_done_at: u64,
    tracer: Tracer,
}

impl ClusterBus {
    fn dma_mmio_store(&mut self, now: u64, addr: u32, value: u32) -> Result<u64, BusError> {
        match addr - crate::DMA_MMIO_BASE {
            0x0 => self.dma_src = value,
            0x4 => self.dma_dst = value,
            0x8 => self.dma_len = value,
            0xC => {
                // Writing the command register launches the transfer.
                self.copy(self.dma_src, self.dma_dst, self.dma_len as usize)?;
                self.dma_done_at = self.dma.schedule(now, self.dma_len as usize);
            }
            _ => return Err(BusError::Unmapped { addr }),
        }
        Ok(now + 1)
    }

    fn dma_mmio_load(&mut self, now: u64, addr: u32) -> Result<Access, BusError> {
        let value = match addr - crate::DMA_MMIO_BASE {
            0x0 => self.dma_src,
            0x4 => self.dma_dst,
            0x8 => self.dma_len,
            0xC => u32::from(now >= self.dma_done_at), // 1 = idle/done
            _ => return Err(BusError::Unmapped { addr }),
        };
        Ok(Access {
            value,
            ready_at: now + 1,
        })
    }

    /// Functional copy between any two mapped regions.
    fn copy(&mut self, src: u32, dst: u32, len: usize) -> Result<(), BusError> {
        let bytes: Vec<u8> = if self.tcdm.contains(src) {
            self.tcdm.read_bytes(src, len)?.to_vec()
        } else if self.l2.contains(src) {
            self.l2.read_bytes(src, len)?.to_vec()
        } else {
            return Err(BusError::Unmapped { addr: src });
        };
        if self.tcdm.contains(dst) {
            self.tcdm.write_bytes(dst, &bytes)
        } else if self.l2.contains(dst) {
            self.l2.write_bytes(dst, &bytes)
        } else {
            Err(BusError::Unmapped { addr: dst })
        }
    }
}

impl Bus for ClusterBus {
    fn load(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
    ) -> Result<Access, BusError> {
        // TCDM first: all but a sliver of kernel data traffic lands there,
        // and the windows are disjoint so dispatch order is semantics-free.
        if self.tcdm.contains(addr) {
            let (value, ready_at) = self.tcdm.load(now, addr, size)?;
            Ok(Access { value, ready_at })
        } else if crate::dma_mmio_contains(addr) {
            self.dma_mmio_load(now, addr)
        } else if self.l2.contains(addr) {
            let value = self.l2.load_raw(addr, size)?;
            Ok(Access {
                value,
                ready_at: now + u64::from(self.l2_data_latency),
            })
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn store(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError> {
        if self.tcdm.contains(addr) {
            self.tcdm.store(now, addr, size, value)
        } else if crate::dma_mmio_contains(addr) {
            self.dma_mmio_store(now, addr, value)
        } else if self.l2.contains(addr) {
            self.l2.store_raw(addr, size, value)?;
            Ok(now + u64::from(self.l2_data_latency))
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn tas(&mut self, _core_id: usize, now: u64, addr: u32) -> Result<Access, BusError> {
        if self.tcdm.contains(addr) {
            let (value, ready_at) = self.tcdm.tas(now, addr)?;
            Ok(Access { value, ready_at })
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn fetch(&mut self, core_id: usize, now: u64, pc: u32) -> Result<Fetched, BusError> {
        // Timing first so the I$ model (and its trace events) sees the
        // access even when the word turns out to be undecodable, exactly
        // like the hardware front-end.
        let ready_at = self.fetch_timing(core_id, now, pc);
        let insn = self.l2.fetch_insn(pc)?;
        Ok(Fetched { insn, ready_at })
    }

    fn fetch_timing(&mut self, _core_id: usize, now: u64, pc: u32) -> u64 {
        let penalty = self.icache.access(pc);
        if penalty > 0 {
            self.tracer.emit(
                Component::ICache,
                EventKind::IcacheMiss,
                now,
                u64::from(penalty),
            );
        }
        now + u64::from(penalty)
    }

    fn microop_block(&mut self, _core_id: usize, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        self.l2.microop_block(pc, model)
    }

    fn code_generation(&self) -> u64 {
        // Only L2 serves instruction fetches, so only its decoded side
        // table can go stale under self-modifying stores.
        self.l2.decode_generation()
    }
}

/// Per-word order track for the epoch engine's exact data-flow check in
/// [`repair_schedule`]. A stale `stamp` means "untouched this pass" —
/// bumping the stamp invalidates the whole map in O(1).
#[derive(Clone, Copy, Debug, Default)]
struct WordTrack {
    stamp: u64,
    /// 1 + the largest application sequence among accesses already popped
    /// (exact-ordered before the current one); 0 = none.
    max_any: u32,
    /// Same, over writes only.
    max_write: u32,
}

/// One logged TCDM access for the post-replay exact re-simulation.
#[derive(Clone, Copy, Debug)]
struct MemAccess {
    bank: u32,
    /// TCDM word index, with [`EPOCH_WRITE_BIT`] flagging a write.
    word_w: u32,
    /// Application sequence of the replay segment that issued this
    /// access — the order speculative values were applied to memory in
    /// (round-one replays in core-index order, then top-up segments).
    seg: u32,
    /// Modelled issue time. Every data access is issued at the core's
    /// op-entry time (and speculative fetches never advance the clock —
    /// an I$ miss aborts), so per core these are the op start times.
    now: u64,
    /// Bank-busy end mark the modelled arbitration computed
    /// (`ready_at` = stalled start + 1 for the single-beat accesses the
    /// epoch speculates), i.e. `now + modelled stall + 1`.
    mark: u64,
}

/// A periodic snapshot of the repair merge state, so a pass rerun after a
/// boundary top-up can resume mid-merge instead of starting over.
///
/// Valid because pops are monotone in shifted issue time: a core's next
/// access satisfies `shifted' >= shifted + 1 + exact stall` (the modelled
/// gap to the next op entry is at least `1 + modelled stall`, and the
/// shift update replaces the modelled stall with the exact one), so the
/// greedy min-merge never pops below an earlier pop. Top-up extensions
/// only append accesses whose eventual pop time is at or above the topped
/// core's pre-top-up exact stop; any checkpoint strictly below the
/// smallest such stop therefore precedes every merge divergence. Strictly:
/// an appended access can pop at exactly that stop, and a checkpoint tied
/// there may already cover same-shifted pops from higher-index cores that
/// the `(shifted, core)` tie-break orders after the appended access, so a
/// tied checkpoint does not precede the divergence.
#[derive(Clone, Copy, Debug)]
struct RepairCkpt {
    /// Shifted issue time of the last pop this checkpoint covers.
    last_shifted: i64,
    /// Word-track journal length at the checkpoint (rewind target).
    journal_len: usize,
    conflict_delta: i64,
    max_issue: i64,
    pops: u64,
}

/// Reusable scratch for the epoch engine: every allocation the speculate /
/// repair / commit / rollback cycle needs, hoisted out of the per-epoch
/// path.
#[derive(Clone, Debug, Default)]
struct EpochScratch {
    /// Current pass stamp for `words` (see [`WordTrack::stamp`]).
    stamp: u64,
    /// Per-TCDM-word order tracks, sized lazily on first epoch.
    words: Vec<WordTrack>,
    /// Per-core TCDM access logs, each in program order.
    logs: Vec<Vec<MemAccess>>,
    /// Byte-level undo log of every speculative TCDM mutation, in commit
    /// order: `(addr, len, old bytes)`.
    undo: Vec<(u32, u8, [u8; 4])>,
    /// Pre-replay snapshots of the cores that entered the epoch.
    saved_cores: Vec<(usize, Core)>,
    /// Pre-epoch TCDM timing/PMU state.
    tcdm_snap: TcdmTimingSnapshot,
    /// Per-bank free clock of the exact re-simulation; on commit this
    /// *is* the reference's bank state.
    repair_free: Vec<u64>,
    /// Per-core accumulated timeline shift (exact minus modelled stalls).
    sigma: Vec<i64>,
    /// Per-core running max of `sigma`, for the deadline-crossing guard.
    sigma_max: Vec<i64>,
    /// Per-core merge cursors of the re-simulation.
    cursors: Vec<usize>,
    /// Per-core cached shifted issue time of the cursor head
    /// (`i64::MAX` = log exhausted), so a merge pop re-derives one
    /// entry instead of re-reading four logs.
    next_key: Vec<i64>,
    /// Bitmap of TCDM words written by any replay this epoch, filled at
    /// log time. Reads of never-written words — the vast majority —
    /// skip the data-flow check entirely: with no write this epoch, no
    /// order can contradict the applied values. Keeps the hot repair
    /// loop out of the (cache-hostile) per-word track map.
    written: Vec<u64>,
    /// Committed `sigma` of the previous epoch. Kernels are loopy, so a
    /// core's stall-modelling error repeats epoch over epoch; biasing
    /// each core's replay bound by it lands the exact stop times close
    /// together, which is what the boundary check needs.
    sigma_prev: Vec<i64>,
    /// Undo journal of `words` updates in the current repair pass:
    /// `(word, previous track)`, pushed before each slow-path update so a
    /// resume can rewind the map to a checkpoint. Entries are deduped
    /// per era (see [`EpochScratch::journal_era`]): within an era only
    /// the first touch of a word is journaled — its value at era start —
    /// so a reverse rewind over whole eras still lands exactly on the
    /// checkpoint state, and a hot accumulator word costs one entry per
    /// era instead of one per access.
    journal: Vec<(u32, WordTrack)>,
    /// Journal-dedup era, bumped at every checkpoint push and at every
    /// repair-pass entry (so marks left in a rewound suffix can never
    /// suppress a needed push). Monotone for the scratch's lifetime.
    journal_era: u64,
    /// Per-word era of the last journal push; a word is journaled at
    /// most once per era.
    journal_mark: Vec<u64>,
    /// Periodic merge-state checkpoints of the current repair pass
    /// (ascending `last_shifted`), with their per-bank free clocks and
    /// per-core lanes flattened alongside.
    ckpts: Vec<RepairCkpt>,
    /// `nbanks` free-clock entries per checkpoint.
    ckpt_free: Vec<u64>,
    /// `2 * ncores` entries per checkpoint: `sigma`, then `sigma_max`.
    ckpt_lanes: Vec<i64>,
    /// `ncores` merge-cursor entries per checkpoint.
    ckpt_cursors: Vec<usize>,
}

/// The epoch engine's speculation bus: wraps the real [`ClusterBus`] with
/// the access log and the undo log, so one core's private replay can run
/// the ordinary micro-op path unmodified.
///
/// Each core replays against the *pre-epoch* bank-free state (the loop
/// restores it between segments), blind to the other cores: its modelled
/// stalls are self-arbitration only, and every mis-modelled cross-core
/// stall is re-derived exactly from the logs by [`repair_schedule`]
/// afterwards. (A per-access model of the other cores' replayed marks was
/// tried here and removed: it cost more per access than the smaller
/// repair shifts saved.) What the replay cannot repair it aborts on the
/// spot by flagging `conflict_at`: accesses outside the word-granular log
/// model (split accesses, DMA registers, L2 stores), I$ misses, and raw
/// fetches.
struct EpochBus<'a> {
    bus: &'a mut ClusterBus,
    /// The replaying core's access log (appended in program order; taken
    /// out of [`EpochScratch::logs`] for the duration of the replay).
    log: &'a mut Vec<MemAccess>,
    /// See [`EpochScratch::written`].
    written: &'a mut [u64],
    undo: &'a mut Vec<(u32, u8, [u8; 4])>,
    /// Application sequence of this replay segment.
    seg: u32,
    /// Whether the cross-core machinery is live (more than one core
    /// replays this epoch). A solo replay *is* the exact global schedule
    /// — no other core can access memory while the rest sleep — so it
    /// skips lift modelling and access logging entirely.
    checks: bool,
    /// Issue time of the first access the speculation could not keep
    /// exact; `Some` aborts the epoch.
    conflict_at: Option<u64>,
}

impl EpochBus<'_> {
    /// Locates an access for the log: returns the bank and word indices.
    /// `None` aborts the epoch: an access crossing a word boundary takes
    /// a second beat on the next bank, which the one-mark-per-access log
    /// cannot represent.
    fn pre_access(&mut self, now: u64, addr: u32, len: u32) -> Option<(usize, u32)> {
        if !self.checks {
            return Some((0, 0));
        }
        let base = self.bus.tcdm.base();
        let word = (addr - base) >> 2;
        if (addr + len - 1 - base) >> 2 != word {
            self.conflict_at.get_or_insert(now);
            return None;
        }
        Some((self.bus.tcdm.bank_index(addr), word))
    }

    /// Logs one arbitrated access for [`repair_schedule`].
    fn log_access(&mut self, bank: usize, word: u32, write: bool, now: u64, mark: u64) {
        if self.checks {
            self.log.push(MemAccess {
                bank: bank as u32,
                word_w: word | if write { EPOCH_WRITE_BIT } else { 0 },
                seg: self.seg,
                now,
                mark,
            });
            if write {
                self.written[(word >> 6) as usize] |= 1 << (word & 63);
            }
        }
    }

    /// Logs the bytes a TCDM mutation is about to clobber.
    fn log_undo(&mut self, addr: u32, len: u32) -> Result<(), BusError> {
        let old = self.bus.tcdm.read_bytes(addr, len as usize)?;
        let mut bytes = [0u8; 4];
        bytes[..old.len()].copy_from_slice(old);
        self.undo.push((addr, len as u8, bytes));
        Ok(())
    }

    /// Flags an access the epoch must never speculate (DMA registers, L2
    /// stores) and returns the error that unwinds the replay; the exact
    /// fallback window re-executes the access for real, with real errors.
    fn refuse(&mut self, now: u64, addr: u32) -> BusError {
        self.conflict_at.get_or_insert(now);
        BusError::Unmapped { addr }
    }
}

impl Bus for EpochBus<'_> {
    fn load(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
    ) -> Result<Access, BusError> {
        if self.bus.tcdm.contains(addr) {
            let Some((bank, word)) = self.pre_access(now, addr, size.bytes()) else {
                return Err(BusError::Unmapped { addr });
            };
            let (value, ready_at) = self.bus.tcdm.load(now, addr, size)?;
            self.log_access(bank, word, false, now, ready_at);
            Ok(Access { value, ready_at })
        } else if crate::dma_mmio_contains(addr) {
            // DMA status reads race the (globally ordered) transfer clock.
            Err(self.refuse(now, addr))
        } else if self.bus.l2.contains(addr) {
            // Constant latency, read-only within an epoch (L2 stores
            // abort), counter snapshot-restored on rollback: safe.
            let value = self.bus.l2.load_raw(addr, size)?;
            Ok(Access {
                value,
                ready_at: now + u64::from(self.bus.l2_data_latency),
            })
        } else {
            // A genuine fault: unwind, and let the exact window reproduce
            // the error with reference-identical surfacing.
            Err(BusError::Unmapped { addr })
        }
    }

    fn store(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError> {
        if self.bus.tcdm.contains(addr) {
            let Some((bank, word)) = self.pre_access(now, addr, size.bytes()) else {
                return Err(BusError::Unmapped { addr });
            };
            self.log_undo(addr, size.bytes())?;
            let done = self.bus.tcdm.store(now, addr, size, value)?;
            self.log_access(bank, word, true, now, done);
            Ok(done)
        } else if crate::dma_mmio_contains(addr) || self.bus.l2.contains(addr) {
            // DMA launches are globally ordered; L2 stores invalidate the
            // decoded side table. Neither rolls back: re-run exactly.
            Err(self.refuse(now, addr))
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn tas(&mut self, _core_id: usize, now: u64, addr: u32) -> Result<Access, BusError> {
        if self.bus.tcdm.contains(addr) {
            let Some((bank, word)) = self.pre_access(now, addr, 4) else {
                return Err(BusError::Unmapped { addr });
            };
            self.log_undo(addr, 4)?;
            let (value, ready_at) = self.bus.tcdm.tas(now, addr)?;
            self.log_access(bank, word, true, now, ready_at);
            Ok(Access { value, ready_at })
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn fetch(&mut self, _core_id: usize, now: u64, pc: u32) -> Result<Fetched, BusError> {
        // Block replay never decodes through the bus; reaching here would
        // mean stepping outside the translated path — don't speculate it.
        Err(self.refuse(now, pc))
    }

    fn fetch_timing(&mut self, _core_id: usize, now: u64, pc: u32) -> u64 {
        // Hits are order-independent (direct-mapped, tags untouched; the
        // hot-line filter is semantically invisible), so they commit; the
        // hit counter is snapshot-restored on rollback. A miss would fill
        // a tag other cores' interleaved fetches might see first: abort,
        // pushing the clock past every bound so the replay exits right
        // after this op.
        if self.conflict_at.is_none() && self.bus.icache.probe_hit(pc) {
            now
        } else {
            self.conflict_at.get_or_insert(now);
            now + EPOCH_CONFLICT_STALL
        }
    }

    fn microop_block(&mut self, _core_id: usize, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        // Translation is cache-transparent: no code write commits inside
        // an epoch, so the decode generation cannot move mid-replay.
        self.bus.l2.microop_block(pc, model)
    }

    fn code_generation(&self) -> u64 {
        self.bus.l2.decode_generation()
    }
}

/// Replays one core privately up to the modelled time `bound`. Returns
/// `None` when the core cleanly consumed its window — bound reached, or
/// halted (core-private, commutes with every other replay) — or
/// `Some(fail_time)` when the epoch must roll back: a conflict flagged by
/// the bus, a scheduler-visible outcome (sleep, event, barrier), a
/// `CycleLo` read (the one value the clock feeds — a repaired commit
/// would have produced a different read), a PC with no translatable
/// block, or a fault. `fail_time` tells the fallback how far exact
/// execution must run to get past the cause.
///
/// Entering with `time > bound` is allowed (boundary top-ups do): the
/// post-op bound check still guarantees at least one op of progress, and
/// the committed per-core prefixes are arbitrary — [`repair_schedule`]
/// and the boundary check carry the correctness argument, not the cut.
#[allow(clippy::too_many_arguments)]
fn replay_core(
    core: &mut Core,
    bus: &mut ClusterBus,
    index: usize,
    seg: u32,
    deadline: u64,
    bound: u64,
    checks: bool,
    epoch: &mut EpochScratch,
) -> Option<u64> {
    if checks {
        core.watch_cycle_csr();
    }
    let mut own_log = std::mem::take(&mut epoch.logs[index]);
    let mut ebus = EpochBus {
        bus,
        log: &mut own_log,
        written: &mut epoch.written,
        undo: &mut epoch.undo,
        seg,
        checks,
        conflict_at: None,
    };
    let fail = loop {
        let exit = core.exec_resume(&mut ebus, deadline, bound);
        if let Some(t) = ebus.conflict_at {
            break Some(t);
        }
        match exit {
            Ok(Some(BlockExit::Bound | BlockExit::Deadline)) => break None,
            Ok(Some(BlockExit::Outcome(StepOutcome::Halted))) => break None,
            Ok(Some(BlockExit::Redirect)) => {}
            Ok(Some(BlockExit::Outcome(_))) | Ok(None) | Err(_) => {
                break Some(core.time());
            }
        }
    };
    epoch.logs[index] = own_log;
    if fail.is_none() && checks {
        // The latched time of the first read — not `core.time()` — so a
        // cycle-CSR polling loop re-executes exactly only up to the read
        // plus grace, not the whole replayed window.
        if let Some(t) = core.cycle_csr_read_at() {
            return Some(t);
        }
    }
    fail
}

/// Exact post-replay re-simulation of the TCDM arbiter over the merged
/// per-core access logs, in the reference's processing order
/// `(exact issue time, core index)` — the repair pass that turns the
/// modelled private schedules into the proven reference one.
///
/// The modelled issue times in the logs are wrong wherever a replay
/// mis-modelled a cross-core stall, but the *gaps* between one core's
/// accesses are timing-independent: no architectural value depends on
/// the clock (`CycleLo` reads abort the epoch), so mis-timed stalls
/// shift a core's subsequent ops rigidly without changing what they do.
/// Each core's exact timeline is therefore its modelled one plus a
/// running shift `sigma`: for every access, exact issue = modelled
/// issue + `sigma`; the exact stall `d_e` falls out of the re-simulated
/// bank free clock; the modelled stall `d_m` is recovered from the
/// logged mark (`mark - issue - 1`); and `sigma += d_e - d_m`. A merge
/// by shifted issue time (lower core index wins ties, the reference
/// tie-break) thus reconstructs the exact arbitration chain — stalls,
/// conflict counts, final bank state — without re-executing anything.
///
/// Data flow is validated in the same pass. Speculative values hit
/// memory in application-sequence order (`seg`), so the replayed values
/// are exact iff the exact order never contradicts it: popping an access
/// (exact order) whose word saw an application-*later* write — or
/// popping a write whose word saw any application-later access — means
/// some replay read or clobbered the wrong value. Both directions reduce
/// to one check per pop against per-word running maxima of popped
/// segments (the reverse direction is caught when the other access of
/// the pair pops).
///
/// On success, `epoch.sigma` holds each core's final shift,
/// `epoch.sigma_max` its running maximum, `epoch.repair_free` the exact
/// final bank state, and the result carries the conflict-count
/// correction (exact minus modelled stalled accesses) plus the largest
/// exact issue time, which the epoch boundary check needs. On failure,
/// returns `Err(modelled issue time)` of the offending access for the
/// fallback window.
///
/// `resume_before` reruns the pass after a boundary top-up: the merge
/// resumes from the latest checkpoint strictly below the given shifted
/// time (the smallest pre-top-up exact stop among the topped-up cores —
/// see [`RepairCkpt`] for why only a strictly-earlier checkpoint is a
/// divergence-free prefix) instead of re-popping the whole epoch.
fn repair_schedule(
    epoch: &mut EpochScratch,
    ncores: usize,
    resume_before: Option<i64>,
) -> Result<(i64, i64), u64> {
    let nbanks = epoch.tcdm_snap.bank_free.len();
    let mut conflict_delta = 0i64;
    let mut max_issue = i64::MIN;
    let mut pops = 0u64;
    let mut resumed = false;
    if let Some(limit) = resume_before {
        // Latest checkpoint whose last pop is strictly below the limit;
        // everything at or after the limit is rewound and re-popped.
        // Strict, not `<=`: a topped-up core's first appended access can
        // pop at exactly `shifted == limit` (its resume time plus sigma),
        // and the `(shifted, core)` tie-break may order it before a
        // same-shifted pop from a higher-index core that a checkpoint
        // tied at the limit already committed (see [`RepairCkpt`]).
        let mut k = epoch.ckpts.len();
        while k > 0 && epoch.ckpts[k - 1].last_shifted >= limit {
            k -= 1;
        }
        if k > 0 {
            let ck = epoch.ckpts[k - 1];
            while epoch.journal.len() > ck.journal_len {
                let (w, t) = epoch.journal.pop().expect("len checked");
                epoch.words[w as usize] = t;
            }
            epoch.repair_free.clear();
            epoch
                .repair_free
                .extend_from_slice(&epoch.ckpt_free[(k - 1) * nbanks..][..nbanks]);
            let lanes = &epoch.ckpt_lanes[(k - 1) * 2 * ncores..][..2 * ncores];
            epoch.sigma.clear();
            epoch.sigma.extend_from_slice(&lanes[..ncores]);
            epoch.sigma_max.clear();
            epoch.sigma_max.extend_from_slice(&lanes[ncores..]);
            epoch.cursors.clear();
            epoch
                .cursors
                .extend_from_slice(&epoch.ckpt_cursors[(k - 1) * ncores..][..ncores]);
            conflict_delta = ck.conflict_delta;
            max_issue = ck.max_issue;
            pops = ck.pops;
            epoch.ckpts.truncate(k);
            epoch.ckpt_free.truncate(k * nbanks);
            epoch.ckpt_lanes.truncate(k * 2 * ncores);
            epoch.ckpt_cursors.truncate(k * ncores);
            resumed = true;
        }
    }
    if !resumed {
        epoch.stamp += 1;
        epoch.repair_free.clear();
        epoch
            .repair_free
            .extend_from_slice(&epoch.tcdm_snap.bank_free);
        epoch.cursors.clear();
        epoch.cursors.resize(ncores, 0);
        epoch.sigma.clear();
        epoch.sigma.resize(ncores, 0);
        epoch.sigma_max.clear();
        epoch.sigma_max.resize(ncores, 0);
        epoch.journal.clear();
        epoch.ckpts.clear();
        epoch.ckpt_free.clear();
        epoch.ckpt_lanes.clear();
        epoch.ckpt_cursors.clear();
    }
    epoch.journal_era += 1;
    let stamp = epoch.stamp;
    // Split borrows for the merge below — the hot loop of every repair
    // pass. Indexed through `epoch`, every store forces the optimizer to
    // re-load each vector's base pointer (it cannot prove the heap
    // buffers are disjoint); per-field slices keep the loop state in
    // registers.
    let EpochScratch {
        logs,
        words,
        written,
        sigma,
        sigma_max,
        cursors,
        next_key,
        repair_free,
        journal,
        journal_era,
        journal_mark,
        ckpts,
        ckpt_free,
        ckpt_lanes,
        ckpt_cursors,
        ..
    } = epoch;
    let logs: &[Vec<MemAccess>] = &logs[..ncores];
    let words = words.as_mut_slice();
    let written = written.as_slice();
    let journal_mark = journal_mark.as_mut_slice();
    let repair_free = repair_free.as_mut_slice();
    // Per-core shifted head keys, cached so a pop re-derives one entry
    // instead of re-reading four log heads. Recomputed on resume too:
    // top-ups may have extended logs a checkpoint saw as exhausted.
    next_key.clear();
    for c in 0..ncores {
        next_key.push(
            logs[c]
                .get(cursors[c])
                .map_or(i64::MAX, |e| e.now as i64 + sigma[c]),
        );
    }
    let next_key = next_key.as_mut_slice();
    let sigma = sigma.as_mut_slice();
    let sigma_max = sigma_max.as_mut_slice();
    let cursors = cursors.as_mut_slice();
    let mut next_ckpt_at = (pops / EPOCH_REPAIR_CKPT_EVERY + 1) * EPOCH_REPAIR_CKPT_EVERY;
    let mut last_shifted = i64::MIN;
    loop {
        // Next access in exact `(shifted issue, core)` order; the strict
        // `<` over an ascending core scan is the low-index tie-break.
        let mut shifted = i64::MAX;
        let mut c = usize::MAX;
        for (i, &k) in next_key.iter().enumerate() {
            if k < shifted {
                shifted = k;
                c = i;
            }
        }
        if c == usize::MAX {
            break;
        }
        if pops == next_ckpt_at {
            next_ckpt_at += EPOCH_REPAIR_CKPT_EVERY;
            ckpts.push(RepairCkpt {
                last_shifted,
                journal_len: journal.len(),
                conflict_delta,
                max_issue,
                pops,
            });
            ckpt_free.extend_from_slice(repair_free);
            ckpt_lanes.extend_from_slice(sigma);
            ckpt_lanes.extend_from_slice(sigma_max);
            ckpt_cursors.extend_from_slice(cursors);
            *journal_era += 1;
        }
        pops += 1;
        last_shifted = shifted;
        let e = logs[c][cursors[c]];
        cursors[c] += 1;

        // Exact arbitration of this access.
        let f = &mut repair_free[e.bank as usize];
        let start = shifted.max(*f as i64);
        let d_e = start - shifted;
        let d_m = (e.mark - e.now) as i64 - 1;
        conflict_delta += i64::from(d_e > 0) - i64::from(d_m > 0);
        *f = (start + 1) as u64;
        sigma[c] += d_e - d_m;
        sigma_max[c] = sigma_max[c].max(sigma[c]);
        max_issue = max_issue.max(shifted);
        next_key[c] = logs[c]
            .get(cursors[c])
            .map_or(i64::MAX, |n| n.now as i64 + sigma[c]);

        // Exact-vs-application data-flow order. Reads of words no replay
        // wrote this epoch need no check or tracking: with no write, no
        // order can contradict the applied values, and their running
        // maxima would only ever gate a write to the same word. The
        // bitmap test keeps the common all-read case out of the
        // cache-hostile per-word map.
        let write = e.word_w & EPOCH_WRITE_BIT != 0;
        let word = e.word_w & !EPOCH_WRITE_BIT;
        if !write && written[(word >> 6) as usize] & (1 << (word & 63)) == 0 {
            continue;
        }
        let wi = word as usize;
        if journal_mark[wi] != *journal_era {
            journal_mark[wi] = *journal_era;
            journal.push((word, words[wi]));
        }
        let t = &mut words[wi];
        if t.stamp != stamp {
            *t = WordTrack {
                stamp,
                max_any: 0,
                max_write: 0,
            };
        }
        let seg1 = e.seg + 1;
        let hazard = if write { t.max_any } else { t.max_write };
        if hazard > seg1 {
            return Err(e.now);
        }
        t.max_any = t.max_any.max(seg1);
        if write {
            t.max_write = t.max_write.max(seg1);
        }
    }
    Ok((conflict_delta, max_issue))
}

/// A simulated PULP-style cluster.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Cluster {
    config: ClusterConfig,
    cores: Vec<Core>,
    waits: Vec<WaitReason>,
    bus: ClusterBus,
    event_unit: EventUnit,
    start_time: u64,
    tracer: Tracer,
    engine: crate::Engine,
    /// Scheduling-key shadow array, reused across runs (the micro-op and
    /// epoch loops re-initialize it; per-run allocation was measurable on
    /// the repeated cold+warm offload pattern).
    sched_keys: Vec<u64>,
    epoch: EpochScratch,
}

impl Cluster {
    /// Builds a cluster from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`ClusterConfig::validate`]).
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        config.validate();
        let cores = (0..config.num_cores)
            .map(|id| {
                let mut c = Core::new(id, config.core_model);
                c.set_num_cores(config.num_cores as u32);
                c
            })
            .collect();
        Cluster {
            cores,
            waits: vec![WaitReason::None; config.num_cores],
            bus: ClusterBus {
                tcdm: Tcdm::new(TCDM_BASE, config.tcdm_size, config.tcdm_banks),
                l2: L2Memory::new(L2_BASE, config.l2_size),
                icache: ICache::new(
                    config.icache_size,
                    config.icache_line,
                    config.icache_miss_penalty,
                ),
                l2_data_latency: config.l2_data_latency,
                dma: Dma::new(config.dma_channels, config.dma_setup),
                dma_src: 0,
                dma_dst: 0,
                dma_len: 0,
                dma_done_at: 0,
                tracer: Tracer::disabled(),
            },
            event_unit: EventUnit::new(config.num_cores),
            config,
            start_time: 0,
            tracer: Tracer::disabled(),
            engine: crate::default_engine(),
            sched_keys: Vec::new(),
            epoch: EpochScratch::default(),
        }
    }

    /// Selects the execution engine for this cluster. All engines are
    /// bit-identical in every observable output; see
    /// [`crate::set_default_engine`] for the process-wide default.
    ///
    /// The micro-op flag on the cores themselves only matters on the host
    /// path (`ulp_isa::Core::run`); inside the cluster the engine choice is
    /// entirely the scheduler's, so this is the single knob.
    pub fn set_engine(&mut self, engine: crate::Engine) {
        self.engine = engine;
    }

    /// Which execution engine this cluster uses.
    #[must_use]
    pub fn engine(&self) -> crate::Engine {
        self.engine
    }

    /// Compatibility shim for the original two-engine knob: `true` selects
    /// the fastest batching engine ([`crate::Engine::Epoch`]), `false`
    /// the reference scheduler. Prefer [`Cluster::set_engine`].
    pub fn set_turbo(&mut self, on: bool) {
        self.engine = if on {
            crate::Engine::Epoch
        } else {
            crate::Engine::Reference
        };
    }

    /// Whether this cluster uses a batching engine (anything other than
    /// [`crate::Engine::Reference`]).
    #[must_use]
    pub fn turbo(&self) -> bool {
        self.engine != crate::Engine::Reference
    }

    /// Attaches a structured event tracer to the cluster and every
    /// component inside it (cores, TCDM arbiter, DMA, I$). The tracer's
    /// recording survives [`Cluster::start`]: repeated runs lay out
    /// sequentially on the cluster timeline via the tracer's epoch.
    ///
    /// Attaching a disabled tracer (the default) detaches instrumentation;
    /// simulated timing is identical either way.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for core in &mut self.cores {
            core.set_tracer(tracer.clone());
        }
        self.bus.tcdm.set_tracer(tracer.clone());
        self.bus.dma.set_tracer(tracer.clone());
        self.bus.tracer = tracer.clone();
        self.tracer = tracer;
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Immutable access to a core (inspection, tests).
    #[must_use]
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// The DMA engine (the offload runtime schedules transfers on it).
    pub fn dma_mut(&mut self) -> &mut Dma {
        &mut self.bus.dma
    }

    /// Loads a program binary into L2 and invalidates the instruction
    /// cache. Returns the absolute rodata base address.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] if the image does not fit in L2.
    pub fn load_binary(&mut self, prog: &Program, base: u32) -> Result<u32, ClusterError> {
        let rodata = self.bus.l2.load_program(prog, base)?;
        self.bus.icache.invalidate();
        Ok(rodata)
    }

    /// Writes raw bytes into the TCDM (DMA/QSPI-slave back-door; timing is
    /// modelled by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn write_tcdm(&mut self, addr: u32, bytes: &[u8]) -> Result<(), ClusterError> {
        Ok(self.bus.tcdm.write_bytes(addr, bytes)?)
    }

    /// Reads raw bytes from the TCDM.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn read_tcdm(&self, addr: u32, len: usize) -> Result<Vec<u8>, ClusterError> {
        Ok(self.bus.tcdm.read_bytes(addr, len)?.to_vec())
    }

    /// Reads a 32-bit word from the TCDM.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn read_tcdm_u32(&self, addr: u32) -> Result<u32, ClusterError> {
        let b = self.bus.tcdm.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes raw bytes into L2.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the L2 window.
    pub fn write_l2(&mut self, addr: u32, bytes: &[u8]) -> Result<(), ClusterError> {
        Ok(self.bus.l2.write_bytes(addr, bytes)?)
    }

    /// Reads raw bytes from L2.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the L2 window.
    pub fn read_l2(&self, addr: u32, len: usize) -> Result<Vec<u8>, ClusterError> {
        Ok(self.bus.l2.read_bytes(addr, len)?.to_vec())
    }

    /// Schedules a DMA transfer of `len` bytes starting at `now`; data is
    /// moved functionally right away, the returned time is when the channel
    /// completes.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] if either range is unmapped.
    pub fn dma_copy(
        &mut self,
        now: u64,
        src: u32,
        dst: u32,
        len: usize,
    ) -> Result<u64, ClusterError> {
        let bytes: Vec<u8> = if self.bus.tcdm.contains(src) {
            self.bus.tcdm.read_bytes(src, len)?.to_vec()
        } else if self.bus.l2.contains(src) {
            self.bus.l2.read_bytes(src, len)?.to_vec()
        } else {
            return Err(ClusterError::Bus(BusError::Unmapped { addr: src }));
        };
        if self.bus.tcdm.contains(dst) {
            self.bus.tcdm.write_bytes(dst, &bytes)?;
        } else if self.bus.l2.contains(dst) {
            self.bus.l2.write_bytes(dst, &bytes)?;
        } else {
            return Err(ClusterError::Bus(BusError::Unmapped { addr: dst }));
        }
        Ok(self.bus.dma.schedule(now, len))
    }

    /// Resets all cores to `entry` at time `at`, loads `args` into the
    /// registers of every core (SPMD launch: the generated code branches on
    /// the core-id CSR), clears the event unit and PMU counters.
    ///
    /// This models the *fetch-enable* GPIO edge of the prototype: "a fetch
    /// enable used to trigger execution of the benchmark" (paper §III-C).
    pub fn start(&mut self, entry: u32, args: &[(Reg, u32)], at: u64) {
        for core in &mut self.cores {
            core.reset(entry);
            core.advance_time_to(at);
            for &(r, v) in args {
                core.set_reg(r, v);
            }
        }
        self.waits.fill(WaitReason::None);
        self.event_unit.reset();
        self.bus.tcdm.reset_stats();
        self.bus.l2.reset_stats();
        self.bus.icache.reset_stats();
        self.bus.dma.reset_stats();
        self.bus.dma_done_at = 0;
        self.start_time = at;
    }

    /// Time at which the EOC wire was raised, if it was.
    #[must_use]
    pub fn eoc_at(&self) -> Option<u64> {
        self.event_unit.eoc_at()
    }

    fn route_event(&mut self, from: usize, id: u8) {
        let at = self.cores[from].time();
        match id {
            EVT_EOC => self.event_unit.raise_eoc(at),
            EVT_BROADCAST => {
                // The event unit's wake-up port serves one core per cycle,
                // staggering the team by a cycle each — which also breaks
                // the pathological lockstep in which identical SPMD code
                // hits the same TCDM bank on every access.
                let mut offset = 0u64;
                for i in 0..self.cores.len() {
                    if i != from {
                        self.wake_or_latch(i, at + offset);
                        offset += 1;
                    }
                }
            }
            n if (1..=32).contains(&n) => {
                let target = (n - 1) as usize;
                if target < self.cores.len() && target != from {
                    self.wake_or_latch(target, at);
                }
            }
            _ => {}
        }
    }

    fn wake_or_latch(&mut self, target: usize, at: u64) {
        if self.cores[target].state() == CoreState::Sleeping
            && self.waits[target] == WaitReason::Event
        {
            self.cores[target].wake(at);
            self.waits[target] = WaitReason::None;
        } else {
            self.cores[target].post_event();
        }
    }

    /// Runs until every core has halted (or faults/deadlocks/times out).
    ///
    /// Cores are interleaved lowest-local-time-first so shared-resource
    /// arbitration happens in approximate global order. Four engines
    /// implement that schedule — the reference one-instruction-per-scan
    /// loop, a turbo loop that batches the frontmost core, a micro-op
    /// loop that additionally replays pre-decoded basic blocks, and an
    /// epoch loop that speculatively replays every core privately up to a
    /// conflict-checked horizon (see [`Cluster::set_engine`]); they retire
    /// the exact same instruction sequence and produce bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] on core faults, deadlock, or exceeding
    /// `max_cycles`.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Result<RunResult, ClusterError> {
        let deadline = self.start_time + max_cycles;
        match self.engine {
            crate::Engine::Reference => self.run_loop_reference(deadline, max_cycles)?,
            crate::Engine::Turbo => self.run_loop_turbo(deadline, max_cycles)?,
            crate::Engine::Microop => self.run_loop_microop(deadline, max_cycles)?,
            crate::Engine::Epoch => self.run_loop_epoch(deadline, max_cycles)?,
        }

        let end_time = self
            .cores
            .iter()
            .map(Core::time)
            .max()
            .unwrap_or(self.start_time);
        let cycles = end_time - self.start_time;
        let activity = self.collect_activity(cycles);
        ulp_isa::perf::add_retired(activity.total_retired());
        self.record_counters(&activity);
        // Lay the next run out after this one on the shared trace timeline.
        self.tracer.advance_cluster_epoch(end_time);
        Ok(RunResult {
            cycles,
            end_time,
            eoc_at: self.event_unit.eoc_at(),
            activity,
        })
    }

    /// Reference scheduler: rescan for the lowest-local-time running core
    /// before every single instruction. This is the executable definition
    /// of the interleaving order; the turbo engine is validated against it.
    fn run_loop_reference(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        loop {
            // Pick the running core with the smallest local time.
            let mut next: Option<usize> = None;
            for (i, c) in self.cores.iter().enumerate() {
                if c.state() == CoreState::Running
                    && next.is_none_or(|n| c.time() < self.cores[n].time())
                {
                    next = Some(i);
                }
            }
            let Some(i) = next else {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            };
            if self.cores[i].time() > deadline {
                return Err(ClusterError::Timeout { max_cycles });
            }
            let outcome = self.cores[i]
                .step(&mut self.bus)
                .map_err(|err| ClusterError::Exec { core: i, err })?;
            self.apply_outcome(i, outcome);
        }
    }

    /// Turbo scheduler: picks the frontmost running core once, then batches
    /// instructions on it for as long as the choice the reference scheduler
    /// would make stays the same.
    ///
    /// Correctness argument: the reference order is argmin over running
    /// cores of the key `(local_time, core_index)` — the strict `<` scan in
    /// [`Self::run_loop_reference`] keeps the first (lowest-index) core on
    /// time ties. A step whose outcome is `Executed` only mutates the
    /// stepped core and the shared bus; no other core's state or time
    /// changes, so the next argmin is either still core `i` (iff
    /// `(t_i, i) < second`, where `second` is the runner-up key from the
    /// scan — keys never compare equal because indices are distinct) or
    /// `second`'s core. Any other outcome (halt, sleep, event, barrier) can
    /// change other cores' states, so we apply its side effects and rescan.
    /// The stepped sequence is therefore exactly the reference sequence,
    /// instruction for instruction, and every observable output
    /// (`RunResult`, activity counters, trace events) is bit-identical.
    fn run_loop_turbo(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        // Scheduling keys pack `(time, index)` into one u64 —
        // `(time << shift) | index`, with `shift` wide enough for every
        // index — preserving the lexicographic order the reference
        // scheduler implements (its strict `<` scan keeps the first, i.e.
        // lowest-index, core on a time tie) while making both the scan and
        // the per-step batch check single branchless-friendly integer
        // compares. Shift/mask rather than multiply/modulo keeps the
        // per-batch unpack off the u64-division unit. Times stay far below
        // `u64::MAX >> shift` (runs are bounded by `max_cycles`), so the
        // packing cannot wrap.
        let shift = usize::BITS - self.cores.len().saturating_sub(1).leading_zeros();
        let index_mask = (1u64 << shift) - 1;
        'outer: loop {
            // One scan yields both the frontmost running core and the
            // runner-up key that bounds its batch. `u64::min`/`max` compile
            // to conditional moves, so the scan does not mispredict on the
            // cores' effectively random time ordering.
            let mut best = u64::MAX;
            let mut second = u64::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                let key = if c.state() == CoreState::Running {
                    (c.time() << shift) | i as u64
                } else {
                    u64::MAX
                };
                second = second.min(best.max(key));
                best = best.min(key);
            }
            if best == u64::MAX {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            }
            let i = (best & index_mask) as usize;
            // Batch core `i`. Field-split borrows hoist the bounds check
            // out of the hot loop; `apply_outcome` (which needs all of
            // `self`) runs only after the batch ends.
            let core = &mut self.cores[i];
            let outcome = loop {
                if core.time() > deadline {
                    return Err(ClusterError::Timeout { max_cycles });
                }
                let outcome = core
                    .step(&mut self.bus)
                    .map_err(|err| ClusterError::Exec { core: i, err })?;
                if outcome != StepOutcome::Executed {
                    break outcome;
                }
                if ((core.time() << shift) | i as u64) > second {
                    continue 'outer;
                }
            };
            self.apply_outcome(i, outcome);
        }
    }

    /// Micro-op scheduler: the turbo batching policy, but each batch runs
    /// through pre-decoded basic-block micro-ops
    /// ([`ulp_isa::Core::exec_block`]) instead of stepping the decoder.
    ///
    /// Correctness argument, on top of [`Self::run_loop_turbo`]'s: the batch
    /// cut-off `(t_i, i) > second` is evaluated *after* each retired
    /// instruction in both loops, and for a fixed core index it is a pure
    /// threshold on the local time, so it converts exactly to the time bound
    /// passed to `exec_block`: `t ≤ bound ⟺ ((t << shift) | i) ≤ second`.
    /// (Post-retire times are ≥ 1, so the `saturating_sub` corner at
    /// `second >> shift == 0` is unreachable.) `exec_block` checks the
    /// deadline before each op, the outcome/bound after each op, and exits
    /// on any redirect (taken branch, stale block, block end) — whereupon
    /// this loop re-looks-up at the new PC and continues batching the same
    /// core, exactly as the turbo loop would keep stepping it. Blocks are
    /// built from the same decoded side table the reference fetch uses, and
    /// the I$ model is consulted once per retired instruction either way,
    /// so timing, stats and trace events are bit-identical.
    ///
    /// Each core keeps its current block resident (`Core::exec_resume`),
    /// so the ~2-op batches that time-aligned SPMD cores produce resume
    /// mid-block for the cost of a pc + generation compare instead of a
    /// cache look-up and an `Arc` round-trip per batch.
    fn run_loop_microop(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        self.run_loop_microop_until(deadline, max_cycles, u64::MAX)
    }

    /// [`Self::run_loop_microop`] with a pause point: once the frontmost
    /// *running* core's local time exceeds `until`, the loop returns
    /// `Ok(())` at a scan boundary (a consistent scheduler state) instead
    /// of running to halt. `u64::MAX` never pauses — the plain micro-op
    /// run. The epoch engine uses a finite `until` as its exact-execution
    /// fallback window after a rollback.
    fn run_loop_microop_until(
        &mut self,
        deadline: u64,
        max_cycles: u64,
        until: u64,
    ) -> Result<(), ClusterError> {
        let shift = usize::BITS - self.cores.len().saturating_sub(1).leading_zeros();
        let index_mask = (1u64 << shift) - 1;
        let key_of = |c: &Core, i: usize| {
            if c.state() == CoreState::Running {
                (c.time() << shift) | i as u64
            } else {
                u64::MAX
            }
        };
        // Compact shadow of each core's scheduling key. Cores are large and
        // live on scattered cache lines; batches are ~2 ops on time-aligned
        // SPMD cores, so the per-batch best/second scan runs over this
        // array instead and only the entries that could have changed are
        // refreshed: the core that just ran, or all of them after an
        // outcome with cluster-level side effects (wake-ups move other
        // cores' clocks). The array itself lives on the cluster so the
        // repeated cold+warm offload runs (and every epoch fallback
        // window) reuse one allocation.
        self.sched_keys.clear();
        for i in 0..self.cores.len() {
            self.sched_keys.push(key_of(&self.cores[i], i));
        }
        'outer: loop {
            let mut best = u64::MAX;
            let mut second = u64::MAX;
            for &key in &self.sched_keys {
                second = second.min(best.max(key));
                best = best.min(key);
            }
            if best == u64::MAX {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            }
            if (best >> shift) > until {
                return Ok(());
            }
            let i = (best & index_mask) as usize;
            // The largest local time that keeps `(time, i)` ahead of the
            // runner-up key — the turbo batch cut-off as a plain bound.
            let bound = if second == u64::MAX {
                u64::MAX
            } else if (i as u64) <= (second & index_mask) {
                second >> shift
            } else {
                (second >> shift).saturating_sub(1)
            };
            let outcome = loop {
                if let Some(exit) = self.cores[i]
                    .exec_resume(&mut self.bus, deadline, bound)
                    .map_err(|err| ClusterError::Exec { core: i, err })?
                {
                    match exit {
                        BlockExit::Outcome(outcome) => break outcome,
                        BlockExit::Bound => {
                            self.sched_keys[i] = key_of(&self.cores[i], i);
                            continue 'outer;
                        }
                        BlockExit::Deadline => {
                            return Err(ClusterError::Timeout { max_cycles });
                        }
                        BlockExit::Redirect => {}
                    }
                    continue;
                }
                // No block starts here (undecodable or unmapped word): one
                // reference step — which also reproduces the exact fetch
                // error, or executes the lone instruction a just-patched
                // word decodes to.
                if self.cores[i].time() > deadline {
                    return Err(ClusterError::Timeout { max_cycles });
                }
                let outcome = self.cores[i]
                    .step(&mut self.bus)
                    .map_err(|err| ClusterError::Exec { core: i, err })?;
                if outcome != StepOutcome::Executed {
                    break outcome;
                }
                if ((self.cores[i].time() << shift) | i as u64) > second {
                    self.sched_keys[i] = key_of(&self.cores[i], i);
                    continue 'outer;
                }
            };
            self.apply_outcome(i, outcome);
            // Barrier releases and events may have woken (and re-clocked)
            // any core: refresh every key on this rare path.
            for (j, key) in self.sched_keys.iter_mut().enumerate() {
                *key = key_of(&self.cores[j], j);
            }
        }
    }

    /// Epoch scheduler: break the lockstep batching ceiling with optimistic
    /// per-core replay. Each round picks a horizon past the frontmost
    /// running core's time, snapshots the speculation-mutable state, and
    /// lets every resident core replay its micro-op blocks *privately* up
    /// to that horizon — modelling cross-core TCDM conflict stalls from
    /// the already-replayed segments' bank marks as it goes (see
    /// [`EpochBus`]) — then repairs the modelled timelines into the exact
    /// interleaved one ([`repair_schedule`]) and commits cycles, retires,
    /// memory traffic and TCDM arbitration in bulk. What cannot be
    /// repaired — a cross-core data-order violation, an I$ miss, a
    /// scheduler-visible outcome (sleep/event/barrier), a `CycleLo` read,
    /// a fault, or a commit boundary that top-ups cannot close — rolls
    /// the whole epoch back and runs an exact micro-op window past the
    /// failure point instead.
    ///
    /// Correctness argument, per committed epoch: no event, wake, barrier
    /// or sleep commits speculatively, so the committed work is "each
    /// running core runs some prefix of its future ops". Per-core state
    /// composes trivially (replay executes the real micro-op path), and
    /// the cut points are arbitrary; what must be proven exact is the
    /// shared state. (a) TCDM: access streams are timing-independent (the
    /// only clock-dependent value, `CycleLo`, aborts), so the logs
    /// determine the exact arbitration; [`repair_schedule`] re-derives
    /// it, patches each core's clock and stall counter by its accumulated
    /// shift (every data stall adds `start - issue` to both, so the
    /// uniform patch is exact), corrects the conflict counter, installs
    /// the exact final bank clocks, and validates word-level data flow
    /// against application order. (b) The boundary check guarantees every
    /// *future* access sorts after every committed one — each running
    /// core's exact resume time must clear the epoch's largest exact
    /// issue time (cores short of it are replayed a bit further first) —
    /// so later arbitration against the committed bank clocks stays
    /// exact; a sleeping core cannot sneak in earlier, since its waker's
    /// own ops lie past that boundary. (c) The deadline guard: a positive
    /// shift could move a committed op past the run deadline, executing
    /// work the reference would have timed out before — epochs start only
    /// a full horizon clear of the deadline, and a commit whose shifted
    /// op starts could cross it aborts (the exact tail reproduces
    /// timeouts bit-identically). (d) I$ hits are order-independent (tags
    /// untouched), misses abort; L2 data loads are constant-latency
    /// reads; the remaining counters are order-free sums. Rollback
    /// restores cores from snapshots, TCDM bytes from the undo log
    /// (newest first), and the touched counters, so a failed epoch is
    /// state-identical to never having speculated.
    ///
    /// The horizon adapts — doubling on commit, halving on rollback —
    /// driven only by simulated state, so runs are deterministic across
    /// hosts and `--jobs`. Structured tracing needs events in exact global
    /// order, which per-core replay does not produce: trace runs delegate
    /// to the micro-op engine wholesale (bit-identical by battery).
    fn run_loop_epoch(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        if self.tracer.is_enabled() {
            return self.run_loop_microop(deadline, max_cycles);
        }
        let words = self.bus.tcdm.size() / 4;
        if self.epoch.words.len() < words {
            self.epoch.words.resize(words, WordTrack::default());
        }
        if self.epoch.written.len() < words.div_ceil(64) {
            self.epoch.written.resize(words.div_ceil(64), 0);
        }
        if self.epoch.journal_mark.len() < words {
            self.epoch.journal_mark.resize(words, 0);
        }
        let ncores = self.cores.len();
        if self.epoch.logs.len() < ncores {
            self.epoch.logs.resize_with(ncores, Vec::new);
        }
        self.epoch.sigma_prev.clear();
        self.epoch.sigma_prev.resize(ncores, 0);
        /// Verified-prefix rewind point for commit salvage: everything a
        /// failure after the snapshot needs restored to make the window
        /// end at the snapshot's chunk boundary instead.
        struct Salvage {
            cores: Vec<Core>,
            undo_len: usize,
            log_lens: Vec<usize>,
            tcdm: TcdmTimingSnapshot,
            l2_accesses: u64,
            icache_hits: u64,
        }
        let mut horizon = EPOCH_HORIZON_START;
        loop {
            let mut front = u64::MAX;
            for c in &self.cores {
                if c.state() == CoreState::Running {
                    front = front.min(c.time());
                }
            }
            if front == u64::MAX {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            }
            if front > deadline {
                return Err(ClusterError::Timeout { max_cycles });
            }
            if front.saturating_add(horizon) > deadline {
                // Within one horizon of the deadline: finish exactly, so
                // no repaired commit can shift work across the timeout.
                return self.run_loop_microop_until(deadline, max_cycles, u64::MAX);
            }
            let epoch_end = front + horizon;

            // Speculate: private replays in core-index order (the
            // reference tie-break order). With one replayer the private
            // schedule IS the global one, so the cross-core machinery
            // switches off.
            let replayers = self
                .cores
                .iter()
                .filter(|c| c.state() == CoreState::Running && c.time() <= epoch_end)
                .count();
            let checks = replayers > 1;
            self.epoch.undo.clear();
            self.epoch.saved_cores.clear();
            for l in &mut self.epoch.logs {
                l.clear();
            }
            if checks {
                self.epoch.written.fill(0);
            }
            self.bus
                .tcdm
                .timing_snapshot_into(&mut self.epoch.tcdm_snap);
            let l2_accesses = self.bus.l2.accesses();
            let icache_hits = self.bus.icache.stats_snapshot();

            let mut seg = 0u32;
            let mut failed_at = None;
            let mut contention = false;
            let mut resume_before = None;
            let mut salvage: Option<Salvage> = None;
            // Replay in chunk rounds with an incremental repair pass
            // between rounds: wide windows still replay end to end in one
            // pass per core per chunk, but a data-order violation
            // surfaces within a chunk of where it happened, bounding the
            // speculative work a rollback discards.
            let mut chunk_start = front;
            'chunks: loop {
                let chunk_end = if checks {
                    chunk_start.saturating_add(EPOCH_CHUNK).min(epoch_end)
                } else {
                    epoch_end
                };
                if checks && chunk_start != front {
                    // Mid-window pass over what is logged so far — pure
                    // violation detection; boundary handling runs once at
                    // window end.
                    let r = repair_schedule(&mut self.epoch, ncores, resume_before);
                    if let Err(t) = r {
                        contention = true;
                        failed_at = Some(t);
                        break 'chunks;
                    }
                    // The next pass (mid-window or boundary) only needs
                    // to re-merge from the smallest stop this chunk's
                    // appends can reach (see [`RepairCkpt`]).
                    resume_before = (0..ncores)
                        .filter(|&i| self.cores[i].state() == CoreState::Running)
                        .map(|i| self.cores[i].time() as i64 + self.epoch.sigma[i])
                        .min();
                    // Everything logged so far just merged clean, so this
                    // boundary is a valid narrower window end: snapshot it,
                    // and a later failure commits the prefix up to here
                    // instead of discarding the whole window.
                    let mut s = salvage.take().unwrap_or(Salvage {
                        cores: Vec::new(),
                        undo_len: 0,
                        log_lens: Vec::new(),
                        tcdm: TcdmTimingSnapshot::default(),
                        l2_accesses: 0,
                        icache_hits: 0,
                    });
                    s.cores.clear();
                    s.cores.extend(self.cores.iter().cloned());
                    s.undo_len = self.epoch.undo.len();
                    s.log_lens.clear();
                    s.log_lens
                        .extend(self.epoch.logs[..ncores].iter().map(Vec::len));
                    self.bus.tcdm.timing_snapshot_into(&mut s.tcdm);
                    s.l2_accesses = self.bus.l2.accesses();
                    s.icache_hits = self.bus.icache.stats_snapshot();
                    salvage = Some(s);
                }
                for i in 0..ncores {
                    if self.cores[i].state() != CoreState::Running
                        || self.cores[i].time() > chunk_end
                    {
                        continue;
                    }
                    if !self.epoch.saved_cores.iter().any(|(j, _)| *j == i) {
                        self.epoch.saved_cores.push((i, self.cores[i].clone()));
                    }
                    // Bias the *window* target by last epoch's shift so
                    // the cores' exact stop times land close together at
                    // the boundary (see `sigma_prev`); intermediate chunk
                    // bounds stay unbiased or the bias would throttle
                    // every chunk. Any bound is sound.
                    let target = if checks {
                        epoch_end.saturating_add_signed(-self.epoch.sigma_prev[i])
                    } else {
                        epoch_end
                    };
                    let bound = chunk_end.min(target);
                    let fail = replay_core(
                        &mut self.cores[i],
                        &mut self.bus,
                        i,
                        seg,
                        deadline,
                        bound,
                        checks,
                        &mut self.epoch,
                    );
                    seg += 1;
                    if checks {
                        // Rewind the arbiter so the next segment also
                        // replays against pre-epoch state.
                        self.bus
                            .tcdm
                            .bank_free_restore(&self.epoch.tcdm_snap.bank_free);
                    }
                    if let Some(t) = fail {
                        failed_at = Some(t);
                        break 'chunks;
                    }
                }
                if chunk_end == epoch_end {
                    break;
                }
                chunk_start = chunk_end;
            }

            // Repair-and-check loop: reconstruct the exact schedule from
            // the logs; cores whose windows end before the epoch's
            // largest exact issue time get topped up (their next accesses
            // could otherwise order before committed ones) and the pass
            // reruns over the extended logs.
            let mut conflict_delta = 0i64;
            let mut salvage_fallback = None;
            loop {
                if let Some(t) = failed_at {
                    // Commit salvage: rewind to the last verified chunk
                    // boundary, if one exists, and run the boundary
                    // handling as if the window had ended there — the
                    // clean prefix commits and only the failed tail is
                    // discarded. Replayed cores, speculative bytes, logs
                    // and counters all return to their boundary values
                    // first.
                    let Some(s) = salvage.take() else { break };
                    for (i, c) in s.cores.into_iter().enumerate() {
                        self.cores[i] = c;
                    }
                    for (addr, len, bytes) in self.epoch.undo.drain(s.undo_len..).rev() {
                        self.bus
                            .tcdm
                            .write_bytes(addr, &bytes[..len as usize])
                            .expect("undo entries were in-bounds when logged");
                    }
                    for (l, &n) in self.epoch.logs[..ncores].iter_mut().zip(&s.log_lens) {
                        l.truncate(n);
                    }
                    self.bus.tcdm.timing_restore(&s.tcdm);
                    self.bus.l2.set_accesses(s.l2_accesses);
                    self.bus.icache.stats_restore(s.icache_hits);
                    salvage_fallback = Some(t);
                    failed_at = None;
                    // The merge state reflects the discarded appends;
                    // redo the truncated prefix from scratch.
                    resume_before = None;
                }
                if failed_at.is_none() && checks {
                    let mut rounds = 0;
                    loop {
                        match repair_schedule(&mut self.epoch, ncores, resume_before) {
                            Err(t) => {
                                contention = true;
                                failed_at = Some(t);
                                break;
                            }
                            Ok((delta, max_issue)) => {
                                let lagging = |c: &Core, sigma: i64| {
                                    c.state() == CoreState::Running
                                        && c.time() as i64 + sigma <= max_issue
                                };
                                if !(0..ncores)
                                    .any(|i| lagging(&self.cores[i], self.epoch.sigma[i]))
                                {
                                    // Deadline guard (see the method docs):
                                    // every committed op start is below the
                                    // core's post-window clock, so clock - 1
                                    // plus the largest positive shift bounds
                                    // the latest exact op start.
                                    let crosses = self.epoch.saved_cores.iter().any(|(i, _)| {
                                        self.cores[*i].time() as i128 - 1
                                            + self.epoch.sigma_max[*i] as i128
                                            > deadline as i128
                                    });
                                    if crosses {
                                        failed_at = Some(front);
                                    } else {
                                        conflict_delta = delta;
                                        for (i, _) in &self.epoch.saved_cores {
                                            self.epoch.sigma_prev[*i] = self.epoch.sigma[*i];
                                        }
                                    }
                                    break;
                                }
                                rounds += 1;
                                if rounds > EPOCH_TOPUP_ROUNDS {
                                    contention = true;
                                    failed_at = Some(front);
                                    break;
                                }
                                // The next pass only needs to re-merge from
                                // the smallest topped-up core's pre-top-up
                                // exact stop (see [`RepairCkpt`]).
                                resume_before = (0..ncores)
                                    .filter(|&i| lagging(&self.cores[i], self.epoch.sigma[i]))
                                    .map(|i| self.cores[i].time() as i64 + self.epoch.sigma[i])
                                    .min();
                                for i in 0..ncores {
                                    if !lagging(&self.cores[i], self.epoch.sigma[i]) {
                                        continue;
                                    }
                                    if !self.epoch.saved_cores.iter().any(|(j, _)| *j == i) {
                                        self.epoch.saved_cores.push((i, self.cores[i].clone()));
                                    }
                                    let bound = (max_issue + 1 + EPOCH_TOPUP_GRACE as i64
                                        - self.epoch.sigma[i])
                                        .max(0)
                                        as u64;
                                    let fail = replay_core(
                                        &mut self.cores[i],
                                        &mut self.bus,
                                        i,
                                        seg,
                                        deadline,
                                        bound,
                                        true,
                                        &mut self.epoch,
                                    );
                                    seg += 1;
                                    self.bus
                                        .tcdm
                                        .bank_free_restore(&self.epoch.tcdm_snap.bank_free);
                                    if let Some(t) = fail {
                                        failed_at = Some(t);
                                        break;
                                    }
                                }
                                if failed_at.is_some() {
                                    break;
                                }
                            }
                        }
                    }
                }
                if failed_at.is_none() {
                    break;
                }
            }
            let Some(fail_time) = failed_at else {
                // Commit: everything the replays mutated stays, patched
                // onto the proven-exact timeline — each core's clock and
                // stall counter move by its final shift, the conflict
                // counter by the exact-minus-modelled difference, and the
                // banks get the exact chain's final clocks.
                if checks {
                    for (i, _) in &self.epoch.saved_cores {
                        let s = self.epoch.sigma[*i];
                        if s != 0 {
                            self.cores[*i].epoch_time_shift(s);
                        }
                    }
                    if conflict_delta != 0 {
                        self.bus.tcdm.conflicts_adjust(conflict_delta);
                    }
                    self.bus.tcdm.bank_free_restore(&self.epoch.repair_free);
                }
                if let Some(t) = salvage_fallback {
                    // A prefix commit: the tail past the boundary failed,
                    // so the window does not grow, and the exact fallback
                    // steps past the failure cause just as it would after
                    // a full rollback.
                    if contention {
                        horizon = (horizon / 2).max(EPOCH_HORIZON_MIN);
                    }
                    let grace = if contention {
                        EPOCH_FALLBACK_GRACE
                    } else {
                        EPOCH_FALLBACK_GRACE * 4
                    };
                    let until = t.max(front).saturating_add(grace);
                    self.run_loop_microop_until(deadline, max_cycles, until)?;
                } else {
                    horizon = (horizon * 2).min(EPOCH_HORIZON_MAX);
                }
                continue;
            };

            // Rollback, all or nothing: cores from their snapshots, TCDM
            // bytes newest-first (overlapping writes then restore the
            // pre-epoch value), and the touched timing/PMU state.
            for (i, saved) in self.epoch.saved_cores.drain(..) {
                self.cores[i] = saved;
            }
            for (addr, len, bytes) in self.epoch.undo.drain(..).rev() {
                self.bus
                    .tcdm
                    .write_bytes(addr, &bytes[..len as usize])
                    .expect("undo entries were in-bounds when logged");
            }
            self.bus.tcdm.timing_restore(&self.epoch.tcdm_snap);
            self.bus.l2.set_accesses(l2_accesses);
            self.bus.icache.stats_restore(icache_hits);
            // Only genuine contention failures (data-order violations,
            // boundary non-convergence) indicate the window was too wide;
            // replay-side aborts (I$ misses, barriers, MMIO) are one-off
            // events the fallback window steps past.
            if contention {
                horizon = (horizon / 2).max(EPOCH_HORIZON_MIN);
            }

            // Exact window past the failure cause (plus a little grace so
            // cold-I$ fill trains and barrier flurries cost one window,
            // not one rollback each). Timeouts, deadlocks and faults
            // surface from here with reference-identical payloads.
            let grace = if contention {
                EPOCH_FALLBACK_GRACE
            } else {
                EPOCH_FALLBACK_GRACE * 4
            };
            let until = fail_time.max(front).saturating_add(grace);
            self.run_loop_microop_until(deadline, max_cycles, until)?;
        }
    }

    /// Applies the cluster-level side effects of one step outcome (shared
    /// by all scheduling engines).
    fn apply_outcome(&mut self, i: usize, outcome: StepOutcome) {
        match outcome {
            StepOutcome::Executed | StepOutcome::Halted => {}
            StepOutcome::Sleeping => self.waits[i] = WaitReason::Event,
            StepOutcome::EventSent(id) => self.route_event(i, id),
            StepOutcome::BarrierArrived => {
                self.waits[i] = WaitReason::Barrier;
                if let Some(release) = self.event_unit.barrier_arrive(i, self.cores[i].time()) {
                    let t = release + u64::from(self.config.barrier_latency);
                    self.tracer.emit(
                        Component::Cluster,
                        EventKind::Barrier,
                        release,
                        u64::from(self.config.barrier_latency),
                    );
                    for (j, c) in self.cores.iter_mut().enumerate() {
                        if self.waits[j] == WaitReason::Barrier {
                            c.wake(t);
                            self.waits[j] = WaitReason::None;
                        }
                    }
                }
            }
        }
    }

    /// Publishes the run's busy/total cycles per component to the tracer.
    /// Counters are overwritten each run, so after a cold+warm cost
    /// measurement they describe the warm run — the same numbers reported
    /// in [`RunResult::activity`] and `OffloadReport`.
    fn record_counters(&self, activity: &ClusterActivity) {
        if !self.tracer.is_enabled() {
            return;
        }
        let cycles = activity.total_cycles;
        for (i, &busy) in activity.core_active_cycles.iter().enumerate() {
            self.tracer
                .set_counter(Component::Core(i as u8), busy, cycles);
        }
        self.tracer.set_counter(
            Component::Tcdm,
            activity.tcdm_busy_cycles,
            cycles * self.config.tcdm_banks as u64,
        );
        self.tracer.set_counter(
            Component::ICache,
            activity.icache_misses * u64::from(self.config.icache_miss_penalty),
            cycles,
        );
        self.tracer
            .set_counter(Component::Dma, activity.dma_busy_cycles, cycles);
    }

    fn collect_activity(&self, total_cycles: u64) -> ClusterActivity {
        ClusterActivity {
            total_cycles,
            core_active_cycles: self
                .cores
                .iter()
                .map(|c| c.stats().active_cycles(c.time() - self.start_time))
                .collect(),
            core_retired: self.cores.iter().map(|c| c.stats().retired).collect(),
            tcdm_busy_cycles: self.bus.tcdm.busy_cycles(),
            tcdm_banks: self.config.tcdm_banks,
            tcdm_conflicts: self.bus.tcdm.conflicts(),
            icache_hits: self.bus.icache.hits(),
            icache_misses: self.bus.icache.misses(),
            l2_accesses: self.bus.l2.accesses(),
            dma_busy_cycles: self.bus.dma.busy_cycles(),
            dma_bytes: self.bus.dma.bytes_moved(),
            barriers: self.event_unit.barriers_completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::prelude::*;
    use ulp_isa::Insn;

    fn quad() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    /// SPMD program: workers sleep, master wakes them, everyone increments
    /// a private TCDM slot, barrier, halt.
    fn fork_join_prog() -> Program {
        let mut a = Asm::new();
        let worker = a.new_label();
        let body = a.new_label();
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.bne(R20, R0, worker);
        // master: prologue then release the team
        a.sev(crate::EVT_BROADCAST);
        a.jmp(body);
        a.bind(worker);
        a.wfe();
        a.bind(body);
        a.la(R1, TCDM_BASE);
        a.slli(R2, R20, 2);
        a.add(R1, R1, R2);
        a.addi(R3, R20, 100);
        a.sw(R3, R1, 0);
        a.barrier();
        // master signals EOC
        let done = a.new_label();
        a.bne(R20, R0, done);
        a.sev(crate::EVT_EOC);
        a.bind(done);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn fork_join_all_cores_participate() {
        let mut cl = quad();
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(1_000_000).unwrap();
        for i in 0..4 {
            assert_eq!(cl.read_tcdm_u32(TCDM_BASE + 4 * i).unwrap(), 100 + i);
        }
        assert!(res.eoc_at.is_some());
        assert_eq!(res.activity.barriers, 1);
        assert!(res.activity.total_retired() > 0);
    }

    #[test]
    fn single_core_cluster_runs_serial_code() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.li(R1, 21);
        a.add(R1, R1, R1);
        a.la(R2, TCDM_BASE);
        a.sw(R1, R2, 0);
        a.sev(crate::EVT_EOC);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(10_000).unwrap();
        assert_eq!(cl.read_tcdm_u32(TCDM_BASE).unwrap(), 42);
        assert!(res.eoc_at.unwrap() <= res.end_time);
    }

    #[test]
    fn args_are_visible_to_all_cores() {
        let mut cl = quad();
        let mut a = Asm::new();
        // Every core adds its id to the arg in r3 and stores at id slot.
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.add(R4, R3, R20);
        a.la(R1, TCDM_BASE + 0x100);
        a.slli(R2, R20, 2);
        a.add(R1, R1, R2);
        a.sw(R4, R1, 0);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[(R3, 1000)], 0);
        cl.run_until_halt(10_000).unwrap();
        for i in 0..4 {
            assert_eq!(
                cl.read_tcdm_u32(TCDM_BASE + 0x100 + 4 * i).unwrap(),
                1000 + i
            );
        }
    }

    #[test]
    fn deadlock_detected_when_all_sleep() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 2,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.wfe();
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        assert!(matches!(
            cl.run_until_halt(10_000),
            Err(ClusterError::Deadlock)
        ));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.jmp(top);
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        assert!(matches!(
            cl.run_until_halt(5_000),
            Err(ClusterError::Timeout { max_cycles: 5_000 })
        ));
    }

    #[test]
    fn fault_reports_core_index() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.la(R1, 0x5555_0000); // unmapped
        a.lw(R2, R1, 0);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        match cl.run_until_halt(10_000) {
            Err(ClusterError::Exec {
                core: 0,
                err: ExecError::Bus(_),
            }) => {}
            other => panic!("expected bus fault, got {other:?}"),
        }
    }

    #[test]
    fn l2_data_access_slower_than_tcdm() {
        let run_with = |base: u32| {
            let mut cl = Cluster::new(ClusterConfig {
                num_cores: 1,
                ..ClusterConfig::default()
            });
            let mut a = Asm::new();
            a.la(R1, base);
            for _ in 0..32 {
                a.lw(R2, R1, 0);
            }
            a.halt();
            let prog = a.finish().unwrap();
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(100_000).unwrap().cycles
        };
        let tcdm_cycles = run_with(TCDM_BASE);
        let l2_cycles = run_with(L2_BASE + 0x8000);
        assert!(
            l2_cycles > tcdm_cycles + 32,
            "L2 loads must pay the bus latency"
        );
    }

    #[test]
    fn four_cores_hammering_one_bank_serialize() {
        // Each core loads the same TCDM word 64 times.
        let mut a = Asm::new();
        a.la(R1, TCDM_BASE);
        a.li(R2, 64);
        let top = a.new_label();
        a.bind(top);
        a.lw(R3, R1, 0);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog = a.finish().unwrap();

        let mut cl = quad();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(1_000_000).unwrap();
        assert!(
            res.activity.tcdm_conflicts > 0,
            "same-bank traffic must conflict"
        );

        // Spread the cores over different banks: far fewer conflicts.
        let mut a = Asm::new();
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.slli(R4, R20, 2);
        a.la(R1, TCDM_BASE);
        a.add(R1, R1, R4);
        a.li(R2, 64);
        let top = a.new_label();
        a.bind(top);
        a.lw(R3, R1, 0);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog2 = a.finish().unwrap();
        let mut cl2 = quad();
        cl2.load_binary(&prog2, L2_BASE).unwrap();
        cl2.start(L2_BASE, &[], 0);
        let res2 = cl2.run_until_halt(1_000_000).unwrap();
        assert!(res2.activity.tcdm_conflicts < res.activity.tcdm_conflicts);
    }

    #[test]
    fn dma_copy_moves_data_and_reports_timing() {
        let mut cl = quad();
        let payload: Vec<u8> = (0..=255).collect();
        cl.write_l2(L2_BASE + 0x4000, &payload).unwrap();
        let done = cl
            .dma_copy(100, L2_BASE + 0x4000, TCDM_BASE + 0x200, 256)
            .unwrap();
        assert_eq!(done, 100 + 10 + 64); // setup 10 + 64 words
        assert_eq!(cl.read_tcdm(TCDM_BASE + 0x200, 256).unwrap(), payload);
    }

    #[test]
    fn icache_cold_start_then_warm() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.li(R2, 100);
        let top = a.new_label();
        a.bind(top);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(100_000).unwrap();
        assert!(res.activity.icache_misses <= 2);
        assert!(res.activity.icache_hit_rate() > 0.95);
    }

    #[test]
    fn self_modifying_code_through_cluster_fetch_path() {
        // A program that patches one of its own instructions via a data
        // store through the cluster bus, then executes the patched word.
        // This exercises the L2 decoded-instruction cache invalidation: the
        // target was predecoded at load time as `addi r5, r0, 1`, and the
        // store must evict that entry so the fetch path re-decodes the new
        // word.
        let new_word = ulp_isa::encode(&Insn::Addi(R5, R0, 42)).unwrap();
        let build = |target_addr: u32| {
            let mut a = Asm::new();
            a.li(R2, new_word as i32);
            a.la(R1, target_addr);
            a.sw(R2, R1, 0);
            let target_off = a.here();
            a.addi(R5, R0, 1); // patched to `addi r5, r0, 42` before it runs
            a.la(R3, TCDM_BASE);
            a.sw(R5, R3, 0);
            a.halt();
            (a.finish().unwrap(), target_off)
        };
        // Two-pass assembly: measure the patch target's offset with a
        // placeholder address of the same encoding length, then rebuild.
        let (_, target_off) = build(L2_BASE + 4);
        let (prog, check) = build(L2_BASE + target_off);
        assert_eq!(check, target_off);

        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        cl.run_until_halt(10_000).unwrap();
        assert_eq!(cl.read_tcdm_u32(TCDM_BASE).unwrap(), 42);
    }

    #[test]
    fn all_four_engines_bit_identical() {
        let run = |engine: crate::Engine| {
            let mut cl = quad();
            cl.set_engine(engine);
            cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(1_000_000).unwrap()
        };
        let reference = run(crate::Engine::Reference);
        for engine in [
            crate::Engine::Turbo,
            crate::Engine::Microop,
            crate::Engine::Epoch,
        ] {
            assert_eq!(run(engine), reference, "{} diverged", engine.name());
        }
    }

    #[test]
    fn microop_engine_sees_self_modifying_code_in_its_own_block() {
        // Patch the *next* instruction in the same straight-line block: the
        // store bumps the L2 decode generation, exec_block must exit on the
        // staleness check and the rebuilt block must decode the new word.
        let new_word = ulp_isa::encode(&Insn::Addi(R5, R0, 42)).unwrap();
        let build = |target_addr: u32| {
            let mut a = Asm::new();
            a.li(R2, new_word as i32);
            a.la(R1, target_addr);
            a.sw(R2, R1, 0);
            let target_off = a.here();
            a.addi(R5, R0, 1); // patched to `addi r5, r0, 42` before it runs
            a.la(R3, TCDM_BASE);
            a.sw(R5, R3, 0);
            a.halt();
            (a.finish().unwrap(), target_off)
        };
        let (_, target_off) = build(L2_BASE + 4);
        let (prog, check) = build(L2_BASE + target_off);
        assert_eq!(check, target_off);

        for engine in crate::Engine::ALL {
            let mut cl = Cluster::new(ClusterConfig {
                num_cores: 1,
                ..ClusterConfig::default()
            });
            cl.set_engine(engine);
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(10_000).unwrap();
            assert_eq!(
                cl.read_tcdm_u32(TCDM_BASE).unwrap(),
                42,
                "{} engine must observe the patch",
                engine.name()
            );
        }
    }

    #[test]
    fn epoch_engine_matches_reference_under_bank_contention() {
        // Every core hammers the same TCDM words in a tight loop: the
        // shared-operand reads are lockstep (they must pass the bank-order
        // check and commit), while the shared read-modify-write word forces
        // genuine order violations and epoch rollbacks. Both paths must
        // land on reference-identical cycles, retires and memory.
        let prog = {
            let mut a = Asm::new();
            a.insn(Insn::Csrr(R20, Csr::CoreId));
            a.la(R1, TCDM_BASE); // shared operand + contended word
            a.la(R2, TCDM_BASE + 0x100); // private slots
            a.slli(R3, R20, 2);
            a.add(R2, R2, R3);
            a.li(R4, 200);
            let body = a.new_label();
            a.bind(body);
            a.lw(R5, R1, 0); // lockstep shared reads
            a.lw(R6, R1, 4);
            a.add(R5, R5, R6);
            a.sw(R5, R2, 0); // private write
            a.lw(R7, R1, 8); // contended read-modify-write
            a.addi(R7, R7, 1);
            a.sw(R7, R1, 8);
            a.addi(R4, R4, -1);
            a.bne(R4, R0, body);
            a.barrier();
            a.halt();
            a.finish().unwrap()
        };
        let run = |engine: crate::Engine| {
            let mut cl = quad();
            cl.set_engine(engine);
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            let res = cl.run_until_halt(10_000_000).unwrap();
            let mem: Vec<u32> = (0..0x110)
                .step_by(4)
                .map(|off| cl.read_tcdm_u32(TCDM_BASE + off).unwrap())
                .collect();
            (res, mem)
        };
        let reference = run(crate::Engine::Reference);
        assert_eq!(run(crate::Engine::Epoch), reference);
    }

    #[test]
    fn epoch_engine_matches_reference_with_cycle_csr_polling() {
        // A cycle-CSR poll every iteration: the clock feeds an
        // architectural value, so every epoch aborts and falls back to an
        // exact window bounded at the latched read time. The polled
        // values (accumulated and stored) must still be
        // reference-identical, as must cycles, retires and memory.
        let prog = {
            let mut a = Asm::new();
            a.insn(Insn::Csrr(R20, Csr::CoreId));
            a.la(R1, TCDM_BASE + 0x40);
            a.slli(R2, R20, 3);
            a.add(R1, R1, R2); // 8-byte per-core area: RMW word + sum
            a.li(R4, 300);
            a.li(R6, 0);
            let body = a.new_label();
            a.bind(body);
            a.insn(Insn::Csrr(R5, Csr::CycleLo)); // the poll
            a.add(R6, R6, R5);
            a.lw(R7, R1, 0); // TCDM traffic between polls
            a.addi(R7, R7, 1);
            a.sw(R7, R1, 0);
            a.addi(R4, R4, -1);
            a.bne(R4, R0, body);
            a.sw(R6, R1, 4);
            a.barrier();
            a.halt();
            a.finish().unwrap()
        };
        let run = |engine: crate::Engine| {
            let mut cl = quad();
            cl.set_engine(engine);
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            let res = cl.run_until_halt(10_000_000).unwrap();
            let mem: Vec<u32> = (0x40..0x60)
                .step_by(4)
                .map(|off| cl.read_tcdm_u32(TCDM_BASE + off).unwrap())
                .collect();
            (res, mem)
        };
        let reference = run(crate::Engine::Reference);
        assert_eq!(run(crate::Engine::Epoch), reference);
    }

    #[test]
    fn repair_resume_rewinds_checkpoints_tied_at_the_limit() {
        // Regression: a topped-up core's first appended access can pop at
        // exactly `shifted == limit` (its resume time plus sigma), and a
        // checkpoint whose last pop ties the limit may already have
        // committed a same-shifted pop from a higher-index core that the
        // `(shifted, core)` tie-break orders *after* the appended access.
        // Resuming from such a checkpoint replays a different arbitration
        // order than a full merge. These synthetic logs land the tie
        // exactly on the 256-pop checkpoint boundary; the resumed pass
        // must match a from-scratch merge over the same logs.
        let access = |bank: u32, now: u64| MemAccess {
            bank,
            word_w: bank, // reads of never-written words: data-flow check off
            seg: 0,
            now,
            mark: now + 1, // modelled stall-free (d_m = 0)
        };
        // Core 0: bank 0 at even times 0..=254. Core 1: bank 1 at odd
        // times 1..=253, then *bank 0* at 255 (pop #256), then bank 1
        // past the tie so the merge keeps going and pushes the 256-pop
        // checkpoint with `last_shifted == 255`.
        let core0: Vec<MemAccess> = (0..128u64).map(|i| access(0, 2 * i)).collect();
        let mut core1: Vec<MemAccess> = (0..127u64).map(|i| access(1, 2 * i + 1)).collect();
        core1.push(access(0, 255));
        core1.push(access(1, 257));
        core1.push(access(1, 259));
        let mut ep = EpochScratch {
            tcdm_snap: TcdmTimingSnapshot {
                bank_free: vec![0, 0],
                ..TcdmTimingSnapshot::default()
            },
            words: vec![WordTrack::default(); 64],
            written: vec![0],
            journal_mark: vec![0; 64],
            logs: vec![core0, core1],
            ..EpochScratch::default()
        };
        repair_schedule(&mut ep, 2, None).unwrap();
        assert_eq!(ep.sigma, vec![0, 0], "pre-top-up merge is stall-free");
        assert_eq!(
            ep.ckpts.iter().map(|c| c.last_shifted).collect::<Vec<_>>(),
            vec![255],
            "the tie must sit exactly on the checkpoint boundary"
        );
        // Top-up: core 0 resumes at 255 (sigma 0, so the limit is 255)
        // and hits bank 0 — the tie-break orders this access *before*
        // core 1's already-checkpointed bank-0 access at 255.
        ep.logs[0].push(access(0, 255));
        ep.logs[0].push(access(0, 257));
        let resumed = repair_schedule(&mut ep, 2, Some(255)).unwrap();
        let resumed_state = (
            ep.sigma.clone(),
            ep.sigma_max.clone(),
            ep.repair_free.clone(),
        );
        // Reference: the same logs merged from scratch.
        let full = repair_schedule(&mut ep, 2, None).unwrap();
        let full_state = (
            ep.sigma.clone(),
            ep.sigma_max.clone(),
            ep.repair_free.clone(),
        );
        assert_eq!(full_state.0, vec![0, 1], "core 1 loses the bank-0 tie");
        assert_eq!(resumed, full);
        assert_eq!(resumed_state, full_state);
    }

    #[test]
    fn restart_resets_counters() {
        let mut cl = quad();
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let r1 = cl.run_until_halt(1_000_000).unwrap();
        // A warm restart keeps the instruction cache contents (fewer
        // misses); reloading the binary invalidates it, giving an identical
        // cold run.
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let r2 = cl.run_until_halt(1_000_000).unwrap();
        assert_eq!(r1.activity.total_retired(), r2.activity.total_retired());
        assert_eq!(r1.cycles, r2.cycles);

        // And the warm restart must be no slower.
        cl.start(L2_BASE, &[], 0);
        let warm = cl.run_until_halt(1_000_000).unwrap();
        assert!(warm.cycles <= r2.cycles);
    }
}
