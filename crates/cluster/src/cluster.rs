//! The cluster stepping engine: cores + shared memories + event unit.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ulp_isa::{
    Access, Block, BlockExit, Bus, BusError, Core, CoreModel, CoreState, ExecError, Fetched,
    MemSize, Program, Reg, StepOutcome,
};
use ulp_trace::{Component, EventKind, Tracer};

use crate::config::ClusterConfig;
use crate::dma::Dma;
use crate::event::EventUnit;
use crate::icache::ICache;
use crate::l2::L2Memory;
use crate::stats::ClusterActivity;
use crate::tcdm::Tcdm;
use crate::{EVT_BROADCAST, EVT_EOC, L2_BASE, TCDM_BASE};

/// Error raised while running a cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusterError {
    /// A core faulted.
    Exec {
        /// Index of the faulting core.
        core: usize,
        /// The underlying execution error.
        err: ExecError,
    },
    /// Every non-halted core is asleep with no event in flight.
    Deadlock,
    /// The run exceeded the cycle budget.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A memory operation outside simulation (loader, readback) failed.
    Bus(BusError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Exec { core, err } => write!(f, "core {core} faulted: {err}"),
            ClusterError::Deadlock => write!(f, "all cores asleep with no event in flight"),
            ClusterError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            ClusterError::Bus(e) => write!(f, "bus access failed: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Exec { err, .. } => Some(err),
            ClusterError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusError> for ClusterError {
    fn from(e: BusError) -> Self {
        ClusterError::Bus(e)
    }
}

/// Result of a completed cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Cycles elapsed between start and the last core halting.
    pub cycles: u64,
    /// Absolute cluster time at completion.
    pub end_time: u64,
    /// Time at which the end-of-computation wire was raised, if it was.
    pub eoc_at: Option<u64>,
    /// Component activity counters for the run (power-model input).
    pub activity: ClusterActivity,
}

/// Why a sleeping core is asleep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum WaitReason {
    #[default]
    None,
    Event,
    Barrier,
}

/// Shared memory system: TCDM + L2 + shared instruction cache + the
/// memory-mapped DMA programming interface.
#[derive(Clone, Debug)]
struct ClusterBus {
    tcdm: Tcdm,
    l2: L2Memory,
    icache: ICache,
    l2_data_latency: u32,
    dma: Dma,
    dma_src: u32,
    dma_dst: u32,
    dma_len: u32,
    dma_done_at: u64,
    tracer: Tracer,
}

impl ClusterBus {
    fn dma_mmio_store(&mut self, now: u64, addr: u32, value: u32) -> Result<u64, BusError> {
        match addr - crate::DMA_MMIO_BASE {
            0x0 => self.dma_src = value,
            0x4 => self.dma_dst = value,
            0x8 => self.dma_len = value,
            0xC => {
                // Writing the command register launches the transfer.
                self.copy(self.dma_src, self.dma_dst, self.dma_len as usize)?;
                self.dma_done_at = self.dma.schedule(now, self.dma_len as usize);
            }
            _ => return Err(BusError::Unmapped { addr }),
        }
        Ok(now + 1)
    }

    fn dma_mmio_load(&mut self, now: u64, addr: u32) -> Result<Access, BusError> {
        let value = match addr - crate::DMA_MMIO_BASE {
            0x0 => self.dma_src,
            0x4 => self.dma_dst,
            0x8 => self.dma_len,
            0xC => u32::from(now >= self.dma_done_at), // 1 = idle/done
            _ => return Err(BusError::Unmapped { addr }),
        };
        Ok(Access {
            value,
            ready_at: now + 1,
        })
    }

    /// Functional copy between any two mapped regions.
    fn copy(&mut self, src: u32, dst: u32, len: usize) -> Result<(), BusError> {
        let bytes: Vec<u8> = if self.tcdm.contains(src) {
            self.tcdm.read_bytes(src, len)?.to_vec()
        } else if self.l2.contains(src) {
            self.l2.read_bytes(src, len)?.to_vec()
        } else {
            return Err(BusError::Unmapped { addr: src });
        };
        if self.tcdm.contains(dst) {
            self.tcdm.write_bytes(dst, &bytes)
        } else if self.l2.contains(dst) {
            self.l2.write_bytes(dst, &bytes)
        } else {
            Err(BusError::Unmapped { addr: dst })
        }
    }
}

impl Bus for ClusterBus {
    fn load(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
    ) -> Result<Access, BusError> {
        // TCDM first: all but a sliver of kernel data traffic lands there,
        // and the windows are disjoint so dispatch order is semantics-free.
        if self.tcdm.contains(addr) {
            let (value, ready_at) = self.tcdm.load(now, addr, size)?;
            Ok(Access { value, ready_at })
        } else if crate::dma_mmio_contains(addr) {
            self.dma_mmio_load(now, addr)
        } else if self.l2.contains(addr) {
            let value = self.l2.load_raw(addr, size)?;
            Ok(Access {
                value,
                ready_at: now + u64::from(self.l2_data_latency),
            })
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn store(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError> {
        if self.tcdm.contains(addr) {
            self.tcdm.store(now, addr, size, value)
        } else if crate::dma_mmio_contains(addr) {
            self.dma_mmio_store(now, addr, value)
        } else if self.l2.contains(addr) {
            self.l2.store_raw(addr, size, value)?;
            Ok(now + u64::from(self.l2_data_latency))
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn tas(&mut self, _core_id: usize, now: u64, addr: u32) -> Result<Access, BusError> {
        if self.tcdm.contains(addr) {
            let (value, ready_at) = self.tcdm.tas(now, addr)?;
            Ok(Access { value, ready_at })
        } else {
            Err(BusError::Unmapped { addr })
        }
    }

    fn fetch(&mut self, core_id: usize, now: u64, pc: u32) -> Result<Fetched, BusError> {
        // Timing first so the I$ model (and its trace events) sees the
        // access even when the word turns out to be undecodable, exactly
        // like the hardware front-end.
        let ready_at = self.fetch_timing(core_id, now, pc);
        let insn = self.l2.fetch_insn(pc)?;
        Ok(Fetched { insn, ready_at })
    }

    fn fetch_timing(&mut self, _core_id: usize, now: u64, pc: u32) -> u64 {
        let penalty = self.icache.access(pc);
        if penalty > 0 {
            self.tracer.emit(
                Component::ICache,
                EventKind::IcacheMiss,
                now,
                u64::from(penalty),
            );
        }
        now + u64::from(penalty)
    }

    fn microop_block(&mut self, _core_id: usize, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        self.l2.microop_block(pc, model)
    }

    fn code_generation(&self) -> u64 {
        // Only L2 serves instruction fetches, so only its decoded side
        // table can go stale under self-modifying stores.
        self.l2.decode_generation()
    }
}

/// A simulated PULP-style cluster.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Cluster {
    config: ClusterConfig,
    cores: Vec<Core>,
    waits: Vec<WaitReason>,
    bus: ClusterBus,
    event_unit: EventUnit,
    start_time: u64,
    tracer: Tracer,
    engine: crate::Engine,
}

impl Cluster {
    /// Builds a cluster from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`ClusterConfig::validate`]).
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        config.validate();
        let cores = (0..config.num_cores)
            .map(|id| {
                let mut c = Core::new(id, config.core_model);
                c.set_num_cores(config.num_cores as u32);
                c
            })
            .collect();
        Cluster {
            cores,
            waits: vec![WaitReason::None; config.num_cores],
            bus: ClusterBus {
                tcdm: Tcdm::new(TCDM_BASE, config.tcdm_size, config.tcdm_banks),
                l2: L2Memory::new(L2_BASE, config.l2_size),
                icache: ICache::new(
                    config.icache_size,
                    config.icache_line,
                    config.icache_miss_penalty,
                ),
                l2_data_latency: config.l2_data_latency,
                dma: Dma::new(config.dma_channels, config.dma_setup),
                dma_src: 0,
                dma_dst: 0,
                dma_len: 0,
                dma_done_at: 0,
                tracer: Tracer::disabled(),
            },
            event_unit: EventUnit::new(config.num_cores),
            config,
            start_time: 0,
            tracer: Tracer::disabled(),
            engine: crate::default_engine(),
        }
    }

    /// Selects the execution engine for this cluster. All engines are
    /// bit-identical in every observable output; see
    /// [`crate::set_default_engine`] for the process-wide default.
    ///
    /// The micro-op flag on the cores themselves only matters on the host
    /// path (`ulp_isa::Core::run`); inside the cluster the engine choice is
    /// entirely the scheduler's, so this is the single knob.
    pub fn set_engine(&mut self, engine: crate::Engine) {
        self.engine = engine;
    }

    /// Which execution engine this cluster uses.
    #[must_use]
    pub fn engine(&self) -> crate::Engine {
        self.engine
    }

    /// Compatibility shim for the original two-engine knob: `true` selects
    /// the fastest batching engine ([`crate::Engine::Microop`]), `false`
    /// the reference scheduler. Prefer [`Cluster::set_engine`].
    pub fn set_turbo(&mut self, on: bool) {
        self.engine = if on {
            crate::Engine::Microop
        } else {
            crate::Engine::Reference
        };
    }

    /// Whether this cluster uses a batching engine (anything other than
    /// [`crate::Engine::Reference`]).
    #[must_use]
    pub fn turbo(&self) -> bool {
        self.engine != crate::Engine::Reference
    }

    /// Attaches a structured event tracer to the cluster and every
    /// component inside it (cores, TCDM arbiter, DMA, I$). The tracer's
    /// recording survives [`Cluster::start`]: repeated runs lay out
    /// sequentially on the cluster timeline via the tracer's epoch.
    ///
    /// Attaching a disabled tracer (the default) detaches instrumentation;
    /// simulated timing is identical either way.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for core in &mut self.cores {
            core.set_tracer(tracer.clone());
        }
        self.bus.tcdm.set_tracer(tracer.clone());
        self.bus.dma.set_tracer(tracer.clone());
        self.bus.tracer = tracer.clone();
        self.tracer = tracer;
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Immutable access to a core (inspection, tests).
    #[must_use]
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// The DMA engine (the offload runtime schedules transfers on it).
    pub fn dma_mut(&mut self) -> &mut Dma {
        &mut self.bus.dma
    }

    /// Loads a program binary into L2 and invalidates the instruction
    /// cache. Returns the absolute rodata base address.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] if the image does not fit in L2.
    pub fn load_binary(&mut self, prog: &Program, base: u32) -> Result<u32, ClusterError> {
        let rodata = self.bus.l2.load_program(prog, base)?;
        self.bus.icache.invalidate();
        Ok(rodata)
    }

    /// Writes raw bytes into the TCDM (DMA/QSPI-slave back-door; timing is
    /// modelled by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn write_tcdm(&mut self, addr: u32, bytes: &[u8]) -> Result<(), ClusterError> {
        Ok(self.bus.tcdm.write_bytes(addr, bytes)?)
    }

    /// Reads raw bytes from the TCDM.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn read_tcdm(&self, addr: u32, len: usize) -> Result<Vec<u8>, ClusterError> {
        Ok(self.bus.tcdm.read_bytes(addr, len)?.to_vec())
    }

    /// Reads a 32-bit word from the TCDM.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the TCDM window.
    pub fn read_tcdm_u32(&self, addr: u32) -> Result<u32, ClusterError> {
        let b = self.bus.tcdm.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes raw bytes into L2.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the L2 window.
    pub fn write_l2(&mut self, addr: u32, bytes: &[u8]) -> Result<(), ClusterError> {
        Ok(self.bus.l2.write_bytes(addr, bytes)?)
    }

    /// Reads raw bytes from L2.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] outside the L2 window.
    pub fn read_l2(&self, addr: u32, len: usize) -> Result<Vec<u8>, ClusterError> {
        Ok(self.bus.l2.read_bytes(addr, len)?.to_vec())
    }

    /// Schedules a DMA transfer of `len` bytes starting at `now`; data is
    /// moved functionally right away, the returned time is when the channel
    /// completes.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Bus`] if either range is unmapped.
    pub fn dma_copy(
        &mut self,
        now: u64,
        src: u32,
        dst: u32,
        len: usize,
    ) -> Result<u64, ClusterError> {
        let bytes: Vec<u8> = if self.bus.tcdm.contains(src) {
            self.bus.tcdm.read_bytes(src, len)?.to_vec()
        } else if self.bus.l2.contains(src) {
            self.bus.l2.read_bytes(src, len)?.to_vec()
        } else {
            return Err(ClusterError::Bus(BusError::Unmapped { addr: src }));
        };
        if self.bus.tcdm.contains(dst) {
            self.bus.tcdm.write_bytes(dst, &bytes)?;
        } else if self.bus.l2.contains(dst) {
            self.bus.l2.write_bytes(dst, &bytes)?;
        } else {
            return Err(ClusterError::Bus(BusError::Unmapped { addr: dst }));
        }
        Ok(self.bus.dma.schedule(now, len))
    }

    /// Resets all cores to `entry` at time `at`, loads `args` into the
    /// registers of every core (SPMD launch: the generated code branches on
    /// the core-id CSR), clears the event unit and PMU counters.
    ///
    /// This models the *fetch-enable* GPIO edge of the prototype: "a fetch
    /// enable used to trigger execution of the benchmark" (paper §III-C).
    pub fn start(&mut self, entry: u32, args: &[(Reg, u32)], at: u64) {
        for core in &mut self.cores {
            core.reset(entry);
            core.advance_time_to(at);
            for &(r, v) in args {
                core.set_reg(r, v);
            }
        }
        self.waits.fill(WaitReason::None);
        self.event_unit.reset();
        self.bus.tcdm.reset_stats();
        self.bus.l2.reset_stats();
        self.bus.icache.reset_stats();
        self.bus.dma.reset_stats();
        self.bus.dma_done_at = 0;
        self.start_time = at;
    }

    /// Time at which the EOC wire was raised, if it was.
    #[must_use]
    pub fn eoc_at(&self) -> Option<u64> {
        self.event_unit.eoc_at()
    }

    fn route_event(&mut self, from: usize, id: u8) {
        let at = self.cores[from].time();
        match id {
            EVT_EOC => self.event_unit.raise_eoc(at),
            EVT_BROADCAST => {
                // The event unit's wake-up port serves one core per cycle,
                // staggering the team by a cycle each — which also breaks
                // the pathological lockstep in which identical SPMD code
                // hits the same TCDM bank on every access.
                let mut offset = 0u64;
                for i in 0..self.cores.len() {
                    if i != from {
                        self.wake_or_latch(i, at + offset);
                        offset += 1;
                    }
                }
            }
            n if (1..=32).contains(&n) => {
                let target = (n - 1) as usize;
                if target < self.cores.len() && target != from {
                    self.wake_or_latch(target, at);
                }
            }
            _ => {}
        }
    }

    fn wake_or_latch(&mut self, target: usize, at: u64) {
        if self.cores[target].state() == CoreState::Sleeping
            && self.waits[target] == WaitReason::Event
        {
            self.cores[target].wake(at);
            self.waits[target] = WaitReason::None;
        } else {
            self.cores[target].post_event();
        }
    }

    /// Runs until every core has halted (or faults/deadlocks/times out).
    ///
    /// Cores are interleaved lowest-local-time-first so shared-resource
    /// arbitration happens in approximate global order. Three engines
    /// implement that schedule — the reference one-instruction-per-scan
    /// loop, a turbo loop that batches the frontmost core, and a micro-op
    /// loop that additionally replays pre-decoded basic blocks (see
    /// [`Cluster::set_engine`]); they retire the exact same instruction
    /// sequence and produce bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] on core faults, deadlock, or exceeding
    /// `max_cycles`.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Result<RunResult, ClusterError> {
        let deadline = self.start_time + max_cycles;
        match self.engine {
            crate::Engine::Reference => self.run_loop_reference(deadline, max_cycles)?,
            crate::Engine::Turbo => self.run_loop_turbo(deadline, max_cycles)?,
            crate::Engine::Microop => self.run_loop_microop(deadline, max_cycles)?,
        }

        let end_time = self
            .cores
            .iter()
            .map(Core::time)
            .max()
            .unwrap_or(self.start_time);
        let cycles = end_time - self.start_time;
        let activity = self.collect_activity(cycles);
        ulp_isa::perf::add_retired(activity.total_retired());
        self.record_counters(&activity);
        // Lay the next run out after this one on the shared trace timeline.
        self.tracer.advance_cluster_epoch(end_time);
        Ok(RunResult {
            cycles,
            end_time,
            eoc_at: self.event_unit.eoc_at(),
            activity,
        })
    }

    /// Reference scheduler: rescan for the lowest-local-time running core
    /// before every single instruction. This is the executable definition
    /// of the interleaving order; the turbo engine is validated against it.
    fn run_loop_reference(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        loop {
            // Pick the running core with the smallest local time.
            let mut next: Option<usize> = None;
            for (i, c) in self.cores.iter().enumerate() {
                if c.state() == CoreState::Running
                    && next.is_none_or(|n| c.time() < self.cores[n].time())
                {
                    next = Some(i);
                }
            }
            let Some(i) = next else {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            };
            if self.cores[i].time() > deadline {
                return Err(ClusterError::Timeout { max_cycles });
            }
            let outcome = self.cores[i]
                .step(&mut self.bus)
                .map_err(|err| ClusterError::Exec { core: i, err })?;
            self.apply_outcome(i, outcome);
        }
    }

    /// Turbo scheduler: picks the frontmost running core once, then batches
    /// instructions on it for as long as the choice the reference scheduler
    /// would make stays the same.
    ///
    /// Correctness argument: the reference order is argmin over running
    /// cores of the key `(local_time, core_index)` — the strict `<` scan in
    /// [`Self::run_loop_reference`] keeps the first (lowest-index) core on
    /// time ties. A step whose outcome is `Executed` only mutates the
    /// stepped core and the shared bus; no other core's state or time
    /// changes, so the next argmin is either still core `i` (iff
    /// `(t_i, i) < second`, where `second` is the runner-up key from the
    /// scan — keys never compare equal because indices are distinct) or
    /// `second`'s core. Any other outcome (halt, sleep, event, barrier) can
    /// change other cores' states, so we apply its side effects and rescan.
    /// The stepped sequence is therefore exactly the reference sequence,
    /// instruction for instruction, and every observable output
    /// (`RunResult`, activity counters, trace events) is bit-identical.
    fn run_loop_turbo(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        // Scheduling keys pack `(time, index)` into one u64 —
        // `(time << shift) | index`, with `shift` wide enough for every
        // index — preserving the lexicographic order the reference
        // scheduler implements (its strict `<` scan keeps the first, i.e.
        // lowest-index, core on a time tie) while making both the scan and
        // the per-step batch check single branchless-friendly integer
        // compares. Shift/mask rather than multiply/modulo keeps the
        // per-batch unpack off the u64-division unit. Times stay far below
        // `u64::MAX >> shift` (runs are bounded by `max_cycles`), so the
        // packing cannot wrap.
        let shift = usize::BITS - self.cores.len().saturating_sub(1).leading_zeros();
        let index_mask = (1u64 << shift) - 1;
        'outer: loop {
            // One scan yields both the frontmost running core and the
            // runner-up key that bounds its batch. `u64::min`/`max` compile
            // to conditional moves, so the scan does not mispredict on the
            // cores' effectively random time ordering.
            let mut best = u64::MAX;
            let mut second = u64::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                let key = if c.state() == CoreState::Running {
                    (c.time() << shift) | i as u64
                } else {
                    u64::MAX
                };
                second = second.min(best.max(key));
                best = best.min(key);
            }
            if best == u64::MAX {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            }
            let i = (best & index_mask) as usize;
            // Batch core `i`. Field-split borrows hoist the bounds check
            // out of the hot loop; `apply_outcome` (which needs all of
            // `self`) runs only after the batch ends.
            let core = &mut self.cores[i];
            let outcome = loop {
                if core.time() > deadline {
                    return Err(ClusterError::Timeout { max_cycles });
                }
                let outcome = core
                    .step(&mut self.bus)
                    .map_err(|err| ClusterError::Exec { core: i, err })?;
                if outcome != StepOutcome::Executed {
                    break outcome;
                }
                if ((core.time() << shift) | i as u64) > second {
                    continue 'outer;
                }
            };
            self.apply_outcome(i, outcome);
        }
    }

    /// Micro-op scheduler: the turbo batching policy, but each batch runs
    /// through pre-decoded basic-block micro-ops
    /// ([`ulp_isa::Core::exec_block`]) instead of stepping the decoder.
    ///
    /// Correctness argument, on top of [`Self::run_loop_turbo`]'s: the batch
    /// cut-off `(t_i, i) > second` is evaluated *after* each retired
    /// instruction in both loops, and for a fixed core index it is a pure
    /// threshold on the local time, so it converts exactly to the time bound
    /// passed to `exec_block`: `t ≤ bound ⟺ ((t << shift) | i) ≤ second`.
    /// (Post-retire times are ≥ 1, so the `saturating_sub` corner at
    /// `second >> shift == 0` is unreachable.) `exec_block` checks the
    /// deadline before each op, the outcome/bound after each op, and exits
    /// on any redirect (taken branch, stale block, block end) — whereupon
    /// this loop re-looks-up at the new PC and continues batching the same
    /// core, exactly as the turbo loop would keep stepping it. Blocks are
    /// built from the same decoded side table the reference fetch uses, and
    /// the I$ model is consulted once per retired instruction either way,
    /// so timing, stats and trace events are bit-identical.
    ///
    /// Each core keeps its current block resident (`Core::exec_resume`),
    /// so the ~2-op batches that time-aligned SPMD cores produce resume
    /// mid-block for the cost of a pc + generation compare instead of a
    /// cache look-up and an `Arc` round-trip per batch.
    fn run_loop_microop(&mut self, deadline: u64, max_cycles: u64) -> Result<(), ClusterError> {
        let shift = usize::BITS - self.cores.len().saturating_sub(1).leading_zeros();
        let index_mask = (1u64 << shift) - 1;
        let key_of = |c: &Core, i: usize| {
            if c.state() == CoreState::Running {
                (c.time() << shift) | i as u64
            } else {
                u64::MAX
            }
        };
        // Compact shadow of each core's scheduling key. Cores are large and
        // live on scattered cache lines; batches are ~2 ops on time-aligned
        // SPMD cores, so the per-batch best/second scan runs over this
        // array instead and only the entries that could have changed are
        // refreshed: the core that just ran, or all of them after an
        // outcome with cluster-level side effects (wake-ups move other
        // cores' clocks).
        let mut keys: Vec<u64> = (0..self.cores.len())
            .map(|i| key_of(&self.cores[i], i))
            .collect();
        'outer: loop {
            let mut best = u64::MAX;
            let mut second = u64::MAX;
            for &key in &keys {
                second = second.min(best.max(key));
                best = best.min(key);
            }
            if best == u64::MAX {
                if self.cores.iter().all(|c| c.state() == CoreState::Halted) {
                    return Ok(());
                }
                return Err(ClusterError::Deadlock);
            }
            let i = (best & index_mask) as usize;
            // The largest local time that keeps `(time, i)` ahead of the
            // runner-up key — the turbo batch cut-off as a plain bound.
            let bound = if second == u64::MAX {
                u64::MAX
            } else if (i as u64) <= (second & index_mask) {
                second >> shift
            } else {
                (second >> shift).saturating_sub(1)
            };
            let outcome = loop {
                if let Some(exit) = self.cores[i]
                    .exec_resume(&mut self.bus, deadline, bound)
                    .map_err(|err| ClusterError::Exec { core: i, err })?
                {
                    match exit {
                        BlockExit::Outcome(outcome) => break outcome,
                        BlockExit::Bound => {
                            keys[i] = key_of(&self.cores[i], i);
                            continue 'outer;
                        }
                        BlockExit::Deadline => {
                            return Err(ClusterError::Timeout { max_cycles });
                        }
                        BlockExit::Redirect => {}
                    }
                    continue;
                }
                // No block starts here (undecodable or unmapped word): one
                // reference step — which also reproduces the exact fetch
                // error, or executes the lone instruction a just-patched
                // word decodes to.
                if self.cores[i].time() > deadline {
                    return Err(ClusterError::Timeout { max_cycles });
                }
                let outcome = self.cores[i]
                    .step(&mut self.bus)
                    .map_err(|err| ClusterError::Exec { core: i, err })?;
                if outcome != StepOutcome::Executed {
                    break outcome;
                }
                if ((self.cores[i].time() << shift) | i as u64) > second {
                    keys[i] = key_of(&self.cores[i], i);
                    continue 'outer;
                }
            };
            self.apply_outcome(i, outcome);
            // Barrier releases and events may have woken (and re-clocked)
            // any core: refresh every key on this rare path.
            for (j, key) in keys.iter_mut().enumerate() {
                *key = key_of(&self.cores[j], j);
            }
        }
    }

    /// Applies the cluster-level side effects of one step outcome (shared
    /// by all scheduling engines).
    fn apply_outcome(&mut self, i: usize, outcome: StepOutcome) {
        match outcome {
            StepOutcome::Executed | StepOutcome::Halted => {}
            StepOutcome::Sleeping => self.waits[i] = WaitReason::Event,
            StepOutcome::EventSent(id) => self.route_event(i, id),
            StepOutcome::BarrierArrived => {
                self.waits[i] = WaitReason::Barrier;
                if let Some(release) = self.event_unit.barrier_arrive(i, self.cores[i].time()) {
                    let t = release + u64::from(self.config.barrier_latency);
                    self.tracer.emit(
                        Component::Cluster,
                        EventKind::Barrier,
                        release,
                        u64::from(self.config.barrier_latency),
                    );
                    for (j, c) in self.cores.iter_mut().enumerate() {
                        if self.waits[j] == WaitReason::Barrier {
                            c.wake(t);
                            self.waits[j] = WaitReason::None;
                        }
                    }
                }
            }
        }
    }

    /// Publishes the run's busy/total cycles per component to the tracer.
    /// Counters are overwritten each run, so after a cold+warm cost
    /// measurement they describe the warm run — the same numbers reported
    /// in [`RunResult::activity`] and `OffloadReport`.
    fn record_counters(&self, activity: &ClusterActivity) {
        if !self.tracer.is_enabled() {
            return;
        }
        let cycles = activity.total_cycles;
        for (i, &busy) in activity.core_active_cycles.iter().enumerate() {
            self.tracer
                .set_counter(Component::Core(i as u8), busy, cycles);
        }
        self.tracer.set_counter(
            Component::Tcdm,
            activity.tcdm_busy_cycles,
            cycles * self.config.tcdm_banks as u64,
        );
        self.tracer.set_counter(
            Component::ICache,
            activity.icache_misses * u64::from(self.config.icache_miss_penalty),
            cycles,
        );
        self.tracer
            .set_counter(Component::Dma, activity.dma_busy_cycles, cycles);
    }

    fn collect_activity(&self, total_cycles: u64) -> ClusterActivity {
        ClusterActivity {
            total_cycles,
            core_active_cycles: self
                .cores
                .iter()
                .map(|c| c.stats().active_cycles(c.time() - self.start_time))
                .collect(),
            core_retired: self.cores.iter().map(|c| c.stats().retired).collect(),
            tcdm_busy_cycles: self.bus.tcdm.busy_cycles(),
            tcdm_banks: self.config.tcdm_banks,
            tcdm_conflicts: self.bus.tcdm.conflicts(),
            icache_hits: self.bus.icache.hits(),
            icache_misses: self.bus.icache.misses(),
            l2_accesses: self.bus.l2.accesses(),
            dma_busy_cycles: self.bus.dma.busy_cycles(),
            dma_bytes: self.bus.dma.bytes_moved(),
            barriers: self.event_unit.barriers_completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::prelude::*;
    use ulp_isa::Insn;

    fn quad() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    /// SPMD program: workers sleep, master wakes them, everyone increments
    /// a private TCDM slot, barrier, halt.
    fn fork_join_prog() -> Program {
        let mut a = Asm::new();
        let worker = a.new_label();
        let body = a.new_label();
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.bne(R20, R0, worker);
        // master: prologue then release the team
        a.sev(crate::EVT_BROADCAST);
        a.jmp(body);
        a.bind(worker);
        a.wfe();
        a.bind(body);
        a.la(R1, TCDM_BASE);
        a.slli(R2, R20, 2);
        a.add(R1, R1, R2);
        a.addi(R3, R20, 100);
        a.sw(R3, R1, 0);
        a.barrier();
        // master signals EOC
        let done = a.new_label();
        a.bne(R20, R0, done);
        a.sev(crate::EVT_EOC);
        a.bind(done);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn fork_join_all_cores_participate() {
        let mut cl = quad();
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(1_000_000).unwrap();
        for i in 0..4 {
            assert_eq!(cl.read_tcdm_u32(TCDM_BASE + 4 * i).unwrap(), 100 + i);
        }
        assert!(res.eoc_at.is_some());
        assert_eq!(res.activity.barriers, 1);
        assert!(res.activity.total_retired() > 0);
    }

    #[test]
    fn single_core_cluster_runs_serial_code() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.li(R1, 21);
        a.add(R1, R1, R1);
        a.la(R2, TCDM_BASE);
        a.sw(R1, R2, 0);
        a.sev(crate::EVT_EOC);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(10_000).unwrap();
        assert_eq!(cl.read_tcdm_u32(TCDM_BASE).unwrap(), 42);
        assert!(res.eoc_at.unwrap() <= res.end_time);
    }

    #[test]
    fn args_are_visible_to_all_cores() {
        let mut cl = quad();
        let mut a = Asm::new();
        // Every core adds its id to the arg in r3 and stores at id slot.
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.add(R4, R3, R20);
        a.la(R1, TCDM_BASE + 0x100);
        a.slli(R2, R20, 2);
        a.add(R1, R1, R2);
        a.sw(R4, R1, 0);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[(R3, 1000)], 0);
        cl.run_until_halt(10_000).unwrap();
        for i in 0..4 {
            assert_eq!(
                cl.read_tcdm_u32(TCDM_BASE + 0x100 + 4 * i).unwrap(),
                1000 + i
            );
        }
    }

    #[test]
    fn deadlock_detected_when_all_sleep() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 2,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.wfe();
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        assert!(matches!(
            cl.run_until_halt(10_000),
            Err(ClusterError::Deadlock)
        ));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.jmp(top);
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        assert!(matches!(
            cl.run_until_halt(5_000),
            Err(ClusterError::Timeout { max_cycles: 5_000 })
        ));
    }

    #[test]
    fn fault_reports_core_index() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.la(R1, 0x5555_0000); // unmapped
        a.lw(R2, R1, 0);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        match cl.run_until_halt(10_000) {
            Err(ClusterError::Exec {
                core: 0,
                err: ExecError::Bus(_),
            }) => {}
            other => panic!("expected bus fault, got {other:?}"),
        }
    }

    #[test]
    fn l2_data_access_slower_than_tcdm() {
        let run_with = |base: u32| {
            let mut cl = Cluster::new(ClusterConfig {
                num_cores: 1,
                ..ClusterConfig::default()
            });
            let mut a = Asm::new();
            a.la(R1, base);
            for _ in 0..32 {
                a.lw(R2, R1, 0);
            }
            a.halt();
            let prog = a.finish().unwrap();
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(100_000).unwrap().cycles
        };
        let tcdm_cycles = run_with(TCDM_BASE);
        let l2_cycles = run_with(L2_BASE + 0x8000);
        assert!(
            l2_cycles > tcdm_cycles + 32,
            "L2 loads must pay the bus latency"
        );
    }

    #[test]
    fn four_cores_hammering_one_bank_serialize() {
        // Each core loads the same TCDM word 64 times.
        let mut a = Asm::new();
        a.la(R1, TCDM_BASE);
        a.li(R2, 64);
        let top = a.new_label();
        a.bind(top);
        a.lw(R3, R1, 0);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog = a.finish().unwrap();

        let mut cl = quad();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(1_000_000).unwrap();
        assert!(
            res.activity.tcdm_conflicts > 0,
            "same-bank traffic must conflict"
        );

        // Spread the cores over different banks: far fewer conflicts.
        let mut a = Asm::new();
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.slli(R4, R20, 2);
        a.la(R1, TCDM_BASE);
        a.add(R1, R1, R4);
        a.li(R2, 64);
        let top = a.new_label();
        a.bind(top);
        a.lw(R3, R1, 0);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog2 = a.finish().unwrap();
        let mut cl2 = quad();
        cl2.load_binary(&prog2, L2_BASE).unwrap();
        cl2.start(L2_BASE, &[], 0);
        let res2 = cl2.run_until_halt(1_000_000).unwrap();
        assert!(res2.activity.tcdm_conflicts < res.activity.tcdm_conflicts);
    }

    #[test]
    fn dma_copy_moves_data_and_reports_timing() {
        let mut cl = quad();
        let payload: Vec<u8> = (0..=255).collect();
        cl.write_l2(L2_BASE + 0x4000, &payload).unwrap();
        let done = cl
            .dma_copy(100, L2_BASE + 0x4000, TCDM_BASE + 0x200, 256)
            .unwrap();
        assert_eq!(done, 100 + 10 + 64); // setup 10 + 64 words
        assert_eq!(cl.read_tcdm(TCDM_BASE + 0x200, 256).unwrap(), payload);
    }

    #[test]
    fn icache_cold_start_then_warm() {
        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        let mut a = Asm::new();
        a.li(R2, 100);
        let top = a.new_label();
        a.bind(top);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog = a.finish().unwrap();
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let res = cl.run_until_halt(100_000).unwrap();
        assert!(res.activity.icache_misses <= 2);
        assert!(res.activity.icache_hit_rate() > 0.95);
    }

    #[test]
    fn self_modifying_code_through_cluster_fetch_path() {
        // A program that patches one of its own instructions via a data
        // store through the cluster bus, then executes the patched word.
        // This exercises the L2 decoded-instruction cache invalidation: the
        // target was predecoded at load time as `addi r5, r0, 1`, and the
        // store must evict that entry so the fetch path re-decodes the new
        // word.
        let new_word = ulp_isa::encode(&Insn::Addi(R5, R0, 42)).unwrap();
        let build = |target_addr: u32| {
            let mut a = Asm::new();
            a.li(R2, new_word as i32);
            a.la(R1, target_addr);
            a.sw(R2, R1, 0);
            let target_off = a.here();
            a.addi(R5, R0, 1); // patched to `addi r5, r0, 42` before it runs
            a.la(R3, TCDM_BASE);
            a.sw(R5, R3, 0);
            a.halt();
            (a.finish().unwrap(), target_off)
        };
        // Two-pass assembly: measure the patch target's offset with a
        // placeholder address of the same encoding length, then rebuild.
        let (_, target_off) = build(L2_BASE + 4);
        let (prog, check) = build(L2_BASE + target_off);
        assert_eq!(check, target_off);

        let mut cl = Cluster::new(ClusterConfig {
            num_cores: 1,
            ..ClusterConfig::default()
        });
        cl.load_binary(&prog, L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        cl.run_until_halt(10_000).unwrap();
        assert_eq!(cl.read_tcdm_u32(TCDM_BASE).unwrap(), 42);
    }

    #[test]
    fn all_three_engines_bit_identical() {
        let run = |engine: crate::Engine| {
            let mut cl = quad();
            cl.set_engine(engine);
            cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(1_000_000).unwrap()
        };
        let reference = run(crate::Engine::Reference);
        let turbo = run(crate::Engine::Turbo);
        let microop = run(crate::Engine::Microop);
        assert_eq!(turbo, reference);
        assert_eq!(microop, reference);
    }

    #[test]
    fn microop_engine_sees_self_modifying_code_in_its_own_block() {
        // Patch the *next* instruction in the same straight-line block: the
        // store bumps the L2 decode generation, exec_block must exit on the
        // staleness check and the rebuilt block must decode the new word.
        let new_word = ulp_isa::encode(&Insn::Addi(R5, R0, 42)).unwrap();
        let build = |target_addr: u32| {
            let mut a = Asm::new();
            a.li(R2, new_word as i32);
            a.la(R1, target_addr);
            a.sw(R2, R1, 0);
            let target_off = a.here();
            a.addi(R5, R0, 1); // patched to `addi r5, r0, 42` before it runs
            a.la(R3, TCDM_BASE);
            a.sw(R5, R3, 0);
            a.halt();
            (a.finish().unwrap(), target_off)
        };
        let (_, target_off) = build(L2_BASE + 4);
        let (prog, check) = build(L2_BASE + target_off);
        assert_eq!(check, target_off);

        for engine in [
            crate::Engine::Reference,
            crate::Engine::Turbo,
            crate::Engine::Microop,
        ] {
            let mut cl = Cluster::new(ClusterConfig {
                num_cores: 1,
                ..ClusterConfig::default()
            });
            cl.set_engine(engine);
            cl.load_binary(&prog, L2_BASE).unwrap();
            cl.start(L2_BASE, &[], 0);
            cl.run_until_halt(10_000).unwrap();
            assert_eq!(
                cl.read_tcdm_u32(TCDM_BASE).unwrap(),
                42,
                "{} engine must observe the patch",
                engine.name()
            );
        }
    }

    #[test]
    fn restart_resets_counters() {
        let mut cl = quad();
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let r1 = cl.run_until_halt(1_000_000).unwrap();
        // A warm restart keeps the instruction cache contents (fewer
        // misses); reloading the binary invalidates it, giving an identical
        // cold run.
        cl.load_binary(&fork_join_prog(), L2_BASE).unwrap();
        cl.start(L2_BASE, &[], 0);
        let r2 = cl.run_until_halt(1_000_000).unwrap();
        assert_eq!(r1.activity.total_retired(), r2.activity.total_retired());
        assert_eq!(r1.cycles, r2.cycles);

        // And the warm restart must be no slower.
        cl.start(L2_BASE, &[], 0);
        let warm = cl.run_until_halt(1_000_000).unwrap();
        assert!(warm.cycles <= r2.cycles);
    }
}
