//! Shared instruction cache model.
//!
//! The PULP cluster's cores share one instruction cache (paper Fig. 2,
//! "I$"). We model a direct-mapped cache with configurable size and line
//! length: a hit costs nothing (fetch overlaps execution in the in-order
//! pipeline), a miss pays the refill-from-L2 penalty. Kernel inner loops
//! fit in the cache after the first iteration, so the model's main effect
//! is a realistic cold-start transient after each code offload.

/// Direct-mapped shared instruction cache (tag store only; data comes from
/// L2).
///
/// # Example
///
/// ```
/// use ulp_cluster::ICache;
///
/// let mut icache = ICache::new(4096, 16, 12);
/// assert_eq!(icache.access(0x1C00_0000), 12); // cold miss
/// assert_eq!(icache.access(0x1C00_0004), 0); // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct ICache {
    line_shift: u32,
    index_mask: u32,
    tags: Vec<Option<u32>>,
    miss_penalty: u32,
    // One-entry filter in front of the tag store: the line address of the
    // most recent hit or fill. Straight-line refetch streams hit here
    // without recomputing index/tag. Purely an implementation shortcut —
    // a filter hit implies the tag store already matches, so hit/miss
    // accounting and tag state are identical with or without it.
    hot_line: u32,
    hits: u64,
    misses: u64,
}

/// `hot_line` value that can never match a real line address (lines are at
/// most 2^30 because addresses are 32-bit and lines are >= 4 bytes).
const NO_HOT_LINE: u32 = u32::MAX;

impl ICache {
    /// Creates a cache of `size` bytes with `line` byte lines and the given
    /// miss penalty in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `size`/`line` are not powers of two or `line < 4`.
    #[must_use]
    pub fn new(size: usize, line: usize, miss_penalty: u32) -> Self {
        assert!(size.is_power_of_two() && line.is_power_of_two() && line >= 4);
        assert!(size >= line);
        let lines = size / line;
        ICache {
            line_shift: line.trailing_zeros(),
            index_mask: lines as u32 - 1,
            tags: vec![None; lines],
            miss_penalty,
            hot_line: NO_HOT_LINE,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `pc`; returns the extra cycles the fetch costs (0 on a hit,
    /// the miss penalty on a miss, filling the line).
    #[inline]
    pub fn access(&mut self, pc: u32) -> u32 {
        let line_addr = pc >> self.line_shift;
        if line_addr == self.hot_line {
            self.hits += 1;
            return 0;
        }
        let index = (line_addr & self.index_mask) as usize;
        let tag = line_addr >> self.index_mask.count_ones();
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            self.hot_line = line_addr;
            0
        } else {
            self.misses += 1;
            self.tags[index] = Some(tag);
            self.hot_line = line_addr;
            self.miss_penalty
        }
    }

    /// Speculative look-up for the epoch engine: on a hit, counts it (and
    /// may promote the hot-line filter, which is semantically invisible —
    /// a filter hit implies a tag match) and returns `true`; on a miss it
    /// mutates *nothing* — no fill, no tag write, no miss count — and
    /// returns `false`. Misses abort the epoch, whose rollback restores the
    /// hit counter via [`ICache::stats_snapshot`], so a probed-then-rolled-
    /// back sequence leaves the cache bit-identical.
    #[inline]
    pub fn probe_hit(&mut self, pc: u32) -> bool {
        let line_addr = pc >> self.line_shift;
        if line_addr == self.hot_line {
            self.hits += 1;
            return true;
        }
        let index = (line_addr & self.index_mask) as usize;
        let tag = line_addr >> self.index_mask.count_ones();
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            self.hot_line = line_addr;
            true
        } else {
            false
        }
    }

    /// Snapshot of the mutable statistics a speculative epoch can touch
    /// (only hits: [`ICache::probe_hit`] never fills or counts misses).
    #[must_use]
    pub(crate) fn stats_snapshot(&self) -> u64 {
        self.hits
    }

    /// Restores a [`ICache::stats_snapshot`] after an epoch rollback.
    pub(crate) fn stats_restore(&mut self, hits: u64) {
        self.hits = hits;
    }

    /// Cache hits served.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses served.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines (called after a new binary is offloaded).
    pub fn invalidate(&mut self) {
        self.tags.fill(None);
        self.hot_line = NO_HOT_LINE;
    }

    /// Resets the PMU counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits_within_line() {
        let mut c = ICache::new(1024, 16, 10);
        assert_eq!(c.access(0x100), 10);
        assert_eq!(c.access(0x104), 0);
        assert_eq!(c.access(0x108), 0);
        assert_eq!(c.access(0x10C), 0);
        assert_eq!(c.access(0x110), 10); // next line
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut c = ICache::new(64, 16, 10); // 4 lines
        assert_eq!(c.access(0x00), 10);
        assert_eq!(c.access(0x40), 10); // same index, different tag: evicts
        assert_eq!(c.access(0x00), 10); // brought back
    }

    #[test]
    fn loop_body_steady_state_all_hits() {
        let mut c = ICache::new(4096, 16, 12);
        // 32-instruction loop, 100 iterations.
        let mut extra = 0;
        for _ in 0..100 {
            for i in 0..32u32 {
                extra += c.access(0x1C00_0000 + i * 4);
            }
        }
        // Only the 8 cold misses pay.
        assert_eq!(extra, 8 * 12);
    }

    #[test]
    fn invalidate_forces_refill() {
        let mut c = ICache::new(1024, 16, 10);
        let _ = c.access(0x100);
        c.invalidate();
        assert_eq!(c.access(0x100), 10);
    }
}
