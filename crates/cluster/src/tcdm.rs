//! Multi-banked tightly-coupled data memory with word-level interleaving.
//!
//! The PULP cluster replaces private data caches with a shared L1
//! scratchpad divided into single-ported banks. Consecutive 32-bit words
//! map to consecutive banks ("word-level interleaving scheme to reduce
//! access contention", paper §III-B), so unit-stride streams from several
//! cores fan out across banks and rarely collide.
//!
//! Each bank serves one access per cycle. When two requestors hit the same
//! bank in the same cycle, the later one stalls — modelled by keeping, per
//! bank, the next cycle at which it is free.

use ulp_isa::{BusError, MemSize};
use ulp_trace::{Component, EventKind, Tracer};

/// The banked L1 data scratchpad.
///
/// # Example
///
/// ```
/// use ulp_cluster::{Tcdm, TCDM_BASE};
/// use ulp_isa::MemSize;
///
/// let mut tcdm = Tcdm::new(TCDM_BASE, 8 * 1024, 8);
/// // Two accesses to the same bank in the same cycle: the second stalls.
/// tcdm.store(0, TCDM_BASE, MemSize::Word, 7).unwrap();
/// let (v, ready) = tcdm.load(0, TCDM_BASE, MemSize::Word).unwrap();
/// assert_eq!(v, 7);
/// assert_eq!(ready, 2, "the store occupied bank 0 at cycle 0");
/// ```
#[derive(Clone, Debug)]
pub struct Tcdm {
    base: u32,
    data: Vec<u8>,
    bank_free: Vec<u64>,
    bank_mask: u32,
    accesses: u64,
    conflicts: u64,
    busy_cycles: u64,
    tracer: Tracer,
}

impl Tcdm {
    /// Creates a TCDM of `size` bytes at `base` with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or `size` is not a multiple
    /// of the bank width.
    #[must_use]
    pub fn new(base: u32, size: usize, banks: usize) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        assert_eq!(size % (banks * 4), 0, "size must cover whole banks");
        Tcdm {
            base,
            data: vec![0; size],
            bank_free: vec![0; banks],
            bank_mask: banks as u32 - 1,
            accesses: 0,
            conflicts: 0,
            busy_cycles: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a structured event tracer (records bank conflicts).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Base address of the TCDM window.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether `addr` falls inside the TCDM window.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.data.len() as u32
    }

    /// Total accesses served (for the PMU / power model).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that stalled on a busy bank.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Bank-busy cycles accumulated (activity factor numerator).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Resets the PMU counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.conflicts = 0;
        self.busy_cycles = 0;
        self.bank_free.fill(0);
    }

    fn bank_of(&self, addr: u32) -> usize {
        (((addr - self.base) >> 2) & self.bank_mask) as usize
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.bank_mask as usize + 1
    }

    /// The bank serving `addr` (word-interleaved).
    #[must_use]
    pub(crate) fn bank_index(&self, addr: u32) -> usize {
        self.bank_of(addr)
    }

    /// Restores only the per-bank free times (the epoch engine resets
    /// these between private per-core replays; the PMU counters keep
    /// accumulating, they are order-free sums).
    pub(crate) fn bank_free_restore(&mut self, free: &[u64]) {
        self.bank_free.copy_from_slice(free);
    }

    /// Applies a signed correction to the conflict counter — the epoch
    /// engine's commit patch when its exact arbitration re-simulation
    /// found a different number of stalled accesses than the modelled
    /// per-core replays counted.
    pub(crate) fn conflicts_adjust(&mut self, delta: i64) {
        self.conflicts = self
            .conflicts
            .checked_add_signed(delta)
            .expect("epoch conflict patch keeps the counter non-negative");
    }

    /// Captures every piece of timing/PMU state a speculative epoch can
    /// mutate (contents are undone separately via the epoch's byte log).
    pub(crate) fn timing_snapshot_into(&self, snap: &mut TcdmTimingSnapshot) {
        snap.bank_free.clear();
        snap.bank_free.extend_from_slice(&self.bank_free);
        snap.accesses = self.accesses;
        snap.conflicts = self.conflicts;
        snap.busy_cycles = self.busy_cycles;
    }

    /// Restores a [`Tcdm::timing_snapshot_into`] capture (epoch rollback).
    pub(crate) fn timing_restore(&mut self, snap: &TcdmTimingSnapshot) {
        self.bank_free.copy_from_slice(&snap.bank_free);
        self.accesses = snap.accesses;
        self.conflicts = snap.conflicts;
        self.busy_cycles = snap.busy_cycles;
    }

    fn offset(&self, addr: u32, len: u32) -> Result<usize, BusError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + len as usize > self.data.len() {
            return Err(BusError::OutOfBounds { addr, size: len });
        }
        Ok(off)
    }

    /// Arbitrates one access starting at `now`; returns the cycle at which
    /// the data is available. An access spanning two banks (unaligned word
    /// crossing a 4-byte boundary) occupies both, sequentially.
    fn arbitrate(&mut self, now: u64, addr: u32, len: u32) -> u64 {
        self.accesses += 1;
        let first = self.bank_of(addr);
        let last = self.bank_of(addr + len - 1);
        let mut t = now;
        let mut bank = first;
        loop {
            let free = self.bank_free[bank];
            if free > t {
                self.conflicts += 1;
                self.tracer.emit(
                    Component::Tcdm,
                    EventKind::BankConflict { bank: bank as u8 },
                    t,
                    free - t,
                );
                t = free;
            }
            self.bank_free[bank] = t + 1;
            self.busy_cycles += 1;
            if bank == last {
                break;
            }
            bank = (bank + 1) & self.bank_mask as usize;
            t += 1; // second beat of a split access
        }
        t + 1
    }

    /// Timed load: returns `(raw value, ready_at)`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] outside the TCDM window.
    pub fn load(&mut self, now: u64, addr: u32, size: MemSize) -> Result<(u32, u64), BusError> {
        let n = size.bytes();
        let off = self.offset(addr, n)?;
        let ready = self.arbitrate(now, addr, n);
        Ok((ulp_isa::load_le(&self.data, off, size), ready))
    }

    /// Timed store: returns the completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] outside the TCDM window.
    pub fn store(
        &mut self,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError> {
        let n = size.bytes();
        let off = self.offset(addr, n)?;
        let ready = self.arbitrate(now, addr, n);
        ulp_isa::store_le(&mut self.data, off, size, value);
        Ok(ready)
    }

    /// Atomic test-and-set on a word (PULP TCDM test-and-set alias).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] outside the TCDM window.
    pub fn tas(&mut self, now: u64, addr: u32) -> Result<(u32, u64), BusError> {
        let off = self.offset(addr, 4)?;
        let ready = self.arbitrate(now, addr, 4);
        let old = u32::from_le_bytes([
            self.data[off],
            self.data[off + 1],
            self.data[off + 2],
            self.data[off + 3],
        ]);
        self.data[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
        Ok((old, ready))
    }

    /// Untimed bulk write (DMA back-door, loader).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] outside the TCDM window.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), BusError> {
        let off = self.offset(addr, bytes.len() as u32)?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Untimed bulk read (DMA back-door, result collection).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] outside the TCDM window.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<&[u8], BusError> {
        let off = self.offset(addr, len as u32)?;
        Ok(&self.data[off..off + len])
    }
}

/// Reusable capture of the TCDM's speculation-mutable timing state (see
/// [`Tcdm::timing_snapshot_into`]); owned by the epoch scratch so the
/// per-epoch snapshot re-uses one allocation.
#[derive(Clone, Debug, Default)]
pub(crate) struct TcdmTimingSnapshot {
    pub(crate) bank_free: Vec<u64>,
    pub(crate) accesses: u64,
    pub(crate) conflicts: u64,
    pub(crate) busy_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcdm() -> Tcdm {
        Tcdm::new(0x1000_0000, 8 * 1024, 8)
    }

    #[test]
    fn load_store_roundtrip() {
        let mut t = tcdm();
        let (done, _) = {
            let done = t.store(0, 0x1000_0010, MemSize::Word, 0xCAFE_F00D).unwrap();
            (done, ())
        };
        assert_eq!(done, 1);
        let (v, _) = t.load(1, 0x1000_0010, MemSize::Word).unwrap();
        assert_eq!(v, 0xCAFE_F00D);
    }

    #[test]
    fn same_bank_same_cycle_conflicts() {
        let mut t = tcdm();
        // Two word accesses to the same bank (same address) at cycle 0.
        let (_, r1) = t.load(0, 0x1000_0000, MemSize::Word).unwrap();
        let (_, r2) = t.load(0, 0x1000_0000, MemSize::Word).unwrap();
        assert_eq!(r1, 1);
        assert_eq!(r2, 2, "second requester must stall one cycle");
        assert_eq!(t.conflicts(), 1);
    }

    #[test]
    fn different_banks_no_conflict() {
        let mut t = tcdm();
        // Words 0 and 1 interleave to banks 0 and 1.
        let (_, r1) = t.load(0, 0x1000_0000, MemSize::Word).unwrap();
        let (_, r2) = t.load(0, 0x1000_0004, MemSize::Word).unwrap();
        assert_eq!(r1, 1);
        assert_eq!(r2, 1);
        assert_eq!(t.conflicts(), 0);
    }

    #[test]
    fn word_interleaving_wraps_across_banks() {
        let t = tcdm();
        assert_eq!(t.bank_of(0x1000_0000), 0);
        assert_eq!(t.bank_of(0x1000_0004), 1);
        assert_eq!(t.bank_of(0x1000_001C), 7);
        assert_eq!(t.bank_of(0x1000_0020), 0);
    }

    #[test]
    fn stride_bank_conflicts_vs_unit_stride() {
        // Stride of 8 words = always the same bank; unit stride spreads.
        let mut same_bank = tcdm();
        let mut spread = tcdm();
        for i in 0..16u32 {
            let _ = same_bank
                .load(0, 0x1000_0000 + i * 32, MemSize::Word)
                .unwrap();
            let _ = spread.load(0, 0x1000_0000 + i * 4, MemSize::Word).unwrap();
        }
        assert!(same_bank.conflicts() > 0);
        assert_eq!(spread.conflicts(), 8); // 16 words over 8 banks at cycle 0: 8 collide
    }

    #[test]
    fn unaligned_word_occupies_two_banks() {
        let mut t = tcdm();
        t.write_bytes(0x1000_0000, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        let (v, ready) = t.load(0, 0x1000_0002, MemSize::Word).unwrap();
        assert_eq!(v, u32::from_le_bytes([3, 4, 5, 6]));
        assert_eq!(ready, 2, "split access takes an extra beat");
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut t = tcdm();
        assert!(t.load(0, 0x1000_0000 + 8 * 1024, MemSize::Word).is_err());
        assert!(t.load(0, 0x0FFF_FFFC, MemSize::Word).is_err());
        assert!(t
            .load(0, 0x1000_0000 + 8 * 1024 - 2, MemSize::Word)
            .is_err());
    }

    #[test]
    fn tas_is_atomic_swap_with_one() {
        let mut t = tcdm();
        let (old1, _) = t.tas(0, 0x1000_0100).unwrap();
        let (old2, _) = t.tas(1, 0x1000_0100).unwrap();
        assert_eq!(old1, 0);
        assert_eq!(old2, 1);
    }

    #[test]
    fn stats_reset() {
        let mut t = tcdm();
        let _ = t.load(0, 0x1000_0000, MemSize::Word).unwrap();
        assert_eq!(t.accesses(), 1);
        t.reset_stats();
        assert_eq!(t.accesses(), 0);
        assert_eq!(t.busy_cycles(), 0);
    }
}
