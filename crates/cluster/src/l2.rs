//! Cluster L2 memory: code and staging storage.
//!
//! The PULP3 SoC integrates 64 kB of L2 SRAM reachable over the system bus.
//! Cores fetch instructions from L2 through the shared instruction cache
//! and normally keep data in the TCDM; direct data access to L2 is possible
//! but pays the cluster-bus latency.

use std::sync::Arc;

use ulp_isa::{Block, BlockCache, BusError, CoreModel, DecodeCache, Insn, MemSize, Program};

/// The L2 memory, with a decoded-instruction side table for fast fetch and
/// a micro-op block cache for the block-batching engine.
#[derive(Clone, Debug)]
pub struct L2Memory {
    base: u32,
    data: Vec<u8>,
    decoded: DecodeCache,
    blocks: BlockCache,
    accesses: u64,
}

impl L2Memory {
    /// Creates a zeroed L2 of `size` bytes at `base`.
    #[must_use]
    pub fn new(base: u32, size: usize) -> Self {
        L2Memory {
            base,
            data: vec![0; size],
            decoded: DecodeCache::new(size),
            blocks: BlockCache::new(size),
            accesses: 0,
        }
    }

    /// Base address.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether `addr` falls inside the L2 window.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.data.len() as u32
    }

    /// Accesses served (PMU).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets the PMU counters.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
    }

    /// Restores the access counter after an epoch rollback (L2 loads are
    /// constant-latency and side-effect-free apart from this counter, so
    /// speculating them only needs the count undone).
    pub(crate) fn set_accesses(&mut self, accesses: u64) {
        self.accesses = accesses;
    }

    fn offset(&self, addr: u32, len: u32) -> Result<usize, BusError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + len as usize > self.data.len() {
            return Err(BusError::OutOfBounds { addr, size: len });
        }
        Ok(off)
    }

    /// Loads a program image (text + rodata); returns the rodata base.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the image does not fit.
    pub fn load_program(&mut self, prog: &Program, addr: u32) -> Result<u32, BusError> {
        let mut text = Vec::with_capacity(prog.text_bytes());
        for w in prog.words() {
            text.extend_from_slice(&w.to_le_bytes());
        }
        self.write_bytes(addr, &text)?;
        let rodata_base = addr + prog.rodata_offset() as u32;
        self.write_bytes(rodata_base, prog.rodata())?;
        // Predecode the text so steady-state fetches never decode;
        // undecodable words stay lazy (bit-identical error behaviour).
        let off = addr.wrapping_sub(self.base) as usize;
        self.decoded.predecode(off, text.len(), &self.data);
        Ok(rodata_base)
    }

    /// Untimed bulk write (QSPI slave / DMA back-door).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), BusError> {
        let off = self.offset(addr, bytes.len() as u32)?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        self.decoded.invalidate(off, bytes.len());
        Ok(())
    }

    /// Untimed bulk read.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the range does not fit.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<&[u8], BusError> {
        let off = self.offset(addr, len as u32)?;
        Ok(&self.data[off..off + len])
    }

    /// Raw data load (value only; the caller adds bus latency).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the access does not fit.
    pub fn load_raw(&mut self, addr: u32, size: MemSize) -> Result<u32, BusError> {
        let off = self.offset(addr, size.bytes())?;
        self.accesses += 1;
        Ok(ulp_isa::load_le(&self.data, off, size))
    }

    /// Raw data store.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the access does not fit.
    pub fn store_raw(&mut self, addr: u32, size: MemSize, value: u32) -> Result<(), BusError> {
        let n = size.bytes();
        let off = self.offset(addr, n)?;
        self.accesses += 1;
        ulp_isa::store_le(&mut self.data, off, size, value);
        self.decoded.invalidate(off, n as usize);
        Ok(())
    }

    /// Fetches the decoded instruction at `pc` (caching the decode).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if `pc` is outside L2 or holds an undecodable
    /// word.
    #[inline]
    pub fn fetch_insn(&mut self, pc: u32) -> Result<Insn, BusError> {
        let off = self.offset(pc, 4)?;
        self.decoded
            .fetch(off, &self.data)
            .ok_or(BusError::Unmapped { addr: pc })
    }

    /// The micro-op block entered at `pc`, built (or rebuilt when stale)
    /// from the decoded side table. `None` means no block starts here and
    /// the caller must fall back to a single reference step.
    #[inline]
    pub fn microop_block(&mut self, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        let off = self.offset(pc, 4).ok()?;
        self.blocks
            .lookup(off, &self.data, &mut self.decoded, model)
    }

    /// Monotonic counter that changes whenever previously decoded code
    /// bytes may have been overwritten (see [`DecodeCache::generation`]).
    #[inline]
    #[must_use]
    pub fn decode_generation(&self) -> u64 {
        self.decoded.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::prelude::*;

    #[test]
    fn program_load_and_fetch() {
        let mut a = Asm::new();
        a.li(R1, 2);
        a.halt();
        let prog = a.finish().unwrap();
        let mut l2 = L2Memory::new(0x1C00_0000, 8192);
        l2.load_program(&prog, 0x1C00_0000).unwrap();
        assert_eq!(l2.fetch_insn(0x1C00_0000).unwrap(), Insn::Addi(R1, R0, 2));
        assert_eq!(l2.fetch_insn(0x1C00_0004).unwrap(), Insn::Halt);
    }

    #[test]
    fn data_roundtrip() {
        let mut l2 = L2Memory::new(0x1C00_0000, 4096);
        l2.store_raw(0x1C00_0040, MemSize::Word, 0x1234_5678)
            .unwrap();
        assert_eq!(
            l2.load_raw(0x1C00_0040, MemSize::Word).unwrap(),
            0x1234_5678
        );
        assert_eq!(l2.accesses(), 2);
    }

    #[test]
    fn bounds_checked() {
        let mut l2 = L2Memory::new(0x1C00_0000, 64);
        assert!(l2.load_raw(0x1C00_0040, MemSize::Word).is_err());
        assert!(l2.fetch_insn(0x1BFF_FFFC).is_err());
    }

    #[test]
    fn write_invalidates_decoded() {
        let mut a = Asm::new();
        a.nop();
        let prog = a.finish().unwrap();
        let mut l2 = L2Memory::new(0, 64);
        l2.load_program(&prog, 0).unwrap();
        assert_eq!(l2.fetch_insn(0).unwrap(), Insn::Nop);
        let halt = ulp_isa::encode(&Insn::Halt).unwrap();
        l2.write_bytes(0, &halt.to_le_bytes()).unwrap();
        assert_eq!(l2.fetch_insn(0).unwrap(), Insn::Halt);
    }
}
