//! # ulp-cluster — cycle-level simulator of a PULP-style ULP cluster
//!
//! Models the accelerator side of the DATE'16 heterogeneous platform: a
//! single cluster of in-order cores (OR10N in the paper, core model
//! configurable here) sharing:
//!
//! * a multi-banked, word-interleaved **TCDM** data scratchpad with
//!   per-bank single-cycle arbitration ([`Tcdm`]) — cores have no private
//!   data caches, exactly as in the paper;
//! * a shared **instruction cache** refilled from L2 ([`ICache`]);
//! * a 64 kB **L2** memory holding code and staging buffers ([`L2Memory`]);
//! * a lightweight multi-channel **DMA** with direct TCDM access ([`Dma`]);
//! * a **HW event unit / synchronizer** providing few-cycle barriers,
//!   core wake-up and the end-of-computation wire towards the host
//!   ([`EventUnit`]).
//!
//! The [`Cluster`] stepping engine advances the core with the smallest
//! local time, so shared-resource arbitration (TCDM bank conflicts,
//! barriers) is resolved in approximate global order. Activity counters for
//! every component feed the paper's power model
//! (P_d = f·Σ χᵢ·ρᵢ) via [`ClusterActivity`].
//!
//! # Example: run a two-core program to completion
//!
//! ```
//! use ulp_cluster::{Cluster, ClusterConfig};
//! use ulp_isa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! // Each core writes its id to TCDM[4*id], then halts.
//! a.insn(Insn::Csrr(R1, Csr::CoreId));
//! a.slli(R2, R1, 2);
//! a.la(R3, ulp_cluster::TCDM_BASE);
//! a.add(R3, R3, R2);
//! a.sw(R1, R3, 0);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut cluster = Cluster::new(ClusterConfig { num_cores: 2, ..ClusterConfig::default() });
//! cluster.load_binary(&prog, ulp_cluster::L2_BASE)?;
//! cluster.start(ulp_cluster::L2_BASE, &[], 0);
//! let end = cluster.run_until_halt(1_000_000)?;
//! assert_eq!(cluster.read_tcdm_u32(ulp_cluster::TCDM_BASE + 4)?, 1);
//! assert!(end.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod config;
pub mod dma;
pub mod event;
pub mod icache;
pub mod l2;
pub mod stats;
pub mod tcdm;

pub use cluster::{Cluster, ClusterError, RunResult};
pub use config::ClusterConfig;
pub use dma::Dma;
pub use event::EventUnit;
pub use icache::ICache;
pub use l2::L2Memory;
pub use stats::ClusterActivity;
pub use tcdm::Tcdm;

/// Base address of the tightly-coupled data memory.
pub const TCDM_BASE: u32 = 0x1000_0000;
/// Base address of the cluster L2 memory.
pub const L2_BASE: u32 = 0x1C00_0000;
/// Event id of the end-of-computation wire towards the host (see
/// [`ulp_isa::Insn::Sev`]).
pub const EVT_EOC: u8 = 0;
/// Event id broadcasting to every core of the cluster.
pub const EVT_BROADCAST: u8 = 33;
/// Base address of the memory-mapped DMA programming interface:
/// `+0x0` source, `+0x4` destination, `+0x8` length (bytes), `+0xC`
/// command/status (write any value to start; reads 1 when idle/done).
pub const DMA_MMIO_BASE: u32 = 0x1B00_0000;
/// Size of the DMA register window.
pub const DMA_MMIO_SIZE: u32 = 0x10;

/// Whether `addr` falls inside the DMA register window.
#[must_use]
pub fn dma_mmio_contains(addr: u32) -> bool {
    (DMA_MMIO_BASE..DMA_MMIO_BASE + DMA_MMIO_SIZE).contains(&addr)
}

use std::sync::atomic::{AtomicBool, Ordering};

static DEFAULT_TURBO: AtomicBool = AtomicBool::new(true);

/// Sets the *default* scheduling engine for clusters built after this call:
/// `true` (the initial value) selects the turbo batching scheduler, `false`
/// the reference one-instruction-per-scan scheduler. Both produce
/// bit-identical results; the knob exists as an escape hatch
/// (`het-sim --no-turbo`) and for differential testing.
///
/// This is a process-wide setting intended for CLI entry points; tests that
/// need a specific engine on a specific instance should use
/// [`Cluster::set_turbo`] instead to stay race-free under the parallel test
/// runner.
pub fn set_default_turbo(on: bool) {
    DEFAULT_TURBO.store(on, Ordering::Relaxed);
}

/// The current process-wide default scheduling engine (see
/// [`set_default_turbo`]).
#[must_use]
pub fn default_turbo() -> bool {
    DEFAULT_TURBO.load(Ordering::Relaxed)
}
