//! # ulp-cluster — cycle-level simulator of a PULP-style ULP cluster
//!
//! Models the accelerator side of the DATE'16 heterogeneous platform: a
//! single cluster of in-order cores (OR10N in the paper, core model
//! configurable here) sharing:
//!
//! * a multi-banked, word-interleaved **TCDM** data scratchpad with
//!   per-bank single-cycle arbitration ([`Tcdm`]) — cores have no private
//!   data caches, exactly as in the paper;
//! * a shared **instruction cache** refilled from L2 ([`ICache`]);
//! * a 64 kB **L2** memory holding code and staging buffers ([`L2Memory`]);
//! * a lightweight multi-channel **DMA** with direct TCDM access ([`Dma`]);
//! * a **HW event unit / synchronizer** providing few-cycle barriers,
//!   core wake-up and the end-of-computation wire towards the host
//!   ([`EventUnit`]).
//!
//! The [`Cluster`] stepping engine advances the core with the smallest
//! local time, so shared-resource arbitration (TCDM bank conflicts,
//! barriers) is resolved in approximate global order. Activity counters for
//! every component feed the paper's power model
//! (P_d = f·Σ χᵢ·ρᵢ) via [`ClusterActivity`].
//!
//! # Example: run a two-core program to completion
//!
//! ```
//! use ulp_cluster::{Cluster, ClusterConfig};
//! use ulp_isa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! // Each core writes its id to TCDM[4*id], then halts.
//! a.insn(Insn::Csrr(R1, Csr::CoreId));
//! a.slli(R2, R1, 2);
//! a.la(R3, ulp_cluster::TCDM_BASE);
//! a.add(R3, R3, R2);
//! a.sw(R1, R3, 0);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut cluster = Cluster::new(ClusterConfig { num_cores: 2, ..ClusterConfig::default() });
//! cluster.load_binary(&prog, ulp_cluster::L2_BASE)?;
//! cluster.start(ulp_cluster::L2_BASE, &[], 0);
//! let end = cluster.run_until_halt(1_000_000)?;
//! assert_eq!(cluster.read_tcdm_u32(ulp_cluster::TCDM_BASE + 4)?, 1);
//! assert!(end.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod config;
pub mod dma;
pub mod event;
pub mod icache;
pub mod l2;
pub mod stats;
pub mod tcdm;

pub use cluster::{Cluster, ClusterError, RunResult};
pub use config::ClusterConfig;
pub use dma::Dma;
pub use event::EventUnit;
pub use icache::ICache;
pub use l2::L2Memory;
pub use stats::ClusterActivity;
pub use tcdm::Tcdm;

/// Base address of the tightly-coupled data memory.
pub const TCDM_BASE: u32 = 0x1000_0000;
/// Base address of the cluster L2 memory.
pub const L2_BASE: u32 = 0x1C00_0000;
/// Event id of the end-of-computation wire towards the host (see
/// [`ulp_isa::Insn::Sev`]).
pub const EVT_EOC: u8 = 0;
/// Event id broadcasting to every core of the cluster.
pub const EVT_BROADCAST: u8 = 33;
/// Base address of the memory-mapped DMA programming interface:
/// `+0x0` source, `+0x4` destination, `+0x8` length (bytes), `+0xC`
/// command/status (write any value to start; reads 1 when idle/done).
pub const DMA_MMIO_BASE: u32 = 0x1B00_0000;
/// Size of the DMA register window.
pub const DMA_MMIO_SIZE: u32 = 0x10;

/// Whether `addr` falls inside the DMA register window.
#[must_use]
pub fn dma_mmio_contains(addr: u32) -> bool {
    (DMA_MMIO_BASE..DMA_MMIO_BASE + DMA_MMIO_SIZE).contains(&addr)
}

use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution engine a [`Cluster`] uses. All four retire the exact
/// same instruction sequence and produce bit-identical observable results
/// (`RunResult`, activity counters, trace events, memory, perf counters);
/// they differ only in host-side speed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Engine {
    /// One-instruction-per-scan argmin scheduler: the executable definition
    /// of the interleaving order and the differential-testing oracle.
    Reference = 0,
    /// Batches the frontmost core for as long as the reference scheduler
    /// would keep choosing it, stepping decoded instructions one at a time.
    Turbo = 1,
    /// Turbo batching plus a basic-block micro-op cache: each block is
    /// pre-decoded once into a flat micro-op vector and replayed directly.
    Microop = 2,
    /// Speculative epoch scheduler: each core replays its micro-op blocks
    /// privately up to a shared horizon, a conservative conflict check
    /// validates the epoch, and any conflict rolls the whole epoch back and
    /// re-runs the window through the exact micro-op interleaving.
    Epoch = 3,
}

impl Engine {
    /// Parses an engine name as accepted by `het-sim --engine`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "reference" => Some(Engine::Reference),
            "turbo" => Some(Engine::Turbo),
            "microop" => Some(Engine::Microop),
            "epoch" => Some(Engine::Epoch),
            _ => None,
        }
    }

    /// Every engine, in speed order — the valid `--engine` values.
    pub const ALL: [Engine; 4] = [
        Engine::Reference,
        Engine::Turbo,
        Engine::Microop,
        Engine::Epoch,
    ];

    /// The engine's CLI / report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Turbo => "turbo",
            Engine::Microop => "microop",
            Engine::Epoch => "epoch",
        }
    }
}

static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(Engine::Epoch as u8);

/// Sets the *default* execution engine for clusters built after this call
/// (the initial value is [`Engine::Epoch`]). All engines produce
/// bit-identical results; the knob exists as an escape hatch
/// (`het-sim --engine`) and for differential testing. Also switches the
/// host-side `ulp_isa::Core` default between its micro-op and classic step
/// loops, so one call selects the engine platform-wide.
///
/// This is a process-wide setting intended for CLI entry points; tests that
/// need a specific engine on a specific instance should use
/// [`Cluster::set_engine`] instead to stay race-free under the parallel
/// test runner.
pub fn set_default_engine(engine: Engine) {
    DEFAULT_ENGINE.store(engine as u8, Ordering::Relaxed);
    // Epoch is a cluster-scheduler strategy; on the single-core host path
    // it degenerates to micro-op block replay, so both map to the host
    // core's micro-op loop.
    ulp_isa::uop::set_default_microop(matches!(engine, Engine::Microop | Engine::Epoch));
}

/// The current process-wide default execution engine (see
/// [`set_default_engine`]).
#[must_use]
pub fn default_engine() -> Engine {
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        0 => Engine::Reference,
        1 => Engine::Turbo,
        3 => Engine::Epoch,
        _ => Engine::Microop,
    }
}

/// Compatibility shim for the original two-engine knob: `true` restores the
/// fastest batching default ([`Engine::Epoch`]), `false` selects
/// [`Engine::Reference`]. Prefer [`set_default_engine`].
pub fn set_default_turbo(on: bool) {
    set_default_engine(if on { Engine::Epoch } else { Engine::Reference });
}

/// Whether the current default engine is a batching one (anything other
/// than [`Engine::Reference`]; see [`default_engine`]).
#[must_use]
pub fn default_turbo() -> bool {
    default_engine() != Engine::Reference
}
