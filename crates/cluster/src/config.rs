//! Cluster configuration.

use ulp_isa::CoreModel;

/// Static parameters of a simulated cluster.
///
/// The defaults reproduce the PULP3 SoC of the paper: a single quad-core
/// cluster with a word-interleaved multi-banked TCDM, a shared instruction
/// cache and 64 kB of L2.
///
/// # Example
///
/// ```
/// use ulp_cluster::ClusterConfig;
///
/// let single_core = ClusterConfig { num_cores: 1, ..ClusterConfig::default() };
/// assert_eq!(single_core.tcdm_banks, 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClusterConfig {
    /// Number of cores in the cluster (1–32).
    pub num_cores: usize,
    /// Core microarchitecture (OR10N by default).
    pub core_model: CoreModel,
    /// TCDM size in bytes.
    pub tcdm_size: usize,
    /// Number of TCDM banks (word-interleaved).
    pub tcdm_banks: usize,
    /// L2 memory size in bytes.
    pub l2_size: usize,
    /// Core data-access latency to L2 over the cluster bus, in cycles.
    pub l2_data_latency: u32,
    /// Shared instruction-cache size in bytes.
    pub icache_size: usize,
    /// Instruction-cache line size in bytes.
    pub icache_line: usize,
    /// Instruction-cache miss penalty (refill from L2), in cycles.
    pub icache_miss_penalty: u32,
    /// Cycles between the last barrier arrival and the release of the
    /// waiting cores (HW synchronizer).
    pub barrier_latency: u32,
    /// DMA channel count.
    pub dma_channels: usize,
    /// DMA programming overhead per transfer, in cycles.
    pub dma_setup: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_cores: 4,
            core_model: CoreModel::or10n(),
            tcdm_size: 64 * 1024,
            tcdm_banks: 8,
            l2_size: 64 * 1024,
            l2_data_latency: 8,
            icache_size: 4 * 1024,
            icache_line: 16,
            icache_miss_penalty: 12,
            barrier_latency: 2,
            dma_channels: 4,
            dma_setup: 10,
        }
    }
}

impl ClusterConfig {
    /// Validates internal consistency (bank count divides size, powers of
    /// two where required).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; configurations are
    /// developer-provided constants, so this is an assertion rather than a
    /// recoverable error.
    pub fn validate(&self) {
        assert!(
            (1..=32).contains(&self.num_cores),
            "num_cores {} out of range 1..=32",
            self.num_cores
        );
        assert!(
            self.tcdm_banks.is_power_of_two(),
            "tcdm_banks must be a power of two"
        );
        assert!(
            self.tcdm_size.is_multiple_of(self.tcdm_banks * 4),
            "tcdm_size must cover whole banks"
        );
        assert!(self.icache_line.is_power_of_two() && self.icache_line >= 4);
        assert!(self.icache_size.is_multiple_of(self.icache_line));
        assert!(self.dma_channels >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_quad_core() {
        let c = ClusterConfig::default();
        c.validate();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.tcdm_size, 64 * 1024);
        assert_eq!(c.l2_size, 64 * 1024);
        assert_eq!(c.core_model.name, "or10n");
    }

    #[test]
    #[should_panic(expected = "num_cores")]
    fn zero_cores_rejected() {
        ClusterConfig {
            num_cores: 0,
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_banks_rejected() {
        ClusterConfig {
            tcdm_banks: 3,
            ..ClusterConfig::default()
        }
        .validate();
    }
}
