//! Standalone `ulp-cluster` usage: a hand-written SPMD reduction across
//! the four cores, with the fork/join and TCDM traffic visible in the
//! activity counters.
//!
//! ```sh
//! cargo run -p ulp-cluster --example parallel_sum
//! ```

use ulp_cluster::{Cluster, ClusterConfig, EVT_BROADCAST, EVT_EOC, L2_BASE, TCDM_BASE};
use ulp_isa::prelude::*;
use ulp_isa::Insn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u32 = 1024; // words to sum

    // Each core sums elements [id, id+4, id+8, …] and writes a partial to
    // TCDM[4·id]; the master adds the four partials after the barrier.
    let mut a = Asm::new();
    let worker = a.new_label();
    let body = a.new_label();
    a.insn(Insn::Csrr(R28, Csr::CoreId));
    a.bne(R28, R0, worker);
    a.sev(EVT_BROADCAST);
    a.jmp(body);
    a.bind(worker);
    a.wfe();
    a.bind(body);
    a.la(R1, TCDM_BASE + 0x100); // data
    a.slli(R2, R28, 2);
    a.add(R1, R1, R2);
    a.li(R3, 0);
    a.li(R4, (N / 4) as i32);
    let top = a.new_label();
    a.bind(top);
    a.lw(R5, R1, 0);
    a.add(R3, R3, R5);
    a.addi(R1, R1, 16);
    a.addi(R4, R4, -1);
    a.bne(R4, R0, top);
    a.la(R6, TCDM_BASE);
    a.add(R6, R6, R2);
    a.sw(R3, R6, 0);
    a.barrier();
    let done = a.new_label();
    a.bne(R28, R0, done);
    // Master: fold the four partials and signal the host.
    a.la(R6, TCDM_BASE);
    a.lw(R3, R6, 0);
    a.lw(R5, R6, 4);
    a.add(R3, R3, R5);
    a.lw(R5, R6, 8);
    a.add(R3, R3, R5);
    a.lw(R5, R6, 12);
    a.add(R3, R3, R5);
    a.sw(R3, R6, 16);
    a.sev(EVT_EOC);
    a.bind(done);
    a.halt();
    let prog = a.finish()?;

    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.load_binary(&prog, L2_BASE)?;
    for i in 0..N {
        cluster.write_tcdm(TCDM_BASE + 0x100 + 4 * i, &(i + 1).to_le_bytes())?;
    }
    cluster.start(L2_BASE, &[], 0);
    let res = cluster.run_until_halt(1_000_000)?;

    let sum = cluster.read_tcdm_u32(TCDM_BASE + 16)?;
    assert_eq!(sum, N * (N + 1) / 2);
    println!("sum(1..={N}) = {sum} on 4 cores in {} cycles", res.cycles);
    println!(
        "IPC {:.2}, {} TCDM conflicts, {} barrier(s), I$ hit rate {:.1}%",
        res.activity.ipc(),
        res.activity.tcdm_conflicts,
        res.activity.barriers,
        res.activity.icache_hit_rate() * 100.0
    );
    Ok(())
}
