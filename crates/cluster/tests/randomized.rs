//! Seeded randomized tests of the cluster memory system, always on in the
//! default `cargo test`: the timed, banked TCDM must be functionally
//! identical to a plain byte array under arbitrary access interleavings,
//! arbitration must respect its serialization invariants, the I$ must stay
//! within its penalty bounds, and whole-cluster runs must be deterministic.
//!
//! These are ports of `tests/proptests.rs` (feature-gated, needs the
//! external `proptest` crate) onto the in-tree `ulp-rng` stream — no
//! shrinking, but reproducible from the fixed seeds with no registry
//! access.

use ulp_cluster::{Cluster, ClusterConfig, ICache, Tcdm, L2_BASE, TCDM_BASE};
use ulp_isa::prelude::*;
use ulp_isa::MemSize;
use ulp_rng::XorShiftRng;

const SIZE: usize = 4096;

#[derive(Clone, Copy, Debug)]
enum Op {
    Load {
        addr: u32,
        size: MemSize,
    },
    Store {
        addr: u32,
        size: MemSize,
        value: u32,
    },
    Tas {
        addr: u32,
    },
}

fn any_size(rng: &mut XorShiftRng) -> MemSize {
    *ulp_rng::gen::choose(rng, &[MemSize::Byte, MemSize::Half, MemSize::Word])
}

fn any_op(rng: &mut XorShiftRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Load {
            addr: TCDM_BASE + rng.gen_range(0u32..(SIZE as u32 - 4)),
            size: any_size(rng),
        },
        1 => Op::Store {
            addr: TCDM_BASE + rng.gen_range(0u32..(SIZE as u32 - 4)),
            size: any_size(rng),
            value: rng.gen(),
        },
        _ => Op::Tas {
            addr: TCDM_BASE + rng.gen_range(0u32..(SIZE as u32 / 4 - 1)) * 4,
        },
    }
}

/// Reference model: plain byte array with the same semantics.
struct Model(Vec<u8>);

impl Model {
    fn load(&self, addr: u32, size: MemSize) -> u32 {
        let off = (addr - TCDM_BASE) as usize;
        let mut v = 0u32;
        for i in (0..size.bytes() as usize).rev() {
            v = (v << 8) | u32::from(self.0[off + i]);
        }
        v
    }
    fn store(&mut self, addr: u32, size: MemSize, value: u32) {
        let off = (addr - TCDM_BASE) as usize;
        for i in 0..size.bytes() as usize {
            self.0[off + i] = (value >> (8 * i)) as u8;
        }
    }
}

/// Functional equivalence of the banked TCDM with a flat byte array under
/// arbitrary interleavings of loads, stores and test-and-sets.
#[test]
fn tcdm_matches_flat_model() {
    let mut rng = XorShiftRng::seed_from_u64(0x7CD1);
    for _ in 0..200 {
        let mut tcdm = Tcdm::new(TCDM_BASE, SIZE, 8);
        let mut model = Model(vec![0; SIZE]);
        let n_ops = rng.gen_range(1usize..200);
        for t in 0..n_ops {
            match any_op(&mut rng) {
                Op::Load { addr, size } => {
                    let (got, ready) = tcdm.load(t as u64, addr, size).unwrap();
                    assert_eq!(got, model.load(addr, size), "load {addr:#x} {size:?}");
                    assert!(ready > t as u64, "loads take at least a cycle");
                }
                Op::Store { addr, size, value } => {
                    tcdm.store(t as u64, addr, size, value).unwrap();
                    model.store(addr, size, value);
                }
                Op::Tas { addr } => {
                    let (old, _) = tcdm.tas(t as u64, addr).unwrap();
                    assert_eq!(old, model.load(addr, MemSize::Word), "tas {addr:#x}");
                    model.store(addr, MemSize::Word, 1);
                }
            }
        }
    }
}

/// Bank timing: a burst of same-cycle accesses to one bank serializes
/// (k-th access ready at now + k + 1), while a unit-stride burst over
/// distinct banks all completes in one cycle.
#[test]
fn tcdm_arbitration_invariants() {
    let mut rng = XorShiftRng::seed_from_u64(0x7CD2);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..8);
        let base_word = rng.gen_range(0u32..64);
        let mut same = Tcdm::new(TCDM_BASE, SIZE, 8);
        let addr = TCDM_BASE + base_word * 32; // bank is (word % 8): stride 32B = same bank
        for k in 0..n {
            let (_, ready) = same.load(100, addr, MemSize::Word).unwrap();
            assert_eq!(ready, 100 + k as u64 + 1);
        }
        let mut spread = Tcdm::new(TCDM_BASE, SIZE, 8);
        for k in 0..n {
            let a = TCDM_BASE + base_word * 4 + (k as u32) * 4;
            let (_, ready) = spread.load(100, a, MemSize::Word).unwrap();
            assert_eq!(ready, 101, "distinct banks must not serialize");
        }
    }
}

/// The instruction cache never charges more than the miss penalty and is
/// deterministic for a repeated trace.
#[test]
fn icache_penalty_bounds() {
    let mut rng = XorShiftRng::seed_from_u64(0x7CD3);
    for _ in 0..200 {
        let n_pcs = rng.gen_range(1usize..200);
        let pcs: Vec<u32> = (0..n_pcs).map(|_| rng.gen_range(0u32..4096)).collect();
        let mut c1 = ICache::new(1024, 16, 10);
        let mut c2 = ICache::new(1024, 16, 10);
        for pc in &pcs {
            let pc = pc & !3;
            let a = c1.access(pc);
            let b = c2.access(pc);
            assert!(a == 0 || a == 10);
            assert_eq!(a, b, "identical traces must behave identically");
        }
        assert_eq!(c1.hits() + c1.misses(), pcs.len() as u64);
    }
}

/// Cluster determinism: the same program produces the same cycle count and
/// results when re-run after reloading, and the sums match a host-side
/// reference computation.
#[test]
fn cluster_runs_are_deterministic() {
    let mut rng = XorShiftRng::seed_from_u64(0x7CD4);
    for _ in 0..10 {
        let n = rng.gen_range(4usize..32);
        let values: Vec<i32> = (0..n).map(|_| rng.gen()).collect();

        let mut a = Asm::new();
        // Each core sums a strided slice of the array into TCDM.
        a.insn(Insn::Csrr(R20, Csr::CoreId));
        a.la(R1, TCDM_BASE + 0x100);
        a.slli(R2, R20, 2);
        a.add(R1, R1, R2); // &data[core]
        a.li(R3, 0);
        a.li(R4, (values.len() / 4) as i32);
        let top = a.new_label();
        let done = a.new_label();
        a.beq(R4, R0, done);
        a.bind(top);
        a.lw(R5, R1, 0);
        a.add(R3, R3, R5);
        a.addi(R1, R1, 16);
        a.addi(R4, R4, -1);
        a.bne(R4, R0, top);
        a.bind(done);
        a.la(R6, TCDM_BASE);
        a.slli(R2, R20, 2);
        a.add(R6, R6, R2);
        a.sw(R3, R6, 0);
        a.halt();
        let prog = a.finish().unwrap();

        let run = || {
            let mut cl = Cluster::new(ClusterConfig::default());
            cl.load_binary(&prog, L2_BASE).unwrap();
            for (i, v) in values.iter().enumerate() {
                cl.write_tcdm(TCDM_BASE + 0x100 + 4 * i as u32, &v.to_le_bytes())
                    .unwrap();
            }
            cl.start(L2_BASE, &[], 0);
            let res = cl.run_until_halt(10_000_000).unwrap();
            let sums: Vec<u32> = (0..4)
                .map(|c| cl.read_tcdm_u32(TCDM_BASE + 4 * c).unwrap())
                .collect();
            (res.cycles, sums)
        };
        let (c1, s1) = run();
        let (c2, s2) = run();
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);

        // And the sums match the reference.
        for core in 0..4usize {
            let expect: i32 = values[core..]
                .iter()
                .step_by(4)
                .take(values.len() / 4)
                .fold(0i32, |acc, v| acc.wrapping_add(*v));
            assert_eq!(s1[core] as i32, expect, "core {core}");
        }
    }
}
