//! # ulp-rng — a tiny seeded xorshift PRNG
//!
//! The repository must build and test with **no registry access**, so the
//! workload generators (kernel input matrices, CNN weights, fuzz inputs)
//! and the link-layer [`FaultInjector`](../ulp_link/fault/index.html) share
//! this in-tree generator instead of the `rand` crate.
//!
//! The core is xorshift64\* (Vigna, "An experimental exploration of
//! Marsaglia's xorshift generators, scrambled"): a 64-bit xorshift state
//! followed by a multiplicative scramble. Seeding runs the seed through a
//! splitmix64 step so that small seeds (0, 1, 2, …) still produce
//! well-mixed streams; a zero state is impossible by construction.
//!
//! Determinism is a contract: the same seed yields the same stream on
//! every platform, which is what makes fault-injection experiments and
//! generated golden references reproducible.
//!
//! # Example
//!
//! ```
//! use ulp_rng::XorShiftRng;
//!
//! let mut rng = XorShiftRng::seed_from_u64(42);
//! let a: i16 = rng.gen_range(-8192..8192);
//! assert!((-8192..8192).contains(&a));
//! let again: i16 = XorShiftRng::seed_from_u64(42).gen_range(-8192..8192);
//! assert_eq!(a, again);
//! ```

use std::ops::{Range, RangeInclusive};

pub mod gen;

/// A 64-bit xorshift\* pseudo-random generator with explicit seeding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is passed through a splitmix64 finalizer so that seeds
    /// differing in a single bit produce uncorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step; the +golden-gamma guarantees a non-zero state
        // even for seed 0.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit value (xorshift64\*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (high half of the 64-bit output, which has the
    /// better-scrambled bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniformly distributed value of any primitive integer type.
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform draw from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types [`XorShiftRng::gen`] can produce.
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng(rng: &mut XorShiftRng) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn from_rng(rng: &mut XorShiftRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut XorShiftRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`XorShiftRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut XorShiftRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Modulo draw: the bias is ≤ span/2^64, far below anything a
                // workload generator or fault model can observe.
                let off = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShiftRng::seed_from_u64(7);
        let mut b = XorShiftRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::seed_from_u64(0);
        let mut b = XorShiftRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShiftRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShiftRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: i16 = rng.gen_range(-8192..8192);
            assert!((-8192..8192).contains(&v));
            let w: u32 = rng.gen_range(1..=u32::MAX);
            assert!(w >= 1);
            let n: i8 = rng.gen();
            let _ = n;
        }
    }

    #[test]
    fn gen_range_covers_extremes_of_small_ranges() {
        let mut rng = XorShiftRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = XorShiftRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShiftRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_bytes_fills_oddly_sized_buffers() {
        let mut rng = XorShiftRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn rough_uniformity_of_bytes() {
        let mut rng = XorShiftRng::seed_from_u64(19);
        let mut counts = [0u32; 256];
        let mut buf = [0u8; 4096];
        for _ in 0..64 {
            rng.fill_bytes(&mut buf);
            for b in buf {
                counts[b as usize] += 1;
            }
        }
        let expect = (64 * 4096 / 256) as f64;
        for (i, c) in counts.iter().enumerate() {
            let dev = (f64::from(*c) - expect).abs() / expect;
            assert!(dev < 0.25, "byte {i} count {c} deviates {dev:.2}");
        }
    }
}
