//! Input-sampling helpers for always-on randomized tests.
//!
//! The workspace's deeper fuzz suites need the external `proptest` crate
//! and stay behind the off-by-default `proptest` feature. The helpers
//! here cover the common sampling shapes those suites use — pick one of
//! a slice, interesting integer corner cases, random byte vectors — so
//! seeded randomized tests can run in the default `cargo test` with no
//! registry access, and reproduce exactly from their seed.
//!
//! # Example
//!
//! ```
//! use ulp_rng::XorShiftRng;
//! use ulp_rng::gen::{byte_vec, choose, operand32};
//!
//! let mut rng = XorShiftRng::seed_from_u64(7);
//! let op = *choose(&mut rng, &["add", "sub", "xor"]);
//! let a = operand32(&mut rng);
//! let payload = byte_vec(&mut rng, 0..=64);
//! assert!(payload.len() <= 64);
//! let _ = (op, a);
//! ```

use std::ops::RangeInclusive;

use crate::XorShiftRng;

/// Picks one element of a non-empty slice, uniformly.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choose<'a, T>(rng: &mut XorShiftRng, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "choose: empty slice");
    &items[rng.gen_range(0..items.len())]
}

/// A byte vector whose length is drawn from `len` and whose contents are
/// uniform random bytes.
///
/// # Panics
///
/// Panics if `len` is empty.
pub fn byte_vec(rng: &mut XorShiftRng, len: RangeInclusive<usize>) -> Vec<u8> {
    let n = rng.gen_range(len);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

/// A 32-bit operand biased towards the corner cases arithmetic bugs hide
/// behind: with probability ~1/4 one of `0`, `1`, `u32::MAX`, `i32::MIN`,
/// `i32::MAX` or a small value near them; otherwise uniform.
pub fn operand32(rng: &mut XorShiftRng) -> u32 {
    const CORNERS: [u32; 10] = [
        0,
        1,
        2,
        0x7F,
        0x80,
        0x7FFF_FFFF, // i32::MAX
        0x8000_0000, // i32::MIN
        0xFFFF_FFFE,
        0xFFFF_FFFF, // u32::MAX / -1
        0x0101_0101,
    ];
    if rng.gen_bool(0.25) {
        *choose(rng, &CORNERS)
    } else {
        rng.gen()
    }
}

/// A shift amount in `0..=31` (the architectural mask for 32-bit shifts).
pub fn shamt(rng: &mut XorShiftRng) -> u32 {
    rng.gen_range(0u32..=31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_is_uniformish_and_in_range() {
        let mut rng = XorShiftRng::seed_from_u64(1);
        let items = [10, 20, 30, 40];
        let mut seen = [false; 4];
        for _ in 0..256 {
            let v = *choose(&mut rng, &items);
            seen[items.iter().position(|x| *x == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_refuses_empty() {
        let _ = choose(&mut XorShiftRng::seed_from_u64(0), &[] as &[u8]);
    }

    #[test]
    fn byte_vec_length_in_range_and_reproducible() {
        let mut a = XorShiftRng::seed_from_u64(5);
        let mut b = XorShiftRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = byte_vec(&mut a, 3..=17);
            assert!((3..=17).contains(&v.len()));
            assert_eq!(v, byte_vec(&mut b, 3..=17));
        }
    }

    #[test]
    fn byte_vec_supports_empty_payloads() {
        let mut rng = XorShiftRng::seed_from_u64(2);
        let mut hit_zero = false;
        for _ in 0..64 {
            hit_zero |= byte_vec(&mut rng, 0..=1).is_empty();
        }
        assert!(hit_zero);
    }

    #[test]
    fn operand32_hits_corners_and_everything_else() {
        let mut rng = XorShiftRng::seed_from_u64(3);
        let mut zeros = 0u32;
        let mut big = 0u32;
        for _ in 0..10_000 {
            let v = operand32(&mut rng);
            if v == 0 {
                zeros += 1;
            }
            if v > 0x1000_0000 && v < 0x7000_0000 {
                big += 1;
            }
        }
        assert!(zeros > 50, "corner bias must surface zero often: {zeros}");
        assert!(big > 1000, "uniform tail must still cover mid-range: {big}");
    }

    #[test]
    fn shamt_is_architectural() {
        let mut rng = XorShiftRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(shamt(&mut rng) <= 31);
        }
    }
}
