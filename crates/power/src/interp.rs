//! Interpolation helpers for tabulated operating points.
//!
//! The paper: "To estimate maximum frequency at operating points not
//! covered by timing analysis, we used a simple polynomial interpolation
//! model." We provide Lagrange polynomial interpolation (used for
//! fmax-vs-VDD) and log-linear interpolation (used for leakage, which is
//! near-exponential in VDD).

/// Lagrange polynomial interpolation through `(xs, ys)` evaluated at `x`.
///
/// Intended for smooth monotone tables with a handful of anchors (the six
/// 100 mV operating points); `x` should lie within the anchor range.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or are empty, or if two anchors
/// share an abscissa.
#[must_use]
pub fn lagrange(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "anchor vectors must match");
    assert!(!xs.is_empty(), "need at least one anchor");
    let mut acc = 0.0;
    for i in 0..xs.len() {
        let mut li = 1.0;
        for j in 0..xs.len() {
            if i != j {
                let denom = xs[i] - xs[j];
                assert!(denom != 0.0, "duplicate abscissa {x}", x = xs[i]);
                li *= (x - xs[j]) / denom;
            }
        }
        acc += ys[i] * li;
    }
    acc
}

/// Piecewise log-linear interpolation (linear in `ln(y)`), clamped to the
/// anchor range. Suited to leakage currents, which grow near-exponentially
/// with supply voltage.
///
/// # Panics
///
/// Panics if the tables are empty, mismatched, non-increasing in `x`, or
/// contain non-positive `y` values.
#[must_use]
pub fn log_linear(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "anchor vectors must match");
    assert!(!xs.is_empty(), "need at least one anchor");
    assert!(
        ys.iter().all(|&y| y > 0.0),
        "log interpolation needs positive values"
    );
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let k = xs.partition_point(|&a| a <= x) - 1;
    let (x0, x1) = (xs[k], xs[k + 1]);
    assert!(x1 > x0, "anchors must be strictly increasing");
    let t = (x - x0) / (x1 - x0);
    (ys[k].ln() * (1.0 - t) + ys[k + 1].ln() * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lagrange_reproduces_anchors() {
        let xs = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        let ys = [60.0, 150.0, 250.0, 340.0, 410.0, 460.0];
        for (x, y) in xs.iter().zip(&ys) {
            assert!((lagrange(&xs, &ys, *x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn lagrange_is_monotone_on_smooth_table() {
        let xs = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        let ys = [60.0, 150.0, 250.0, 340.0, 410.0, 460.0];
        let mut prev = lagrange(&xs, &ys, 0.5);
        let mut v = 0.505;
        while v <= 1.0 {
            let cur = lagrange(&xs, &ys, v);
            assert!(
                cur >= prev - 1e-6,
                "fmax interpolation must not decrease at {v}"
            );
            prev = cur;
            v += 0.005;
        }
    }

    #[test]
    fn lagrange_exact_on_quadratic() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 2.0, 5.0]; // y = x^2 + 1
        assert!((lagrange(&xs, &ys, 1.5) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn log_linear_reproduces_anchors_and_clamps() {
        let xs = [0.5, 0.6, 0.7];
        let ys = [1.0e-5, 2.0e-5, 4.5e-5];
        for (x, y) in xs.iter().zip(&ys) {
            assert!((log_linear(&xs, &ys, *x) - y).abs() < 1e-12);
        }
        assert_eq!(log_linear(&xs, &ys, 0.3), 1.0e-5);
        assert_eq!(log_linear(&xs, &ys, 1.2), 4.5e-5);
    }

    #[test]
    fn log_linear_midpoint_is_geometric_mean() {
        let xs = [0.0, 1.0];
        let ys = [1.0, 100.0];
        assert!((log_linear(&xs, &ys, 0.5) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_linear_rejects_non_positive() {
        let _ = log_linear(&[0.0, 1.0], &[0.0, 1.0], 0.5);
    }
}
