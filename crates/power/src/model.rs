//! The PULP3 cluster power model: operating points, activity-weighted
//! dynamic power, and the power-envelope solver used for the paper's
//! Fig. 5a.

use ulp_cluster::ClusterActivity;

use crate::interp::{lagrange, log_linear};

/// Supply voltages of the tabulated operating points (V).
const VDD_ANCHORS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// An operating point selected by the envelope solver.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnvelopePoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
    /// Total (leakage + dynamic) power at this point, in watts.
    pub total_power_w: f64,
    /// Whether the point is limited by timing (`fmax`) rather than by the
    /// power budget.
    pub timing_limited: bool,
}

/// Per-component dynamic power densities at the reference voltage (0.5 V),
/// in watts per hertz. Densities scale with `(VDD/0.5)²`.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Densities {
    core_run: f64,
    core_idle: f64,
    fetch_path: f64,
    tcdm_bank: f64,
    interconnect: f64,
    dma: f64,
    soc_always_on: f64,
}

/// Activity-driven power model of the PULP cluster.
///
/// See the [crate documentation](crate) for the modelling approach and the
/// calibration caveat.
///
/// # Example
///
/// ```
/// use ulp_power::{busy_activity, PulpPowerModel};
///
/// let model = PulpPowerModel::pulp3();
/// let activity = busy_activity(4, 8);
/// // Total power at the lowest operating point sits near the paper's
/// // 1.48 mW anchor.
/// let p = model.total_power_w(model.fmax_hz(0.5), 0.5, &activity);
/// assert!(p > 1.0e-3 && p < 2.0e-3);
/// ```
#[derive(Clone, Debug)]
pub struct PulpPowerModel {
    fmax_mhz: [f64; 6],
    leak_w: [f64; 6],
    dens: Densities,
}

impl PulpPowerModel {
    /// The calibrated PULP3 (28 nm FD-SOI, quad-core) model.
    ///
    /// Anchor intent (paper §IV): peak matmul efficiency ≈ 304 GOPS/W at a
    /// total power of ≈ 1.48 mW near the lowest operating point, with
    /// commercial MCUs below 5 GOPS/W at comparable power.
    #[must_use]
    pub fn pulp3() -> Self {
        PulpPowerModel {
            // Max frequency vs VDD from (synthetic) post-layout timing.
            fmax_mhz: [60.0, 150.0, 250.0, 340.0, 410.0, 460.0],
            // Leakage vs VDD (W); near-exponential growth.
            leak_w: [0.08e-3, 0.13e-3, 0.20e-3, 0.32e-3, 0.48e-3, 0.70e-3],
            dens: Densities {
                core_run: 2.9e-12,
                core_idle: 0.25e-12,
                fetch_path: 3.6e-12,
                tcdm_bank: 0.9e-12,
                interconnect: 1.9e-12,
                dma: 1.5e-12,
                soc_always_on: 1.3e-12,
            },
        }
    }

    /// Supply range covered by the model.
    #[must_use]
    pub fn vdd_range(&self) -> (f64, f64) {
        (VDD_ANCHORS[0], VDD_ANCHORS[5])
    }

    /// Maximum clock frequency at `vdd`, polynomial-interpolated between
    /// the tabulated 100 mV operating points.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the tabulated 0.5–1.0 V range.
    #[must_use]
    pub fn fmax_hz(&self, vdd: f64) -> f64 {
        assert!(
            (0.5..=1.0).contains(&vdd),
            "vdd {vdd} outside the 0.5-1.0 V range"
        );
        lagrange(&VDD_ANCHORS, &self.fmax_mhz, vdd).max(0.0) * 1.0e6
    }

    /// Leakage power at `vdd` (log-linear interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the tabulated 0.5–1.0 V range.
    #[must_use]
    pub fn leakage_w(&self, vdd: f64) -> f64 {
        assert!(
            (0.5..=1.0).contains(&vdd),
            "vdd {vdd} outside the 0.5-1.0 V range"
        );
        log_linear(&VDD_ANCHORS, &self.leak_w, vdd)
    }

    fn density_scale(vdd: f64) -> f64 {
        (vdd / 0.5).powi(2)
    }

    /// Effective dynamic power density (W/Hz) for the activity mix of a
    /// run: Σᵢ χᵢ·ρᵢ of the paper's model.
    #[must_use]
    pub fn effective_density(&self, vdd: f64, activity: &ClusterActivity) -> f64 {
        let d = &self.dens;
        let n_cores = activity.core_active_cycles.len().max(1);
        let mut sum = 0.0;
        for i in 0..n_cores {
            let chi = activity.chi_core(i);
            sum += chi * d.core_run + (1.0 - chi) * d.core_idle;
        }
        let chi_fetch = activity.chi_cores_mean();
        sum += chi_fetch * d.fetch_path;
        sum += chi_fetch * d.interconnect;
        sum += activity.chi_tcdm() * d.tcdm_bank * activity.tcdm_banks.max(1) as f64;
        sum += activity.chi_dma() * d.dma;
        sum += d.soc_always_on;
        sum * Self::density_scale(vdd)
    }

    /// Dynamic power P_d = f · Σᵢ χᵢ·ρᵢ at the given frequency and supply.
    #[must_use]
    pub fn dynamic_power_w(&self, freq_hz: f64, vdd: f64, activity: &ClusterActivity) -> f64 {
        freq_hz * self.effective_density(vdd, activity)
    }

    /// Total power: leakage plus dynamic.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the tabulated range.
    #[must_use]
    pub fn total_power_w(&self, freq_hz: f64, vdd: f64, activity: &ClusterActivity) -> f64 {
        self.leakage_w(vdd) + self.dynamic_power_w(freq_hz, vdd, activity)
    }

    /// Finds the operating point maximizing clock frequency within a power
    /// budget, for a given activity mix — the Fig. 5a question: "as the MCU
    /// frequency is lowered, the power available for the accelerator is
    /// more, therefore it is possible to operate it at a higher frequency".
    ///
    /// Searches the supply range in 5 mV steps; at each voltage the
    /// frequency is the lower of `fmax(VDD)` and the budget-limited
    /// frequency. Returns `None` if even the lowest operating point's
    /// leakage exceeds the budget.
    #[must_use]
    pub fn max_freq_under_power(
        &self,
        budget_w: f64,
        activity: &ClusterActivity,
    ) -> Option<EnvelopePoint> {
        let mut best: Option<EnvelopePoint> = None;
        let mut vdd: f64 = 0.5;
        while vdd <= 1.0 + 1e-9 {
            let v = vdd.min(1.0);
            let leak = self.leakage_w(v);
            if leak < budget_w {
                let f_budget = (budget_w - leak) / self.effective_density(v, activity);
                let fmax = self.fmax_hz(v);
                let (f, timing_limited) = if f_budget >= fmax {
                    (fmax, true)
                } else {
                    (f_budget, false)
                };
                let point = EnvelopePoint {
                    vdd: v,
                    freq_hz: f,
                    total_power_w: self.total_power_w(f, v, activity),
                    timing_limited,
                };
                if best.is_none_or(|b| point.freq_hz > b.freq_hz) {
                    best = Some(point);
                }
            }
            vdd += 0.005;
        }
        best
    }

    /// Energy consumed by a run of `cycles` cycles at `(freq_hz, vdd)`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive or `vdd` is out of range.
    #[must_use]
    pub fn energy_joules(
        &self,
        cycles: u64,
        freq_hz: f64,
        vdd: f64,
        activity: &ClusterActivity,
    ) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let seconds = cycles as f64 / freq_hz;
        self.total_power_w(freq_hz, vdd, activity) * seconds
    }
}

impl Default for PulpPowerModel {
    fn default() -> Self {
        PulpPowerModel::pulp3()
    }
}

/// A synthetic fully-busy activity mix (all cores running, moderate TCDM
/// traffic), handy for envelope calculations before a real run exists.
#[must_use]
pub fn busy_activity(num_cores: usize, tcdm_banks: usize) -> ClusterActivity {
    ClusterActivity {
        total_cycles: 1000,
        core_active_cycles: vec![1000; num_cores],
        core_retired: vec![1000; num_cores],
        tcdm_busy_cycles: (1000 * tcdm_banks as u64) * 3 / 10,
        tcdm_banks,
        tcdm_conflicts: 0,
        icache_hits: 1000 * num_cores as u64,
        icache_misses: 0,
        l2_accesses: 0,
        dma_busy_cycles: 0,
        dma_bytes: 0,
        barriers: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PulpPowerModel {
        PulpPowerModel::pulp3()
    }

    #[test]
    fn fmax_monotone_in_vdd() {
        let m = model();
        let mut prev = 0.0;
        let mut v = 0.5;
        while v <= 1.0 {
            let f = m.fmax_hz(v);
            assert!(f > prev, "fmax must increase with vdd at {v}");
            prev = f;
            v += 0.01;
        }
    }

    #[test]
    fn leakage_monotone_and_in_band() {
        let m = model();
        assert!((m.leakage_w(0.5) - 0.08e-3).abs() < 1e-9);
        assert!((m.leakage_w(1.0) - 0.70e-3).abs() < 1e-9);
        assert!(m.leakage_w(0.55) > m.leakage_w(0.5));
        assert!(m.leakage_w(0.55) < m.leakage_w(0.6));
    }

    #[test]
    fn full_activity_density_near_24uw_per_mhz_at_low_vdd() {
        let m = model();
        let act = busy_activity(4, 8);
        let density = m.effective_density(0.5, &act);
        let uw_per_mhz = density * 1.0e12;
        assert!(
            (18.0..30.0).contains(&uw_per_mhz),
            "cluster density {uw_per_mhz:.1} µW/MHz out of the calibrated band"
        );
    }

    #[test]
    fn idle_cluster_draws_far_less_than_busy() {
        let m = model();
        let busy = busy_activity(4, 8);
        let idle = ClusterActivity {
            total_cycles: 1000,
            core_active_cycles: vec![0; 4],
            core_retired: vec![0; 4],
            tcdm_banks: 8,
            ..ClusterActivity::default()
        };
        let p_busy = m.dynamic_power_w(60.0e6, 0.5, &busy);
        let p_idle = m.dynamic_power_w(60.0e6, 0.5, &idle);
        assert!(
            p_idle < p_busy / 5.0,
            "clock-gated cores must slash dynamic power"
        );
    }

    #[test]
    fn density_scales_quadratically_with_vdd() {
        let m = model();
        let act = busy_activity(4, 8);
        let r = m.effective_density(1.0, &act) / m.effective_density(0.5, &act);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lowest_op_point_power_matches_paper_anchor() {
        // Paper: "peak energy efficiency shown by PULP is of 304 GOPS/W with
        // a power consumption of 1.48 mW". At 0.5 V / fmax with a busy
        // matmul-like mix the model must land near that power.
        let m = model();
        let act = busy_activity(4, 8);
        let p = m.total_power_w(m.fmax_hz(0.5), 0.5, &act);
        assert!(
            (1.1e-3..1.9e-3).contains(&p),
            "lowest-OP power {:.3} mW outside the 1.48 mW anchor band",
            p * 1e3
        );
    }

    #[test]
    fn envelope_solver_respects_budget() {
        let m = model();
        let act = busy_activity(4, 8);
        for budget in [0.5e-3, 2.0e-3, 5.0e-3, 9.0e-3, 50.0e-3] {
            if let Some(op) = m.max_freq_under_power(budget, &act) {
                assert!(
                    op.total_power_w <= budget * 1.0001,
                    "budget {budget} violated"
                );
                assert!(op.freq_hz > 0.0);
            }
        }
    }

    #[test]
    fn envelope_freq_grows_with_budget() {
        let m = model();
        let act = busy_activity(4, 8);
        let f1 = m.max_freq_under_power(2.0e-3, &act).unwrap().freq_hz;
        let f2 = m.max_freq_under_power(6.0e-3, &act).unwrap().freq_hz;
        let f3 = m.max_freq_under_power(9.5e-3, &act).unwrap().freq_hz;
        assert!(f1 < f2 && f2 < f3);
        // Around the paper's ~9.5 mW residual budget the cluster should run
        // in the low hundreds of MHz.
        assert!(
            (120.0e6..350.0e6).contains(&f3),
            "9.5 mW operating frequency {:.0} MHz outside the plausible band",
            f3 / 1e6
        );
    }

    #[test]
    fn huge_budget_is_timing_limited_at_nominal() {
        let m = model();
        let act = busy_activity(4, 8);
        let op = m.max_freq_under_power(1.0, &act).unwrap();
        assert!(op.timing_limited);
        assert!((op.freq_hz - m.fmax_hz(1.0)).abs() < 1.0);
        assert!((op.vdd - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tiny_budget_yields_none() {
        let m = model();
        let act = busy_activity(4, 8);
        assert!(m.max_freq_under_power(0.01e-3, &act).is_none());
    }

    #[test]
    fn energy_scales_with_cycles() {
        let m = model();
        let act = busy_activity(4, 8);
        let e1 = m.energy_joules(1_000_000, 60.0e6, 0.5, &act);
        let e2 = m.energy_joules(2_000_000, 60.0e6, 0.5, &act);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
