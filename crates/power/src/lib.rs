//! # ulp-power — power and energy models for the heterogeneous platform
//!
//! Reimplements the paper's power methodology (§IV-A):
//!
//! > "we derived our leakage and dynamic power with backannotated switching
//! > activities from three power analysis input vectors: *idle*, *matmul*
//! > and *dma* … The average dynamic power consumed over a benchmark is
//! > computed from the following model:
//! > P_d = f_clk · Σᵢ (χ_i,idle·ρ_i,idle + χ_i,run·ρ_i,run + χ_i,dma·ρ_i,dma)"
//!
//! where χᵢ are component activity ratios measured by the performance
//! monitoring unit (here: [`ClusterActivity`] from a simulation run) and ρᵢ
//! are per-component dynamic power densities. Leakage and maximum frequency
//! are tabulated per supply voltage (0.5 V – 1.0 V in 100 mV steps, like
//! the post-layout analysis of the PULP3 chip) and interpolated with a
//! simple polynomial model at intermediate points.
//!
//! The coefficient values are **calibrated, not measured**: the STM 28 nm
//! FD-SOI libraries are proprietary, so [`PulpPowerModel::pulp3`] ships
//! coefficients fitted to the published anchors (peak matmul efficiency
//! ≈ 304 GOPS/W at ≈ 1.48 mW; ≈ 60 GOPS/W-class cluster at nominal
//! voltage). See `DESIGN.md` for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use ulp_power::PulpPowerModel;
//!
//! let model = PulpPowerModel::pulp3();
//! let f = model.fmax_hz(0.65);
//! assert!(f > model.fmax_hz(0.6) && f < model.fmax_hz(0.7));
//!
//! // Highest frequency sustainable in a 5 mW envelope, fully active:
//! let op = model.max_freq_under_power(5.0e-3, &ulp_power::busy_activity(4, 8)).unwrap();
//! assert!(op.total_power_w <= 5.0e-3 * 1.0001);
//! ```

pub mod interp;
pub mod model;

pub use model::{busy_activity, EnvelopePoint, PulpPowerModel};

use ulp_cluster::ClusterActivity;

/// Billions of (RISC) operations per second, the throughput unit of the
/// paper's Fig. 3.
#[must_use]
pub fn gops(ops: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    ops as f64 / seconds / 1.0e9
}

/// Energy efficiency in GOPS/W given a throughput and a power.
#[must_use]
pub fn gops_per_watt(gops: f64, watts: f64) -> f64 {
    if watts <= 0.0 {
        return 0.0;
    }
    gops / watts
}

/// Convenience: energy in joules from average power and duration.
#[must_use]
pub fn energy_joules(watts: f64, seconds: f64) -> f64 {
    watts * seconds
}

/// Mean core activity factor of a run (χ_run averaged over cores), used to
/// weight the shared fetch path and interconnect densities.
#[must_use]
pub fn mean_core_chi(activity: &ClusterActivity) -> f64 {
    activity.chi_cores_mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gops_math() {
        assert!((gops(2_400_000, 1.0e-3) - 2.4).abs() < 1e-12);
        assert_eq!(gops(100, 0.0), 0.0);
        assert!((gops_per_watt(0.45, 1.48e-3) - 304.05).abs() < 0.5);
        assert_eq!(gops_per_watt(1.0, 0.0), 0.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        assert!((energy_joules(2.0e-3, 0.5) - 1.0e-3).abs() < 1e-15);
    }
}
