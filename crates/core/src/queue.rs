//! The asynchronous offload queue: enqueue several kernels, pipeline
//! their frames over the link.
//!
//! The serialized host runtime blocks on every `#pragma omp target`: it
//! cannot start shipping the next kernel's inputs while the accelerator
//! still computes. The queue removes that barrier — kernels are enqueued
//! with their own [`OffloadOptions`] and executed by
//! [`HetSystem::run_queue`](crate::HetSystem::run_queue), which threads
//! every job through one shared pipeline [`Schedule`](crate::pipeline):
//! the link keeps up to `window` chunk frames in flight across kernel
//! boundaries, so kernel *k+1*'s input stream hides under kernel *k*'s
//! compute.
//!
//! # Example
//!
//! ```
//! use ulp_offload::{HetSystem, HetSystemConfig, OffloadOptions, OffloadQueue, PipelineConfig};
//! use ulp_kernels::{Benchmark, TargetEnv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = HetSystem::new(HetSystemConfig::default());
//! let env = TargetEnv::pulp_parallel();
//! let mut queue = OffloadQueue::new();
//! queue.push(Benchmark::MatMul.build(&env), OffloadOptions { iterations: 4, ..Default::default() });
//! queue.push(Benchmark::Cnn.build(&env), OffloadOptions::default());
//! let report = sys.run_queue(&queue, PipelineConfig::enabled())?;
//! assert_eq!(report.reports.len(), 2);
//! assert!(report.total_seconds <= report.serialized_seconds);
//! # Ok(())
//! # }
//! ```

use ulp_kernels::KernelBuild;
use ulp_trace::Overlap;

use crate::system::{OffloadOptions, OffloadReport};

/// An ordered batch of offload jobs awaiting execution.
///
/// A queue is consumed *by generation*: once
/// [`HetSystem::run_queue`](crate::HetSystem::run_queue) has executed the
/// queued jobs, the queue is marked consumed. The next [`push`] then
/// starts a **fresh generation** — the already-executed jobs are dropped
/// and [`generation`](OffloadQueue::generation) increments — instead of
/// silently accumulating jobs that a re-run would execute twice.
#[derive(Clone, Debug, Default)]
pub struct OffloadQueue {
    jobs: Vec<(KernelBuild, OffloadOptions)>,
    generation: u64,
    consumed: std::cell::Cell<bool>,
}

impl OffloadQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        OffloadQueue::default()
    }

    /// Appends a kernel with its invocation options.
    ///
    /// If the queue was already consumed by a run, the executed jobs are
    /// dropped first and a fresh generation begins with this job.
    pub fn push(&mut self, build: KernelBuild, opts: OffloadOptions) {
        if self.consumed.get() {
            self.jobs.clear();
            self.generation += 1;
            self.consumed.set(false);
        }
        self.jobs.push((build, opts));
    }

    /// The queue's generation: 0 for a fresh queue, incremented every
    /// time a post-run [`push`](OffloadQueue::push) starts over.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True once a run has executed the queued jobs; the next
    /// [`push`](OffloadQueue::push) will start a fresh generation.
    #[must_use]
    pub fn is_consumed(&self) -> bool {
        self.consumed.get()
    }

    /// Marks the queue consumed (called by the run that executes it).
    pub(crate) fn mark_consumed(&self) {
        self.consumed.set(true);
    }

    /// Queued jobs, in execution order.
    #[must_use]
    pub fn jobs(&self) -> &[(KernelBuild, OffloadOptions)] {
        &self.jobs
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Result of draining an [`OffloadQueue`].
#[derive(Clone, Debug)]
pub struct QueueReport {
    /// Per-kernel reports, in queue order — each identical to what a
    /// standalone [`HetSystem::offload`](crate::HetSystem::offload) with
    /// the same pipeline config would have produced.
    pub reports: Vec<OffloadReport>,
    /// Wall-clock of running every job strictly serialized (no overlap of
    /// any kind), the baseline of the speedup claim.
    pub serialized_seconds: f64,
    /// Modeled wall-clock of the queue as executed (never above
    /// `serialized_seconds`).
    pub total_seconds: f64,
    /// Concurrency accounting of the shared cross-kernel schedule
    /// (all-zero when the queue ran serialized).
    pub overlap: Overlap,
}

impl QueueReport {
    /// Seconds the queue-level pipelining hid.
    #[must_use]
    pub fn hidden_seconds(&self) -> f64 {
        self.serialized_seconds - self.total_seconds
    }

    /// Serialized-over-pipelined speedup (1.0 when nothing was hidden).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.serialized_seconds / self.total_seconds
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::system::{HetSystem, HetSystemConfig};
    use ulp_kernels::matmul::{self, MatVariant};
    use ulp_kernels::TargetEnv;

    fn queue_of(iterations: usize) -> OffloadQueue {
        let env = TargetEnv::pulp_parallel();
        let mut q = OffloadQueue::new();
        q.push(
            matmul::build_sized(MatVariant::Char, &env, 16),
            OffloadOptions {
                iterations,
                ..Default::default()
            },
        );
        q.push(
            matmul::build_sized(MatVariant::Char, &env, 8),
            OffloadOptions {
                iterations,
                ..Default::default()
            },
        );
        q
    }

    #[test]
    fn queue_collects_jobs_in_order() {
        let q = queue_of(2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(q.jobs()[0].0.name.starts_with("matmul"));
        assert_ne!(q.jobs()[0].0.name, q.jobs()[1].0.name);
        assert!(OffloadQueue::new().is_empty());
    }

    #[test]
    fn pipelined_queue_never_loses_to_serialized() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let r = sys
            .run_queue(&queue_of(4), PipelineConfig::enabled())
            .unwrap();
        assert_eq!(r.reports.len(), 2);
        assert!(r.total_seconds <= r.serialized_seconds);
        assert!(r.speedup() >= 1.0);
        assert!(r.overlap.check().is_ok(), "{:?}", r.overlap.check());
    }

    #[test]
    fn disabled_pipeline_runs_serialized() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let r = sys
            .run_queue(&queue_of(2), PipelineConfig::default())
            .unwrap();
        assert!(!r.overlap.any());
        assert!((r.total_seconds - r.serialized_seconds).abs() < 1e-15);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_reports_match_standalone_offloads() {
        let pipe = PipelineConfig::enabled();
        let mut queued = HetSystem::new(HetSystemConfig::default());
        let qr = queued.run_queue(&queue_of(3), pipe).unwrap();

        let mut solo = HetSystem::new(HetSystemConfig::default());
        for ((build, opts), queued_report) in queue_of(3).jobs().iter().zip(&qr.reports) {
            let mut o = *opts;
            o.pipeline = pipe;
            let r = solo.offload(build, &o).unwrap();
            assert_eq!(r.binary_seconds, queued_report.binary_seconds);
            assert_eq!(r.input_seconds, queued_report.input_seconds);
            assert_eq!(r.output_seconds, queued_report.output_seconds);
            assert_eq!(r.compute_seconds, queued_report.compute_seconds);
            assert_eq!(r.mcu_energy_joules, queued_report.mcu_energy_joules);
            assert_eq!(r.pulp_energy_joules, queued_report.pulp_energy_joules);
            assert_eq!(r.link_energy_joules, queued_report.link_energy_joules);
        }
    }

    #[test]
    fn queue_reuses_a_resident_binary() {
        let env = TargetEnv::pulp_parallel();
        let mut q = OffloadQueue::new();
        let build = matmul::build_sized(MatVariant::Char, &env, 16);
        q.push(build.clone(), OffloadOptions::default());
        q.push(build, OffloadOptions::default());
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let r = sys.run_queue(&q, PipelineConfig::enabled()).unwrap();
        assert!(r.reports[0].binary_seconds > 0.0);
        assert_eq!(
            r.reports[1].binary_seconds, 0.0,
            "second job reuses the binary"
        );
    }

    #[test]
    fn post_run_push_starts_a_fresh_generation() {
        // Regression: pushing after a run used to silently append to the
        // already-executed jobs, so a second run re-ran the whole history.
        let env = TargetEnv::pulp_parallel();
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let mut q = queue_of(2);
        assert_eq!(q.generation(), 0);
        assert!(!q.is_consumed());
        let first = sys.run_queue(&q, PipelineConfig::enabled()).unwrap();
        assert_eq!(first.reports.len(), 2);
        assert!(q.is_consumed(), "a run must mark the queue consumed");

        q.push(
            matmul::build_sized(MatVariant::Char, &env, 8),
            OffloadOptions::default(),
        );
        assert_eq!(q.generation(), 1, "post-run push starts a new generation");
        assert_eq!(q.len(), 1, "executed jobs are dropped, not re-queued");
        assert!(!q.is_consumed());
        let second = sys.run_queue(&q, PipelineConfig::enabled()).unwrap();
        assert_eq!(second.reports.len(), 1, "only the fresh job runs");
        assert!(q.is_consumed());
    }

    #[test]
    fn faulty_link_degrades_to_sequential_offloads() {
        let mut sys = HetSystem::new(HetSystemConfig {
            fault: crate::FaultConfig {
                seed: 11,
                bit_error_rate: 1e-5,
                ..crate::FaultConfig::default()
            },
            ..HetSystemConfig::default()
        });
        let r = sys
            .run_queue(&queue_of(2), PipelineConfig::enabled())
            .unwrap();
        assert_eq!(r.reports.len(), 2);
        assert!(
            !r.overlap.any(),
            "no cross-kernel pipelining on a faulty link"
        );
        assert!(r.total_seconds <= r.serialized_seconds + 1e-12);
    }
}
