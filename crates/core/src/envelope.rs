//! Fixed-power-envelope analysis (the paper's Fig. 5a).
//!
//! "In the case of an embedded system, one is not typically interested in
//! the best absolute possible performance, but rather in the best
//! performance achievable in a given power envelope" (§IV-B). The paper
//! imposes **10 mW on the whole platform** — MCU + PULP + SPI link — and
//! asks, for every MCU operating frequency: how fast may the accelerator
//! be clocked with the power the MCU leaves over, and what speedup does
//! that yield against the baseline (the STM32-L476 alone at 32 MHz, which
//! consumes the entire envelope)?

use ulp_cluster::ClusterActivity;
use ulp_mcu::McuDevice;
use ulp_power::{EnvelopePoint, PulpPowerModel};

/// A platform-wide power budget.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerBudget {
    /// Total power available for MCU + accelerator + link, in watts.
    pub total_watts: f64,
    /// MCU baseline frequency defining speedup = 1 (32 MHz in the paper).
    pub baseline_mcu_hz: f64,
}

impl Default for PowerBudget {
    fn default() -> Self {
        PowerBudget {
            total_watts: 10.0e-3,
            baseline_mcu_hz: 32.0e6,
        }
    }
}

/// One point of the Fig. 5a sweep.
#[derive(Clone, Copy, Debug)]
pub struct EnvelopeReport {
    /// MCU clock at this point.
    pub mcu_freq_hz: f64,
    /// MCU power draw at this clock.
    pub mcu_power_watts: f64,
    /// Whether the MCU alone already fits the budget.
    pub mcu_within_budget: bool,
    /// Speedup of the MCU alone at this clock vs the baseline clock.
    pub mcu_speedup: f64,
    /// Accelerator operating point within the residual budget (none if
    /// the MCU leaves nothing to spend).
    pub pulp_point: Option<EnvelopePoint>,
    /// Speedup of the accelerator vs the MCU baseline (offload cost not
    /// included, exactly as in Fig. 5a).
    pub pulp_speedup: Option<f64>,
    /// Benchmark RISC operations per cycle on the accelerator (the bar
    /// annotations of Fig. 5a).
    pub pulp_ops_per_cycle: f64,
    /// Benchmark RISC operations per cycle on the MCU.
    pub mcu_ops_per_cycle: f64,
}

/// Computes one sweep point.
///
/// * `host_cycles` — benchmark cycles on the host core (Cortex-M4 model);
/// * `cluster_cycles` — benchmark cycles on the parallel accelerator;
/// * `risc_ops` — the benchmark's RISC-op count (for the annotations);
/// * `activity` — measured cluster activity, driving the accelerator's
///   power density;
/// * `link_power_watts` — coupling-link draw, also inside the envelope.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn envelope_speedup(
    budget: &PowerBudget,
    mcu: &McuDevice,
    mcu_freq_hz: f64,
    power: &PulpPowerModel,
    activity: &ClusterActivity,
    host_cycles: u64,
    cluster_cycles: u64,
    risc_ops: u64,
    link_power_watts: f64,
) -> EnvelopeReport {
    let mcu_power = mcu.run_power_w(mcu_freq_hz);
    let residual = budget.total_watts - mcu_power - link_power_watts;
    let baseline_seconds = host_cycles as f64 / budget.baseline_mcu_hz;

    let pulp_point = if residual > 0.0 {
        power.max_freq_under_power(residual, activity)
    } else {
        None
    };
    let pulp_speedup = pulp_point.map(|op| {
        let t = cluster_cycles as f64 / op.freq_hz;
        baseline_seconds / t
    });

    EnvelopeReport {
        mcu_freq_hz,
        mcu_power_watts: mcu_power,
        mcu_within_budget: mcu_power <= budget.total_watts,
        mcu_speedup: mcu_freq_hz / budget.baseline_mcu_hz,
        pulp_point,
        pulp_speedup,
        pulp_ops_per_cycle: risc_ops as f64 / cluster_cycles as f64,
        mcu_ops_per_cycle: risc_ops as f64 / host_cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_mcu::datasheet;
    use ulp_power::busy_activity;

    fn report_at(mcu_hz: f64) -> EnvelopeReport {
        envelope_speedup(
            &PowerBudget::default(),
            &datasheet::stm32l476(),
            mcu_hz,
            &PulpPowerModel::pulp3(),
            &busy_activity(4, 8),
            3_000_000, // host cycles
            280_000,   // cluster cycles (arch × parallel speedup ≈ 10.7)
            2_400_000, // RISC ops
            20.0e-6,
        )
    }

    #[test]
    fn baseline_point_leaves_no_room() {
        // The paper: at 32 MHz the L476 consumes ≈ the whole 10 mW.
        let r = report_at(32.0e6);
        assert!(r.mcu_within_budget);
        assert!((r.mcu_speedup - 1.0).abs() < 1e-12);
        // Whatever is left cannot clock the cluster meaningfully.
        if let Some(s) = r.pulp_speedup {
            assert!(s < 10.0, "near-exhausted budget gave speedup {s:.1}");
        }
    }

    #[test]
    fn lower_mcu_clock_frees_accelerator_power() {
        let slow = report_at(1.0e6);
        let fast = report_at(26.0e6);
        let s_slow = slow.pulp_speedup.unwrap();
        let s_fast = fast.pulp_speedup.unwrap();
        assert!(
            s_slow > s_fast,
            "1 MHz host ({s_slow:.1}×) must leave more envelope than 26 MHz ({s_fast:.1}×)"
        );
        assert!(s_slow > 20.0, "paper band: >20× for the slowest host clock");
    }

    #[test]
    fn total_power_respected() {
        for mhz in [1.0, 2.0, 4.0, 8.0, 16.0, 26.0] {
            let r = report_at(mhz * 1e6);
            if let Some(op) = r.pulp_point {
                let total = r.mcu_power_watts + op.total_power_w + 20.0e-6;
                assert!(
                    total <= 10.0e-3 * 1.0001,
                    "budget violated at {mhz} MHz: {:.2} mW",
                    total * 1e3
                );
            }
        }
    }

    #[test]
    fn overclocked_mcu_flagged_outside_budget() {
        let r = report_at(80.0e6);
        assert!(!r.mcu_within_budget, "80 MHz L476 exceeds 10 mW");
        assert!(r.mcu_speedup > 2.0);
    }

    #[test]
    fn ops_per_cycle_annotations() {
        let r = report_at(16.0e6);
        assert!(r.pulp_ops_per_cycle > r.mcu_ops_per_cycle);
        assert!((r.mcu_ops_per_cycle - 0.8).abs() < 0.2);
    }
}
