//! The pipelined offload engine: chunked, double-buffered transfer
//! scheduling.
//!
//! The serialized offload walks `link-in → DMA-in → compute → DMA-out →
//! link-out` one phase at a time, so the coupling link — the dominant cost
//! of the paper's §IV analysis — sits idle while the cluster computes and
//! vice versa. This module models the overlapped alternative:
//!
//! * `map(to/from)` payloads are split into chunks of
//!   [`PipelineConfig::chunk_bytes`];
//! * chunks stream through a bounded ring of staging slots
//!   ([`PipelineConfig::window`] deep, matching the sliding-window depth
//!   of the link protocol), so the QSPI shift of chunk *k+1* overlaps the
//!   cluster-DMA move of chunk *k*;
//! * TCDM input/output buffers are double-buffered across iterations (the
//!   event unit hands a filled buffer set to the cores while the DMA
//!   refills the other), so the transfers of iteration *i+1* overlap the
//!   compute of iteration *i*.
//!
//! The engine is an event-driven schedule over three FIFO resources —
//! LINK, DMA and CORES — in integer nanoseconds: deterministic, exact,
//! and cheap enough to evaluate thousands of operating points. The
//! offload runtime computes **both** the serialized and the pipelined
//! schedule and adopts the pipelined one only when it is strictly
//! shorter, so enabling the pipeline can never slow an offload down
//! (tiny chunks on a slow link genuinely lose to one big frame — the
//! per-chunk 10-byte header plus turnaround is not free).

use std::collections::VecDeque;

use ulp_trace::Overlap;

/// Default chunk size: small enough to double-buffer comfortably in a
/// staging corner of the 64 KiB TCDM, large enough that the 10-byte frame
/// header stays below 2% overhead.
pub const DEFAULT_CHUNK_BYTES: usize = 512;

/// Default staging-ring depth (also the link sliding-window depth).
pub const DEFAULT_WINDOW: usize = 4;

/// Smallest accepted chunk: below this the per-chunk frame header
/// dominates and the schedule explodes into thousands of micro-ops.
pub const MIN_CHUNK_BYTES: usize = 32;

/// Knobs of the pipelined offload engine. `Default` is **disabled**, which
/// keeps every serialized figure bit-identical.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PipelineConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Transfer chunk size in bytes (clamped to at least
    /// [`MIN_CHUNK_BYTES`]).
    pub chunk_bytes: usize,
    /// Staging-ring depth / link sliding-window size (clamped to
    /// `1..=`[`ulp_link::MAX_WINDOW`]).
    pub window: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            enabled: false,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            window: DEFAULT_WINDOW,
        }
    }
}

impl PipelineConfig {
    /// An enabled config with the default chunk and window.
    #[must_use]
    pub fn enabled() -> Self {
        PipelineConfig {
            enabled: true,
            ..PipelineConfig::default()
        }
    }

    /// The config with both knobs clamped to their legal ranges.
    #[must_use]
    pub fn normalized(self) -> Self {
        PipelineConfig {
            enabled: self.enabled,
            chunk_bytes: self.chunk_bytes.max(MIN_CHUNK_BYTES),
            window: self.window.clamp(1, ulp_link::MAX_WINDOW),
        }
    }
}

/// Converts model seconds into the engine's integer nanoseconds.
pub(crate) fn ns(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

/// Total time of the same chunked work done strictly serially — the
/// baseline the engine's gain is measured against. Only link shifts (or
/// sensor fills) and compute count: the serialized ledger folds the
/// cluster-DMA move into the transfer phase, so charging it here would
/// inflate the baseline and overstate the pipeline's win.
pub(crate) fn serial_ns(job: &PipelineJob) -> u64 {
    let per_iter: u64 = job.inputs.iter().map(|c| c.link_ns).sum::<u64>()
        + job.outputs.iter().map(|c| c.link_ns).sum::<u64>()
        + job.sensor_ns.unwrap_or(0);
    let iters = job.iterations.max(1) as u64;
    job.binary.iter().map(|c| c.link_ns).sum::<u64>()
        + iters * per_iter
        + job.compute_cold_ns
        + (iters - 1) * job.compute_warm_ns
}

/// Splits a payload into chunk lengths (all `chunk` bytes except a shorter
/// tail). Empty payloads produce no chunks at all — an empty `map` clause
/// costs nothing.
pub(crate) fn chunk_lens(len: usize, chunk: usize) -> Vec<usize> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut rem = len;
    while rem > 0 {
        let c = rem.min(chunk);
        out.push(c);
        rem -= c;
    }
    out
}

/// One chunk's cost on its two resources: the link shift and the cluster
/// DMA move, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChunkOp {
    pub link_ns: u64,
    pub dma_ns: u64,
}

/// Everything the engine needs to schedule one offload invocation, with
/// all byte counts already converted to nanoseconds by the caller (who
/// owns the link and DMA timing models).
#[derive(Clone, Debug)]
pub(crate) struct PipelineJob {
    /// Chunked program offload (empty when the binary is resident).
    pub binary: Vec<ChunkOp>,
    /// Chunked per-iteration input transfers.
    pub inputs: Vec<ChunkOp>,
    /// Chunked per-iteration output transfers.
    pub outputs: Vec<ChunkOp>,
    /// First (cold instruction cache) execution.
    pub compute_cold_ns: u64,
    /// Steady-state execution.
    pub compute_warm_ns: u64,
    /// Kernel executions.
    pub iterations: usize,
    /// `Some(per-iteration ns)` when inputs stream from the sensor's
    /// dedicated port (they then occupy only the DMA timeline, not the
    /// link).
    pub sensor_ns: Option<u64>,
}

/// One FIFO resource: a single server whose busy intervals are recorded
/// (sorted and disjoint by construction) for the overlap accounting.
#[derive(Clone, Debug, Default)]
struct Timeline {
    free_at: u64,
    busy: Vec<(u64, u64)>,
    busy_ns: u64,
}

impl Timeline {
    /// Occupies the resource for `dur` ns starting no earlier than
    /// `earliest`; returns the interval end.
    fn push(&mut self, earliest: u64, dur: u64) -> u64 {
        let start = earliest.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        if dur > 0 {
            self.busy_ns += dur;
            match self.busy.last_mut() {
                Some(last) if last.1 == start => last.1 = end,
                _ => self.busy.push((start, end)),
            }
        }
        end
    }
}

/// Total length of the pairwise intersection of two sorted disjoint
/// interval lists.
fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn span_of(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(lo, hi)| hi - lo).sum()
}

/// The event-driven schedule: three FIFO resources plus the bounded
/// staging ring that couples link and DMA per chunk.
#[derive(Clone, Debug)]
pub(crate) struct Schedule {
    link: Timeline,
    dma: Timeline,
    core: Timeline,
    /// Release times of in-flight staging slots, oldest first; its
    /// capacity is the window.
    ring: VecDeque<u64>,
    window: usize,
    chunks: u64,
}

impl Schedule {
    pub fn new(window: usize) -> Self {
        Schedule {
            link: Timeline::default(),
            dma: Timeline::default(),
            core: Timeline::default(),
            ring: VecDeque::new(),
            window: window.max(1),
            chunks: 0,
        }
    }

    /// Earliest time a staging slot is available for a chunk that becomes
    /// ready at `ready`.
    fn acquire_slot(&mut self, ready: u64) -> u64 {
        if self.ring.len() < self.window {
            ready
        } else {
            let oldest = self.ring.pop_front().expect("ring at capacity");
            ready.max(oldest)
        }
    }

    /// Streams one inbound chunk: link into a staging slot, then DMA into
    /// the target memory once `tcdm_ready` allows the write. Returns the
    /// DMA completion time.
    pub fn chunk_in(&mut self, op: ChunkOp, tcdm_ready: u64) -> u64 {
        let slot = self.acquire_slot(0);
        let link_end = self.link.push(slot, op.link_ns);
        let dma_end = self.dma.push(link_end.max(tcdm_ready), op.dma_ns);
        self.ring.push_back(dma_end);
        self.chunks += 1;
        dma_end
    }

    /// Streams one outbound chunk: DMA out of the TCDM once the data is
    /// ready (and a slot is free), then the link shifts it to the host.
    /// Returns `(dma_end, link_end)` — the former releases the TCDM result
    /// buffer, the latter is when the host holds the bytes.
    pub fn chunk_out(&mut self, op: ChunkOp, data_ready: u64) -> (u64, u64) {
        let slot = self.acquire_slot(data_ready);
        let dma_end = self.dma.push(slot, op.dma_ns);
        let link_end = self.link.push(dma_end, op.link_ns);
        self.ring.push_back(link_end);
        self.chunks += 1;
        (dma_end, link_end)
    }

    /// One kernel execution on the cores, not before `ready`.
    pub fn compute(&mut self, dur_ns: u64, ready: u64) -> u64 {
        self.core.push(ready, dur_ns)
    }

    /// A sensor-port fill: occupies the DMA timeline only (the dedicated
    /// interface bypasses both the link and the staging ring).
    pub fn sensor_fill(&mut self, dur_ns: u64, ready: u64) -> u64 {
        self.dma.push(ready, dur_ns)
    }

    /// End of the last scheduled operation on any resource.
    pub fn makespan(&self) -> u64 {
        self.link
            .free_at
            .max(self.dma.free_at)
            .max(self.core.free_at)
    }

    /// The concurrency accounting over everything scheduled so far.
    pub fn overlap(&self) -> Overlap {
        let link_dma = intersect(&self.link.busy, &self.dma.busy);
        let link_core = intersect(&self.link.busy, &self.core.busy);
        let dma_core = intersect(&self.dma.busy, &self.core.busy);
        let triple = span_of(&intersect(&link_dma, &self.core.busy));
        Overlap {
            link_busy: self.link.busy_ns,
            dma_busy: self.dma.busy_ns,
            core_busy: self.core.busy_ns,
            link_dma: span_of(&link_dma),
            link_core: span_of(&link_core),
            dma_core: span_of(&dma_core),
            triple,
            span: self.makespan(),
            chunks: self.chunks,
            engaged: false,
        }
    }
}

/// Streams one iteration's inputs into the schedule. `tcdm_ready` is when
/// the input buffer set being refilled was last read (the double-buffer
/// hand-off the event unit signals). Returns when the inputs are fully in
/// the TCDM.
fn stream_inputs(sched: &mut Schedule, job: &PipelineJob, tcdm_ready: u64) -> u64 {
    if let Some(ns) = job.sensor_ns {
        return sched.sensor_fill(ns, tcdm_ready);
    }
    let mut done = tcdm_ready;
    for op in &job.inputs {
        done = sched.chunk_in(*op, tcdm_ready);
    }
    done
}

/// Schedules one whole offload invocation onto `sched` (which may already
/// hold previous jobs — that is how the offload queue pipelines across
/// kernels). Returns the job's completion time.
///
/// Dependency structure (the TCDM holds two input sets and two output
/// sets; the event unit flips them):
///
/// * compute *i* needs: its inputs in TCDM, the binary loaded, the output
///   set it writes drained by the output-DMA of iteration *i−2*;
/// * the input refill for iteration *i+1* starts while *i* computes, but
///   must not overwrite the set iteration *i−1* was still reading;
/// * output chunks of *i* leave via DMA once compute *i* is done, then
///   queue on the link behind the already-issued input stream of *i+1*
///   (host issue order — accepted head-of-line, and deterministic).
pub(crate) fn schedule_job(sched: &mut Schedule, job: &PipelineJob) -> u64 {
    let mut binary_done = 0u64;
    for op in &job.binary {
        binary_done = sched.chunk_in(*op, 0);
    }
    let iters = job.iterations.max(1);
    let mut compute_done = vec![0u64; iters];
    let mut dma_in_done = vec![0u64; iters];
    let mut dma_out_drained = vec![0u64; iters];
    let mut end = binary_done;

    dma_in_done[0] = stream_inputs(sched, job, 0);
    for i in 0..iters {
        let compute_ns = if i == 0 {
            job.compute_cold_ns
        } else {
            job.compute_warm_ns
        };
        let mut ready = dma_in_done[i].max(binary_done);
        if i >= 2 {
            ready = ready.max(dma_out_drained[i - 2]);
        }
        compute_done[i] = sched.compute(compute_ns, ready);
        if i + 1 < iters {
            let tcdm_ready = if i >= 1 { compute_done[i - 1] } else { 0 };
            dma_in_done[i + 1] = stream_inputs(sched, job, tcdm_ready);
        }
        let mut drained = compute_done[i];
        let mut out_end = compute_done[i];
        for op in &job.outputs {
            let (dma_end, link_end) = sched.chunk_out(*op, compute_done[i]);
            drained = dma_end;
            out_end = link_end;
        }
        dma_out_drained[i] = drained;
        end = end.max(out_end).max(compute_done[i]);
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(link_ns: u64, dma_ns: u64) -> ChunkOp {
        ChunkOp { link_ns, dma_ns }
    }

    fn job(inputs: Vec<ChunkOp>, outputs: Vec<ChunkOp>, compute: u64, iters: usize) -> PipelineJob {
        PipelineJob {
            binary: Vec::new(),
            inputs,
            outputs,
            compute_cold_ns: compute,
            compute_warm_ns: compute,
            iterations: iters,
            sensor_ns: None,
        }
    }

    #[test]
    fn chunk_lens_cover_the_payload() {
        assert_eq!(chunk_lens(1000, 512), vec![512, 488]);
        assert_eq!(chunk_lens(512, 512), vec![512]);
        assert_eq!(
            chunk_lens(0, 512),
            Vec::<usize>::new(),
            "empty map clause: no chunks"
        );
        assert_eq!(chunk_lens(5, 2), vec![2, 2, 1]);
    }

    #[test]
    fn normalization_clamps_the_knobs() {
        let n = PipelineConfig {
            enabled: true,
            chunk_bytes: 1,
            window: 99,
        }
        .normalized();
        assert_eq!(n.chunk_bytes, MIN_CHUNK_BYTES);
        assert_eq!(n.window, ulp_link::MAX_WINDOW);
        let d = PipelineConfig::default();
        assert!(!d.enabled);
        assert_eq!(d.normalized(), d, "defaults are already legal");
    }

    #[test]
    fn link_of_next_chunk_overlaps_dma_of_previous() {
        // Two chunks, window 2: link(c1) runs while dma(c0) moves.
        let mut s = Schedule::new(2);
        let done = schedule_job(&mut s, &job(vec![op(100, 40), op(100, 40)], vec![], 10, 1));
        // link: 0..100, 100..200; dma(c0): 100..140 (overlaps link c1),
        // dma(c1): 200..240; compute: 240..250.
        assert_eq!(done, 250);
        let o = s.overlap();
        assert_eq!(o.link_dma, 40, "dma of chunk 0 under link of chunk 1");
        assert!(o.check().is_ok(), "{:?}", o.check());
    }

    #[test]
    fn window_one_serializes_chunks() {
        // With a single staging slot, chunk k+1's link shift waits for
        // chunk k's DMA: no link∥dma overlap at all.
        let mut s = Schedule::new(1);
        let done = schedule_job(&mut s, &job(vec![op(100, 40), op(100, 40)], vec![], 10, 1));
        assert_eq!(done, 290);
        assert_eq!(s.overlap().link_dma, 0);
    }

    #[test]
    fn transfers_of_next_iteration_overlap_compute() {
        // One chunk in, long compute, two iterations: the refill for
        // iteration 1 streams entirely under iteration 0's compute.
        let mut s = Schedule::new(4);
        let done = schedule_job(&mut s, &job(vec![op(100, 50)], vec![], 1000, 2));
        // in(0): link 0..100, dma 100..150; compute(0) 150..1150;
        // in(1): link 100..200 (tail 150..200 under compute), dma
        // 200..250; compute(1) 1150..2150.
        assert_eq!(done, 2150);
        let o = s.overlap();
        assert_eq!(o.link_core, 50);
        assert_eq!(o.dma_core, 50);
        assert!(o.check().is_ok());
    }

    #[test]
    fn pipelined_never_beats_the_critical_path() {
        // The schedule can never finish before either the pure compute
        // time or the pure link time — both are lower bounds.
        for window in [1, 2, 4, 8] {
            for iters in [1, 2, 5] {
                let inputs = vec![op(70, 30); 3];
                let outputs = vec![op(50, 20); 2];
                let mut s = Schedule::new(window);
                let done = schedule_job(&mut s, &job(inputs, outputs, 400, iters));
                let link_total: u64 = (3 * 70 + 2 * 50) * iters as u64;
                let core_total: u64 = 400 * iters as u64;
                assert!(done >= link_total.max(core_total), "w={window} it={iters}");
                assert!(s.overlap().check().is_ok());
            }
        }
    }

    #[test]
    fn double_buffer_dependencies_hold() {
        // Input refill for iteration i+1 cannot start before compute i-1
        // released the buffer set: with compute much longer than the
        // transfers, iteration i's inputs finish before compute(i-1) even
        // starts... which the dependency forbids. Check the schedule is
        // still correct by total time: iters × compute dominates.
        let mut s = Schedule::new(8);
        let iters = 6;
        let done = schedule_job(
            &mut s,
            &job(vec![op(10, 5)], vec![op(5, 10)], 10_000, iters),
        );
        // Fill (15 ns) + 6 × 10 µs of compute + final drain (15 ns); every
        // transfer in between hides under compute.
        assert_eq!(done, 15 + 10_000 * iters as u64 + 15);
        let o = s.overlap();
        assert!(o.link_core > 0 && o.dma_core > 0);
    }

    #[test]
    fn sensor_fill_occupies_dma_not_link() {
        let mut s = Schedule::new(4);
        let mut j = job(vec![], vec![op(50, 20)], 100, 2);
        j.sensor_ns = Some(300);
        let _ = schedule_job(&mut s, &j);
        let o = s.overlap();
        assert_eq!(o.link_busy, 2 * 50, "only outputs touch the link");
        assert!(o.dma_busy >= 2 * 300 + 2 * 20);
    }

    #[test]
    fn queue_chaining_shares_the_resources() {
        // A second job scheduled into the same Schedule starts its link
        // work while the first job's compute still runs.
        let mut s = Schedule::new(4);
        let j = job(vec![op(100, 10)], vec![], 10_000, 1);
        let first_done = schedule_job(&mut s, &j);
        let second_done = schedule_job(&mut s, &j);
        // Job 2's input (110 ns) hides entirely under job 1's compute;
        // only its compute extends the makespan.
        assert_eq!(second_done, first_done + 10_000);
        assert!(s.overlap().link_core > 0);
    }

    #[test]
    fn overlap_counters_are_exact_on_a_hand_built_schedule() {
        let mut s = Schedule::new(2);
        // link 0..100; dma 100..160; core 120..220 (overlaps dma 40 ns).
        let done = s.chunk_in(op(100, 60), 0);
        let _ = s.compute(100, 120);
        assert_eq!(done, 160);
        let o = s.overlap();
        assert_eq!(o.link_busy, 100);
        assert_eq!(o.dma_busy, 60);
        assert_eq!(o.core_busy, 100);
        assert_eq!(o.link_dma, 0);
        assert_eq!(o.link_core, 0);
        assert_eq!(o.dma_core, 40);
        assert_eq!(o.triple, 0);
        assert_eq!(o.span, 220);
        assert_eq!(o.chunks, 1);
    }

    #[test]
    fn schedules_are_deterministic() {
        let build = || {
            let mut s = Schedule::new(3);
            let j = job(vec![op(70, 30), op(70, 30)], vec![op(40, 25)], 500, 4);
            let done = schedule_job(&mut s, &j);
            (done, s.overlap())
        };
        assert_eq!(build(), build());
    }
}
