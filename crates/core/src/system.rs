//! The coupled heterogeneous system: host MCU + SPI link + PULP cluster.

use std::error::Error;
use std::fmt;

use ulp_cluster::{Cluster, ClusterActivity, ClusterConfig, L2_BASE};
use ulp_kernels::runner::MAX_KERNEL_CYCLES;
use ulp_kernels::{BufferInit, KernelBuild};
use ulp_link::{
    EocOutcome, FaultConfig, FaultInjector, FaultStats, GpioEvent, SpiLink, SpiWidth, TxOutcome,
    FRAME_OVERHEAD,
};
use ulp_mcu::wfe::{wfe_wait_traced, WakeReason};
use ulp_mcu::{datasheet, Mcu, McuDevice};
use ulp_power::PulpPowerModel;
use ulp_trace::{Component, EventKind, Overlap, PhaseKind, Tracer};

use crate::pipeline::{self, ChunkOp, PipelineConfig, PipelineJob, Schedule};
use crate::queue::{OffloadQueue, QueueReport};
use crate::region::{MapDir, TargetRegion};

/// How the serial link is clocked (paper §V discusses all three).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LinkClocking {
    /// The prototype's scheme: `f_spi = f_mcu / prescaler`. Lowering the
    /// MCU clock to free envelope power also throttles the link — the
    /// root cause of the Fig. 5b plateaus.
    McuDivided,
    /// DVFS boost: "the MCU frequency might be raised for enough time to
    /// efficiently perform the data exchange" (§IV-B). During transfer
    /// phases the MCU clocks at `mcu_hz` (and pays run power at that
    /// clock); compute phases keep the configured frequency.
    BoostedMcu {
        /// Temporary MCU clock during transfers.
        mcu_hz: f64,
    },
    /// The §V wish: "a low-power, high-throughput SPI link that is not
    /// tied to the MCU core frequency". The link runs at its own clock;
    /// the MCU stays at its configured frequency while managing the DMA.
    Independent {
        /// The link's own SPI clock.
        spi_hz: f64,
    },
}

/// Static configuration of a heterogeneous system.
#[derive(Clone, Debug)]
pub struct HetSystemConfig {
    /// Host device (datasheet model).
    pub mcu: McuDevice,
    /// Host clock frequency.
    pub mcu_freq_hz: f64,
    /// Serial link width.
    pub link_width: SpiWidth,
    /// SPI clock prescaler from the host clock.
    pub link_prescaler: u32,
    /// Link clock derivation scheme.
    pub link_clocking: LinkClocking,
    /// Bandwidth of the optional direct sensor→accelerator interface
    /// (bytes/s), used when [`OffloadOptions::sensor_direct`] is set. A
    /// parallel camera-style interface: 8 bits at ~10 MHz.
    pub sensor_bandwidth: f64,
    /// Accelerator cluster configuration.
    pub cluster: ClusterConfig,
    /// Accelerator supply voltage (0.5–1.0 V).
    pub pulp_vdd: f64,
    /// Accelerator clock frequency (must not exceed `fmax(vdd)`).
    pub pulp_freq_hz: f64,
    /// Accelerator power model.
    pub power: PulpPowerModel,
    /// Link/event-wire fault model (default: fault-free). When inactive the
    /// resilience machinery is bypassed entirely and every figure is
    /// bit-identical to the fault-free simulation.
    pub fault: FaultConfig,
}

impl HetSystemConfig {
    /// The clock that drives the SPI shifter under the configured
    /// link-clocking scheme, expressed as the equivalent MCU core clock
    /// that [`SpiLink::transfer_seconds`] expects (the link divides by
    /// the prescaler internally). This is the figure a serving layer
    /// needs to price frame retransmissions without instantiating a
    /// [`HetSystem`].
    #[must_use]
    pub fn link_drive_hz(&self) -> f64 {
        match self.link_clocking {
            LinkClocking::McuDivided => self.mcu_freq_hz,
            LinkClocking::BoostedMcu { mcu_hz } => mcu_hz,
            LinkClocking::Independent { spi_hz } => spi_hz * f64::from(self.link_prescaler),
        }
    }
}

impl Default for HetSystemConfig {
    /// The paper's prototype shape: STM32-L476 host at 16 MHz, QSPI link,
    /// quad-core PULP at 0.65 V.
    fn default() -> Self {
        let power = PulpPowerModel::pulp3();
        let vdd = 0.65;
        let freq = power.fmax_hz(vdd);
        HetSystemConfig {
            mcu: datasheet::stm32l476(),
            mcu_freq_hz: 16.0e6,
            link_width: SpiWidth::Quad,
            link_prescaler: 2,
            link_clocking: LinkClocking::McuDivided,
            sensor_bandwidth: 10.0e6,
            cluster: ClusterConfig::default(),
            pulp_vdd: vdd,
            pulp_freq_hz: freq,
            power,
            fault: FaultConfig::default(),
        }
    }
}

/// Recovery policy of the offload runtime: how hard to fight the link and
/// the accelerator before giving up.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OffloadPolicy {
    /// Retransmissions per frame (and restart attempts per hung run)
    /// before the offload is declared unrecoverable. Zero disables
    /// recovery: the first CRC error surfaces as
    /// [`OffloadError::CrcMismatch`].
    pub max_retries: u32,
    /// Host cycles to pause before the first retransmission.
    pub backoff_cycles: u64,
    /// Double the pause after every failed attempt (bounded exponential
    /// backoff); otherwise the pause is constant.
    pub exponential_backoff: bool,
    /// Host-side watchdog armed before each WFE sleep, in host cycles.
    /// `0` selects the automatic deadline: 4× the expected compute time
    /// (but at least 1000 cycles), so healthy runs never trip it.
    pub watchdog_cycles: u64,
    /// On an unrecoverable offload failure, run the remaining iterations
    /// on the host instead of returning an error (requires
    /// [`HetSystem::offload_with_fallback`], which knows the host build).
    pub fallback_to_host: bool,
}

impl Default for OffloadPolicy {
    fn default() -> Self {
        OffloadPolicy {
            max_retries: 3,
            backoff_cycles: 64,
            exponential_backoff: true,
            watchdog_cycles: 0,
            fallback_to_host: true,
        }
    }
}

impl OffloadPolicy {
    /// Backoff pause (host cycles) before retransmission `attempt`
    /// (0-based).
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        if self.exponential_backoff {
            self.backoff_cycles
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        } else {
            self.backoff_cycles
        }
    }
}

/// Error raised by the offload runtime.
#[derive(Debug)]
pub enum OffloadError {
    /// The kernel build targets the host memory map, not the accelerator.
    NotAccelBuild {
        /// The offending kernel name.
        kernel: String,
    },
    /// The accelerator faulted or timed out.
    Cluster(ulp_cluster::ClusterError),
    /// Device results disagree with the kernel's golden reference.
    OutputMismatch(Vec<String>),
    /// Host execution failed (host-side comparison runs).
    Host(ulp_mcu::host::McuError),
    /// A frame failed its CRC check with recovery disabled
    /// (`max_retries == 0`).
    CrcMismatch {
        /// Size of the offending frame on the wire (payload + overhead).
        frame_bytes: usize,
    },
    /// A frame could not be delivered within the retry budget.
    RetriesExhausted {
        /// Transmission attempts made (initial + retries).
        attempts: u32,
    },
    /// The end-of-computation event never arrived: the watchdog fired on
    /// every restart attempt and no host fallback was available.
    WatchdogTimeout {
        /// Armed watchdog deadline, in host cycles.
        watchdog_cycles: u64,
        /// Runs attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::NotAccelBuild { kernel } => {
                write!(
                    f,
                    "kernel {kernel} was not built for the accelerator memory map"
                )
            }
            OffloadError::Cluster(e) => write!(f, "accelerator failed: {e}"),
            OffloadError::OutputMismatch(m) => {
                write!(f, "device results differ from reference: {}", m.join("; "))
            }
            OffloadError::Host(e) => write!(f, "host execution failed: {e}"),
            OffloadError::CrcMismatch { frame_bytes } => {
                write!(
                    f,
                    "CRC mismatch on a {frame_bytes}-byte frame (retries disabled)"
                )
            }
            OffloadError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "frame undeliverable after {attempts} transmission attempts"
                )
            }
            OffloadError::WatchdogTimeout {
                watchdog_cycles,
                attempts,
            } => write!(
                f,
                "end-of-computation event missing: watchdog ({watchdog_cycles} host cycles) \
                 tripped on all {attempts} attempts"
            ),
        }
    }
}

impl Error for OffloadError {}

impl From<ulp_cluster::ClusterError> for OffloadError {
    fn from(e: ulp_cluster::ClusterError) -> Self {
        OffloadError::Cluster(e)
    }
}

impl From<ulp_mcu::host::McuError> for OffloadError {
    fn from(e: ulp_mcu::host::McuError) -> Self {
        OffloadError::Host(e)
    }
}

/// Options of one offload invocation.
#[derive(Clone, Copy, Debug)]
pub struct OffloadOptions {
    /// Kernel executions per code offload ("benchmark iterations per
    /// offload", Fig. 5b's x axis).
    pub iterations: usize,
    /// Overlap data transfers with computation (double buffering).
    pub double_buffer: bool,
    /// Re-send the binary even if it is already resident.
    pub force_reload: bool,
    /// Route the per-iteration *input* data straight from the sensor into
    /// the accelerator memory instead of over the coupling link — the
    /// paper's §V variation: "bring data from the sensor directly to the
    /// internal memory of the accelerator … reduces the pressure on the
    /// coupling link". Results still return over the link.
    pub sensor_direct: bool,
    /// Run a concurrent task on the host while the accelerator computes
    /// (paper §V: "an additional, separate task to be performed on the
    /// host at the same time"). The host then draws run power instead of
    /// sleeping during the compute phase, and the report exposes the host
    /// cycles gained.
    pub host_task: bool,
    /// Recovery policy when faults are injected; irrelevant (and free) on a
    /// fault-free link.
    pub policy: OffloadPolicy,
    /// The pipelined offload engine: chunk `map` payloads and
    /// double-buffer them through the TCDM so link, cluster DMA and cores
    /// overlap (see [`crate::pipeline`]). Disabled by default — every
    /// serialized figure stays bit-identical — and adopted only when the
    /// pipelined schedule is strictly shorter, so it can never lose.
    pub pipeline: PipelineConfig,
}

impl Default for OffloadOptions {
    fn default() -> Self {
        OffloadOptions {
            iterations: 1,
            double_buffer: false,
            force_reload: false,
            sensor_direct: false,
            host_task: false,
            policy: OffloadPolicy::default(),
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Measured offload cost parameters of a kernel: everything
/// [`HetSystem::predict`] needs to evaluate an operating point without
/// re-simulating the cluster.
#[derive(Clone, Debug)]
pub struct OffloadCost {
    /// Kernel name.
    pub kernel: String,
    /// One-time program offload payload (text + rodata + constants).
    pub offload_bytes: usize,
    /// Per-iteration host→device frame payloads (one per `map(to)` buffer).
    pub input_frames: Vec<usize>,
    /// Per-iteration device→host frame payloads (one per `map(from)`).
    pub output_frames: Vec<usize>,
    /// Accelerator cycles with a cold instruction cache.
    pub cycles_cold: u64,
    /// Accelerator cycles in steady state.
    pub cycles_warm: u64,
    /// Cluster activity of the steady-state run.
    pub activity: ClusterActivity,
}

/// One job of a planned (not executed) queue: a measured cost, the
/// invocation options, and whether the one-time program offload is paid
/// by this job. Input to [`HetSystem::plan_queue`].
#[derive(Clone, Copy, Debug)]
pub struct PlannedJob<'a> {
    /// Measured cost parameters of the kernel.
    pub cost: &'a OffloadCost,
    /// Invocation options (the planner forces `pipeline` to the queue's).
    pub opts: OffloadOptions,
    /// True when the program binary must be shipped before this job.
    pub ship_binary: bool,
}

/// What resilience cost on top of the healthy offload: recovery events and
/// the extra wall-clock / energy they charged. All-zero on a fault-free
/// link, which keeps every fault-free figure bit-identical.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ResilienceStats {
    /// Frames retransmitted after a detected corruption or drop.
    pub retransmissions: u64,
    /// Corrupted/truncated frames the CRC-16 caught.
    pub crc_errors_detected: u64,
    /// Corrupted frames whose damage aliased the CRC and went through
    /// undetected (probability 2⁻¹⁶ per corrupted frame).
    pub crc_errors_escaped: u64,
    /// Frames lost outright (no bytes arrived; the sender timed out
    /// waiting for the acknowledgement).
    pub frames_dropped: u64,
    /// WFE sleeps ended by the watchdog instead of the event wire.
    pub watchdog_trips: u64,
    /// Host cycles spent in backoff pauses between retransmissions.
    pub backoff_cycles: u64,
    /// Wall-clock seconds of recovery work (retransmissions, backoff,
    /// timeout windows, late events) added to the healthy offload time.
    pub extra_seconds: f64,
    /// Energy of that recovery work, across host, accelerator and link.
    pub extra_energy_joules: f64,
    /// The offload was abandoned and remaining iterations ran on the host.
    pub fell_back_to_host: bool,
    /// Iterations the host fallback covered.
    pub fallback_iterations: u64,
    /// Host wall-clock seconds of the fallback execution.
    pub fallback_seconds: f64,
    /// Host energy of the fallback execution.
    pub fallback_energy_joules: f64,
}

impl ResilienceStats {
    /// True if any recovery activity (or fallback) happened at all.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != ResilienceStats::default()
    }
}

/// Timing and energy breakdown of one offload invocation.
#[derive(Clone, Debug)]
pub struct OffloadReport {
    /// Kernel executions performed.
    pub iterations: usize,
    /// Seconds spent shipping the binary (zero if it was resident).
    pub binary_seconds: f64,
    /// Seconds of input transfers (all iterations).
    pub input_seconds: f64,
    /// Seconds of output transfers (all iterations).
    pub output_seconds: f64,
    /// Seconds of accelerator compute (all iterations).
    pub compute_seconds: f64,
    /// Seconds of GPIO synchronization overhead.
    pub sync_seconds: f64,
    /// Seconds hidden by double buffering (subtracted from the total).
    pub overlapped_seconds: f64,
    /// Accelerator cycles of the first (cold instruction cache) run.
    pub cycles_cold: u64,
    /// Accelerator cycles of steady-state runs.
    pub cycles_warm: u64,
    /// Cluster activity of the steady-state run (power-model input).
    pub activity: ClusterActivity,
    /// Host energy (active during transfers, asleep during compute).
    pub mcu_energy_joules: f64,
    /// Accelerator energy (active compute + idle leakage).
    pub pulp_energy_joules: f64,
    /// Link driver energy.
    pub link_energy_joules: f64,
    /// Host cycles available to a concurrent task during accelerator
    /// compute (zero unless [`OffloadOptions::host_task`] was set).
    pub host_task_cycles: u64,
    /// Recovery activity and its cost (all-zero on a fault-free link).
    pub resilience: ResilienceStats,
    /// Concurrency accounting of the pipelined engine: busy time per
    /// offload resource (link, cluster DMA, cores) and their pairwise /
    /// triple overlap windows. All-zero unless
    /// [`OffloadOptions::pipeline`] is enabled — the phase and energy
    /// fields above are *never* altered by pipelining, which only grows
    /// [`OffloadReport::overlapped_seconds`].
    pub overlap: Overlap,
}

impl OffloadReport {
    /// End-to-end wall-clock duration, including recovery and fallback
    /// time (both zero on a fault-free link).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.binary_seconds
            + self.input_seconds
            + self.output_seconds
            + self.compute_seconds
            + self.sync_seconds
            - self.overlapped_seconds
            + self.resilience.extra_seconds
            + self.resilience.fallback_seconds
    }

    /// Total energy over both dies and the link, including recovery and
    /// fallback energy (both zero on a fault-free link).
    #[must_use]
    pub fn total_energy_joules(&self) -> f64 {
        self.mcu_energy_joules
            + self.pulp_energy_joules
            + self.link_energy_joules
            + self.resilience.extra_energy_joules
            + self.resilience.fallback_energy_joules
    }

    /// Efficiency w.r.t. the ideal accelerator (compute only, no offload
    /// cost) — the y axis of the paper's Fig. 5b.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.compute_seconds / self.total_seconds()
    }
}

/// Result of running a kernel on the host alone (comparison baseline).
#[derive(Clone, Copy, Debug)]
pub struct HostReport {
    /// Host cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured host frequency.
    pub seconds: f64,
    /// Host energy.
    pub energy_joules: f64,
}

/// The coupled MCU + link + accelerator platform.
///
/// See the [crate example](crate) for typical use.
#[derive(Clone, Debug)]
pub struct HetSystem {
    config: HetSystemConfig,
    cluster: Cluster,
    link: SpiLink,
    resident_kernel: Option<String>,
    injector: FaultInjector,
    tracer: Tracer,
    engine: ulp_cluster::Engine,
}

impl HetSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator frequency exceeds `fmax` at the chosen
    /// supply, or the host frequency exceeds the device maximum.
    #[must_use]
    pub fn new(config: HetSystemConfig) -> Self {
        assert!(
            config.pulp_freq_hz <= config.power.fmax_hz(config.pulp_vdd) * 1.0001,
            "accelerator cannot reach {:.1} MHz at {:.2} V",
            config.pulp_freq_hz / 1e6,
            config.pulp_vdd
        );
        assert!(config.mcu_freq_hz <= config.mcu.fmax_hz * 1.0001);
        let cluster = Cluster::new(config.cluster);
        let link = SpiLink::new(config.link_width, config.link_prescaler);
        let injector = FaultInjector::new(config.fault);
        HetSystem {
            config,
            cluster,
            link,
            resident_kernel: None,
            injector,
            tracer: Tracer::disabled(),
            engine: ulp_cluster::default_engine(),
        }
    }

    /// Attaches a structured event tracer to the whole platform: the
    /// cluster (cores, TCDM, DMA, I$), the SPI link, and the host offload
    /// phases. A disabled tracer (the default) detaches instrumentation;
    /// every report stays bit-identical either way.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.cluster.set_tracer(tracer.clone());
        self.link.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The tracer currently attached (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Selects the execution engine platform-wide: the cluster's
    /// scheduling loop and the host MCU's step loop (applied to the fresh
    /// MCU each [`HetSystem::run_on_host`] builds). All engines produce
    /// bit-identical reports; see [`ulp_cluster::set_default_engine`].
    pub fn set_engine(&mut self, engine: ulp_cluster::Engine) {
        self.engine = engine;
        self.cluster.set_engine(engine);
    }

    /// The execution engine this system uses.
    #[must_use]
    pub fn engine(&self) -> ulp_cluster::Engine {
        self.engine
    }

    /// Compatibility shim for the original two-engine knob: `true` selects
    /// the fastest batching engine, `false` the reference scheduler.
    /// Prefer [`HetSystem::set_engine`].
    pub fn set_turbo(&mut self, on: bool) {
        self.set_engine(if on {
            ulp_cluster::Engine::Epoch
        } else {
            ulp_cluster::Engine::Reference
        });
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &HetSystemConfig {
        &self.config
    }

    /// Replaces the fault model (resetting injector statistics and the
    /// fault stream).
    pub fn set_fault_config(&mut self, fault: FaultConfig) {
        self.config.fault = fault;
        self.injector = FaultInjector::new(fault);
    }

    /// Raw per-fault-type injector counters accumulated so far.
    #[must_use]
    pub fn fault_stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// The clock feeding the SPI shifter and the MCU clock (and hence
    /// power) in effect during transfer phases, per the link-clocking
    /// scheme.
    fn link_clocks(&self) -> (f64, f64) {
        let mcu_hz = self.config.mcu_freq_hz;
        let transfer_mcu_hz = match self.config.link_clocking {
            LinkClocking::McuDivided => mcu_hz,
            LinkClocking::BoostedMcu { mcu_hz: boost } => boost,
            LinkClocking::Independent { .. } => mcu_hz,
        };
        (self.config.link_drive_hz(), transfer_mcu_hz)
    }

    /// Power drawn by the whole platform while the accelerator computes
    /// and the host sleeps (the Fig. 5a steady state).
    #[must_use]
    pub fn compute_phase_power_watts(&self, activity: &ClusterActivity) -> f64 {
        self.config
            .power
            .total_power_w(self.config.pulp_freq_hz, self.config.pulp_vdd, activity)
            + self.config.mcu.sleep_power_w()
    }

    /// Measures a kernel's offload cost parameters by simulating it on the
    /// cluster: one cold-instruction-cache run, one warm steady-state run,
    /// with results verified against the golden reference.
    ///
    /// The returned [`OffloadCost`] feeds [`HetSystem::predict`], letting
    /// amortization sweeps (Fig. 5b) evaluate hundreds of operating points
    /// without re-simulating.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError`] if the build does not target the
    /// accelerator, the cluster faults, or results mismatch the reference.
    pub fn measure_cost(&mut self, build: &KernelBuild) -> Result<OffloadCost, OffloadError> {
        // Accelerator builds lay their buffers out in the TCDM window.
        let tcdm = 0x1000_0000u32..0x1100_0000u32;
        if build.buffers.iter().any(|b| !tcdm.contains(&b.addr)) {
            return Err(OffloadError::NotAccelBuild {
                kernel: build.name.clone(),
            });
        }
        let region = TargetRegion::from_kernel(build);
        self.cluster.load_binary(&build.program, L2_BASE)?;

        let run_once = |cluster: &mut Cluster| -> Result<(u64, ClusterActivity), OffloadError> {
            for buf in &build.buffers {
                match &buf.init {
                    BufferInit::Data(d) => cluster.write_tcdm(buf.addr, d)?,
                    BufferInit::Zero => cluster.write_tcdm(buf.addr, &vec![0u8; buf.len])?,
                }
            }
            cluster.start(L2_BASE, &build.args, 0);
            let res = cluster.run_until_halt(MAX_KERNEL_CYCLES)?;
            Ok((res.eoc_at.unwrap_or(res.end_time), res.activity))
        };
        let (cycles_cold, _) = run_once(&mut self.cluster)?;
        let (cycles_warm, activity) = run_once(&mut self.cluster)?;

        let mut mismatches = Vec::new();
        for (idx, expected) in &build.expected {
            let buf = &build.buffers[*idx];
            let actual = self.cluster.read_tcdm(buf.addr, buf.len)?;
            if &actual != expected {
                mismatches.push(buf.name.to_owned());
            }
        }
        if !mismatches.is_empty() {
            return Err(OffloadError::OutputMismatch(mismatches));
        }

        Ok(OffloadCost {
            kernel: build.name.clone(),
            offload_bytes: region.offload_bytes(),
            // Zero-length map clauses are dropped at the source: they
            // would otherwise travel as header-only frames and reach the
            // cluster DMA as empty bursts — an empty map must be a no-op
            // end to end.
            input_frames: region
                .maps()
                .iter()
                .filter(|m| m.dir == MapDir::To && m.len > 0)
                .map(|m| m.len)
                .collect(),
            output_frames: region
                .maps()
                .iter()
                .filter(|m| m.dir == MapDir::From && m.len > 0)
                .map(|m| m.len)
                .collect(),
            cycles_cold,
            cycles_warm,
            activity,
        })
    }

    /// Assembles the timing and energy of an offload invocation from a
    /// measured [`OffloadCost`] — a pure model evaluation, no simulation.
    ///
    /// `include_binary` selects whether the program offload is paid (it is
    /// skipped when the binary is already resident).
    #[must_use]
    pub fn predict(
        &self,
        cost: &OffloadCost,
        opts: &OffloadOptions,
        include_binary: bool,
    ) -> OffloadReport {
        let iterations = opts.iterations.max(1);
        let mcu_hz = self.config.mcu_freq_hz;
        let f_pulp = self.config.pulp_freq_hz;

        let (spi_drive_hz, transfer_mcu_hz) = self.link_clocks();

        // Each mapped buffer travels in one Frame (10-byte header).
        let binary_seconds = if include_binary {
            self.link
                .transfer_seconds(cost.offload_bytes + 10, spi_drive_hz)
        } else {
            0.0
        };
        let input_bytes: usize = cost.input_frames.iter().sum();
        let t_in: f64 = if opts.sensor_direct {
            // Inputs stream from the sensor straight into the accelerator
            // memory over the dedicated interface; the link is untouched.
            input_bytes as f64 / self.config.sensor_bandwidth
        } else {
            cost.input_frames
                .iter()
                .map(|len| self.link.transfer_seconds(len + 10, spi_drive_hz))
                .sum()
        };
        let t_out: f64 = cost
            .output_frames
            .iter()
            .map(|len| self.link.transfer_seconds(len + 10, spi_drive_hz))
            .sum();

        let t_compute_cold = cost.cycles_cold as f64 / f_pulp;
        let t_compute_warm = cost.cycles_warm as f64 / f_pulp;
        let compute_seconds = t_compute_cold + (iterations - 1) as f64 * t_compute_warm;
        let input_seconds = t_in * iterations as f64;
        let output_seconds = t_out * iterations as f64;
        // Two GPIO edges per iteration, ~10 host cycles each.
        let sync_seconds = iterations as f64 * 20.0 / mcu_hz;

        // Double buffering hides min(compute, in+out) of each steady
        // iteration (transfers for iteration i+1 and results of i-1 move
        // while i computes); the pipeline fill (first input) and drain
        // (last output) remain exposed.
        let legacy_overlap = if opts.double_buffer && iterations > 1 {
            (t_in + t_out).min(t_compute_warm) * (iterations - 1) as f64
        } else {
            0.0
        };

        // The pipelined engine: schedule the same work chunked and
        // double-buffered, and adopt whichever hides more — the phase
        // fields above stay at their serialized values either way, so a
        // pipelined report differs from its serialized twin only in
        // `overlapped_seconds` and `overlap`.
        let pipe = opts.pipeline.normalized();
        let (overlapped_seconds, overlap) = if pipe.enabled {
            let serial_core = binary_seconds + input_seconds + output_seconds + compute_seconds;
            let job = self.pipeline_job(cost, opts, include_binary, pipe);
            let mut sched = Schedule::new(pipe.window);
            pipeline::schedule_job(&mut sched, &job);
            let gain = serial_core - sched.makespan() as f64 / 1e9;
            let mut o = sched.overlap();
            o.engaged = gain > legacy_overlap && gain > 0.0;
            (legacy_overlap.max(gain).max(0.0), o)
        } else {
            (legacy_overlap, Overlap::default())
        };

        // ---- energy ledger ----------------------------------------------
        // Phases the MCU actively drives; with a direct sensor interface
        // the input phase does not involve the host at all.
        let mcu_driven_transfers = binary_seconds
            + if opts.sensor_direct {
                0.0
            } else {
                input_seconds
            }
            + output_seconds
            + sync_seconds;
        let mcu_compute_phase_power = if opts.host_task {
            self.config.mcu.run_power_w(mcu_hz)
        } else {
            self.config.mcu.sleep_power_w()
        };
        let mcu_energy = self.config.mcu.run_power_w(transfer_mcu_hz) * mcu_driven_transfers
            + mcu_compute_phase_power * compute_seconds;
        let host_task_cycles = if opts.host_task {
            (compute_seconds * mcu_hz) as u64
        } else {
            0
        };
        let pulp_compute_energy =
            self.config
                .power
                .total_power_w(f_pulp, self.config.pulp_vdd, &cost.activity)
                * compute_seconds;
        let pulp_idle_energy =
            self.config.power.leakage_w(self.config.pulp_vdd) * mcu_driven_transfers;
        let link_data_bytes: usize = if opts.sensor_direct { 0 } else { input_bytes }
            + cost.output_frames.iter().sum::<usize>();
        let link_bytes = if include_binary {
            cost.offload_bytes as f64
        } else {
            0.0
        } + iterations as f64 * link_data_bytes as f64;
        let link_energy = link_bytes * 8.0 * SpiLink::DEFAULT_ENERGY_PER_BIT;

        OffloadReport {
            iterations,
            binary_seconds,
            input_seconds,
            output_seconds,
            compute_seconds,
            sync_seconds,
            overlapped_seconds,
            cycles_cold: cost.cycles_cold,
            cycles_warm: cost.cycles_warm,
            activity: cost.activity.clone(),
            mcu_energy_joules: mcu_energy,
            pulp_energy_joules: pulp_compute_energy + pulp_idle_energy,
            link_energy_joules: link_energy,
            host_task_cycles,
            resilience: ResilienceStats::default(),
            overlap,
        }
    }

    /// Converts a measured [`OffloadCost`] into the pipelined engine's
    /// nanosecond-domain job description: every `map` payload chunked to
    /// `pipe.chunk_bytes`, each chunk costed on the link (with its own
    /// 10-byte frame header) and on the cluster DMA
    /// (`setup + ceil(len/4)` cycles at the accelerator clock).
    fn pipeline_job(
        &self,
        cost: &OffloadCost,
        opts: &OffloadOptions,
        include_binary: bool,
        pipe: PipelineConfig,
    ) -> PipelineJob {
        let (spi_drive_hz, _) = self.link_clocks();
        let f_pulp = self.config.pulp_freq_hz;
        let dma_setup = u64::from(self.config.cluster.dma_setup);
        let chunked = |lens: &[usize]| -> Vec<ChunkOp> {
            lens.iter()
                .flat_map(|&len| pipeline::chunk_lens(len, pipe.chunk_bytes))
                .map(|c| ChunkOp {
                    link_ns: pipeline::ns(
                        self.link.transfer_seconds(c + FRAME_OVERHEAD, spi_drive_hz),
                    ),
                    dma_ns: pipeline::ns((dma_setup + (c as u64).div_ceil(4)) as f64 / f_pulp),
                })
                .collect()
        };
        let input_bytes: usize = cost.input_frames.iter().sum();
        PipelineJob {
            binary: if include_binary {
                chunked(&[cost.offload_bytes])
            } else {
                Vec::new()
            },
            inputs: if opts.sensor_direct {
                Vec::new()
            } else {
                chunked(&cost.input_frames)
            },
            outputs: chunked(&cost.output_frames),
            compute_cold_ns: pipeline::ns(cost.cycles_cold as f64 / f_pulp),
            compute_warm_ns: pipeline::ns(cost.cycles_warm as f64 / f_pulp),
            iterations: opts.iterations.max(1),
            sensor_ns: opts
                .sensor_direct
                .then(|| pipeline::ns(input_bytes as f64 / self.config.sensor_bandwidth)),
        }
    }

    /// Offloads a kernel: ships the binary if needed, then runs
    /// `iterations` executions with input/output marshalling.
    ///
    /// The first execution runs with a cold instruction cache; steady-state
    /// iterations reuse the warm timing, matching the repeated-offload
    /// scenario of Fig. 5b.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError`] if the build does not target the
    /// accelerator, the cluster faults, or results mismatch the golden
    /// reference.
    pub fn offload(
        &mut self,
        build: &KernelBuild,
        opts: &OffloadOptions,
    ) -> Result<OffloadReport, OffloadError> {
        self.offload_impl(build, None, opts)
    }

    /// Like [`HetSystem::offload`], but with a host-targeted build of the
    /// same kernel available as the degradation path: if the offload is
    /// unrecoverable (retries exhausted, watchdog timeout) and the policy
    /// allows it, the remaining iterations run on the host and the report
    /// carries the (degraded) fallback cost instead of an error.
    ///
    /// # Errors
    ///
    /// Same as [`HetSystem::offload`]; unrecoverable transport/compute
    /// failures surface as errors only when
    /// [`OffloadPolicy::fallback_to_host`] is disabled.
    pub fn offload_with_fallback(
        &mut self,
        build: &KernelBuild,
        host_build: &KernelBuild,
        opts: &OffloadOptions,
    ) -> Result<OffloadReport, OffloadError> {
        // The host baseline is only needed when faults can actually strike.
        let host = if self.injector.is_active() {
            Some(self.run_on_host(host_build)?)
        } else {
            None
        };
        self.offload_impl(build, host, opts)
    }

    fn offload_impl(
        &mut self,
        build: &KernelBuild,
        host: Option<HostReport>,
        opts: &OffloadOptions,
    ) -> Result<OffloadReport, OffloadError> {
        let cost = self.measure_cost(build)?;
        let mcu_hz = self.config.mcu_freq_hz;
        // With the pipelined engine on, every payload crosses the link as
        // a train of chunk frames; the statistics record those frames.
        let pipe = opts.pipeline.normalized();
        let send_lens = |len: usize| -> Vec<usize> {
            if pipe.enabled {
                pipeline::chunk_lens(len, pipe.chunk_bytes)
            } else if len > 0 {
                vec![len]
            } else {
                Vec::new()
            }
        };

        // Program offload (binary + constant maps), once per resident
        // kernel.
        let ship_binary =
            opts.force_reload || self.resident_kernel.as_deref() != Some(build.name.as_str());
        if ship_binary {
            for len in send_lens(cost.offload_bytes) {
                let _ = self.link.send(len + FRAME_OVERHEAD, mcu_hz);
            }
            let region = TargetRegion::from_kernel(build);
            for buf in &build.buffers {
                if let BufferInit::Data(d) = &buf.init {
                    if region
                        .maps()
                        .iter()
                        .any(|m| m.device_addr == buf.addr && m.dir == MapDir::ToOnce)
                    {
                        self.cluster.write_tcdm(buf.addr, d)?;
                    }
                }
            }
            self.resident_kernel = Some(build.name.clone());
        }
        // Record the per-iteration data transfers in the link statistics.
        for _ in 0..opts.iterations.max(1) {
            for len in &cost.input_frames {
                for chunk in send_lens(*len) {
                    let _ = self.link.send(chunk + FRAME_OVERHEAD, mcu_hz);
                }
            }
            for len in &cost.output_frames {
                for chunk in send_lens(*len) {
                    let _ = self.link.receive(chunk + FRAME_OVERHEAD, mcu_hz);
                }
            }
        }

        let result = if self.injector.is_active() {
            let result = self.offload_resilient(&cost, opts, ship_binary, host.as_ref());
            if !matches!(&result, Ok(r) if !r.resilience.fell_back_to_host) {
                // The offload did not complete on the device: the binary
                // (or its state) cannot be trusted to be resident.
                self.resident_kernel = None;
            }
            result
        } else {
            Ok(self.predict(&cost, opts, ship_binary))
        };
        if let Ok(report) = &result {
            self.emit_phases(report);
            if report.overlap.any() {
                self.tracer.set_overlap(report.overlap);
            }
        }
        result
    }

    /// Records the invocation's phase decomposition (the paper's Fig. 4/5
    /// breakdown) as sequential spans on the host timeline, then advances
    /// the host epoch past this invocation.
    fn emit_phases(&self, report: &OffloadReport) {
        if !self.tracer.is_enabled() {
            return;
        }
        let spans = [
            (PhaseKind::Binary, report.binary_seconds),
            (PhaseKind::Input, report.input_seconds),
            (PhaseKind::Compute, report.compute_seconds),
            (PhaseKind::Output, report.output_seconds),
            (PhaseKind::Sync, report.sync_seconds),
        ];
        let mut at = 0u64;
        for (phase, seconds) in spans {
            let ns = (seconds * 1e9) as u64;
            if ns > 0 {
                self.tracer
                    .emit(Component::Host, EventKind::Phase(phase), at, ns);
            }
            at += ns;
        }
        self.tracer
            .advance_host_epoch(((report.total_seconds() * 1e9) as u64).max(at));
    }

    /// Simulates one frame crossing the faulty link under the retry
    /// policy. The *first* transmission attempt is part of the healthy
    /// ledger (charged by the caller, identically to [`HetSystem::predict`]);
    /// everything here accounts only the recovery surcharge: ACK-timeout
    /// windows, backoff pauses and retransmissions.
    ///
    /// Acknowledgements themselves are free: ACK/NACK ride the existing
    /// 48-bit per-transaction turnaround phase of the full-duplex link.
    fn transport_frame(
        &mut self,
        wire_bytes: usize,
        spi_drive_hz: f64,
        run_p: f64,
        pulp_leak_p: f64,
        policy: &OffloadPolicy,
        res: &mut ResilienceStats,
    ) -> Result<(), OffloadError> {
        let mcu_hz = self.config.mcu_freq_hz;
        let t_frame = self.link.transfer_seconds(wire_bytes, spi_drive_hz);
        let e_frame = wire_bytes as f64 * 8.0 * SpiLink::DEFAULT_ENERGY_PER_BIT;
        let mut attempt: u32 = 0;
        loop {
            let outcome = self.injector.assess(wire_bytes);
            if attempt > 0 {
                // A retransmission: its full frame time and energy are
                // recovery surcharge.
                res.retransmissions += 1;
                res.extra_seconds += t_frame;
                res.extra_energy_joules += (run_p + pulp_leak_p) * t_frame + e_frame;
                if self.tracer.is_enabled() {
                    let at = (self.link.stats().busy_seconds * 1e9) as u64;
                    self.tracer.emit(
                        Component::Link,
                        EventKind::Retry { attempt },
                        at,
                        (t_frame * 1e9) as u64,
                    );
                }
            }
            match outcome {
                TxOutcome::Delivered => return Ok(()),
                TxOutcome::Corrupted { escaped: true } => {
                    // The CRC aliased: the receiver ACKs corrupt data. The
                    // transport succeeds; the damage shows up (if at all)
                    // at the output-verification layer.
                    res.crc_errors_escaped += 1;
                    return Ok(());
                }
                bad => {
                    match bad {
                        TxOutcome::Corrupted { .. } | TxOutcome::Truncated => {
                            res.crc_errors_detected += 1;
                        }
                        TxOutcome::Dropped => {
                            // No bytes arrived, so no NACK either: the
                            // sender idles one frame time before timing
                            // out on the missing acknowledgement.
                            res.frames_dropped += 1;
                            res.extra_seconds += t_frame;
                            res.extra_energy_joules += (run_p + pulp_leak_p) * t_frame;
                        }
                        TxOutcome::Delivered => unreachable!(),
                    }
                    if attempt >= policy.max_retries {
                        return Err(if policy.max_retries == 0 {
                            OffloadError::CrcMismatch {
                                frame_bytes: wire_bytes,
                            }
                        } else {
                            OffloadError::RetriesExhausted {
                                attempts: attempt + 1,
                            }
                        });
                    }
                    // Backoff pause before the retransmission: both dies
                    // idle.
                    let pause = policy.backoff_for(attempt);
                    let t_pause = pause as f64 / mcu_hz;
                    res.backoff_cycles += pause;
                    res.extra_seconds += t_pause;
                    res.extra_energy_joules +=
                        (self.config.mcu.sleep_power_w() + pulp_leak_p) * t_pause;
                    attempt += 1;
                }
            }
        }
    }

    /// The fault-aware twin of [`HetSystem::predict`]: walks the offload
    /// phase by phase, drawing transport and event-wire outcomes from the
    /// injector. Healthy phases are charged exactly as `predict` charges
    /// them; every recovery action lands in [`ResilienceStats`] on top.
    fn offload_resilient(
        &mut self,
        cost: &OffloadCost,
        opts: &OffloadOptions,
        include_binary: bool,
        host: Option<&HostReport>,
    ) -> Result<OffloadReport, OffloadError> {
        let iterations = opts.iterations.max(1);
        let policy = opts.policy;
        // With the pipelined engine on, every payload becomes a train of
        // chunk frames; each chunk is transported (and recovered)
        // individually, exactly as the selective-repeat window does on the
        // wire.
        let pipe = opts.pipeline.normalized();
        let chunks_of = |len: usize| -> Vec<usize> {
            if pipe.enabled {
                pipeline::chunk_lens(len, pipe.chunk_bytes)
            } else if len > 0 {
                vec![len]
            } else {
                Vec::new()
            }
        };
        let mcu_hz = self.config.mcu_freq_hz;
        let f_pulp = self.config.pulp_freq_hz;
        let (spi_drive_hz, transfer_mcu_hz) = self.link_clocks();
        let run_p = self.config.mcu.run_power_w(transfer_mcu_hz);
        let sleep_p = self.config.mcu.sleep_power_w();
        let mcu_compute_p = if opts.host_task {
            self.config.mcu.run_power_w(mcu_hz)
        } else {
            sleep_p
        };
        let pulp_active_p =
            self.config
                .power
                .total_power_w(f_pulp, self.config.pulp_vdd, &cost.activity);
        let pulp_leak_p = self.config.power.leakage_w(self.config.pulp_vdd);

        let t_cold = cost.cycles_cold as f64 / f_pulp;
        let t_warm = cost.cycles_warm as f64 / f_pulp;
        let wd_cycles = if policy.watchdog_cycles > 0 {
            policy.watchdog_cycles
        } else {
            // Auto: 4× the expected (cold) compute time in host cycles, so
            // a healthy run never trips it.
            ((t_cold * mcu_hz * 4.0).ceil() as u64).max(1_000)
        };

        let mut res = ResilienceStats::default();
        // Healthy ledger — accumulated to match `predict` term for term.
        let mut binary_seconds = 0.0f64;
        let mut input_seconds = 0.0f64;
        let mut output_seconds = 0.0f64;
        let mut compute_seconds = 0.0f64;
        let mut sync_seconds = 0.0f64;
        let mut completed = 0usize;
        let mut failure: Option<OffloadError> = None;

        if include_binary {
            for chunk in chunks_of(cost.offload_bytes) {
                let wire = chunk + FRAME_OVERHEAD;
                binary_seconds += self.link.transfer_seconds(wire, spi_drive_hz);
                if let Err(e) =
                    self.transport_frame(wire, spi_drive_hz, run_p, pulp_leak_p, &policy, &mut res)
                {
                    failure = Some(e);
                    break;
                }
            }
        }

        'iters: while failure.is_none() && completed < iterations {
            // -- inputs ---------------------------------------------------
            if opts.sensor_direct {
                // The dedicated sensor interface bypasses the faulty link.
                let input_bytes: usize = cost.input_frames.iter().sum();
                input_seconds += input_bytes as f64 / self.config.sensor_bandwidth;
            } else {
                for chunk in cost.input_frames.iter().flat_map(|&len| chunks_of(len)) {
                    let wire = chunk + FRAME_OVERHEAD;
                    input_seconds += self.link.transfer_seconds(wire, spi_drive_hz);
                    if let Err(e) = self.transport_frame(
                        wire,
                        spi_drive_hz,
                        run_p,
                        pulp_leak_p,
                        &policy,
                        &mut res,
                    ) {
                        failure = Some(e);
                        break 'iters;
                    }
                }
            }

            // -- compute, guarded by the WFE watchdog ---------------------
            let t_iter = if completed == 0 { t_cold } else { t_warm };
            let event_host_cycles = (t_iter * mcu_hz).ceil() as u64;
            let mut attempt: u32 = 0;
            loop {
                // Injected end-of-computation delay, in accelerator time
                // (kept separate from the cycle-quantized race so an
                // on-time event charges exactly zero surcharge).
                let (event_at, late_secs) = match self.injector.eoc() {
                    EocOutcome::OnTime => (Some(event_host_cycles), 0.0),
                    EocOutcome::Late(accel_cycles) => {
                        let secs = accel_cycles as f64 / f_pulp;
                        (
                            Some(event_host_cycles + (secs * mcu_hz).ceil() as u64),
                            secs,
                        )
                    }
                    EocOutcome::Hang => (None, 0.0),
                };
                let elapsed = binary_seconds
                    + input_seconds
                    + compute_seconds
                    + output_seconds
                    + sync_seconds
                    + res.extra_seconds;
                let wait = wfe_wait_traced(
                    event_at,
                    Some(wd_cycles),
                    &self.tracer,
                    (elapsed * 1e9) as u64,
                    mcu_hz,
                );
                match wait.woke_by {
                    WakeReason::Event => {
                        compute_seconds += t_iter;
                        // A late event extends the sleep beyond the healthy
                        // compute time; the delta is recovery surcharge
                        // (host asleep, accelerator still active).
                        if late_secs > 0.0 {
                            res.extra_seconds += late_secs;
                            res.extra_energy_joules += (mcu_compute_p + pulp_active_p) * late_secs;
                        }
                        break;
                    }
                    WakeReason::Watchdog => {
                        res.watchdog_trips += 1;
                        let window = wait.slept_seconds(mcu_hz);
                        // The whole timeout window is surcharge. A hung
                        // cluster still burns active power — unless its
                        // fetch-enable wire is stuck and it never started.
                        let pulp_p = if self.injector.wire_stuck(GpioEvent::FetchEnable) {
                            pulp_leak_p
                        } else {
                            pulp_active_p
                        };
                        res.extra_seconds += window;
                        res.extra_energy_joules += (mcu_compute_p + pulp_p) * window;
                        if attempt >= policy.max_retries {
                            failure = Some(OffloadError::WatchdogTimeout {
                                watchdog_cycles: wd_cycles,
                                attempts: attempt + 1,
                            });
                            break 'iters;
                        }
                        attempt += 1;
                    }
                }
            }
            sync_seconds += 20.0 / mcu_hz;

            // -- outputs --------------------------------------------------
            for chunk in cost.output_frames.iter().flat_map(|&len| chunks_of(len)) {
                let wire = chunk + FRAME_OVERHEAD;
                output_seconds += self.link.transfer_seconds(wire, spi_drive_hz);
                if let Err(e) =
                    self.transport_frame(wire, spi_drive_hz, run_p, pulp_leak_p, &policy, &mut res)
                {
                    failure = Some(e);
                    break 'iters;
                }
            }
            completed += 1;
        }

        // -- unrecoverable: degrade to the host or surface the error ------
        if let Some(err) = failure {
            let remaining = iterations - completed;
            match host {
                Some(h) if policy.fallback_to_host => {
                    res.fell_back_to_host = true;
                    res.fallback_iterations = remaining as u64;
                    res.fallback_seconds = h.seconds * remaining as f64;
                    res.fallback_energy_joules = h.energy_joules * remaining as f64;
                }
                _ => return Err(err),
            }
        }

        // -- healthy-ledger energy, mirroring `predict` -------------------
        let mcu_driven_transfers = binary_seconds
            + if opts.sensor_direct {
                0.0
            } else {
                input_seconds
            }
            + output_seconds
            + sync_seconds;
        let mcu_energy = run_p * mcu_driven_transfers + mcu_compute_p * compute_seconds;
        let host_task_cycles = if opts.host_task {
            (compute_seconds * mcu_hz) as u64
        } else {
            0
        };
        let pulp_energy = pulp_active_p * compute_seconds + pulp_leak_p * mcu_driven_transfers;
        let input_bytes: usize = cost.input_frames.iter().sum();
        let link_data_bytes: usize = if opts.sensor_direct { 0 } else { input_bytes }
            + cost.output_frames.iter().sum::<usize>();
        let link_bytes = if include_binary {
            cost.offload_bytes as f64
        } else {
            0.0
        } + completed as f64 * link_data_bytes as f64;
        let link_energy = link_bytes * 8.0 * SpiLink::DEFAULT_ENERGY_PER_BIT;

        // Double buffering still hides steady-state transfers behind
        // compute for the iterations that completed on the device.
        let legacy_overlap = if opts.double_buffer && completed > 1 {
            let t_in = if opts.sensor_direct {
                input_bytes as f64 / self.config.sensor_bandwidth
            } else {
                cost.input_frames
                    .iter()
                    .map(|len| {
                        self.link
                            .transfer_seconds(len + FRAME_OVERHEAD, spi_drive_hz)
                    })
                    .sum()
            };
            let t_out: f64 = cost
                .output_frames
                .iter()
                .map(|len| {
                    self.link
                        .transfer_seconds(len + FRAME_OVERHEAD, spi_drive_hz)
                })
                .sum();
            (t_in + t_out).min(t_warm) * (completed - 1) as f64
        } else {
            0.0
        };
        // The pipelined engine only claims credit for iterations that
        // actually completed on the device: its gain is measured against
        // the serial schedule of that same (chunked) work, so a partially
        // failed offload can never go overlap-negative.
        let (overlapped_seconds, overlap) = if pipe.enabled && completed > 0 {
            let mut jopts = *opts;
            jopts.iterations = completed;
            let job = self.pipeline_job(cost, &jopts, include_binary, pipe);
            let mut sched = Schedule::new(pipe.window);
            pipeline::schedule_job(&mut sched, &job);
            let gain = pipeline::serial_ns(&job).saturating_sub(sched.makespan()) as f64 / 1e9;
            let mut o = sched.overlap();
            o.engaged = gain > legacy_overlap && gain > 0.0;
            (legacy_overlap.max(gain), o)
        } else {
            (legacy_overlap, Overlap::default())
        };

        Ok(OffloadReport {
            iterations,
            binary_seconds,
            input_seconds,
            output_seconds,
            compute_seconds,
            sync_seconds,
            overlapped_seconds,
            cycles_cold: cost.cycles_cold,
            cycles_warm: cost.cycles_warm,
            activity: cost.activity.clone(),
            mcu_energy_joules: mcu_energy,
            pulp_energy_joules: pulp_energy,
            link_energy_joules: link_energy,
            host_task_cycles,
            resilience: res,
            overlap,
        })
    }

    /// Runs a host-targeted build on the MCU alone (the comparison
    /// baseline: no accelerator, no transfers).
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Host`] on host faults.
    pub fn run_on_host(&self, build: &KernelBuild) -> Result<HostReport, OffloadError> {
        let mut mcu = Mcu::new(self.config.mcu.clone(), self.config.mcu_freq_hz);
        // Epoch is a cluster-scheduler strategy; on the single-core host
        // it degenerates to micro-op block replay.
        mcu.set_microop(matches!(
            self.engine,
            ulp_cluster::Engine::Microop | ulp_cluster::Engine::Epoch
        ));
        for buf in &build.buffers {
            match &buf.init {
                BufferInit::Data(d) => mcu.write_mem(buf.addr, d)?,
                BufferInit::Zero => mcu.write_mem(buf.addr, &vec![0u8; buf.len])?,
            }
        }
        let run = mcu.run_program(&build.program, &build.args)?;
        Ok(HostReport {
            cycles: run.cycles,
            seconds: run.seconds,
            energy_joules: run.energy_joules,
        })
    }

    /// Accumulated link statistics.
    #[must_use]
    pub fn link_stats(&self) -> &ulp_link::LinkStats {
        self.link.stats()
    }

    /// Name of the kernel whose binary is currently resident on the
    /// accelerator (its next offload skips the program transfer).
    #[must_use]
    pub fn resident_kernel(&self) -> Option<&str> {
        self.resident_kernel.as_deref()
    }

    /// Runs every kernel of an [`OffloadQueue`] and pipelines their
    /// frames over the link through one shared engine schedule: the input
    /// stream of kernel *k+1* starts shifting while kernel *k* still
    /// computes, exactly as chunks pipeline within a single offload.
    ///
    /// Each per-kernel [`OffloadReport`] is exactly what
    /// [`HetSystem::offload`] would have produced with the queue's
    /// pipeline config; the [`QueueReport`] adds the cross-kernel view.
    /// With `pipe.enabled == false` (or a fault-active link, where
    /// in-flight pipelining is forfeited to keep the per-frame recovery
    /// accounting exact), the queue degrades to strictly sequential
    /// offloads and `total_seconds == serialized_seconds`.
    ///
    /// # Errors
    ///
    /// Returns the first [`OffloadError`] any queued offload raises.
    pub fn run_queue(
        &mut self,
        queue: &OffloadQueue,
        pipe: PipelineConfig,
    ) -> Result<QueueReport, OffloadError> {
        let norm = pipe.normalized();
        queue.mark_consumed();

        if self.injector.is_active() || !norm.enabled {
            let mut reports: Vec<OffloadReport> = Vec::with_capacity(queue.len());
            let mut serialized_seconds = 0.0f64;
            let mut total_seconds = 0.0f64;
            for (build, opts) in queue.jobs() {
                let mut o = *opts;
                o.pipeline = pipe;
                let r = self.offload(build, &o)?;
                serialized_seconds += r.binary_seconds
                    + r.input_seconds
                    + r.output_seconds
                    + r.compute_seconds
                    + r.sync_seconds
                    + r.resilience.extra_seconds
                    + r.resilience.fallback_seconds;
                total_seconds += r.total_seconds();
                reports.push(r);
            }
            return Ok(QueueReport {
                reports,
                serialized_seconds,
                total_seconds,
                overlap: Overlap::default(),
            });
        }

        // Execute the side effects — cost measurement on the cluster, link
        // statistics, binary residency — then hand the measured jobs to the
        // pure planner shared with the serving layer.
        let mcu_hz = self.config.mcu_freq_hz;
        let mut measured: Vec<(OffloadCost, OffloadOptions, bool)> =
            Vec::with_capacity(queue.len());
        for (build, opts) in queue.jobs() {
            let mut o = *opts;
            o.pipeline = pipe;
            let cost = self.measure_cost(build)?;
            let ship_binary =
                o.force_reload || self.resident_kernel.as_deref() != Some(build.name.as_str());
            if ship_binary {
                for len in pipeline::chunk_lens(cost.offload_bytes, norm.chunk_bytes) {
                    let _ = self.link.send(len + FRAME_OVERHEAD, mcu_hz);
                }
                let region = TargetRegion::from_kernel(build);
                for buf in &build.buffers {
                    if let BufferInit::Data(d) = &buf.init {
                        if region
                            .maps()
                            .iter()
                            .any(|m| m.device_addr == buf.addr && m.dir == MapDir::ToOnce)
                        {
                            self.cluster.write_tcdm(buf.addr, d)?;
                        }
                    }
                }
                self.resident_kernel = Some(build.name.clone());
            }
            for _ in 0..o.iterations.max(1) {
                for chunk in cost
                    .input_frames
                    .iter()
                    .flat_map(|&len| pipeline::chunk_lens(len, norm.chunk_bytes))
                {
                    let _ = self.link.send(chunk + FRAME_OVERHEAD, mcu_hz);
                }
                for chunk in cost
                    .output_frames
                    .iter()
                    .flat_map(|&len| pipeline::chunk_lens(len, norm.chunk_bytes))
                {
                    let _ = self.link.receive(chunk + FRAME_OVERHEAD, mcu_hz);
                }
            }
            measured.push((cost, o, ship_binary));
        }

        let jobs: Vec<PlannedJob<'_>> = measured
            .iter()
            .map(|(cost, opts, ship_binary)| PlannedJob {
                cost,
                opts: *opts,
                ship_binary: *ship_binary,
            })
            .collect();
        let qr = self.plan_queue(&jobs, pipe);
        for report in &qr.reports {
            self.emit_phases(report);
        }
        if qr.overlap.any() {
            self.tracer.set_overlap(qr.overlap);
        }
        Ok(qr)
    }

    /// Plans an ordered sequence of offload jobs through one shared
    /// pipeline schedule **without touching any simulator state** — no
    /// cluster runs, no link statistics, no residency changes. Each job
    /// carries a measured [`OffloadCost`] (see [`HetSystem::measure_cost`])
    /// plus whether the program offload is paid; this is exactly the
    /// arithmetic [`HetSystem::run_queue`] performs after its side
    /// effects, factored out so a serving layer can price thousands of
    /// candidate batches against cached costs.
    ///
    /// With the pipeline disabled the jobs are planned strictly
    /// serialized and `total_seconds == serialized_seconds`.
    #[must_use]
    pub fn plan_queue(&self, jobs: &[PlannedJob<'_>], pipe: PipelineConfig) -> QueueReport {
        let norm = pipe.normalized();
        let mut reports: Vec<OffloadReport> = Vec::with_capacity(jobs.len());
        let mut serialized_seconds = 0.0f64;

        if !norm.enabled {
            let mut total_seconds = 0.0f64;
            for job in jobs {
                let mut o = job.opts;
                o.pipeline = pipe;
                let r = self.predict(job.cost, &o, job.ship_binary);
                serialized_seconds += r.binary_seconds
                    + r.input_seconds
                    + r.output_seconds
                    + r.compute_seconds
                    + r.sync_seconds;
                total_seconds += r.total_seconds();
                reports.push(r);
            }
            return QueueReport {
                reports,
                serialized_seconds,
                total_seconds,
                overlap: Overlap::default(),
            };
        }

        let mut sched = Schedule::new(norm.window);
        let mut sync_total = 0.0f64;
        let mut sequential_total = 0.0f64;
        for job in jobs {
            let mut o = job.opts;
            o.pipeline = pipe;
            let report = self.predict(job.cost, &o, job.ship_binary);
            serialized_seconds += report.binary_seconds
                + report.input_seconds
                + report.output_seconds
                + report.compute_seconds
                + report.sync_seconds;
            sync_total += report.sync_seconds;
            sequential_total += report.total_seconds();
            let engine_job = self.pipeline_job(job.cost, &o, job.ship_binary, norm);
            pipeline::schedule_job(&mut sched, &engine_job);
            reports.push(report);
        }

        // The shared schedule subsumes each job's internal overlap, so the
        // queue wall-clock is its makespan (plus the GPIO handshakes the
        // engine does not model) — clamped so queueing never loses to
        // running the offloads back to back.
        let pipelined = sched.makespan() as f64 / 1e9 + sync_total;
        let total_seconds = pipelined.min(sequential_total).min(serialized_seconds);
        let mut overlap = sched.overlap();
        overlap.engaged = pipelined < serialized_seconds;
        QueueReport {
            reports,
            serialized_seconds,
            total_seconds,
            overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_kernels::{Benchmark, TargetEnv};

    fn small_build() -> KernelBuild {
        ulp_kernels::matmul::build_sized(
            ulp_kernels::matmul::MatVariant::Char,
            &TargetEnv::pulp_parallel(),
            16,
        )
    }

    #[test]
    fn offload_runs_and_verifies() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let report = sys
            .offload(&small_build(), &OffloadOptions::default())
            .unwrap();
        assert!(
            report.binary_seconds > 0.0,
            "first offload ships the binary"
        );
        assert!(report.compute_seconds > 0.0);
        assert!(report.efficiency() > 0.0 && report.efficiency() < 1.0);
    }

    #[test]
    fn binary_resident_on_second_offload() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let build = small_build();
        let r1 = sys.offload(&build, &OffloadOptions::default()).unwrap();
        let r2 = sys.offload(&build, &OffloadOptions::default()).unwrap();
        assert!(r1.binary_seconds > 0.0);
        assert!(
            (r2.binary_seconds - 0.0).abs() < 1e-15,
            "binary already resident"
        );
        assert!(r2.total_seconds() < r1.total_seconds());
    }

    #[test]
    fn force_reload_ships_again() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let build = small_build();
        let _ = sys.offload(&build, &OffloadOptions::default()).unwrap();
        let r = sys
            .offload(
                &build,
                &OffloadOptions {
                    force_reload: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(r.binary_seconds > 0.0);
    }

    #[test]
    fn efficiency_improves_with_iterations() {
        // Fig. 5b's core effect: amortizing the offload cost.
        let build = small_build();
        let eff = |iters: usize| {
            let mut sys = HetSystem::new(HetSystemConfig::default());
            sys.offload(
                &build,
                &OffloadOptions {
                    iterations: iters,
                    ..Default::default()
                },
            )
            .unwrap()
            .efficiency()
        };
        let e1 = eff(1);
        let e8 = eff(8);
        let e64 = eff(64);
        assert!(e1 < e8 && e8 < e64, "{e1:.3} < {e8:.3} < {e64:.3} violated");
    }

    #[test]
    fn double_buffering_hides_transfers() {
        let build = small_build();
        let run = |db: bool| {
            let mut sys = HetSystem::new(HetSystemConfig::default());
            sys.offload(
                &build,
                &OffloadOptions {
                    iterations: 16,
                    double_buffer: db,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let seq = run(false);
        let dbl = run(true);
        assert!(dbl.total_seconds() < seq.total_seconds());
        assert!(dbl.efficiency() > seq.efficiency());
    }

    #[test]
    fn host_build_rejected_for_offload() {
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let host_build = Benchmark::MatMul.build(&TargetEnv::host_m4());
        assert!(matches!(
            sys.offload(&host_build, &OffloadOptions::default()),
            Err(OffloadError::NotAccelBuild { .. })
        ));
    }

    #[test]
    fn run_on_host_baseline() {
        let sys = HetSystem::new(HetSystemConfig::default());
        let build = ulp_kernels::matmul::build_sized(
            ulp_kernels::matmul::MatVariant::Char,
            &TargetEnv::host_m4(),
            16,
        );
        let host = sys.run_on_host(&build).unwrap();
        assert!(host.cycles > 0 && host.energy_joules > 0.0);
    }

    #[test]
    fn offload_beats_host_on_compute_heavy_kernels() {
        // The headline claim, end to end: with enough iterations per
        // offload, the heterogeneous system outruns the host.
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let accel = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
        let host_build = Benchmark::Cnn.build(&TargetEnv::host_m4());
        let host = sys.run_on_host(&host_build).unwrap();
        let rep = sys
            .offload(
                &accel,
                &OffloadOptions {
                    iterations: 32,
                    ..Default::default()
                },
            )
            .unwrap();
        let per_iter = rep.total_seconds() / 32.0;
        assert!(
            per_iter < host.seconds / 5.0,
            "offloaded CNN {per_iter:.2e}s/iter should be ≫5× faster than host {:.2e}s",
            host.seconds
        );
    }

    #[test]
    fn slow_host_clock_throttles_the_link() {
        // Fig. 5b's plateau: the SPI clock follows the MCU clock.
        let build = small_build();
        let eff_at = |mcu_hz: f64| {
            let cfg = HetSystemConfig {
                mcu_freq_hz: mcu_hz,
                ..HetSystemConfig::default()
            };
            let mut sys = HetSystem::new(cfg);
            sys.offload(
                &build,
                &OffloadOptions {
                    iterations: 64,
                    ..Default::default()
                },
            )
            .unwrap()
            .efficiency()
        };
        assert!(eff_at(1.0e6) < eff_at(16.0e6));
    }

    #[test]
    fn compute_phase_power_is_sub_10mw_by_default() {
        let sys = HetSystem::new(HetSystemConfig::default());
        let act = ulp_power::busy_activity(4, 8);
        let p = sys.compute_phase_power_watts(&act);
        assert!(
            p < 10.0e-3,
            "default operating point draws {:.2} mW",
            p * 1e3
        );
    }

    #[test]
    fn independent_link_clock_removes_the_slow_host_penalty() {
        // §V: "a low-power, high-throughput SPI link that is not tied to
        // the MCU core frequency … completely removes the bottleneck."
        let build = small_build();
        let mut tied_sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: 2.0e6,
            ..HetSystemConfig::default()
        });
        let cost = tied_sys.measure_cost(&build).unwrap();
        let opts = OffloadOptions {
            iterations: 32,
            ..Default::default()
        };
        let tied = tied_sys.predict(&cost, &opts, true);

        let free_sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: 2.0e6,
            link_clocking: LinkClocking::Independent { spi_hz: 25.0e6 },
            ..HetSystemConfig::default()
        });
        let free = free_sys.predict(&cost, &opts, true);
        assert!(free.input_seconds < tied.input_seconds / 5.0);
        assert!(free.efficiency() > tied.efficiency() * 3.0);
        // Compute is untouched.
        assert!((free.compute_seconds - tied.compute_seconds).abs() < 1e-15);
    }

    #[test]
    fn dvfs_boost_speeds_transfers_and_costs_host_energy() {
        // §IV-B: "the MCU frequency might be raised for enough time to
        // efficiently perform the data exchange."
        let build = small_build();
        let mut base_sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: 4.0e6,
            ..HetSystemConfig::default()
        });
        let cost = base_sys.measure_cost(&build).unwrap();
        let opts = OffloadOptions {
            iterations: 8,
            ..Default::default()
        };
        let base = base_sys.predict(&cost, &opts, true);

        let boosted_sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: 4.0e6,
            link_clocking: LinkClocking::BoostedMcu { mcu_hz: 32.0e6 },
            ..HetSystemConfig::default()
        });
        let boosted = boosted_sys.predict(&cost, &opts, true);
        assert!((boosted.input_seconds - base.input_seconds / 8.0).abs() < 1e-9);
        assert!(boosted.total_seconds() < base.total_seconds());
        // Energy per transferred byte rises with the boost (P ∝ f but the
        // time shrinks ∝ 1/f, so the transfer energy is roughly constant;
        // what must hold is that boosting never *reduces* host energy per
        // transfer second).
        assert!(boosted.mcu_energy_joules > 0.0);
    }

    #[test]
    fn sensor_direct_bypasses_the_link_for_inputs() {
        // §V: "bring data from the sensor directly to the internal memory
        // of the accelerator."
        let build = small_build();
        let mut sys = HetSystem::new(HetSystemConfig {
            mcu_freq_hz: 2.0e6, // slow host: the link is the bottleneck
            ..HetSystemConfig::default()
        });
        let cost = sys.measure_cost(&build).unwrap();
        let via_link = sys.predict(
            &cost,
            &OffloadOptions {
                iterations: 16,
                ..Default::default()
            },
            true,
        );
        let direct = sys.predict(
            &cost,
            &OffloadOptions {
                iterations: 16,
                sensor_direct: true,
                ..Default::default()
            },
            true,
        );
        assert!(direct.input_seconds < via_link.input_seconds / 10.0);
        assert!(direct.efficiency() > via_link.efficiency());
        // Outputs still travel over the link.
        assert!((direct.output_seconds - via_link.output_seconds).abs() < 1e-12);
        assert!(direct.link_energy_joules < via_link.link_energy_joules);
        // The host sleeps through the sensor fill: less host energy.
        assert!(direct.mcu_energy_joules < via_link.mcu_energy_joules);
    }

    #[test]
    fn host_task_gains_cycles_at_run_power() {
        // §V: "an additional, separate task to be performed on the host
        // at the same time."
        let build = small_build();
        let mut sys = HetSystem::new(HetSystemConfig::default());
        let cost = sys.measure_cost(&build).unwrap();
        let idle = sys.predict(
            &cost,
            &OffloadOptions {
                iterations: 8,
                ..Default::default()
            },
            true,
        );
        let tasked = sys.predict(
            &cost,
            &OffloadOptions {
                iterations: 8,
                host_task: true,
                ..Default::default()
            },
            true,
        );
        assert_eq!(idle.host_task_cycles, 0);
        assert!(tasked.host_task_cycles > 0);
        // Same wall clock, more host energy (run vs sleep power).
        assert!((tasked.total_seconds() - idle.total_seconds()).abs() < 1e-15);
        assert!(tasked.mcu_energy_joules > idle.mcu_energy_joules);
        // The gained cycles equal compute time at the host clock.
        let expect = (tasked.compute_seconds * sys.config().mcu_freq_hz) as u64;
        assert_eq!(tasked.host_task_cycles, expect);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn overclocked_accelerator_rejected() {
        let cfg = HetSystemConfig {
            pulp_vdd: 0.5,
            pulp_freq_hz: 400.0e6,
            ..HetSystemConfig::default()
        };
        let _ = HetSystem::new(cfg);
    }

    // ---- resilience ----------------------------------------------------

    fn faulty_config(fault: FaultConfig) -> HetSystemConfig {
        HetSystemConfig {
            fault,
            ..HetSystemConfig::default()
        }
    }

    #[test]
    fn inactive_injector_reports_are_bit_identical_to_predict() {
        // The zero-overhead guarantee: constructing the system with any
        // all-zero fault config takes the exact fault-free path.
        let build = small_build();
        let opts = OffloadOptions {
            iterations: 8,
            ..Default::default()
        };
        let mut plain = HetSystem::new(HetSystemConfig::default());
        let mut cfged = HetSystem::new(faulty_config(FaultConfig::default()));
        let a = plain.offload(&build, &opts).unwrap();
        let b = cfged.offload(&build, &opts).unwrap();
        assert_eq!(a.total_seconds().to_bits(), b.total_seconds().to_bits());
        assert_eq!(
            a.total_energy_joules().to_bits(),
            b.total_energy_joules().to_bits()
        );
        assert!(!b.resilience.any());
    }

    #[test]
    fn negligible_fault_rates_match_the_healthy_prediction() {
        // An *active* injector whose faults essentially never fire must
        // converge on the fault-free numbers (same formulas, no events).
        let build = small_build();
        let opts = OffloadOptions {
            iterations: 4,
            ..Default::default()
        };
        let mut plain = HetSystem::new(HetSystemConfig::default());
        let healthy = plain.offload(&build, &opts).unwrap();
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 7,
            bit_error_rate: 1e-18,
            ..FaultConfig::default()
        }));
        let rep = sys.offload(&build, &opts).unwrap();
        assert_eq!(rep.resilience.retransmissions, 0);
        assert!((rep.total_seconds() - healthy.total_seconds()).abs() < 1e-12);
        assert!((rep.total_energy_joules() - healthy.total_energy_joules()).abs() < 1e-15);
    }

    #[test]
    fn low_ber_offload_completes_cleanly() {
        // Acceptance scenario: at BER ≤ 1e-6 a small offload completes —
        // the output was verified against the golden reference inside
        // measure_cost — without ever falling back to the host.
        let build = small_build();
        let opts = OffloadOptions {
            iterations: 16,
            ..Default::default()
        };
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 0xBEE,
            bit_error_rate: 1e-6,
            ..FaultConfig::default()
        }));
        let rep = sys.offload(&build, &opts).unwrap();
        assert!(!rep.resilience.fell_back_to_host);
        assert_eq!(rep.iterations, 16);
    }

    #[test]
    fn moderate_ber_survives_via_retries() {
        // A noisier link: corruptions definitely strike, retransmissions
        // absorb them all, and the recovery surcharge is measurable.
        let build = small_build();
        let opts = OffloadOptions {
            iterations: 16,
            ..Default::default()
        };
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 0xBEE,
            bit_error_rate: 2e-5,
            ..FaultConfig::default()
        }));
        let rep = sys.offload(&build, &opts).unwrap();
        assert!(!rep.resilience.fell_back_to_host);
        assert!(
            rep.resilience.crc_errors_detected > 0,
            "1e-6 BER over dozens of kB must corrupt at least one frame"
        );
        assert_eq!(
            rep.resilience.retransmissions,
            rep.resilience.crc_errors_detected
        );
        assert!(rep.resilience.extra_seconds > 0.0);
        assert!(rep.resilience.extra_energy_joules > 0.0);
        // The healthy portion of the ledger is undisturbed.
        let mut plain = HetSystem::new(HetSystemConfig::default());
        let healthy = plain.offload(&build, &opts).unwrap();
        assert!((rep.compute_seconds - healthy.compute_seconds).abs() < 1e-15);
        assert!((rep.input_seconds - healthy.input_seconds).abs() < 1e-15);
        assert!(rep.total_seconds() > healthy.total_seconds());
    }

    #[test]
    fn same_seed_and_policy_reproduce_identical_reports() {
        let build = small_build();
        let opts = OffloadOptions {
            iterations: 8,
            ..Default::default()
        };
        let fault = FaultConfig {
            seed: 42,
            bit_error_rate: 2e-6,
            drop_rate: 1e-3,
            ..FaultConfig::default()
        };
        let run = || {
            let mut sys = HetSystem::new(faulty_config(fault));
            sys.offload(&build, &opts).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.total_seconds().to_bits(), b.total_seconds().to_bits());
        assert_eq!(
            a.total_energy_joules().to_bits(),
            b.total_energy_joules().to_bits()
        );
    }

    #[test]
    fn hang_trips_watchdog_and_falls_back_to_host() {
        // Acceptance scenario: a stuck end-of-computation wire trips the
        // watchdog on every attempt; with a host build available the
        // offload degrades gracefully and reports the (worse) cost.
        let build = small_build();
        let host_build = ulp_kernels::matmul::build_sized(
            ulp_kernels::matmul::MatVariant::Char,
            &TargetEnv::host_m4(),
            16,
        );
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 1,
            stuck_eoc: true,
            ..FaultConfig::default()
        }));
        let opts = OffloadOptions {
            iterations: 4,
            ..Default::default()
        };
        let rep = sys
            .offload_with_fallback(&build, &host_build, &opts)
            .unwrap();
        assert!(rep.resilience.fell_back_to_host);
        assert_eq!(
            rep.resilience.fallback_iterations, 4,
            "no iteration completed"
        );
        assert_eq!(
            rep.resilience.watchdog_trips,
            u64::from(opts.policy.max_retries) + 1
        );
        assert!(rep.resilience.fallback_seconds > 0.0);
        assert!(rep.resilience.fallback_energy_joules > 0.0);
        // Degraded: slower than the healthy offload would have been.
        let mut plain = HetSystem::new(HetSystemConfig::default());
        let healthy = plain.offload(&build, &opts).unwrap();
        assert!(rep.total_seconds() > healthy.total_seconds());
        // The next offload must re-ship the binary: nothing is resident.
        sys.set_fault_config(FaultConfig::default());
        let after = sys.offload(&build, &opts).unwrap();
        assert!(after.binary_seconds > 0.0);
    }

    #[test]
    fn hang_without_fallback_is_a_watchdog_timeout() {
        let build = small_build();
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 1,
            stuck_eoc: true,
            ..FaultConfig::default()
        }));
        let err = sys.offload(&build, &OffloadOptions::default()).unwrap_err();
        assert!(matches!(err, OffloadError::WatchdogTimeout { .. }), "{err}");
        // Display + Error trait are wired up.
        let msg = format!("{err}");
        assert!(msg.contains("watchdog"), "{msg}");
    }

    #[test]
    fn zero_retries_surface_the_first_crc_error() {
        let build = small_build();
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 3,
            // Corrupt every frame: the very first transport fails.
            bit_error_rate: 1e-3,
            ..FaultConfig::default()
        }));
        let opts = OffloadOptions {
            policy: OffloadPolicy {
                max_retries: 0,
                fallback_to_host: false,
                ..OffloadPolicy::default()
            },
            ..Default::default()
        };
        let err = sys.offload(&build, &opts).unwrap_err();
        assert!(matches!(err, OffloadError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn undeliverable_link_exhausts_retries() {
        let build = small_build();
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 9,
            drop_rate: 1.0, // the link delivers nothing, ever
            ..FaultConfig::default()
        }));
        let opts = OffloadOptions {
            policy: OffloadPolicy {
                fallback_to_host: false,
                ..OffloadPolicy::default()
            },
            ..Default::default()
        };
        let err = sys.offload(&build, &opts).unwrap_err();
        match err {
            OffloadError::RetriesExhausted { attempts } => assert_eq!(attempts, 4),
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(sys.fault_stats().frames_dropped >= 4);
    }

    #[test]
    fn late_eoc_extends_sleep_but_completes() {
        let build = small_build();
        let mut sys = HetSystem::new(faulty_config(FaultConfig {
            seed: 5,
            late_eoc_rate: 1.0,
            late_eoc_cycles: 10_000,
            ..FaultConfig::default()
        }));
        let opts = OffloadOptions {
            iterations: 4,
            ..Default::default()
        };
        let rep = sys.offload(&build, &opts).unwrap();
        assert!(!rep.resilience.fell_back_to_host);
        assert_eq!(
            rep.resilience.watchdog_trips, 0,
            "late ≠ hung at this magnitude"
        );
        assert!(
            rep.resilience.extra_seconds > 0.0,
            "the host slept through the delay"
        );
        let mut plain = HetSystem::new(HetSystemConfig::default());
        let healthy = plain.offload(&build, &opts).unwrap();
        assert!((rep.compute_seconds - healthy.compute_seconds).abs() < 1e-15);
    }

    #[test]
    fn backoff_schedule_is_exponential_when_asked() {
        let pol = OffloadPolicy {
            backoff_cycles: 64,
            ..OffloadPolicy::default()
        };
        assert_eq!(pol.backoff_for(0), 64);
        assert_eq!(pol.backoff_for(1), 128);
        assert_eq!(pol.backoff_for(3), 512);
        let flat = OffloadPolicy {
            exponential_backoff: false,
            ..pol
        };
        assert_eq!(flat.backoff_for(3), 64);
        // Saturates instead of overflowing.
        assert_eq!(
            OffloadPolicy {
                backoff_cycles: u64::MAX,
                ..pol
            }
            .backoff_for(40),
            u64::MAX
        );
    }
}
