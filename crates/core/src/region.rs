//! `#pragma omp target` regions and map clauses.
//!
//! OpenMP 4.0's `target` construct outlines a code block for the
//! accelerator; its `map` clauses declare which host data must be made
//! visible on the device and which results flow back (paper §III-A: "we
//! provide a distinction between program and data offloads and hide the
//! low-level details of the data exchange primitives behind higher level
//! abstractions"). A [`TargetRegion`] derives the clauses from the
//! kernel's buffer roles, so the offload runtime knows exactly what to
//! ship over the SPI link and when.

use std::fmt;

use ulp_kernels::{BufferRole, KernelBuild};

/// Transfer direction of a mapped buffer (OpenMP `map` modifier).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapDir {
    /// `map(to:…)` — host → device before every kernel execution.
    To,
    /// `map(from:…)` — device → host after every kernel execution.
    From,
    /// `map(to:…)` shipped **once** with the binary (constant weights,
    /// lookup tables).
    ToOnce,
    /// `map(alloc:…)` — device-only scratch, never transferred.
    Alloc,
}

impl fmt::Display for MapDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapDir::To => f.write_str("to"),
            MapDir::From => f.write_str("from"),
            MapDir::ToOnce => f.write_str("to(once)"),
            MapDir::Alloc => f.write_str("alloc"),
        }
    }
}

/// One mapped buffer of a target region.
#[derive(Clone, Debug)]
pub struct MapClause {
    /// Buffer name (diagnostics).
    pub name: &'static str,
    /// Index into the kernel's buffer list.
    pub buffer_index: usize,
    /// Device address.
    pub device_addr: u32,
    /// Length in bytes.
    pub len: usize,
    /// Transfer direction.
    pub dir: MapDir,
}

/// An offloadable region: kernel binary + map clauses.
///
/// # Example
///
/// ```
/// use ulp_offload::TargetRegion;
/// use ulp_kernels::{Benchmark, TargetEnv};
///
/// let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
/// let region = TargetRegion::from_kernel(&build);
/// assert_eq!(region.bytes_to(), 8 * 1024); // A and Bᵀ travel per run
/// assert_eq!(region.bytes_from(), 4 * 1024); // C comes back
/// ```
#[derive(Clone, Debug)]
pub struct TargetRegion {
    maps: Vec<MapClause>,
    binary_bytes: usize,
}

impl TargetRegion {
    /// Derives the region from a kernel build: `Input → to`,
    /// `Output → from`, `Const → to(once)`, `Scratch → alloc`.
    #[must_use]
    pub fn from_kernel(build: &KernelBuild) -> Self {
        let maps = build
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| MapClause {
                name: b.name,
                buffer_index: i,
                device_addr: b.addr,
                len: b.len,
                dir: match b.role {
                    BufferRole::Input => MapDir::To,
                    BufferRole::Output => MapDir::From,
                    BufferRole::Const => MapDir::ToOnce,
                    BufferRole::Scratch => MapDir::Alloc,
                },
            })
            .collect();
        TargetRegion {
            maps,
            binary_bytes: build.program.binary_size(),
        }
    }

    /// All map clauses.
    #[must_use]
    pub fn maps(&self) -> &[MapClause] {
        &self.maps
    }

    /// Bytes transferred host → device on **every** kernel execution.
    #[must_use]
    pub fn bytes_to(&self) -> usize {
        self.maps
            .iter()
            .filter(|m| m.dir == MapDir::To)
            .map(|m| m.len)
            .sum()
    }

    /// Bytes transferred device → host on every kernel execution.
    #[must_use]
    pub fn bytes_from(&self) -> usize {
        self.maps
            .iter()
            .filter(|m| m.dir == MapDir::From)
            .map(|m| m.len)
            .sum()
    }

    /// Bytes of the one-time program offload: text + rodata + constant
    /// maps (the paper's Table I "Binary Size" is this quantity).
    #[must_use]
    pub fn offload_bytes(&self) -> usize {
        self.binary_bytes
            + self
                .maps
                .iter()
                .filter(|m| m.dir == MapDir::ToOnce)
                .map(|m| m.len)
                .sum::<usize>()
    }
}

impl fmt::Display for TargetRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma omp target map(")?;
        for (i, m) in self.maps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}[{}B]", m.dir, m.name, m.len)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_kernels::{Benchmark, TargetEnv};

    #[test]
    fn clauses_follow_buffer_roles() {
        let build = Benchmark::SvmRbf.build(&TargetEnv::pulp_parallel());
        let region = TargetRegion::from_kernel(&build);
        let dir_of = |name: &str| region.maps().iter().find(|m| m.name == name).map(|m| m.dir);
        assert_eq!(dir_of("X"), Some(MapDir::To));
        assert_eq!(dir_of("out"), Some(MapDir::From));
        assert_eq!(dir_of("exp_lut"), Some(MapDir::ToOnce));
    }

    #[test]
    fn byte_accounting_matches_kernel() {
        let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
        let region = TargetRegion::from_kernel(&build);
        assert_eq!(region.bytes_to(), build.input_bytes());
        assert_eq!(region.bytes_from(), build.output_bytes());
        assert_eq!(region.offload_bytes(), build.offload_binary_bytes());
    }

    #[test]
    fn scratch_never_transfers() {
        let build = Benchmark::Hog.build(&TargetEnv::pulp_parallel());
        let region = TargetRegion::from_kernel(&build);
        let hist = region.maps().iter().find(|m| m.name == "hist").unwrap();
        assert_eq!(hist.dir, MapDir::Alloc);
        // hist is large; make sure it is not part of any transfer figure.
        assert!(
            region.bytes_to() + region.bytes_from() < build.buffers.iter().map(|b| b.len).sum()
        );
    }

    #[test]
    fn display_is_pragma_like() {
        let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
        let region = TargetRegion::from_kernel(&build);
        let s = region.to_string();
        assert!(s.starts_with("#pragma omp target map("));
        assert!(s.contains("to:A"));
        assert!(s.contains("from:C"));
    }
}
