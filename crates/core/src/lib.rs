//! # ulp-offload — the heterogeneous accelerator model
//!
//! The paper's primary contribution, as a library: couple an off-the-shelf
//! ULP microcontroller (host) with a PULP-style programmable parallel
//! accelerator over a cheap SPI link plus two GPIO event wires, and expose
//! computation offload through an OpenMP-4.0-flavoured programming model.
//!
//! ```text
//!        sensor ──► STM32-class MCU ◄──SPI/QSPI──► PULP cluster (4 cores)
//!                        │  ▲                          │
//!                        │  └──── end-of-computation ──┘
//!                        └─────── fetch-enable ────────►
//! ```
//!
//! * [`TargetRegion`] — the `#pragma omp target` abstraction: a kernel
//!   binary plus `map(to/from/alloc)` clauses derived from its buffers.
//! * [`HetSystem`] — the coupled platform simulation: binary offload,
//!   input/output marshalling over the link (driven by the MCU's DMA),
//!   fetch-enable / end-of-computation synchronization, host sleep during
//!   accelerator compute, and full time/energy accounting on both sides.
//! * [`OffloadOptions::double_buffer`] — overlap data transfers with
//!   computation, the paper's §IV-B "traditional double buffering" mode.
//! * [`envelope`] — the fixed-power-budget analysis of Fig. 5a: how fast
//!   can the accelerator run with whatever is left of the 10 mW budget
//!   after the host takes its share.
//!
//! The *parallel* side of the OpenMP model (`parallel for`, barriers, the
//! streamlined runtime) lives in the generated kernels themselves — see
//! [`ulp_kernels::codegen::emit::spmd_kernel`] — because on a 64 kB
//! accelerator the runtime is compiled into the offloaded binary, exactly
//! as in the paper.
//!
//! # Example
//!
//! ```
//! use ulp_offload::{HetSystem, HetSystemConfig, OffloadOptions};
//! use ulp_kernels::{Benchmark, TargetEnv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = HetSystem::new(HetSystemConfig::default());
//! let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
//! let report = sys.offload(&build, &OffloadOptions { iterations: 4, ..Default::default() })?;
//! assert!(report.compute_seconds > 0.0);
//! assert!(report.total_seconds() >= report.compute_seconds);
//! # Ok(())
//! # }
//! ```

pub mod envelope;
pub mod pipeline;
pub mod queue;
pub mod region;
pub mod system;

pub use envelope::{envelope_speedup, EnvelopeReport, PowerBudget};
pub use pipeline::{PipelineConfig, DEFAULT_CHUNK_BYTES, DEFAULT_WINDOW, MIN_CHUNK_BYTES};
pub use queue::{OffloadQueue, QueueReport};
pub use region::{MapClause, MapDir, TargetRegion};
pub use system::{
    HetSystem, HetSystemConfig, HostReport, LinkClocking, OffloadCost, OffloadError,
    OffloadOptions, OffloadPolicy, OffloadReport, PlannedJob, ResilienceStats,
};
// Re-exported so offload users can configure fault injection without
// depending on ulp-link directly, and the overlap accounting the
// pipelined engine produces.
pub use ulp_link::{FaultConfig, FaultStats};
pub use ulp_trace::Overlap;
