//! Commercial MCU device descriptions (datasheet operating points).

use std::fmt;

use ulp_isa::CoreModel;

/// Host core families appearing in the paper's comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HostCoreKind {
    /// ARM Cortex-M3 (ARMv7-M).
    CortexM3,
    /// ARM Cortex-M4 (ARMv7E-M).
    CortexM4,
    /// 16-bit RISC (TI MSP430 family), modelled as an M3 with a cycle
    /// factor for 32-bit arithmetic.
    Msp430,
}

impl HostCoreKind {
    /// The UIR core model used to estimate cycle counts for this family.
    #[must_use]
    pub fn core_model(self) -> CoreModel {
        match self {
            HostCoreKind::CortexM3 | HostCoreKind::Msp430 => CoreModel::cortex_m3(),
            HostCoreKind::CortexM4 => CoreModel::cortex_m4(),
        }
    }
}

impl fmt::Display for HostCoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostCoreKind::CortexM3 => f.write_str("cortex-m3"),
            HostCoreKind::CortexM4 => f.write_str("cortex-m4"),
            HostCoreKind::Msp430 => f.write_str("msp430"),
        }
    }
}

/// Datasheet-level description of a commercial microcontroller.
///
/// Run power follows the near-universal MCU datasheet convention of a
/// µA/MHz figure at a supply voltage: `P(f) = ua_per_mhz · f_MHz · VDD`.
#[derive(Clone, Debug, PartialEq)]
pub struct McuDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Core family.
    pub core: HostCoreKind,
    /// Maximum clock frequency in hertz.
    pub fmax_hz: f64,
    /// Typical run current per MHz, in amperes per MHz.
    pub ua_per_mhz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Deep-sleep (retention) current in amperes.
    pub sleep_a: f64,
    /// Multiplier on simulated cycle counts (1.0 for 32-bit ARM cores;
    /// >1 for the 16-bit MSP430 executing 32-bit arithmetic).
    pub cycle_factor: f64,
    /// Representative operating frequencies for efficiency sweeps (Hz).
    pub sweep_hz: &'static [f64],
}

impl McuDevice {
    /// Active power at clock frequency `freq_hz`, in watts.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` exceeds the device's maximum frequency.
    #[must_use]
    pub fn run_power_w(&self, freq_hz: f64) -> f64 {
        assert!(
            freq_hz <= self.fmax_hz * 1.0001,
            "{} cannot clock at {:.1} MHz (max {:.1})",
            self.name,
            freq_hz / 1e6,
            self.fmax_hz / 1e6
        );
        self.ua_per_mhz * 1.0e-6 * (freq_hz / 1.0e6) * self.vdd
    }

    /// Deep-sleep power in watts.
    #[must_use]
    pub fn sleep_power_w(&self) -> f64 {
        self.sleep_a * self.vdd
    }

    /// Energy for `cycles` core cycles at `freq_hz`, in joules.
    #[must_use]
    pub fn run_energy_joules(&self, cycles: u64, freq_hz: f64) -> f64 {
        self.run_power_w(freq_hz) * (cycles as f64 / freq_hz)
    }

    /// Effective cycle count for this device given a simulated cycle count
    /// from its [`HostCoreKind::core_model`].
    #[must_use]
    pub fn effective_cycles(&self, simulated_cycles: u64) -> u64 {
        (simulated_cycles as f64 * self.cycle_factor).round() as u64
    }
}

impl fmt::Display for McuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.core)
    }
}

/// The seven commercial devices of the paper's Fig. 3, with typical-range
/// datasheet numbers.
pub mod datasheet {
    use super::{HostCoreKind, McuDevice};

    /// STMicroelectronics STM32-L476: the paper's host MCU (ULP Cortex-M4).
    #[must_use]
    pub fn stm32l476() -> McuDevice {
        McuDevice {
            name: "STM32-L476",
            core: HostCoreKind::CortexM4,
            fmax_hz: 80.0e6,
            ua_per_mhz: 100.0,
            vdd: 3.0,
            sleep_a: 6.5e-6,
            cycle_factor: 1.0,
            sweep_hz: &[
                80.0e6, 48.0e6, 32.0e6, 26.0e6, 16.0e6, 8.0e6, 4.0e6, 2.0e6, 1.0e6,
            ],
        }
    }

    /// STMicroelectronics STM32-F407: high-performance Cortex-M4.
    #[must_use]
    pub fn stm32f407() -> McuDevice {
        McuDevice {
            name: "STM32-F407",
            core: HostCoreKind::CortexM4,
            fmax_hz: 168.0e6,
            ua_per_mhz: 238.0,
            vdd: 3.3,
            sleep_a: 350.0e-6,
            cycle_factor: 1.0,
            sweep_hz: &[168.0e6, 84.0e6, 42.0e6],
        }
    }

    /// STMicroelectronics STM32-F446: efficiency-improved Cortex-M4.
    #[must_use]
    pub fn stm32f446() -> McuDevice {
        McuDevice {
            name: "STM32-F446",
            core: HostCoreKind::CortexM4,
            fmax_hz: 180.0e6,
            ua_per_mhz: 112.0,
            vdd: 3.3,
            sleep_a: 300.0e-6,
            cycle_factor: 1.0,
            sweep_hz: &[180.0e6, 90.0e6, 45.0e6],
        }
    }

    /// NXP LPC1800 series: high-speed Cortex-M3.
    #[must_use]
    pub fn nxp_lpc1800() -> McuDevice {
        McuDevice {
            name: "NXP LPC1800",
            core: HostCoreKind::CortexM3,
            fmax_hz: 180.0e6,
            ua_per_mhz: 180.0,
            vdd: 3.3,
            sleep_a: 250.0e-6,
            cycle_factor: 1.0,
            sweep_hz: &[180.0e6, 90.0e6, 45.0e6],
        }
    }

    /// SiliconLabs EFM32 Giant Gecko: low-energy Cortex-M3.
    #[must_use]
    pub fn efm32() -> McuDevice {
        McuDevice {
            name: "EFM32",
            core: HostCoreKind::CortexM3,
            fmax_hz: 48.0e6,
            ua_per_mhz: 200.0,
            vdd: 3.0,
            sleep_a: 1.0e-6,
            cycle_factor: 1.0,
            sweep_hz: &[48.0e6, 28.0e6, 14.0e6],
        }
    }

    /// Texas Instruments MSP430: 16-bit ULP MCU. 32-bit arithmetic is
    /// emulated on the 16-bit datapath (cycle factor 2.2).
    #[must_use]
    pub fn msp430() -> McuDevice {
        McuDevice {
            name: "MSP430",
            core: HostCoreKind::Msp430,
            fmax_hz: 25.0e6,
            ua_per_mhz: 100.0,
            vdd: 3.0,
            sleep_a: 0.5e-6,
            cycle_factor: 2.2,
            sweep_hz: &[25.0e6, 16.0e6, 8.0e6],
        }
    }

    /// Ambiq Apollo: subthreshold Cortex-M4, the most efficient commercial
    /// MCU in the comparison ("10 GOPS/W working at a low performance
    /// 24 MOPS operating point").
    #[must_use]
    pub fn ambiq_apollo() -> McuDevice {
        McuDevice {
            name: "Ambiq Apollo",
            core: HostCoreKind::CortexM4,
            fmax_hz: 24.0e6,
            ua_per_mhz: 34.0,
            vdd: 2.5,
            sleep_a: 0.15e-6,
            cycle_factor: 1.0,
            sweep_hz: &[24.0e6, 12.0e6],
        }
    }

    /// Every device of the Fig. 3 comparison.
    #[must_use]
    pub fn all() -> Vec<McuDevice> {
        vec![
            stm32l476(),
            stm32f407(),
            stm32f446(),
            nxp_lpc1800(),
            efm32(),
            msp430(),
            ambiq_apollo(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l476_at_32mhz_is_near_10mw() {
        // The Fig. 5 baseline: "clocking the STM32-L476 MCU at 32 MHz …
        // there is no additional room for acceleration" in a 10 mW budget.
        let p = datasheet::stm32l476().run_power_w(32.0e6);
        assert!(
            (8.0e-3..11.0e-3).contains(&p),
            "L476@32MHz draws {:.2} mW",
            p * 1e3
        );
    }

    #[test]
    fn apollo_is_most_efficient_commercial() {
        let devices = datasheet::all();
        let apollo = datasheet::ambiq_apollo();
        let eff = |d: &McuDevice| 1.0 / (d.ua_per_mhz * d.vdd * d.cycle_factor);
        for d in &devices {
            assert!(
                eff(&apollo) >= eff(d),
                "{} must not beat the Apollo in MCU efficiency",
                d.name
            );
        }
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let d = datasheet::stm32f407();
        let p1 = d.run_power_w(42.0e6);
        let p2 = d.run_power_w(84.0e6);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot clock")]
    fn overclocking_rejected() {
        let _ = datasheet::msp430().run_power_w(100.0e6);
    }

    #[test]
    fn sleep_far_below_run() {
        for d in datasheet::all() {
            assert!(
                d.sleep_power_w() < d.run_power_w(d.fmax_hz) / 20.0,
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn msp430_pays_its_16bit_tax() {
        let d = datasheet::msp430();
        assert_eq!(d.effective_cycles(1000), 2200);
        assert_eq!(datasheet::stm32l476().effective_cycles(1000), 1000);
    }

    #[test]
    fn core_models_match_families() {
        assert_eq!(HostCoreKind::CortexM4.core_model().name, "cortex-m4");
        assert_eq!(HostCoreKind::CortexM3.core_model().name, "cortex-m3");
        assert_eq!(HostCoreKind::Msp430.core_model().name, "cortex-m3");
    }

    #[test]
    fn sweep_frequencies_within_fmax() {
        for d in datasheet::all() {
            for &f in d.sweep_hz {
                assert!(f <= d.fmax_hz, "{} sweep point above fmax", d.name);
            }
        }
    }

    #[test]
    fn energy_example() {
        let d = datasheet::stm32l476();
        // 32 M cycles at 32 MHz = 1 s at ~9.6 mW.
        let e = d.run_energy_joules(32_000_000, 32.0e6);
        assert!((e - 9.6e-3).abs() < 1e-4);
    }
}
