//! # ulp-mcu — host microcontroller models
//!
//! The host side of the heterogeneous platform: a Cortex-M-class core with
//! flat single-cycle SRAM, plus datasheet-derived device descriptions
//! (operating points, run/sleep currents) for the commercial MCUs the
//! paper's Fig. 3 compares against:
//!
//! | device | core | f_max | run current |
//! |---|---|---|---|
//! | STM32-L476 | M4 | 80 MHz | ≈100 µA/MHz |
//! | STM32-F407 | M4 | 168 MHz | ≈238 µA/MHz |
//! | STM32-F446 | M4 | 180 MHz | ≈112 µA/MHz |
//! | NXP LPC1800 | M3 | 180 MHz | ≈180 µA/MHz |
//! | SiliconLabs EFM32 | M3 | 48 MHz | ≈200 µA/MHz |
//! | TI MSP430 | 16-bit | 25 MHz | ≈100 µA/MHz |
//! | Ambiq Apollo | M4 | 24 MHz | ≈34 µA/MHz |
//!
//! Values are *typical-range approximations* transcribed from the public
//! datasheets the paper cites; see `DESIGN.md` for the calibration policy.
//! The paper models Cortex-M3 execution "by running the code on the
//! STM32-L476 with all Cortex-M4 specific flags deactivated" — we do the
//! same through [`ulp_isa::CoreModel::cortex_m3`]. The MSP430 is a 16-bit
//! machine; it reuses the M3 timing model with a
//! [`cycle_factor`](McuDevice::cycle_factor) representing the extra
//! instructions 32-bit arithmetic costs on a 16-bit datapath.
//!
//! # Example
//!
//! ```
//! use ulp_mcu::{datasheet, Mcu};
//! use ulp_isa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(R1, 6);
//! a.mul(R2, R1, R1);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut mcu = Mcu::new(datasheet::stm32l476(), 32.0e6);
//! let run = mcu.run_program(&prog, &[])?;
//! assert_eq!(mcu.reg(R2), 36);
//! assert!(run.seconds > 0.0 && run.energy_joules > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod host;
pub mod wfe;

pub use device::{datasheet, HostCoreKind, McuDevice};
pub use host::{Mcu, McuRun};
pub use wfe::{wfe_wait, WakeReason, WfeWait};

/// Base address of the host's unified code+data SRAM.
pub const MCU_MEM_BASE: u32 = 0x2000_0000;
/// Size of the host memory window (code + data + stack).
pub const MCU_MEM_SIZE: usize = 256 * 1024;
/// Conventional base address for kernel data buffers on the host.
pub const MCU_DATA_BASE: u32 = MCU_MEM_BASE + 0x1_0000;
