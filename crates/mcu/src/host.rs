//! Host MCU execution: a Cortex-M-class core over flat SRAM.

use std::error::Error;
use std::fmt;

use ulp_isa::{BusError, Core, CoreModel, ExecError, FlatMemory, Program, Reg};

use crate::device::McuDevice;
use crate::{MCU_MEM_BASE, MCU_MEM_SIZE};

/// Error raised while running a program on the host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum McuError {
    /// The core faulted.
    Exec(ExecError),
    /// Loader or data access outside the SRAM window.
    Bus(BusError),
    /// The program exceeded the cycle budget.
    Timeout {
        /// The exceeded budget.
        max_cycles: u64,
    },
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::Exec(e) => write!(f, "host core faulted: {e}"),
            McuError::Bus(e) => write!(f, "host memory access failed: {e}"),
            McuError::Timeout { max_cycles } => {
                write!(f, "host program exceeded {max_cycles} cycles")
            }
        }
    }
}

impl Error for McuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            McuError::Exec(e) => Some(e),
            McuError::Bus(e) => Some(e),
            McuError::Timeout { .. } => None,
        }
    }
}

impl From<ExecError> for McuError {
    fn from(e: ExecError) -> Self {
        McuError::Exec(e)
    }
}

impl From<BusError> for McuError {
    fn from(e: BusError) -> Self {
        McuError::Bus(e)
    }
}

/// Outcome of a completed host run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McuRun {
    /// Core cycles consumed (after the device's cycle factor).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Wall-clock duration at the configured frequency.
    pub seconds: f64,
    /// Energy consumed at the device's run power.
    pub energy_joules: f64,
}

/// A host microcontroller: device description + core + SRAM.
///
/// See the [crate example](crate) for typical use.
#[derive(Clone, Debug)]
pub struct Mcu {
    device: McuDevice,
    freq_hz: f64,
    core: Core,
    mem: FlatMemory,
}

impl Mcu {
    /// Default cycle budget for [`Mcu::run_program`].
    pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

    /// Creates a host MCU clocked at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` exceeds the device's maximum frequency or is not
    /// positive.
    #[must_use]
    pub fn new(device: McuDevice, freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "frequency must be positive");
        assert!(
            freq_hz <= device.fmax_hz * 1.0001,
            "{} cannot clock at {:.1} MHz",
            device.name,
            freq_hz / 1.0e6
        );
        let model: CoreModel = device.core.core_model();
        Mcu {
            device,
            freq_hz,
            core: Core::new(0, model),
            mem: FlatMemory::new(MCU_MEM_BASE, MCU_MEM_SIZE),
        }
    }

    /// The device description.
    #[must_use]
    pub fn device(&self) -> &McuDevice {
        &self.device
    }

    /// Configured clock frequency in hertz.
    #[must_use]
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Changes the clock frequency (DVFS).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is invalid for the device.
    pub fn set_freq_hz(&mut self, freq_hz: f64) {
        assert!(freq_hz > 0.0 && freq_hz <= self.device.fmax_hz * 1.0001);
        self.freq_hz = freq_hz;
    }

    /// Selects whether [`Mcu::run_program`] uses the micro-op block engine
    /// (`true`, the process default) or the classic one-instruction step
    /// loop (`false`). Both are bit-identical; see
    /// [`ulp_isa::Core::set_microop`].
    pub fn set_microop(&mut self, on: bool) {
        self.core.set_microop(on);
    }

    /// Reads a core register (for result inspection in tests/examples).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.core.reg(r)
    }

    /// Writes data into host SRAM.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Bus`] outside the SRAM window.
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) -> Result<(), McuError> {
        Ok(self.mem.write_bytes(addr, bytes)?)
    }

    /// Reads data from host SRAM.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Bus`] outside the SRAM window.
    pub fn read_mem(&self, addr: u32, len: usize) -> Result<Vec<u8>, McuError> {
        Ok(self.mem.read_bytes(addr, len)?.to_vec())
    }

    /// Loads `prog` at the SRAM base and runs it to completion with the
    /// given initial register arguments, using the default cycle budget.
    ///
    /// # Errors
    ///
    /// Returns [`McuError`] on faults or timeout.
    pub fn run_program(&mut self, prog: &Program, args: &[(Reg, u32)]) -> Result<McuRun, McuError> {
        self.run_program_with_budget(prog, args, Self::DEFAULT_MAX_CYCLES)
    }

    /// Like [`Mcu::run_program`] with an explicit cycle budget.
    ///
    /// # Errors
    ///
    /// Returns [`McuError`] on faults or timeout.
    pub fn run_program_with_budget(
        &mut self,
        prog: &Program,
        args: &[(Reg, u32)],
        max_cycles: u64,
    ) -> Result<McuRun, McuError> {
        self.mem.load_program(prog, MCU_MEM_BASE)?;
        self.core.reset(MCU_MEM_BASE);
        for &(r, v) in args {
            self.core.set_reg(r, v);
        }
        let summary = self.core.run(&mut self.mem, max_cycles)?;
        if summary.state != ulp_isa::CoreState::Halted {
            return Err(McuError::Timeout { max_cycles });
        }
        let cycles = self.device.effective_cycles(summary.cycles);
        let seconds = cycles as f64 / self.freq_hz;
        Ok(McuRun {
            cycles,
            retired: summary.retired,
            seconds,
            energy_joules: self.device.run_power_w(self.freq_hz) * seconds,
        })
    }

    /// Absolute address of the rodata section when a program is loaded by
    /// [`Mcu::run_program`].
    #[must_use]
    pub fn rodata_base(prog: &Program) -> u32 {
        MCU_MEM_BASE + prog.rodata_offset() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasheet;
    use crate::MCU_DATA_BASE;
    use ulp_isa::prelude::*;

    fn sum_prog() -> Program {
        let mut a = Asm::new();
        a.la(R1, MCU_DATA_BASE);
        a.li(R2, 8);
        a.li(R3, 0);
        let top = a.new_label();
        a.bind(top);
        a.lw(R4, R1, 0);
        a.add(R3, R3, R4);
        a.addi(R1, R1, 4);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn runs_kernel_over_sram_data() {
        let mut mcu = Mcu::new(datasheet::stm32l476(), 32.0e6);
        for i in 0..8u32 {
            mcu.write_mem(MCU_DATA_BASE + 4 * i, &(i + 1).to_le_bytes())
                .unwrap();
        }
        let run = mcu.run_program(&sum_prog(), &[]).unwrap();
        assert_eq!(mcu.reg(R3), 36);
        assert!(run.retired > 0);
        assert!(run.cycles >= run.retired);
    }

    #[test]
    fn seconds_scale_with_frequency() {
        let prog = sum_prog();
        let mut fast = Mcu::new(datasheet::stm32l476(), 32.0e6);
        let mut slow = Mcu::new(datasheet::stm32l476(), 4.0e6);
        let rf = fast.run_program(&prog, &[]).unwrap();
        let rs = slow.run_program(&prog, &[]).unwrap();
        assert_eq!(rf.cycles, rs.cycles);
        assert!((rs.seconds / rf.seconds - 8.0).abs() < 1e-9);
    }

    #[test]
    fn m3_slower_or_equal_to_m4_with_macs() {
        let mut a = Asm::new();
        a.li(R1, 3);
        a.li(R2, 4);
        for _ in 0..32 {
            a.mac(R3, R1, R2);
        }
        a.halt();
        let prog = a.finish().unwrap();
        // EFM32 is an M3, L476 an M4; compare raw simulated cycles at equal
        // frequency.
        let mut m3 = Mcu::new(datasheet::efm32(), 32.0e6);
        let mut m4 = Mcu::new(datasheet::stm32l476(), 32.0e6);
        let r3 = m3.run_program(&prog, &[]).unwrap();
        let r4 = m4.run_program(&prog, &[]).unwrap();
        assert!(r3.cycles > r4.cycles);
    }

    #[test]
    fn msp430_cycle_factor_applies() {
        let prog = sum_prog();
        let mut msp = Mcu::new(datasheet::msp430(), 16.0e6);
        let mut efm = Mcu::new(datasheet::efm32(), 16.0e6);
        for i in 0..8u32 {
            msp.write_mem(MCU_DATA_BASE + 4 * i, &1u32.to_le_bytes())
                .unwrap();
            efm.write_mem(MCU_DATA_BASE + 4 * i, &1u32.to_le_bytes())
                .unwrap();
        }
        let rm = msp.run_program(&prog, &[]).unwrap();
        let re = efm.run_program(&prog, &[]).unwrap();
        assert!((rm.cycles as f64 / re.cycles as f64 - 2.2).abs() < 0.01);
    }

    #[test]
    fn args_set_registers() {
        let mut a = Asm::new();
        a.add(R5, R3, R4);
        a.halt();
        let prog = a.finish().unwrap();
        let mut mcu = Mcu::new(datasheet::stm32l476(), 32.0e6);
        mcu.run_program(&prog, &[(R3, 30), (R4, 12)]).unwrap();
        assert_eq!(mcu.reg(R5), 42);
    }

    #[test]
    fn timeout_reported() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.jmp(top);
        let prog = a.finish().unwrap();
        let mut mcu = Mcu::new(datasheet::stm32l476(), 32.0e6);
        assert!(matches!(
            mcu.run_program_with_budget(&prog, &[], 10_000),
            Err(McuError::Timeout { .. })
        ));
    }

    #[test]
    fn energy_consistent_with_device_model() {
        let mut mcu = Mcu::new(datasheet::stm32l476(), 32.0e6);
        let run = mcu.run_program(&sum_prog(), &[]).unwrap();
        let expect = mcu.device().run_energy_joules(run.cycles, 32.0e6);
        assert!((run.energy_joules - expect).abs() < 1e-15);
    }
}
