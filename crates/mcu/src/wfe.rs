//! WFE sleep with a host-side watchdog on the event wire.
//!
//! During an offloaded computation the host executes WFE and sleeps until
//! the accelerator raises the *end-of-computation* GPIO event (paper
//! §III-C). A real deployment cannot trust that event: the accelerator may
//! hang, or the wire may be stuck. The host therefore arms a low-power
//! timer — every Cortex-M ULP part has an RTC/LPTIM that keeps counting in
//! sleep — before entering WFE, and wakes on **whichever fires first**:
//! the event edge or the watchdog deadline.
//!
//! [`wfe_wait`] resolves that race in host-clock cycles. The host draws
//! sleep power for the whole slept interval either way (the timer's extra
//! draw is nanoamps, far below the modeled sleep floor); what the outcome
//! decides is *how long* the host sleeps and whether recovery must run
//! afterwards.

/// Why the host left WFE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeReason {
    /// The end-of-computation event arrived.
    Event,
    /// The watchdog deadline expired first — the accelerator is presumed
    /// hung and recovery (retry or host fallback) takes over.
    Watchdog,
}

/// Resolved WFE sleep interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WfeWait {
    /// Host cycles spent asleep before waking.
    pub slept_cycles: u64,
    /// Which side of the race woke the host.
    pub woke_by: WakeReason,
}

impl WfeWait {
    /// Seconds asleep at the given host clock.
    #[must_use]
    pub fn slept_seconds(&self, mcu_hz: f64) -> f64 {
        self.slept_cycles as f64 / mcu_hz
    }
}

/// Sleeps until the event wire fires or the watchdog expires, whichever
/// comes first.
///
/// * `event_at_cycles` — host cycles until the end-of-computation event,
///   or `None` if it never fires (accelerator hang, stuck wire).
/// * `watchdog_cycles` — armed deadline in host cycles, or `None` for an
///   unguarded wait.
///
/// # Panics
///
/// Panics if both are `None`: that wait never terminates, which a
/// simulator must refuse to model silently.
#[must_use]
pub fn wfe_wait(event_at_cycles: Option<u64>, watchdog_cycles: Option<u64>) -> WfeWait {
    match (event_at_cycles, watchdog_cycles) {
        (Some(ev), Some(wd)) if ev <= wd => WfeWait {
            slept_cycles: ev,
            woke_by: WakeReason::Event,
        },
        (Some(_), Some(wd)) | (None, Some(wd)) => WfeWait {
            slept_cycles: wd,
            woke_by: WakeReason::Watchdog,
        },
        (Some(ev), None) => WfeWait {
            slept_cycles: ev,
            woke_by: WakeReason::Event,
        },
        (None, None) => panic!("WFE with no event and no watchdog sleeps forever"),
    }
}

/// [`wfe_wait`] plus observability: records the sleep interval (and the
/// watchdog trip, if it fired) on the host timeline of `tracer`.
///
/// * `at_ns` — host-timeline nanosecond at which WFE is entered.
/// * `mcu_hz` — host clock, to convert slept cycles to nanoseconds.
///
/// # Panics
///
/// Panics under the same condition as [`wfe_wait`].
#[must_use]
pub fn wfe_wait_traced(
    event_at_cycles: Option<u64>,
    watchdog_cycles: Option<u64>,
    tracer: &ulp_trace::Tracer,
    at_ns: u64,
    mcu_hz: f64,
) -> WfeWait {
    let wait = wfe_wait(event_at_cycles, watchdog_cycles);
    if tracer.is_enabled() {
        let slept_ns = (wait.slept_seconds(mcu_hz) * 1e9) as u64;
        tracer.emit(
            ulp_trace::Component::Host,
            ulp_trace::EventKind::WfeSleep,
            at_ns,
            slept_ns,
        );
        if wait.woke_by == WakeReason::Watchdog {
            tracer.emit(
                ulp_trace::Component::Host,
                ulp_trace::EventKind::Watchdog,
                at_ns + slept_ns,
                0,
            );
        }
    }
    wait
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_wins_when_it_arrives_first() {
        let w = wfe_wait(Some(1000), Some(5000));
        assert_eq!(
            w,
            WfeWait {
                slept_cycles: 1000,
                woke_by: WakeReason::Event
            }
        );
    }

    #[test]
    fn watchdog_wins_on_a_late_event() {
        let w = wfe_wait(Some(9000), Some(5000));
        assert_eq!(
            w,
            WfeWait {
                slept_cycles: 5000,
                woke_by: WakeReason::Watchdog
            }
        );
    }

    #[test]
    fn watchdog_catches_a_hang() {
        let w = wfe_wait(None, Some(5000));
        assert_eq!(w.woke_by, WakeReason::Watchdog);
        assert_eq!(w.slept_cycles, 5000);
    }

    #[test]
    fn tie_goes_to_the_event() {
        assert_eq!(wfe_wait(Some(5000), Some(5000)).woke_by, WakeReason::Event);
    }

    #[test]
    fn unguarded_wait_returns_the_event() {
        let w = wfe_wait(Some(123), None);
        assert_eq!(w.slept_cycles, 123);
        assert_eq!(w.woke_by, WakeReason::Event);
    }

    #[test]
    #[should_panic(expected = "sleeps forever")]
    fn hang_with_no_watchdog_is_refused() {
        let _ = wfe_wait(None, None);
    }

    #[test]
    fn slept_seconds_uses_the_host_clock() {
        let w = wfe_wait(Some(16_000), None);
        assert!((w.slept_seconds(16.0e6) - 1e-3).abs() < 1e-12);
    }
}
