//! # ulp-par — scoped parallel map for the experiment sweep harness
//!
//! The evaluation suite is a large pile of *independent* simulations
//! (benchmark × target-environment × configuration). Each simulation is
//! deterministic, so fanning the sweep out over threads must not — and with
//! this crate does not — change a single output byte: [`par_map`] preserves
//! input order exactly and the merged result is indistinguishable from the
//! serial `iter().map().collect()` it replaces.
//!
//! Built on [`std::thread::scope`] only; the workspace stays free of
//! external dependencies (no rayon).
//!
//! ## Worker-count policy
//!
//! The effective worker count is, in priority order:
//!
//! 1. the process-wide override set by [`set_jobs`] (CLI `--jobs N`),
//! 2. the `ULP_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of 1 (or a single-item input) runs inline on the caller thread —
//! no threads are spawned, so `--jobs 1` *is* the serial engine, not an
//! emulation of it.
//!
//! ## Panic propagation
//!
//! A panicking task does not poison unrelated results silently: remaining
//! work is abandoned promptly and the first panic payload is re-raised on
//! the caller thread, as if the closure had panicked in a serial loop.
//!
//! # Example
//!
//! ```
//! let squares = ulp_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide worker-count override: 0 = unset (fall through to the
/// `ULP_JOBS` environment variable, then to the detected parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
/// Intended for CLI entry points parsing `--jobs N`.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now (≥ 1). See the
/// [crate documentation](crate) for the resolution order.
#[must_use]
pub fn effective_jobs() -> usize {
    let explicit = JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("ULP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Multiplier for the seeded differential batteries, from the
/// `ULP_BATTERY_SCALE` environment variable.
///
/// The default `cargo test` run uses scale 1; the nightly CI job exports
/// a larger value to run the same seeded batteries over proportionally
/// more cases. Unset, empty, zero, or unparsable values mean 1; the
/// knob is clamped to 1000 so a typo cannot wedge CI for days.
#[must_use]
pub fn battery_scale() -> usize {
    match std::env::var("ULP_BATTERY_SCALE") {
        Ok(v) => v.trim().parse::<usize>().map_or(1, |n| n.clamp(1, 1000)),
        Err(_) => 1,
    }
}

/// Runs one battery case, appending `repro` to
/// `target/battery-failures/<battery>.txt` if the case panics (then
/// re-raising the panic). The repro line should carry everything needed
/// to replay the case — seed, case index, and the active
/// [`battery_scale`] — so CI can upload the file as an artifact and a
/// developer can reproduce the failure locally without rerunning the
/// whole battery.
///
/// Recording is best-effort: if the workspace root (the directory
/// holding `Cargo.lock`) cannot be found or written to, the panic still
/// propagates and only the side file is lost.
pub fn battery_case<T>(battery: &str, repro: &str, f: impl FnOnce() -> T) -> T {
    battery_case_in("battery-failures", battery, repro, f)
}

/// Like [`battery_case`], but recording failures under
/// `target/<dir>/<battery>.txt` — the soak batteries use
/// `"soak-failures"` so the nightly CI job can upload chaos seeds as a
/// separate artifact from the differential-battery repros.
pub fn battery_case_in<T>(dir: &str, battery: &str, repro: &str, f: impl FnOnce() -> T) -> T {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(payload) => {
            if let Some(path) = record_battery_failure(dir, battery, repro) {
                eprintln!("battery repro appended to {}", path.display());
            }
            std::panic::resume_unwind(payload);
        }
    }
}

/// Appends `repro` to `target/<dir>/<battery>.txt` under the workspace
/// root, creating the directory as needed, and returns the path.
/// Returns `None` (never panics) if the root or the file is
/// unreachable.
fn record_battery_failure(dir: &str, battery: &str, repro: &str) -> Option<std::path::PathBuf> {
    use std::io::Write;
    // Tests run with the *package* directory as cwd; walk up to the
    // workspace root (the directory holding Cargo.lock) so every
    // battery, whichever crate hosts it, records to the same place.
    let mut root = std::env::current_dir().ok()?;
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            return None;
        }
    }
    let dir = root.join("target").join(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{battery}.txt"));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .ok()?;
    writeln!(file, "{repro}").ok()?;
    Some(path)
}

/// Applies `f` to every item of `items` (with its index), fanning out over
/// [`effective_jobs`] scoped threads, and returns the results **in input
/// order**. Equivalent to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` — including
/// bit-identical outputs and panic behaviour — only faster on multi-core
/// hosts.
///
/// # Panics
///
/// Re-raises the first panic raised by `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = effective_jobs().min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Work-stealing by atomic cursor; each worker returns its (index,
    // result) pairs through its join handle, and the caller merges them
    // into order-preserving slots.
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            handles.push(scope.spawn(|| {
                let mut produced: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    // Abandon remaining work promptly once any task panics;
                    // the unwind itself is propagated via join below.
                    if i >= items.len() || panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i])));
                    match result {
                        Ok(v) => produced.push((i, v)),
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
                produced
            }));
        }
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, v) in produced {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// `set_jobs` is process-global; serialize the tests that touch it so
    /// the parallel test runner cannot interleave their settings.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    fn jobs_guard() -> MutexGuard<'static, ()> {
        JOBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn preserves_input_order() {
        let _g = jobs_guard();
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        set_jobs(Some(4));
        let parallel = par_map(&items, |_, &x| x.wrapping_mul(2654435761));
        set_jobs(None);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn passes_index_to_closure() {
        let _g = jobs_guard();
        set_jobs(Some(3));
        let out = par_map(&["a", "b", "c", "d"], |i, &s| format!("{i}{s}"));
        set_jobs(None);
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn jobs_one_runs_inline() {
        let _g = jobs_guard();
        set_jobs(Some(1));
        let tid = std::thread::current().id();
        let out = par_map(&[1, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), tid, "must not spawn");
            x + 1
        });
        set_jobs(None);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn battery_scale_parses_and_clamps() {
        let _g = jobs_guard();
        let prior = std::env::var("ULP_BATTERY_SCALE").ok();
        std::env::set_var("ULP_BATTERY_SCALE", "5");
        assert_eq!(battery_scale(), 5);
        std::env::set_var("ULP_BATTERY_SCALE", "0");
        assert_eq!(battery_scale(), 1);
        std::env::set_var("ULP_BATTERY_SCALE", "9999999");
        assert_eq!(battery_scale(), 1000);
        std::env::set_var("ULP_BATTERY_SCALE", "banana");
        assert_eq!(battery_scale(), 1);
        std::env::remove_var("ULP_BATTERY_SCALE");
        assert_eq!(battery_scale(), 1);
        if let Some(v) = prior {
            std::env::set_var("ULP_BATTERY_SCALE", v);
        }
    }

    #[test]
    fn battery_case_records_repro_and_rethrows() {
        let marker = "unit-test-battery-case";
        let caught = std::panic::catch_unwind(|| {
            battery_case("par_unit_test", marker, || panic!("expected"));
        });
        assert!(caught.is_err(), "panic must propagate");
        let path = record_battery_failure("battery-failures", "par_unit_test", marker)
            .expect("recordable");
        let recorded = std::fs::read_to_string(&path).expect("repro file");
        assert!(recorded.contains(marker));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn battery_case_in_records_to_the_named_directory() {
        let marker = "unit-test-soak-case";
        let caught = std::panic::catch_unwind(|| {
            battery_case_in("soak-failures", "par_unit_test", marker, || {
                panic!("expected")
            });
        });
        assert!(caught.is_err(), "panic must propagate");
        let path =
            record_battery_failure("soak-failures", "par_unit_test", marker).expect("recordable");
        assert!(path.ends_with("target/soak-failures/par_unit_test.txt"));
        let recorded = std::fs::read_to_string(&path).expect("repro file");
        assert!(recorded.contains(marker));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn battery_case_passes_value_through() {
        assert_eq!(battery_case("par_unit_test", "unused", || 42), 42);
    }

    #[test]
    fn propagates_panics() {
        let _g = jobs_guard();
        set_jobs(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map(&[1, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        set_jobs(None);
        assert!(result.is_err(), "panic must reach the caller");
    }
}
