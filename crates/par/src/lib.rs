//! # ulp-par — scoped parallel map for the experiment sweep harness
//!
//! The evaluation suite is a large pile of *independent* simulations
//! (benchmark × target-environment × configuration). Each simulation is
//! deterministic, so fanning the sweep out over threads must not — and with
//! this crate does not — change a single output byte: [`par_map`] preserves
//! input order exactly and the merged result is indistinguishable from the
//! serial `iter().map().collect()` it replaces.
//!
//! Built on [`std::thread::scope`] only; the workspace stays free of
//! external dependencies (no rayon).
//!
//! ## Worker-count policy
//!
//! The effective worker count is, in priority order:
//!
//! 1. the process-wide override set by [`set_jobs`] (CLI `--jobs N`),
//! 2. the `ULP_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of 1 (or a single-item input) runs inline on the caller thread —
//! no threads are spawned, so `--jobs 1` *is* the serial engine, not an
//! emulation of it.
//!
//! ## Panic propagation
//!
//! A panicking task does not poison unrelated results silently: remaining
//! work is abandoned promptly and the first panic payload is re-raised on
//! the caller thread, as if the closure had panicked in a serial loop.
//!
//! # Example
//!
//! ```
//! let squares = ulp_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide worker-count override: 0 = unset (fall through to the
/// `ULP_JOBS` environment variable, then to the detected parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
/// Intended for CLI entry points parsing `--jobs N`.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now (≥ 1). See the
/// [crate documentation](crate) for the resolution order.
#[must_use]
pub fn effective_jobs() -> usize {
    let explicit = JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("ULP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item of `items` (with its index), fanning out over
/// [`effective_jobs`] scoped threads, and returns the results **in input
/// order**. Equivalent to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` — including
/// bit-identical outputs and panic behaviour — only faster on multi-core
/// hosts.
///
/// # Panics
///
/// Re-raises the first panic raised by `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = effective_jobs().min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Work-stealing by atomic cursor; each worker returns its (index,
    // result) pairs through its join handle, and the caller merges them
    // into order-preserving slots.
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            handles.push(scope.spawn(|| {
                let mut produced: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    // Abandon remaining work promptly once any task panics;
                    // the unwind itself is propagated via join below.
                    if i >= items.len() || panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i])));
                    match result {
                        Ok(v) => produced.push((i, v)),
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
                produced
            }));
        }
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, v) in produced {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// `set_jobs` is process-global; serialize the tests that touch it so
    /// the parallel test runner cannot interleave their settings.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    fn jobs_guard() -> MutexGuard<'static, ()> {
        JOBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn preserves_input_order() {
        let _g = jobs_guard();
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        set_jobs(Some(4));
        let parallel = par_map(&items, |_, &x| x.wrapping_mul(2654435761));
        set_jobs(None);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn passes_index_to_closure() {
        let _g = jobs_guard();
        set_jobs(Some(3));
        let out = par_map(&["a", "b", "c", "d"], |i, &s| format!("{i}{s}"));
        set_jobs(None);
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn jobs_one_runs_inline() {
        let _g = jobs_guard();
        set_jobs(Some(1));
        let tid = std::thread::current().id();
        let out = par_map(&[1, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), tid, "must not spawn");
            x + 1
        });
        set_jobs(None);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn propagates_panics() {
        let _g = jobs_guard();
        set_jobs(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map(&[1, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        set_jobs(None);
        assert!(result.is_err(), "panic must reach the caller");
    }
}
