//! Sliding-window frame delivery: in-flight pipelining over the seq/ACK
//! framing.
//!
//! Stop-and-wait acknowledgement wastes the link whenever more than one
//! frame is ready — exactly the situation the pipelined offload engine
//! creates by chunking `map` payloads. This module adds a
//! **selective-repeat** sliding window on top of the existing 4-bit
//! sequence numbers: the sender keeps up to [`MAX_WINDOW`] frames in
//! flight, the receiver accepts good frames out of order (buffering them
//! until the in-order prefix is complete) and only damaged frames are
//! retransmitted. ACKs still ride the full-duplex turnaround phase of the
//! next command, so a fault-free window costs **zero additional link
//! time** over back-to-back frames.
//!
//! The 4-bit sequence space allows a window of at most 8 before a
//! retransmitted frame becomes indistinguishable from a new one
//! (selective repeat requires `window ≤ seq_space / 2`).
//!
//! Everything here operates on real wire bytes through the
//! [`FaultInjector`] byte channel, so corruption, truncation and drops
//! exercise the same CRC/parse path the hardening tests cover.

use std::collections::BTreeMap;

use crate::fault::{FaultInjector, TxOutcome};
use crate::frame::Frame;

/// Largest legal window: half the 4-bit sequence space, the selective
/// repeat correctness bound.
pub const MAX_WINDOW: usize = 8;

/// What the receiver did with one arriving wire buffer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RxAction {
    /// The frame completed an in-order prefix: these frames (the new one
    /// plus any previously buffered successors) are now delivered to the
    /// application, in order.
    Deliver(Vec<Frame>),
    /// The frame is good but ahead of the in-order point; it is buffered
    /// and individually acknowledged (selective repeat).
    Buffered,
    /// The frame was already delivered (its ACK raced a retransmission);
    /// it is discarded and re-acknowledged.
    Duplicate,
    /// The bytes did not parse (CRC mismatch, truncation, structural
    /// damage): the receiver answers NACK and the sender must retransmit.
    Nack,
    /// The sequence number falls outside both the receive window and the
    /// duplicate window — impossible while `window ≤` [`MAX_WINDOW`].
    Reject,
}

/// Selective-repeat receiver: tracks the next expected in-order frame and
/// buffers up to `window` good frames ahead of it.
#[derive(Clone, Debug)]
pub struct WindowReceiver {
    window: usize,
    /// Absolute index (not mod 16) of the next in-order frame.
    base: u64,
    pending: BTreeMap<u64, Frame>,
}

impl WindowReceiver {
    /// A receiver for the given window (clamped to `1..=`[`MAX_WINDOW`]).
    #[must_use]
    pub fn new(window: usize) -> Self {
        WindowReceiver {
            window: window.clamp(1, MAX_WINDOW),
            base: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Absolute index of the next in-order frame the receiver expects.
    #[must_use]
    pub fn expected(&self) -> u64 {
        self.base
    }

    /// Processes one arriving wire buffer.
    pub fn accept(&mut self, wire: &[u8]) -> RxAction {
        let Ok((seq, frame)) = Frame::from_wire_seq(wire) else {
            return RxAction::Nack;
        };
        // Map the 4-bit sequence number back to an absolute index relative
        // to the receive base. Offsets in [0, window) are new frames;
        // offsets in [16 - window, 16) are retransmissions of already
        // delivered frames whose ACK the sender had not seen yet.
        let off = u64::from(seq.wrapping_sub((self.base % 16) as u8) & 0x0F);
        if off < self.window as u64 {
            let abs = self.base + off;
            if abs == self.base {
                let mut out = vec![frame];
                self.base += 1;
                while let Some(next) = self.pending.remove(&self.base) {
                    out.push(next);
                    self.base += 1;
                }
                RxAction::Deliver(out)
            } else {
                match self.pending.entry(abs) {
                    std::collections::btree_map::Entry::Occupied(_) => RxAction::Duplicate,
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(frame);
                        RxAction::Buffered
                    }
                }
            }
        } else if off >= 16 - self.window as u64 {
            RxAction::Duplicate
        } else {
            RxAction::Reject
        }
    }
}

/// Counters of one [`SlidingWindow::deliver`] run.
///
/// Exact accounting invariants (asserted by the hardening tests):
/// `transmissions == frames + retransmissions` and
/// `retransmissions == dropped + truncated + rejected` — every bad
/// outcome costs exactly one retransmission of that frame and nothing
/// else (selective repeat never resends an acknowledged successor).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WindowStats {
    /// Distinct frames handed to `deliver`.
    pub frames: u64,
    /// Wire transmissions, including retransmissions.
    pub transmissions: u64,
    /// Transmissions beyond the first attempt of each frame.
    pub retransmissions: u64,
    /// Frames the injector dropped whole (sender timeout).
    pub dropped: u64,
    /// Frames the injector cut short (receiver NACK).
    pub truncated: u64,
    /// Frames the receiver could not accept: CRC mismatch or structural
    /// damage that survived the CRC but failed frame validation.
    pub rejected: u64,
    /// Corrupted frames that slipped past every check and were delivered
    /// with bad payload bytes.
    pub delivered_corrupt: u64,
    /// Largest number of frames simultaneously unacknowledged.
    pub max_in_flight: usize,
}

/// A frame exhausted its retransmission budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowExhausted {
    /// Index (within the `deliver` batch) of the failing frame.
    pub frame: usize,
    /// Attempts made, including the first transmission.
    pub attempts: u32,
}

impl std::fmt::Display for WindowExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame {} undelivered after {} attempts",
            self.frame, self.attempts
        )
    }
}

impl std::error::Error for WindowExhausted {}

/// Selective-repeat sender plus its matched receiver: the window keeps up
/// to `window` frames in flight, sequence numbers stay continuous across
/// [`deliver`](SlidingWindow::deliver) calls (one call per chunked
/// transfer, many calls per offload queue).
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    window: usize,
    next_abs: u64,
    receiver: WindowReceiver,
}

impl SlidingWindow {
    /// A window of the given size, clamped to `1..=`[`MAX_WINDOW`].
    #[must_use]
    pub fn new(window: usize) -> Self {
        let window = window.clamp(1, MAX_WINDOW);
        SlidingWindow {
            window,
            next_abs: 0,
            receiver: WindowReceiver::new(window),
        }
    }

    /// The clamped window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes `frames` through the fault channel with up to `window`
    /// frames in flight, retrying damaged frames until everything is
    /// delivered in order. Returns the frames as the receiver saw them
    /// (bit-identical to the input unless a corruption escaped every
    /// check) and the run's counters.
    ///
    /// # Errors
    ///
    /// [`WindowExhausted`] when one frame fails `max_attempts` times;
    /// frames delivered before the failure are lost to the caller, which
    /// mirrors the offload runtime falling back to the host.
    pub fn deliver(
        &mut self,
        frames: &[Frame],
        injector: &mut FaultInjector,
        max_attempts: u32,
    ) -> Result<(Vec<Frame>, WindowStats), WindowExhausted> {
        let mut stats = WindowStats {
            frames: frames.len() as u64,
            ..WindowStats::default()
        };
        let mut delivered = Vec::with_capacity(frames.len());
        let mut acked = vec![false; frames.len()];
        let mut attempts = vec![0u32; frames.len()];
        let mut send_base = 0usize;
        while send_base < frames.len() {
            let hi = (send_base + self.window).min(frames.len());
            let in_flight = acked[send_base..hi].iter().filter(|a| !**a).count();
            stats.max_in_flight = stats.max_in_flight.max(in_flight);
            for i in send_base..hi {
                if acked[i] {
                    continue;
                }
                if attempts[i] >= max_attempts {
                    return Err(WindowExhausted {
                        frame: i,
                        attempts: attempts[i],
                    });
                }
                attempts[i] += 1;
                stats.transmissions += 1;
                if attempts[i] > 1 {
                    stats.retransmissions += 1;
                }
                let abs = self.next_abs + i as u64;
                let mut wire = frames[i].to_wire_seq((abs % 16) as u8);
                let outcome = injector.transmit(&mut wire);
                match outcome {
                    TxOutcome::Dropped => {
                        stats.dropped += 1;
                        continue;
                    }
                    TxOutcome::Truncated => {
                        stats.truncated += 1;
                        // The mangled bytes still reach the receiver, which
                        // rejects them; only the *counting* differs from a
                        // CRC reject (the sender sees a timeout-shaped gap).
                        let _ = self.receiver.accept(&wire);
                        continue;
                    }
                    TxOutcome::Delivered | TxOutcome::Corrupted { .. } => {}
                }
                match self.receiver.accept(&wire) {
                    RxAction::Deliver(run) => {
                        delivered.extend(run);
                        acked[i] = true;
                    }
                    RxAction::Buffered | RxAction::Duplicate => acked[i] = true,
                    RxAction::Nack | RxAction::Reject => stats.rejected += 1,
                }
                if acked[i] && matches!(outcome, TxOutcome::Corrupted { .. }) {
                    stats.delivered_corrupt += 1;
                }
            }
            while send_base < frames.len() && acked[send_base] {
                send_base += 1;
            }
        }
        self.next_abs += frames.len() as u64;
        Ok((delivered, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn payload_frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::Write {
                addr: 0x1000_0000 + (i as u32) * 64,
                data: vec![i as u8; 16 + i % 5],
            })
            .collect()
    }

    #[test]
    fn window_is_clamped_to_the_sequence_space_bound() {
        assert_eq!(SlidingWindow::new(0).window(), 1);
        assert_eq!(SlidingWindow::new(4).window(), 4);
        assert_eq!(SlidingWindow::new(100).window(), MAX_WINDOW);
    }

    #[test]
    fn clean_channel_delivers_in_order_without_retransmissions() {
        let frames = payload_frames(40);
        let mut win = SlidingWindow::new(4);
        let mut inj = FaultInjector::new(FaultConfig::default());
        let (got, stats) = win.deliver(&frames, &mut inj, 8).unwrap();
        assert_eq!(got, frames);
        assert_eq!(stats.transmissions, 40);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.max_in_flight, 4);
    }

    #[test]
    fn sequence_numbers_stay_continuous_across_deliver_calls() {
        let mut win = SlidingWindow::new(8);
        let mut inj = FaultInjector::new(FaultConfig::default());
        for batch in 0..5 {
            let frames = payload_frames(7 + batch);
            let (got, _) = win.deliver(&frames, &mut inj, 4).unwrap();
            assert_eq!(got, frames, "batch {batch}");
        }
    }

    #[test]
    fn receiver_reorders_out_of_order_frames() {
        let frames = payload_frames(3);
        let mut rx = WindowReceiver::new(4);
        assert_eq!(rx.accept(&frames[1].to_wire_seq(1)), RxAction::Buffered);
        assert_eq!(rx.accept(&frames[2].to_wire_seq(2)), RxAction::Buffered);
        match rx.accept(&frames[0].to_wire_seq(0)) {
            RxAction::Deliver(run) => assert_eq!(run, frames),
            other => panic!("expected full in-order delivery, got {other:?}"),
        }
        assert_eq!(rx.expected(), 3);
    }

    #[test]
    fn receiver_discards_duplicates_and_rejects_garbage() {
        let frames = payload_frames(3);
        let mut rx = WindowReceiver::new(4);
        assert!(matches!(
            rx.accept(&frames[0].to_wire_seq(0)),
            RxAction::Deliver(_)
        ));
        // The same frame again: its ACK was lost, the sender retried.
        assert_eq!(rx.accept(&frames[0].to_wire_seq(0)), RxAction::Duplicate);
        // A buffered out-of-order frame retried is also a duplicate.
        assert_eq!(rx.accept(&frames[2].to_wire_seq(2)), RxAction::Buffered);
        assert_eq!(rx.accept(&frames[2].to_wire_seq(2)), RxAction::Duplicate);
        // Unparseable bytes draw a NACK.
        assert_eq!(rx.accept(&[0xFF; 4]), RxAction::Nack);
        // A sequence number far outside both windows is rejected.
        let mut rx = WindowReceiver::new(2);
        assert_eq!(rx.accept(&frames[0].to_wire_seq(7)), RxAction::Reject);
    }

    #[test]
    fn exhausted_retries_surface_as_an_error() {
        let frames = payload_frames(3);
        let mut win = SlidingWindow::new(2);
        let mut inj = FaultInjector::new(FaultConfig {
            drop_rate: 1.0,
            ..FaultConfig::default()
        });
        let err = win.deliver(&frames, &mut inj, 3).unwrap_err();
        assert_eq!(err.frame, 0);
        assert_eq!(err.attempts, 3);
        assert!(err.to_string().contains("after 3 attempts"));
    }
}
