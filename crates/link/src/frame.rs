//! The on-wire command protocol for code offload and data exchange.
//!
//! ## Wire format
//!
//! Every frame occupies `10 + payload` bytes:
//!
//! ```text
//! offset  size  field
//! 0       1     low nibble: command · high nibble: sequence number (mod 16)
//! 1       4     u32 LE: address (entry point for SetEntry, 0 for Ack/Nack)
//! 5       3     u24 LE: payload length (Write) or read length (Read)
//! 8       n     payload (Write only)
//! 8+n     2     CRC-16/CCITT-FALSE over bytes 0..8+n, big-endian
//! ```
//!
//! The 10-byte overhead is **identical** to the original
//! `cmd(1) addr(4) len(4) checksum(1)` framing: the sequence number rides
//! in the unused high nibble of the command byte and the length field
//! gives up its (never exercised) top byte to the second CRC byte. Every
//! transfer-cost figure in the evaluation is therefore unchanged by the
//! integrity upgrade.
//!
//! ## Reliability
//!
//! [`Frame::Ack`]/[`Frame::Nack`] close the loop: the receiver answers
//! every data frame with an ACK (CRC good) or NACK (CRC bad, truncated)
//! echoing the sequence number. Because SPI is full duplex, the ACK of
//! frame *n* shifts out during the command/turnaround phase of frame
//! *n + 1* — the protocol overhead bits the timing model already charges —
//! so acknowledgements cost **zero additional link time**. Only NACK-driven
//! *retransmissions* cost extra, and those are charged by the offload
//! runtime (`ulp-offload`) as resilience overhead. Sequence numbers let
//! the receiver discard duplicates when an ACK (rather than the data
//! frame) was lost.

use std::error::Error;
use std::fmt;

use crate::crc::crc16;

/// Largest payload a frame can carry (24-bit length field; the accelerator
/// memory window itself is only 16 MiB).
pub const MAX_PAYLOAD: usize = 0x00FF_FFFF;

/// Per-frame wire overhead: 8 header bytes + 2 CRC bytes.
pub const FRAME_OVERHEAD: usize = 10;

const CMD_WRITE: u8 = 0x1;
const CMD_READ: u8 = 0x2;
const CMD_SET_ENTRY: u8 = 0x3;
const CMD_ACK: u8 = 0x4;
const CMD_NACK: u8 = 0x5;

/// Commands of the offload wire protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// Write a block (binary or input data) into accelerator memory.
    Write {
        /// Destination address in the accelerator address space.
        addr: u32,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Read a block (results) from accelerator memory.
    Read {
        /// Source address in the accelerator address space.
        addr: u32,
        /// Number of bytes to read.
        len: u32,
    },
    /// Set the accelerator entry point (boot address register).
    SetEntry {
        /// Entry address of the offloaded binary.
        entry: u32,
    },
    /// Receiver acknowledgement: the frame with this sequence number
    /// arrived with a good CRC.
    Ack {
        /// Sequence number being acknowledged.
        seq: u8,
    },
    /// Receiver negative acknowledgement: the frame with this sequence
    /// number failed its CRC (or arrived truncated) — retransmit.
    Nack {
        /// Sequence number being rejected.
        seq: u8,
    },
}

/// Error produced when parsing a wire frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The buffer is shorter than a frame header.
    Truncated,
    /// Unknown command nibble.
    BadCommand(u8),
    /// Payload length field disagrees with the buffer.
    BadLength {
        /// Length claimed by the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// CRC-16 mismatch.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::BadCommand(c) => write!(f, "unknown command nibble {c:#03x}"),
            FrameError::BadLength { expected, actual } => {
                write!(
                    f,
                    "length mismatch: header says {expected}, buffer has {actual}"
                )
            }
            FrameError::BadChecksum => f.write_str("CRC-16 mismatch"),
        }
    }
}

impl Error for FrameError {}

impl Frame {
    /// Serializes the frame with sequence number 0.
    ///
    /// # Panics
    ///
    /// Panics if a `Write` payload or `Read` length exceeds
    /// [`MAX_PAYLOAD`] (the accelerator memory window is smaller than
    /// that, so hitting this is a programming error).
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        self.to_wire_seq(0)
    }

    /// Serializes the frame carrying the given sequence number (taken
    /// modulo 16 — the field is 4 bits wide).
    ///
    /// # Panics
    ///
    /// Panics if a `Write` payload or `Read` length exceeds
    /// [`MAX_PAYLOAD`].
    #[must_use]
    pub fn to_wire_seq(&self, seq: u8) -> Vec<u8> {
        let (cmd, addr, len, payload): (u8, u32, usize, &[u8]) = match self {
            Frame::Write { addr, data } => {
                assert!(
                    data.len() <= MAX_PAYLOAD,
                    "Write payload exceeds 24-bit length field"
                );
                (CMD_WRITE, *addr, data.len(), data)
            }
            Frame::Read { addr, len } => {
                assert!(
                    (*len as usize) <= MAX_PAYLOAD,
                    "Read length exceeds 24-bit length field"
                );
                (CMD_READ, *addr, *len as usize, &[])
            }
            Frame::SetEntry { entry } => (CMD_SET_ENTRY, *entry, 0, &[]),
            Frame::Ack { seq: s } => (CMD_ACK, u32::from(*s), 0, &[]),
            Frame::Nack { seq: s } => (CMD_NACK, u32::from(*s), 0, &[]),
        };
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        out.push(cmd | (seq & 0x0F) << 4);
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&(len as u32).to_le_bytes()[..3]);
        out.extend_from_slice(payload);
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parses a frame from wire bytes, discarding the sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on malformed input. Never panics and never
    /// allocates more than the input buffer holds, whatever the bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Frame, FrameError> {
        Self::from_wire_seq(bytes).map(|(_, frame)| frame)
    }

    /// Parses a frame and its sequence number from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on malformed input.
    pub fn from_wire_seq(bytes: &[u8]) -> Result<(u8, Frame), FrameError> {
        if bytes.len() < FRAME_OVERHEAD {
            return Err(FrameError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 2);
        if crc16(body) != u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]) {
            return Err(FrameError::BadChecksum);
        }
        let cmd = body[0] & 0x0F;
        let seq = body[0] >> 4;
        let addr = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
        let len = usize::from(body[5]) | usize::from(body[6]) << 8 | usize::from(body[7]) << 16;
        let payload = &body[8..];
        match cmd {
            CMD_WRITE => {
                if payload.len() != len {
                    return Err(FrameError::BadLength {
                        expected: len,
                        actual: payload.len(),
                    });
                }
                Ok((
                    seq,
                    Frame::Write {
                        addr,
                        data: payload.to_vec(),
                    },
                ))
            }
            CMD_READ | CMD_SET_ENTRY | CMD_ACK | CMD_NACK => {
                if !payload.is_empty() {
                    return Err(FrameError::BadLength {
                        expected: 0,
                        actual: payload.len(),
                    });
                }
                let frame = match cmd {
                    CMD_READ => Frame::Read {
                        addr,
                        len: len as u32,
                    },
                    CMD_SET_ENTRY => Frame::SetEntry { entry: addr },
                    CMD_ACK => Frame::Ack {
                        seq: (addr & 0x0F) as u8,
                    },
                    _ => Frame::Nack {
                        seq: (addr & 0x0F) as u8,
                    },
                };
                Ok((seq, frame))
            }
            other => Err(FrameError::BadCommand(other)),
        }
    }

    /// Bytes this frame occupies on the wire.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        match self {
            Frame::Write { data, .. } => FRAME_OVERHEAD + data.len(),
            _ => FRAME_OVERHEAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_write() {
        let f = Frame::Write {
            addr: 0x1000_0000,
            data: vec![1, 2, 3, 4, 5],
        };
        let wire = f.to_wire();
        assert_eq!(wire.len(), f.wire_bytes());
        assert_eq!(Frame::from_wire(&wire).unwrap(), f);
    }

    #[test]
    fn frame_roundtrip_all_commands() {
        for f in [
            Frame::Read {
                addr: 0x1C00_0000,
                len: 4096,
            },
            Frame::SetEntry { entry: 0x1C00_0100 },
            Frame::Ack { seq: 7 },
            Frame::Nack { seq: 15 },
        ] {
            let wire = f.to_wire();
            assert_eq!(wire.len(), f.wire_bytes());
            assert_eq!(Frame::from_wire(&wire).unwrap(), f);
        }
    }

    #[test]
    fn sequence_number_survives_the_roundtrip() {
        let f = Frame::Write {
            addr: 0x10,
            data: vec![0xAB; 8],
        };
        for seq in 0..16u8 {
            let wire = f.to_wire_seq(seq);
            let (got, frame) = Frame::from_wire_seq(&wire).unwrap();
            assert_eq!(got, seq);
            assert_eq!(frame, f);
        }
        // Sequence numbers wrap at 16.
        assert_eq!(f.to_wire_seq(16), f.to_wire_seq(0));
    }

    #[test]
    fn overhead_is_ten_bytes_like_the_legacy_format() {
        assert_eq!(FRAME_OVERHEAD, 10);
        assert_eq!(Frame::Read { addr: 0, len: 1 }.to_wire().len(), 10);
        assert_eq!(
            Frame::Write {
                addr: 0,
                data: vec![0; 5]
            }
            .to_wire()
            .len(),
            15
        );
    }

    #[test]
    fn corrupted_frame_detected() {
        let f = Frame::Write {
            addr: 0x10,
            data: vec![9; 16],
        };
        for byte in 0..f.wire_bytes() {
            let mut wire = f.to_wire();
            wire[byte] ^= 0x40;
            assert_eq!(
                Frame::from_wire(&wire),
                Err(FrameError::BadChecksum),
                "byte {byte}"
            );
        }
    }

    #[test]
    fn truncated_and_bad_command_detected() {
        assert_eq!(Frame::from_wire(&[1, 2, 3]), Err(FrameError::Truncated));
        assert_eq!(Frame::from_wire(&[]), Err(FrameError::Truncated));
        // A well-formed CRC over an unknown command nibble.
        let mut bogus = vec![0x0Fu8, 0, 0, 0, 0, 0, 0, 0];
        let crc = crc16(&bogus);
        bogus.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(Frame::from_wire(&bogus), Err(FrameError::BadCommand(0x0F)));
    }

    #[test]
    fn length_field_lies_detected() {
        let f = Frame::Write {
            addr: 0,
            data: vec![1, 2, 3],
        };
        let mut wire = f.to_wire();
        // Claim 4 bytes but carry 3, with a recomputed (valid) CRC.
        wire[5] = 4;
        let body_end = wire.len() - 2;
        let crc = crc16(&wire[..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            Frame::from_wire(&wire),
            Err(FrameError::BadLength {
                expected: 4,
                actual: 3
            })
        );
    }

    #[test]
    fn trailing_garbage_on_payloadless_frames_detected() {
        let mut wire = Frame::Ack { seq: 3 }.to_wire();
        wire.truncate(8);
        wire.push(0xEE);
        let crc = crc16(&wire);
        wire.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            Frame::from_wire(&wire),
            Err(FrameError::BadLength {
                expected: 0,
                actual: 1
            })
        );
    }

    #[test]
    fn errors_display_and_compose() {
        let err: Box<dyn std::error::Error> = Box::new(Frame::from_wire(&[0u8; 3]).unwrap_err());
        assert_eq!(err.to_string(), "frame truncated");
        fn parse(bytes: &[u8]) -> Result<Frame, Box<dyn std::error::Error>> {
            Ok(Frame::from_wire(bytes)?)
        }
        assert!(parse(&[0u8; 12]).is_err());
    }
}
