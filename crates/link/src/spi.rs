//! Bit-level SPI/QSPI transfer timing and link power.

use std::fmt;

use ulp_trace::{Component, EventKind, Tracer};

/// Data width of the serial link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpiWidth {
    /// Classic single-bit SPI (the physical prototype in the paper: the
    /// Nucleo board does not expose the QSPI pins).
    #[default]
    Single,
    /// Quad SPI, 4 bits per clock (used for the paper's Fig. 5b model).
    Quad,
}

impl SpiWidth {
    /// Bits moved per SPI clock cycle.
    #[must_use]
    pub fn bits_per_clock(self) -> u32 {
        match self {
            SpiWidth::Single => 1,
            SpiWidth::Quad => 4,
        }
    }
}

impl fmt::Display for SpiWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiWidth::Single => f.write_str("spi"),
            SpiWidth::Quad => f.write_str("qspi"),
        }
    }
}

/// Accumulated link statistics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkStats {
    /// Bytes sent host → accelerator.
    pub bytes_tx: u64,
    /// Bytes received accelerator → host.
    pub bytes_rx: u64,
    /// Transactions performed.
    pub transactions: u64,
    /// Seconds the link spent shifting bits.
    pub busy_seconds: f64,
    /// Energy dissipated by the link drivers, in joules.
    pub energy_joules: f64,
}

/// Timing and power model of the serial coupling link.
///
/// Per-transaction protocol overhead covers the command/address phase and
/// chip-select framing.
#[derive(Clone, Debug)]
pub struct SpiLink {
    width: SpiWidth,
    prescaler: u32,
    overhead_bits: u32,
    energy_per_bit_j: f64,
    stats: LinkStats,
    tracer: Tracer,
}

impl SpiLink {
    /// Default per-transaction overhead: 8 command bits + 32 address bits +
    /// 8 turnaround bits. The turnaround phase is also where the receiver's
    /// ACK/NACK of the previous frame shifts out (SPI is full duplex), so
    /// acknowledgements are free at this layer.
    pub const DEFAULT_OVERHEAD_BITS: u32 = 48;

    /// Default energy per transferred bit (drivers + pads), calibrated to a
    /// low-power SPI PHY: ≈1 pJ/bit.
    pub const DEFAULT_ENERGY_PER_BIT: f64 = 1.0e-12;

    /// Creates a link of the given width; the SPI clock is the MCU core
    /// clock divided by `prescaler`.
    ///
    /// # Panics
    ///
    /// Panics if `prescaler` is zero.
    #[must_use]
    pub fn new(width: SpiWidth, prescaler: u32) -> Self {
        assert!(prescaler >= 1, "prescaler must be at least 1");
        SpiLink {
            width,
            prescaler,
            overhead_bits: Self::DEFAULT_OVERHEAD_BITS,
            energy_per_bit_j: Self::DEFAULT_ENERGY_PER_BIT,
            stats: LinkStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a structured event tracer. Frame transfers are recorded on
    /// the link's cumulative busy-time axis, in nanoseconds.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Link width.
    #[must_use]
    pub fn width(&self) -> SpiWidth {
        self.width
    }

    /// Clock prescaler from the MCU core clock.
    #[must_use]
    pub fn prescaler(&self) -> u32 {
        self.prescaler
    }

    /// SPI clock frequency for a given MCU core frequency.
    #[must_use]
    pub fn clock_hz(&self, mcu_hz: f64) -> f64 {
        mcu_hz / f64::from(self.prescaler)
    }

    /// Payload bandwidth in bytes per second (ignoring per-transaction
    /// overhead).
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self, mcu_hz: f64) -> f64 {
        self.clock_hz(mcu_hz) * f64::from(self.width.bits_per_clock()) / 8.0
    }

    /// Wall-clock seconds to move `bytes` of payload in one transaction at
    /// the given MCU frequency (includes the protocol overhead bits).
    #[must_use]
    pub fn transfer_seconds(&self, bytes: usize, mcu_hz: f64) -> f64 {
        let bits = bytes as f64 * 8.0 + f64::from(self.overhead_bits);
        let clocks = bits / f64::from(self.width.bits_per_clock());
        clocks / self.clock_hz(mcu_hz)
    }

    /// MCU core cycles the link is occupied by a transfer of `bytes` (the
    /// MCU DMA runs the transfer; the core may sleep meanwhile).
    #[must_use]
    pub fn transfer_mcu_cycles(&self, bytes: usize) -> u64 {
        let bits = bytes as u64 * 8 + u64::from(self.overhead_bits);
        let clocks = bits.div_ceil(u64::from(self.width.bits_per_clock()));
        clocks * u64::from(self.prescaler)
    }

    /// Energy dissipated moving `bytes` (drivers + pads).
    #[must_use]
    pub fn transfer_energy_joules(&self, bytes: usize) -> f64 {
        (bytes as f64 * 8.0 + f64::from(self.overhead_bits)) * self.energy_per_bit_j
    }

    /// Average power drawn by the link while continuously transferring at
    /// the given MCU frequency.
    #[must_use]
    pub fn active_power_watts(&self, mcu_hz: f64) -> f64 {
        self.clock_hz(mcu_hz) * f64::from(self.width.bits_per_clock()) * self.energy_per_bit_j
    }

    /// Records a host→accelerator transaction and returns its duration in
    /// seconds.
    pub fn send(&mut self, bytes: usize, mcu_hz: f64) -> f64 {
        let t = self.transfer_seconds(bytes, mcu_hz);
        self.emit_frame(
            EventKind::FrameTx {
                bytes: bytes as u32,
            },
            t,
        );
        self.stats.bytes_tx += bytes as u64;
        self.stats.transactions += 1;
        self.stats.busy_seconds += t;
        self.stats.energy_joules += self.transfer_energy_joules(bytes);
        t
    }

    /// Records an accelerator→host transaction and returns its duration in
    /// seconds.
    pub fn receive(&mut self, bytes: usize, mcu_hz: f64) -> f64 {
        let t = self.transfer_seconds(bytes, mcu_hz);
        self.emit_frame(
            EventKind::FrameRx {
                bytes: bytes as u32,
            },
            t,
        );
        self.stats.bytes_rx += bytes as u64;
        self.stats.transactions += 1;
        self.stats.busy_seconds += t;
        self.stats.energy_joules += self.transfer_energy_joules(bytes);
        t
    }

    /// Frame events land back-to-back on the cumulative busy-time axis:
    /// `busy_seconds` grows monotonically and is never reset mid-offload,
    /// so it already orders frames without an epoch.
    fn emit_frame(&self, kind: EventKind, seconds: f64) {
        if self.tracer.is_enabled() {
            let start = (self.stats.busy_seconds * 1e9) as u64;
            let dur = (seconds * 1e9) as u64;
            self.tracer.emit(Component::Link, kind, start, dur);
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

impl Default for SpiLink {
    fn default() -> Self {
        SpiLink::new(SpiWidth::Single, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spi_clock_derived_from_mcu_clock() {
        let link = SpiLink::new(SpiWidth::Single, 2);
        assert!((link.clock_hz(32.0e6) - 16.0e6).abs() < 1.0);
    }

    #[test]
    fn quad_is_four_times_single() {
        let s = SpiLink::new(SpiWidth::Single, 2);
        let q = SpiLink::new(SpiWidth::Quad, 2);
        let bw_s = s.bandwidth_bytes_per_sec(16.0e6);
        let bw_q = q.bandwidth_bytes_per_sec(16.0e6);
        assert!((bw_q / bw_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_inverse_with_mcu_freq() {
        let link = SpiLink::default();
        let fast = link.transfer_seconds(4096, 32.0e6);
        let slow = link.transfer_seconds(4096, 4.0e6);
        assert!((slow / fast - 8.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_counts_in_small_transfers() {
        let link = SpiLink::default();
        let one = link.transfer_seconds(1, 16.0e6);
        // 8 payload bits + 48 overhead bits at 8 MHz single SPI = 7 µs.
        assert!((one - 56.0 / 8.0e6).abs() < 1e-12);
    }

    #[test]
    fn mcu_cycles_round_up() {
        let link = SpiLink::new(SpiWidth::Quad, 2);
        // 1 byte: 8+48 = 56 bits / 4 = 14 clocks * 2 = 28 cycles.
        assert_eq!(link.transfer_mcu_cycles(1), 28);
    }

    #[test]
    fn send_receive_accumulate_stats() {
        let mut link = SpiLink::default();
        let t1 = link.send(100, 16.0e6);
        let t2 = link.receive(50, 16.0e6);
        let s = link.stats();
        assert_eq!(s.bytes_tx, 100);
        assert_eq!(s.bytes_rx, 50);
        assert_eq!(s.transactions, 2);
        assert!((s.busy_seconds - (t1 + t2)).abs() < 1e-15);
        assert!(s.energy_joules > 0.0);
        link.reset_stats();
        assert_eq!(link.stats().transactions, 0);
    }

    #[test]
    fn link_power_scales_with_frequency_and_width() {
        let s = SpiLink::new(SpiWidth::Single, 2);
        let q = SpiLink::new(SpiWidth::Quad, 2);
        assert!(q.active_power_watts(32.0e6) > s.active_power_watts(32.0e6));
        assert!(s.active_power_watts(32.0e6) > s.active_power_watts(8.0e6));
        // Sub-10mW system: the link must be far below a milliwatt.
        assert!(q.active_power_watts(80.0e6) < 1.0e-3);
    }
}
