//! Deterministic fault injection for the coupling link.
//!
//! A 10 mW deployment does not get a perfect channel: long flex cables,
//! marginal supply rails and clock-domain crossings produce bit errors,
//! dropped or truncated frames, and the accelerator itself can hang or
//! signal its end-of-computation event late. The [`FaultInjector`] models
//! all of these from one seeded [`XorShiftRng`] stream, so a given
//! `(seed, workload, policy)` triple replays the **exact same** fault
//! sequence — the property the resilience experiments and the acceptance
//! tests rely on.
//!
//! Two operating modes share the same random draws:
//!
//! * [`FaultInjector::transmit`] mutates real wire bytes (used by the
//!   frame-hardening tests and any future byte-accurate transport), and
//! * [`FaultInjector::assess`] draws the same outcome distribution for a
//!   frame of a given length without materializing bytes (used by the
//!   offload cost model, where data frames are accounting entities).
//!
//! With the default configuration every method is a no-op and the injector
//! reports [`inactive`](FaultConfig::is_active); the offload runtime skips
//! the resilience path entirely in that case, keeping the fault-free
//! figures bit-identical.

use ulp_rng::XorShiftRng;

use crate::crc::crc16;
use crate::GpioEvent;

/// Probability that a corruption slips past CRC-16 (2⁻¹⁶).
const CRC_ESCAPE_P: f64 = 1.0 / 65536.0;

/// Fault model of the link and event wires. All rates default to zero
/// (fault-free); [`FaultConfig::is_active`] reports whether any knob is
/// set.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultConfig {
    /// Seed of the injector's PRNG stream.
    pub seed: u64,
    /// Per-bit flip probability on the serial data lines.
    pub bit_error_rate: f64,
    /// Probability a whole frame is lost (chip-select glitch, DMA
    /// underrun). The receiver never answers; the sender times out.
    pub drop_rate: f64,
    /// Probability a frame is cut short mid-transfer.
    pub truncate_rate: f64,
    /// Probability one accelerator run hangs (no end-of-computation event
    /// ever fires).
    pub hang_rate: f64,
    /// Probability the end-of-computation event fires late.
    pub late_eoc_rate: f64,
    /// How late (accelerator cycles) a late event fires.
    pub late_eoc_cycles: u64,
    /// The fetch-enable wire is stuck: the accelerator never starts, so
    /// every run looks like a hang to the host.
    pub stuck_fetch_enable: bool,
    /// The end-of-computation wire is stuck low: the host never wakes from
    /// WFE, whatever the accelerator does.
    pub stuck_eoc: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            bit_error_rate: 0.0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            hang_rate: 0.0,
            late_eoc_rate: 0.0,
            late_eoc_cycles: 0,
            stuck_fetch_enable: false,
            stuck_eoc: false,
        }
    }
}

impl FaultConfig {
    /// Whether any fault mechanism is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.bit_error_rate > 0.0
            || self.drop_rate > 0.0
            || self.truncate_rate > 0.0
            || self.hang_rate > 0.0
            || self.late_eoc_rate > 0.0
            || self.stuck_fetch_enable
            || self.stuck_eoc
    }
}

/// Per-fault-type event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Frames passed through the injector.
    pub frames: u64,
    /// Individual bits flipped by the error process.
    pub bits_flipped: u64,
    /// Frames corrupted (≥ 1 bit flipped).
    pub frames_corrupted: u64,
    /// Frames dropped whole.
    pub frames_dropped: u64,
    /// Frames truncated mid-transfer.
    pub frames_truncated: u64,
    /// Corrupted frames whose CRC-16 accidentally still matched.
    pub crc_escapes: u64,
    /// Accelerator runs that hung (no end-of-computation event).
    pub hangs: u64,
    /// End-of-computation events that fired late.
    pub late_eocs: u64,
    /// Events swallowed by a stuck GPIO wire.
    pub stuck_wire_events: u64,
}

/// What happened to one transmitted frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOutcome {
    /// The frame arrived intact.
    Delivered,
    /// Bits flipped in flight. `escaped` is true when the corruption slips
    /// past the CRC (probability 2⁻¹⁶) and the receiver accepts bad data.
    Corrupted {
        /// The CRC failed to detect the corruption.
        escaped: bool,
    },
    /// The frame was cut short; the receiver sees a truncation / CRC error.
    Truncated,
    /// The frame vanished entirely; the sender must time out.
    Dropped,
}

/// Outcome of one accelerator run's end-of-computation event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EocOutcome {
    /// The event fired when the computation finished.
    OnTime,
    /// The event fired the given number of accelerator cycles late.
    Late(u64),
    /// The event never fired: the host's watchdog is the only way out.
    Hang,
}

/// Seeded, deterministic injector of link and event-wire faults.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: XorShiftRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for the given fault model.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            rng: XorShiftRng::seed_from_u64(cfg.seed),
            stats: FaultStats::default(),
        }
    }

    /// The fault model.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault mechanism is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Accumulated per-fault-type counters.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Resets the counters **and** the PRNG stream, replaying the fault
    /// sequence from the seed.
    pub fn reset(&mut self) {
        self.stats = FaultStats::default();
        self.rng = XorShiftRng::seed_from_u64(self.cfg.seed);
    }

    /// Whether a GPIO event wire is stuck (its events never arrive).
    #[must_use]
    pub fn wire_stuck(&self, wire: GpioEvent) -> bool {
        match wire {
            GpioEvent::FetchEnable => self.cfg.stuck_fetch_enable,
            GpioEvent::EndOfComputation => self.cfg.stuck_eoc,
        }
    }

    /// Passes real wire bytes through the fault channel, mutating them in
    /// place. Returns what the receiver observes.
    pub fn transmit(&mut self, wire: &mut Vec<u8>) -> TxOutcome {
        self.stats.frames += 1;
        if self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate) {
            self.stats.frames_dropped += 1;
            wire.clear();
            return TxOutcome::Dropped;
        }
        if self.cfg.truncate_rate > 0.0 && self.rng.gen_bool(self.cfg.truncate_rate) {
            self.stats.frames_truncated += 1;
            let keep = self.rng.gen_range(0..wire.len().max(1));
            wire.truncate(keep);
            return TxOutcome::Truncated;
        }
        let flips = self.draw_bit_flips(wire.len() * 8);
        if flips.is_empty() {
            return TxOutcome::Delivered;
        }
        for bit in &flips {
            wire[bit / 8] ^= 1 << (bit % 8);
        }
        self.stats.bits_flipped += flips.len() as u64;
        self.stats.frames_corrupted += 1;
        // A real receiver recomputes the CRC over whatever arrived; the
        // corruption escapes iff the stored CRC (possibly itself flipped)
        // still matches the recomputed one.
        let escaped = wire.len() >= 2 && {
            let (body, crc_bytes) = wire.split_at(wire.len() - 2);
            crc16(body) == u16::from_be_bytes([crc_bytes[0], crc_bytes[1]])
        };
        if escaped {
            self.stats.crc_escapes += 1;
        }
        TxOutcome::Corrupted { escaped }
    }

    /// Draws the fault outcome for a frame of `wire_bytes` length without
    /// materializing its bytes — the accounting twin of
    /// [`transmit`](Self::transmit), with the same outcome distribution.
    pub fn assess(&mut self, wire_bytes: usize) -> TxOutcome {
        self.stats.frames += 1;
        if self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate) {
            self.stats.frames_dropped += 1;
            return TxOutcome::Dropped;
        }
        if self.cfg.truncate_rate > 0.0 && self.rng.gen_bool(self.cfg.truncate_rate) {
            self.stats.frames_truncated += 1;
            return TxOutcome::Truncated;
        }
        let flips = self.count_bit_flips(wire_bytes * 8);
        if flips == 0 {
            return TxOutcome::Delivered;
        }
        self.stats.bits_flipped += flips;
        self.stats.frames_corrupted += 1;
        let escaped = self.rng.gen_bool(CRC_ESCAPE_P);
        if escaped {
            self.stats.crc_escapes += 1;
        }
        TxOutcome::Corrupted { escaped }
    }

    /// Draws the event-wire outcome for one accelerator run.
    pub fn eoc(&mut self) -> EocOutcome {
        if self.cfg.stuck_eoc || self.cfg.stuck_fetch_enable {
            self.stats.stuck_wire_events += 1;
            return EocOutcome::Hang;
        }
        if self.cfg.hang_rate > 0.0 && self.rng.gen_bool(self.cfg.hang_rate) {
            self.stats.hangs += 1;
            return EocOutcome::Hang;
        }
        if self.cfg.late_eoc_rate > 0.0 && self.rng.gen_bool(self.cfg.late_eoc_rate) {
            self.stats.late_eocs += 1;
            return EocOutcome::Late(self.cfg.late_eoc_cycles);
        }
        EocOutcome::OnTime
    }

    /// Bit positions flipped in an `n`-bit frame, via geometric gap
    /// sampling (O(flips), not O(bits)).
    fn draw_bit_flips(&mut self, n_bits: usize) -> Vec<usize> {
        let mut flips = Vec::new();
        let p = self.cfg.bit_error_rate;
        if p <= 0.0 || n_bits == 0 {
            return flips;
        }
        if p >= 1.0 {
            flips.extend(0..n_bits);
            return flips;
        }
        let ln_q = (1.0 - p).ln();
        if ln_q == 0.0 {
            // p below f64 resolution: a flip effectively never fires.
            return flips;
        }
        let mut pos = 0.0f64;
        loop {
            // Geometric gap: number of surviving bits before the next flip.
            let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
            pos += (u.ln() / ln_q).floor();
            if pos >= n_bits as f64 {
                return flips;
            }
            flips.push(pos as usize);
            pos += 1.0;
        }
    }

    /// Number of flipped bits in an `n`-bit frame (same distribution as
    /// [`draw_bit_flips`](Self::draw_bit_flips), positions not needed).
    fn count_bit_flips(&mut self, n_bits: usize) -> u64 {
        self.draw_bit_flips(n_bits).len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_inactive_and_transparent() {
        assert!(!FaultConfig::default().is_active());
        let mut inj = FaultInjector::new(FaultConfig::default());
        let frame = Frame::Write {
            addr: 0,
            data: vec![7; 64],
        };
        let mut wire = frame.to_wire();
        let orig = wire.clone();
        assert_eq!(inj.transmit(&mut wire), TxOutcome::Delivered);
        assert_eq!(wire, orig);
        assert_eq!(inj.assess(1024), TxOutcome::Delivered);
        assert_eq!(inj.eoc(), EocOutcome::OnTime);
        assert_eq!(inj.stats().bits_flipped, 0);
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let c = FaultConfig {
            bit_error_rate: 1e-3,
            drop_rate: 0.05,
            truncate_rate: 0.05,
            hang_rate: 0.1,
            ..cfg(0xFA_017)
        };
        let run = || {
            let mut inj = FaultInjector::new(c);
            let outcomes: Vec<TxOutcome> = (0..200).map(|_| inj.assess(256)).collect();
            let eocs: Vec<EocOutcome> = (0..50).map(|_| inj.eoc()).collect();
            (outcomes, eocs, *inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_replays_from_the_seed() {
        let c = FaultConfig {
            bit_error_rate: 1e-2,
            ..cfg(9)
        };
        let mut inj = FaultInjector::new(c);
        let first: Vec<TxOutcome> = (0..64).map(|_| inj.assess(128)).collect();
        inj.reset();
        let second: Vec<TxOutcome> = (0..64).map(|_| inj.assess(128)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn bit_error_rate_tracks_expectation() {
        let c = FaultConfig {
            bit_error_rate: 1e-3,
            ..cfg(3)
        };
        let mut inj = FaultInjector::new(c);
        let frames = 2000usize;
        let bytes = 128usize;
        for _ in 0..frames {
            let _ = inj.assess(bytes);
        }
        let expect = frames as f64 * bytes as f64 * 8.0 * 1e-3;
        let got = inj.stats().bits_flipped as f64;
        assert!((got - expect).abs() / expect < 0.15, "{got} vs {expect}");
    }

    #[test]
    fn corruption_is_detected_by_the_frame_parser() {
        let c = FaultConfig {
            bit_error_rate: 5e-3,
            ..cfg(77)
        };
        let mut inj = FaultInjector::new(c);
        let frame = Frame::Write {
            addr: 0x20,
            data: vec![0x5A; 256],
        };
        let mut corrupted = 0;
        for _ in 0..200 {
            let mut wire = frame.to_wire();
            match inj.transmit(&mut wire) {
                TxOutcome::Corrupted { escaped: false } => {
                    corrupted += 1;
                    assert_eq!(Frame::from_wire(&wire), Err(crate::FrameError::BadChecksum));
                }
                TxOutcome::Delivered => {
                    assert_eq!(Frame::from_wire(&wire).unwrap(), frame);
                }
                _ => {}
            }
        }
        assert!(corrupted > 50, "only {corrupted} corrupted frames in 200");
        assert_eq!(inj.stats().frames, 200);
    }

    #[test]
    fn dropped_and_truncated_frames_counted() {
        // Every non-dropped frame is truncated: the two counters partition
        // the total.
        let c = FaultConfig {
            drop_rate: 0.5,
            truncate_rate: 1.0,
            ..cfg(11)
        };
        let mut inj = FaultInjector::new(c);
        for _ in 0..100 {
            let mut wire = Frame::Ack { seq: 1 }.to_wire();
            let _ = inj.transmit(&mut wire);
        }
        let s = inj.stats();
        assert_eq!(s.frames, 100);
        assert_eq!(s.frames_dropped + s.frames_truncated, 100);
        assert!(s.frames_dropped > 20 && s.frames_truncated > 10);
    }

    #[test]
    fn stuck_wires_always_hang() {
        let mut inj = FaultInjector::new(FaultConfig {
            stuck_eoc: true,
            ..cfg(0)
        });
        for _ in 0..10 {
            assert_eq!(inj.eoc(), EocOutcome::Hang);
        }
        assert_eq!(inj.stats().stuck_wire_events, 10);
        assert!(inj.wire_stuck(GpioEvent::EndOfComputation));
        assert!(!inj.wire_stuck(GpioEvent::FetchEnable));

        let mut inj = FaultInjector::new(FaultConfig {
            stuck_fetch_enable: true,
            ..cfg(0)
        });
        assert_eq!(inj.eoc(), EocOutcome::Hang);
        assert!(inj.wire_stuck(GpioEvent::FetchEnable));
    }

    #[test]
    fn late_eoc_reports_the_configured_delay() {
        let c = FaultConfig {
            late_eoc_rate: 1.0,
            late_eoc_cycles: 4096,
            ..cfg(5)
        };
        let mut inj = FaultInjector::new(c);
        assert_eq!(inj.eoc(), EocOutcome::Late(4096));
        assert_eq!(inj.stats().late_eocs, 1);
    }
}
