//! CRC-16 frame integrity.
//!
//! The wire protocol protects every frame with CRC-16/CCITT-FALSE
//! (polynomial `0x1021`, init `0xFFFF`, no reflection, no final XOR) — the
//! same parameters SD cards and many SPI peripherals use, so a real STM32
//! could offload the check to its CRC unit. A 16-bit CRC detects all
//! single- and double-bit errors, all odd-weight errors and all burst
//! errors up to 16 bits; an arbitrary corruption escapes with probability
//! 2⁻¹⁶ ≈ 1.5 × 10⁻⁵, which the fault model accounts as
//! [`FaultStats::crc_escapes`](crate::FaultStats::crc_escapes).

/// CRC-16/CCITT-FALSE polynomial.
pub const CRC16_POLY: u16 = 0x1021;
/// CRC-16/CCITT-FALSE initial value.
pub const CRC16_INIT: u16 = 0xFFFF;

/// Computes the CRC-16/CCITT-FALSE of a byte slice.
///
/// # Example
///
/// ```
/// // The standard check value for this CRC variant.
/// assert_eq!(ulp_link::crc16(b"123456789"), 0x29B1);
/// ```
#[must_use]
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc = CRC16_INIT;
    for b in bytes {
        crc = crc16_step(crc, *b);
    }
    crc
}

/// Folds one byte into a running CRC (MSB-first, bit-serial — the form a
/// SPI shifter implements in hardware).
#[must_use]
pub fn crc16_step(mut crc: u16, byte: u8) -> u16 {
    crc ^= u16::from(byte) << 8;
    for _ in 0..8 {
        crc = if crc & 0x8000 != 0 {
            (crc << 1) ^ CRC16_POLY
        } else {
            crc << 1
        };
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_init() {
        assert_eq!(crc16(&[]), CRC16_INIT);
    }

    #[test]
    fn detects_all_single_bit_flips() {
        let msg = [0x12u8, 0x34, 0x56, 0x78, 0x9A];
        let good = crc16(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut bad = msg;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc16(&bad), good, "flip {byte}/{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_all_double_bit_flips_in_short_frames() {
        let msg = [0xA5u8; 10];
        let good = crc16(&msg);
        let bits = msg.len() * 8;
        for i in 0..bits {
            for j in (i + 1)..bits {
                let mut bad = msg;
                bad[i / 8] ^= 1 << (i % 8);
                bad[j / 8] ^= 1 << (j % 8);
                assert_ne!(crc16(&bad), good, "flips {i},{j} undetected");
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let msg = b"resilient offload transport";
        let mut crc = CRC16_INIT;
        for b in msg {
            crc = crc16_step(crc, *b);
        }
        assert_eq!(crc, crc16(msg));
    }
}
