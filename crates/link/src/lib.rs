//! # ulp-link — the SPI/QSPI coupling link between host MCU and accelerator
//!
//! The DATE'16 platform couples the STM32 host and the PULP accelerator
//! with a plain SPI (or quad-SPI) channel plus two GPIO event wires
//! ("a *fetch enable* used to trigger execution … and an *end of
//! computation* event triggered by PULP and used by the STM32 to resume
//! from sleep", paper §III-C). This crate models:
//!
//! * [`SpiLink`] — bit-level transfer timing. The SPI clock is derived
//!   from the MCU core clock (`f_spi = f_mcu / prescaler`), which is the
//!   root cause of the paper's Fig. 5b bottleneck: lowering the MCU
//!   frequency to free power for the accelerator also throttles the link.
//! * [`Frame`] — the on-wire command protocol for code offload and data
//!   exchange (serialize/deserialize with checksums).
//! * [`GpioEvent`] — the two synchronization wires.
//! * link power: simple CV²f-style active power per transferred bit.
//!
//! # Example
//!
//! ```
//! use ulp_link::{SpiLink, SpiWidth};
//!
//! let link = SpiLink::new(SpiWidth::Quad, 2);
//! // At a 16 MHz MCU clock the QSPI moves 4 bits per 8 MHz SPI cycle.
//! let secs = link.transfer_seconds(1024, 16.0e6);
//! assert!(secs > 0.0);
//! assert!(link.bandwidth_bytes_per_sec(16.0e6) > 3.9e6);
//! ```

use std::error::Error;
use std::fmt;

/// Data width of the serial link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpiWidth {
    /// Classic single-bit SPI (the physical prototype in the paper: the
    /// Nucleo board does not expose the QSPI pins).
    #[default]
    Single,
    /// Quad SPI, 4 bits per clock (used for the paper's Fig. 5b model).
    Quad,
}

impl SpiWidth {
    /// Bits moved per SPI clock cycle.
    #[must_use]
    pub fn bits_per_clock(self) -> u32 {
        match self {
            SpiWidth::Single => 1,
            SpiWidth::Quad => 4,
        }
    }
}

impl fmt::Display for SpiWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiWidth::Single => f.write_str("spi"),
            SpiWidth::Quad => f.write_str("qspi"),
        }
    }
}

/// Accumulated link statistics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkStats {
    /// Bytes sent host → accelerator.
    pub bytes_tx: u64,
    /// Bytes received accelerator → host.
    pub bytes_rx: u64,
    /// Transactions performed.
    pub transactions: u64,
    /// Seconds the link spent shifting bits.
    pub busy_seconds: f64,
    /// Energy dissipated by the link drivers, in joules.
    pub energy_joules: f64,
}

/// Timing and power model of the serial coupling link.
///
/// Per-transaction protocol overhead covers the command/address phase and
/// chip-select framing.
#[derive(Clone, Debug)]
pub struct SpiLink {
    width: SpiWidth,
    prescaler: u32,
    overhead_bits: u32,
    energy_per_bit_j: f64,
    stats: LinkStats,
}

impl SpiLink {
    /// Default per-transaction overhead: 8 command bits + 32 address bits +
    /// 8 turnaround bits.
    pub const DEFAULT_OVERHEAD_BITS: u32 = 48;

    /// Default energy per transferred bit (drivers + pads), calibrated to a
    /// low-power SPI PHY: ≈1 pJ/bit.
    pub const DEFAULT_ENERGY_PER_BIT: f64 = 1.0e-12;

    /// Creates a link of the given width; the SPI clock is the MCU core
    /// clock divided by `prescaler`.
    ///
    /// # Panics
    ///
    /// Panics if `prescaler` is zero.
    #[must_use]
    pub fn new(width: SpiWidth, prescaler: u32) -> Self {
        assert!(prescaler >= 1, "prescaler must be at least 1");
        SpiLink {
            width,
            prescaler,
            overhead_bits: Self::DEFAULT_OVERHEAD_BITS,
            energy_per_bit_j: Self::DEFAULT_ENERGY_PER_BIT,
            stats: LinkStats::default(),
        }
    }

    /// Link width.
    #[must_use]
    pub fn width(&self) -> SpiWidth {
        self.width
    }

    /// Clock prescaler from the MCU core clock.
    #[must_use]
    pub fn prescaler(&self) -> u32 {
        self.prescaler
    }

    /// SPI clock frequency for a given MCU core frequency.
    #[must_use]
    pub fn clock_hz(&self, mcu_hz: f64) -> f64 {
        mcu_hz / f64::from(self.prescaler)
    }

    /// Payload bandwidth in bytes per second (ignoring per-transaction
    /// overhead).
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self, mcu_hz: f64) -> f64 {
        self.clock_hz(mcu_hz) * f64::from(self.width.bits_per_clock()) / 8.0
    }

    /// Wall-clock seconds to move `bytes` of payload in one transaction at
    /// the given MCU frequency (includes the protocol overhead bits).
    #[must_use]
    pub fn transfer_seconds(&self, bytes: usize, mcu_hz: f64) -> f64 {
        let bits = bytes as f64 * 8.0 + f64::from(self.overhead_bits);
        let clocks = bits / f64::from(self.width.bits_per_clock());
        clocks / self.clock_hz(mcu_hz)
    }

    /// MCU core cycles the link is occupied by a transfer of `bytes` (the
    /// MCU DMA runs the transfer; the core may sleep meanwhile).
    #[must_use]
    pub fn transfer_mcu_cycles(&self, bytes: usize) -> u64 {
        let bits = bytes as u64 * 8 + u64::from(self.overhead_bits);
        let clocks = bits.div_ceil(u64::from(self.width.bits_per_clock()));
        clocks * u64::from(self.prescaler)
    }

    /// Energy dissipated moving `bytes` (drivers + pads).
    #[must_use]
    pub fn transfer_energy_joules(&self, bytes: usize) -> f64 {
        (bytes as f64 * 8.0 + f64::from(self.overhead_bits)) * self.energy_per_bit_j
    }

    /// Average power drawn by the link while continuously transferring at
    /// the given MCU frequency.
    #[must_use]
    pub fn active_power_watts(&self, mcu_hz: f64) -> f64 {
        self.clock_hz(mcu_hz) * f64::from(self.width.bits_per_clock()) * self.energy_per_bit_j
    }

    /// Records a host→accelerator transaction and returns its duration in
    /// seconds.
    pub fn send(&mut self, bytes: usize, mcu_hz: f64) -> f64 {
        let t = self.transfer_seconds(bytes, mcu_hz);
        self.stats.bytes_tx += bytes as u64;
        self.stats.transactions += 1;
        self.stats.busy_seconds += t;
        self.stats.energy_joules += self.transfer_energy_joules(bytes);
        t
    }

    /// Records an accelerator→host transaction and returns its duration in
    /// seconds.
    pub fn receive(&mut self, bytes: usize, mcu_hz: f64) -> f64 {
        let t = self.transfer_seconds(bytes, mcu_hz);
        self.stats.bytes_rx += bytes as u64;
        self.stats.transactions += 1;
        self.stats.busy_seconds += t;
        self.stats.energy_joules += self.transfer_energy_joules(bytes);
        t
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

impl Default for SpiLink {
    fn default() -> Self {
        SpiLink::new(SpiWidth::Single, 2)
    }
}

/// The two GPIO synchronization wires between host and accelerator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GpioEvent {
    /// Host → accelerator: start fetching/executing the offloaded binary.
    FetchEnable,
    /// Accelerator → host: computation finished, results ready.
    EndOfComputation,
}

impl fmt::Display for GpioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpioEvent::FetchEnable => f.write_str("fetch-enable"),
            GpioEvent::EndOfComputation => f.write_str("end-of-computation"),
        }
    }
}

/// Commands of the offload wire protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// Write a block (binary or input data) into accelerator memory.
    Write {
        /// Destination address in the accelerator address space.
        addr: u32,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Read a block (results) from accelerator memory.
    Read {
        /// Source address in the accelerator address space.
        addr: u32,
        /// Number of bytes to read.
        len: u32,
    },
    /// Set the accelerator entry point (boot address register).
    SetEntry {
        /// Entry address of the offloaded binary.
        entry: u32,
    },
}

/// Error produced when parsing a wire frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The buffer is shorter than a frame header.
    Truncated,
    /// Unknown command byte.
    BadCommand(u8),
    /// Payload length field disagrees with the buffer.
    BadLength {
        /// Length claimed by the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Checksum mismatch.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::BadCommand(c) => write!(f, "unknown command byte {c:#04x}"),
            FrameError::BadLength { expected, actual } => {
                write!(f, "length mismatch: header says {expected}, buffer has {actual}")
            }
            FrameError::BadChecksum => f.write_str("checksum mismatch"),
        }
    }
}

impl Error for FrameError {}

const CMD_WRITE: u8 = 0x01;
const CMD_READ: u8 = 0x02;
const CMD_SET_ENTRY: u8 = 0x03;

fn checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0u8, |acc, b| acc.wrapping_add(*b)) ^ 0xA5
}

impl Frame {
    /// Serializes the frame: `cmd(1) addr(4) len(4) payload checksum(1)`.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Write { addr, data } => {
                out.push(CMD_WRITE);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            Frame::Read { addr, len } => {
                out.push(CMD_READ);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            Frame::SetEntry { entry } => {
                out.push(CMD_SET_ENTRY);
                out.extend_from_slice(&entry.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        out.push(checksum(&out));
        out
    }

    /// Parses a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on malformed input.
    pub fn from_wire(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < 10 {
            return Err(FrameError::Truncated);
        }
        let (body, ck) = bytes.split_at(bytes.len() - 1);
        if checksum(body) != ck[0] {
            return Err(FrameError::BadChecksum);
        }
        let cmd = body[0];
        let addr = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
        let len = u32::from_le_bytes([body[5], body[6], body[7], body[8]]) as usize;
        match cmd {
            CMD_WRITE => {
                let payload = &body[9..];
                if payload.len() != len {
                    return Err(FrameError::BadLength { expected: len, actual: payload.len() });
                }
                Ok(Frame::Write { addr, data: payload.to_vec() })
            }
            CMD_READ => Ok(Frame::Read { addr, len: len as u32 }),
            CMD_SET_ENTRY => Ok(Frame::SetEntry { entry: addr }),
            other => Err(FrameError::BadCommand(other)),
        }
    }

    /// Bytes this frame occupies on the wire.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        match self {
            Frame::Write { data, .. } => 10 + data.len(),
            Frame::Read { .. } | Frame::SetEntry { .. } => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spi_clock_derived_from_mcu_clock() {
        let link = SpiLink::new(SpiWidth::Single, 2);
        assert!((link.clock_hz(32.0e6) - 16.0e6).abs() < 1.0);
    }

    #[test]
    fn quad_is_four_times_single() {
        let s = SpiLink::new(SpiWidth::Single, 2);
        let q = SpiLink::new(SpiWidth::Quad, 2);
        let bw_s = s.bandwidth_bytes_per_sec(16.0e6);
        let bw_q = q.bandwidth_bytes_per_sec(16.0e6);
        assert!((bw_q / bw_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_inverse_with_mcu_freq() {
        let link = SpiLink::default();
        let fast = link.transfer_seconds(4096, 32.0e6);
        let slow = link.transfer_seconds(4096, 4.0e6);
        assert!((slow / fast - 8.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_counts_in_small_transfers() {
        let link = SpiLink::default();
        let one = link.transfer_seconds(1, 16.0e6);
        // 8 payload bits + 48 overhead bits at 8 MHz single SPI = 7 µs.
        assert!((one - 56.0 / 8.0e6).abs() < 1e-12);
    }

    #[test]
    fn mcu_cycles_round_up() {
        let link = SpiLink::new(SpiWidth::Quad, 2);
        // 1 byte: 8+48 = 56 bits / 4 = 14 clocks * 2 = 28 cycles.
        assert_eq!(link.transfer_mcu_cycles(1), 28);
    }

    #[test]
    fn send_receive_accumulate_stats() {
        let mut link = SpiLink::default();
        let t1 = link.send(100, 16.0e6);
        let t2 = link.receive(50, 16.0e6);
        let s = link.stats();
        assert_eq!(s.bytes_tx, 100);
        assert_eq!(s.bytes_rx, 50);
        assert_eq!(s.transactions, 2);
        assert!((s.busy_seconds - (t1 + t2)).abs() < 1e-15);
        assert!(s.energy_joules > 0.0);
        link.reset_stats();
        assert_eq!(link.stats().transactions, 0);
    }

    #[test]
    fn frame_roundtrip_write() {
        let f = Frame::Write { addr: 0x1000_0000, data: vec![1, 2, 3, 4, 5] };
        let wire = f.to_wire();
        assert_eq!(wire.len(), f.wire_bytes());
        assert_eq!(Frame::from_wire(&wire).unwrap(), f);
    }

    #[test]
    fn frame_roundtrip_read_and_entry() {
        for f in
            [Frame::Read { addr: 0x1C00_0000, len: 4096 }, Frame::SetEntry { entry: 0x1C00_0100 }]
        {
            let wire = f.to_wire();
            assert_eq!(Frame::from_wire(&wire).unwrap(), f);
        }
    }

    #[test]
    fn corrupted_frame_detected() {
        let f = Frame::Write { addr: 0x10, data: vec![9; 16] };
        let mut wire = f.to_wire();
        wire[12] ^= 0xFF;
        assert_eq!(Frame::from_wire(&wire), Err(FrameError::BadChecksum));
    }

    #[test]
    fn truncated_and_bad_command_detected() {
        assert_eq!(Frame::from_wire(&[1, 2, 3]), Err(FrameError::Truncated));
        let mut bogus = vec![0x7Fu8, 0, 0, 0, 0, 0, 0, 0, 0];
        bogus.push(checksum(&bogus));
        assert_eq!(Frame::from_wire(&bogus), Err(FrameError::BadCommand(0x7F)));
    }

    #[test]
    fn length_mismatch_detected() {
        let f = Frame::Write { addr: 0, data: vec![1, 2, 3] };
        let mut wire = f.to_wire();
        // Claim 4 bytes but carry 3.
        wire[5] = 4;
        let last = wire.len() - 1;
        wire[last] = checksum(&wire[..last]);
        assert!(matches!(Frame::from_wire(&wire), Err(FrameError::BadLength { .. })));
    }

    #[test]
    fn link_power_scales_with_frequency_and_width() {
        let s = SpiLink::new(SpiWidth::Single, 2);
        let q = SpiLink::new(SpiWidth::Quad, 2);
        assert!(q.active_power_watts(32.0e6) > s.active_power_watts(32.0e6));
        assert!(s.active_power_watts(32.0e6) > s.active_power_watts(8.0e6));
        // Sub-10mW system: the link must be far below a milliwatt.
        assert!(q.active_power_watts(80.0e6) < 1.0e-3);
    }
}
