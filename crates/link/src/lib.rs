//! # ulp-link — the SPI/QSPI coupling link between host MCU and accelerator
//!
//! The DATE'16 platform couples the STM32 host and the PULP accelerator
//! with a plain SPI (or quad-SPI) channel plus two GPIO event wires
//! ("a *fetch enable* used to trigger execution … and an *end of
//! computation* event triggered by PULP and used by the STM32 to resume
//! from sleep", paper §III-C). This crate models:
//!
//! * [`SpiLink`] ([`spi`]) — bit-level transfer timing. The SPI clock is
//!   derived from the MCU core clock (`f_spi = f_mcu / prescaler`), which
//!   is the root cause of the paper's Fig. 5b bottleneck: lowering the MCU
//!   frequency to free power for the accelerator also throttles the link.
//! * [`Frame`] ([`frame`]) — the on-wire command protocol for code offload
//!   and data exchange: CRC-16-protected, sequence-numbered frames with
//!   ACK/NACK acknowledgements.
//! * [`SlidingWindow`] ([`window`]) — selective-repeat in-flight
//!   pipelining over the seq/ACK framing: up to [`MAX_WINDOW`] frames
//!   unacknowledged at once, only damaged frames retransmitted.
//! * [`crc16`] ([`crc`]) — CRC-16/CCITT-FALSE frame integrity.
//! * [`FaultInjector`] ([`fault`]) — deterministic, seeded injection of
//!   bit errors, dropped/truncated frames, stuck event wires and
//!   accelerator hangs, with per-fault-type statistics.
//! * [`GpioEvent`] — the two synchronization wires.
//! * link power: simple CV²f-style active power per transferred bit.
//!
//! # Example
//!
//! ```
//! use ulp_link::{SpiLink, SpiWidth};
//!
//! let link = SpiLink::new(SpiWidth::Quad, 2);
//! // At a 16 MHz MCU clock the QSPI moves 4 bits per 8 MHz SPI cycle.
//! let secs = link.transfer_seconds(1024, 16.0e6);
//! assert!(secs > 0.0);
//! assert!(link.bandwidth_bytes_per_sec(16.0e6) > 3.9e6);
//! ```
//!
//! Surviving an injected fault:
//!
//! ```
//! use ulp_link::{FaultConfig, FaultInjector, Frame, TxOutcome};
//!
//! let mut inj = FaultInjector::new(FaultConfig {
//!     seed: 7,
//!     bit_error_rate: 0.01,
//!     ..FaultConfig::default()
//! });
//! let frame = Frame::Write { addr: 0x1000_0000, data: vec![1, 2, 3, 4] };
//! let mut wire = frame.to_wire_seq(3);
//! match inj.transmit(&mut wire) {
//!     TxOutcome::Delivered => assert_eq!(Frame::from_wire(&wire).unwrap(), frame),
//!     // A detected corruption draws a NACK and a retransmission.
//!     TxOutcome::Corrupted { escaped: false } => assert!(Frame::from_wire(&wire).is_err()),
//!     _ => {}
//! }
//! ```

use std::fmt;

pub mod crc;
pub mod fault;
pub mod frame;
pub mod spi;
pub mod window;

pub use crc::{crc16, crc16_step};
pub use fault::{EocOutcome, FaultConfig, FaultInjector, FaultStats, TxOutcome};
pub use frame::{Frame, FrameError, FRAME_OVERHEAD, MAX_PAYLOAD};
pub use spi::{LinkStats, SpiLink, SpiWidth};
pub use window::{
    RxAction, SlidingWindow, WindowExhausted, WindowReceiver, WindowStats, MAX_WINDOW,
};

/// The two GPIO synchronization wires between host and accelerator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GpioEvent {
    /// Host → accelerator: start fetching/executing the offloaded binary.
    FetchEnable,
    /// Accelerator → host: computation finished, results ready.
    EndOfComputation,
}

impl fmt::Display for GpioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpioEvent::FetchEnable => f.write_str("fetch-enable"),
            GpioEvent::EndOfComputation => f.write_str("end-of-computation"),
        }
    }
}
