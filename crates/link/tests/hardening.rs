//! Seeded byte-mutation hardening of [`Frame::from_wire`]: whatever the
//! channel delivers — truncations, random corruption, length-field lies,
//! pure noise — the parser must return a [`FrameError`], never panic and
//! never allocate beyond the input buffer.

use ulp_link::{crc16, Frame, FrameError, FRAME_OVERHEAD};
use ulp_rng::gen::byte_vec;
use ulp_rng::XorShiftRng;

fn sample_frames(rng: &mut XorShiftRng) -> Vec<Frame> {
    let payload = byte_vec(rng, 0..=511);
    vec![
        Frame::Write { addr: rng.gen(), data: payload },
        Frame::Read { addr: rng.gen(), len: rng.gen_range(0u32..0x00FF_FFFF) },
        Frame::SetEntry { entry: rng.gen() },
        Frame::Ack { seq: rng.gen_range(0u8..16) },
        Frame::Nack { seq: rng.gen_range(0u8..16) },
    ]
}

/// Parsing must be total: any input yields `Ok` or a `FrameError`.
/// (Reaching the end of this function without a panic is the assertion;
/// the match exists so new error variants must be considered here.)
fn assert_total(bytes: &[u8]) {
    match Frame::from_wire(bytes) {
        Ok(_) => {}
        Err(
            FrameError::Truncated
            | FrameError::BadCommand(_)
            | FrameError::BadLength { .. }
            | FrameError::BadChecksum,
        ) => {}
    }
}

#[test]
fn truncations_at_every_length_error_cleanly() {
    let mut rng = XorShiftRng::seed_from_u64(0x7121);
    for frame in sample_frames(&mut rng) {
        let wire = frame.to_wire_seq(5);
        for cut in 0..wire.len() {
            let head = &wire[..cut];
            assert_total(head);
            if cut < FRAME_OVERHEAD {
                assert_eq!(Frame::from_wire(head), Err(FrameError::Truncated));
            } else {
                assert!(Frame::from_wire(head).is_err(), "cut at {cut} parsed");
            }
        }
    }
}

#[test]
fn random_corruption_never_panics_and_is_flagged() {
    let mut rng = XorShiftRng::seed_from_u64(0xC0FE);
    for round in 0..200 {
        for frame in sample_frames(&mut rng) {
            let mut wire = frame.to_wire_seq(rng.gen_range(0u8..16));
            let flips = rng.gen_range(1usize..8);
            for _ in 0..flips {
                let byte = rng.gen_range(0..wire.len());
                let bit = rng.gen_range(0u8..8);
                wire[byte] ^= 1 << bit;
            }
            // Either the CRC catches it (overwhelmingly likely) or the
            // mutation cancelled itself out / produced another valid frame;
            // what it must never do is panic.
            assert_total(&wire);
            let _ = round;
        }
    }
}

#[test]
fn pure_noise_never_panics() {
    let mut rng = XorShiftRng::seed_from_u64(0x015E);
    for _ in 0..2000 {
        assert_total(&byte_vec(&mut rng, 0..=255));
    }
}

#[test]
fn length_field_lies_never_over_allocate() {
    let mut rng = XorShiftRng::seed_from_u64(0x11E5);
    for _ in 0..500 {
        // A frame whose 24-bit length field claims up to 16 MiB while the
        // buffer holds a few dozen bytes, re-CRC'd so only the length check
        // can reject it. A parser that trusted the field would allocate
        // megabytes (or slice out of bounds); ours must return BadLength.
        let actual = rng.gen_range(0usize..64);
        let claimed: usize = rng.gen_range(0usize..0x00FF_FFFF);
        let mut wire = Vec::with_capacity(8 + actual + 2);
        wire.push(0x1 | rng.gen_range(0u8..16) << 4);
        wire.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        wire.extend_from_slice(&(claimed as u32).to_le_bytes()[..3]);
        for _ in 0..actual {
            wire.push(rng.gen());
        }
        let crc = crc16(&wire);
        wire.extend_from_slice(&crc.to_be_bytes());
        match Frame::from_wire(&wire) {
            Ok(Frame::Write { data, .. }) => {
                assert_eq!(claimed, actual);
                assert_eq!(data.len(), actual);
            }
            Err(FrameError::BadLength { expected, actual: got }) => {
                assert_eq!(expected, claimed);
                assert_eq!(got, actual);
            }
            other => panic!("unexpected parse result {other:?}"),
        }
    }
}

#[test]
fn roundtrip_survives_the_mutation_campaign_when_unmutated() {
    // Sanity anchor for the campaign above: unmutated frames always parse.
    let mut rng = XorShiftRng::seed_from_u64(0xAB1E);
    for _ in 0..100 {
        for frame in sample_frames(&mut rng) {
            let seq = rng.gen_range(0u8..16);
            let (got_seq, got) = Frame::from_wire_seq(&frame.to_wire_seq(seq)).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, frame);
        }
    }
}
