//! Seeded byte-mutation hardening of [`Frame::from_wire`]: whatever the
//! channel delivers — truncations, random corruption, length-field lies,
//! pure noise — the parser must return a [`FrameError`], never panic and
//! never allocate beyond the input buffer.
//!
//! The second half hardens the [`SlidingWindow`] the pipelined offload
//! engine rides on: seeded drops, bit errors and truncations striking
//! mid-window must converge through selective-repeat retries, delivering
//! bit-identical frames in order, with every retry accounted for exactly.

use ulp_link::{
    crc16, FaultConfig, FaultInjector, Frame, FrameError, SlidingWindow, WindowStats,
    FRAME_OVERHEAD, MAX_WINDOW,
};
use ulp_rng::gen::byte_vec;
use ulp_rng::XorShiftRng;

fn sample_frames(rng: &mut XorShiftRng) -> Vec<Frame> {
    let payload = byte_vec(rng, 0..=511);
    vec![
        Frame::Write {
            addr: rng.gen(),
            data: payload,
        },
        Frame::Read {
            addr: rng.gen(),
            len: rng.gen_range(0u32..0x00FF_FFFF),
        },
        Frame::SetEntry { entry: rng.gen() },
        Frame::Ack {
            seq: rng.gen_range(0u8..16),
        },
        Frame::Nack {
            seq: rng.gen_range(0u8..16),
        },
    ]
}

/// Parsing must be total: any input yields `Ok` or a `FrameError`.
/// (Reaching the end of this function without a panic is the assertion;
/// the match exists so new error variants must be considered here.)
fn assert_total(bytes: &[u8]) {
    match Frame::from_wire(bytes) {
        Ok(_) => {}
        Err(
            FrameError::Truncated
            | FrameError::BadCommand(_)
            | FrameError::BadLength { .. }
            | FrameError::BadChecksum,
        ) => {}
    }
}

#[test]
fn truncations_at_every_length_error_cleanly() {
    let mut rng = XorShiftRng::seed_from_u64(0x7121);
    for frame in sample_frames(&mut rng) {
        let wire = frame.to_wire_seq(5);
        for cut in 0..wire.len() {
            let head = &wire[..cut];
            assert_total(head);
            if cut < FRAME_OVERHEAD {
                assert_eq!(Frame::from_wire(head), Err(FrameError::Truncated));
            } else {
                assert!(Frame::from_wire(head).is_err(), "cut at {cut} parsed");
            }
        }
    }
}

#[test]
fn random_corruption_never_panics_and_is_flagged() {
    let mut rng = XorShiftRng::seed_from_u64(0xC0FE);
    for round in 0..200 {
        for frame in sample_frames(&mut rng) {
            let mut wire = frame.to_wire_seq(rng.gen_range(0u8..16));
            let flips = rng.gen_range(1usize..8);
            for _ in 0..flips {
                let byte = rng.gen_range(0..wire.len());
                let bit = rng.gen_range(0u8..8);
                wire[byte] ^= 1 << bit;
            }
            // Either the CRC catches it (overwhelmingly likely) or the
            // mutation cancelled itself out / produced another valid frame;
            // what it must never do is panic.
            assert_total(&wire);
            let _ = round;
        }
    }
}

#[test]
fn pure_noise_never_panics() {
    let mut rng = XorShiftRng::seed_from_u64(0x015E);
    for _ in 0..2000 {
        assert_total(&byte_vec(&mut rng, 0..=255));
    }
}

#[test]
fn length_field_lies_never_over_allocate() {
    let mut rng = XorShiftRng::seed_from_u64(0x11E5);
    for _ in 0..500 {
        // A frame whose 24-bit length field claims up to 16 MiB while the
        // buffer holds a few dozen bytes, re-CRC'd so only the length check
        // can reject it. A parser that trusted the field would allocate
        // megabytes (or slice out of bounds); ours must return BadLength.
        let actual = rng.gen_range(0usize..64);
        let claimed: usize = rng.gen_range(0usize..0x00FF_FFFF);
        let mut wire = Vec::with_capacity(8 + actual + 2);
        wire.push(0x1 | rng.gen_range(0u8..16) << 4);
        wire.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        wire.extend_from_slice(&(claimed as u32).to_le_bytes()[..3]);
        for _ in 0..actual {
            wire.push(rng.gen());
        }
        let crc = crc16(&wire);
        wire.extend_from_slice(&crc.to_be_bytes());
        match Frame::from_wire(&wire) {
            Ok(Frame::Write { data, .. }) => {
                assert_eq!(claimed, actual);
                assert_eq!(data.len(), actual);
            }
            Err(FrameError::BadLength {
                expected,
                actual: got,
            }) => {
                assert_eq!(expected, claimed);
                assert_eq!(got, actual);
            }
            other => panic!("unexpected parse result {other:?}"),
        }
    }
}

#[test]
fn roundtrip_survives_the_mutation_campaign_when_unmutated() {
    // Sanity anchor for the campaign above: unmutated frames always parse.
    let mut rng = XorShiftRng::seed_from_u64(0xAB1E);
    for _ in 0..100 {
        for frame in sample_frames(&mut rng) {
            let seq = rng.gen_range(0u8..16);
            let (got_seq, got) = Frame::from_wire_seq(&frame.to_wire_seq(seq)).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, frame);
        }
    }
}

// ---------------------------------------------------------------------------
// Sliding-window fault regressions
// ---------------------------------------------------------------------------

/// A batch of chunk-shaped Write frames, the traffic the pipelined offload
/// engine pushes through the window.
fn window_batch(rng: &mut XorShiftRng, n: usize) -> Vec<Frame> {
    (0..n)
        .map(|i| Frame::Write {
            addr: 0x1000_0000 + (i as u32) * 0x200,
            data: byte_vec(rng, 1..=256),
        })
        .collect()
}

/// The exact-accounting invariants of one `deliver` run, cross-checked
/// against the injector's own fault counters:
///
/// - every attempt is the frame's first transmission or a retransmission;
/// - every retransmission was caused by exactly one bad outcome (a drop,
///   a truncation, or a receiver reject) — selective repeat never resends
///   an acknowledged frame;
/// - the sender's drop/truncate counts match what the injector says it
///   did to the wire, and every corrupted frame either drew a reject or
///   slipped through as `delivered_corrupt`.
fn assert_exact_accounting(stats: &WindowStats, inj: &FaultInjector, ctx: &str) {
    assert_eq!(
        stats.transmissions,
        stats.frames + stats.retransmissions,
        "{ctx}: {stats:?}"
    );
    assert_eq!(
        stats.retransmissions,
        stats.dropped + stats.truncated + stats.rejected,
        "{ctx}: {stats:?}"
    );
    let f = inj.stats();
    assert_eq!(
        stats.transmissions, f.frames,
        "{ctx}: injector saw a different frame count"
    );
    assert_eq!(stats.dropped, f.frames_dropped, "{ctx}");
    assert_eq!(stats.truncated, f.frames_truncated, "{ctx}");
    assert_eq!(
        stats.rejected + stats.delivered_corrupt,
        f.frames_corrupted,
        "{ctx}: every corrupted frame must be rejected or flagged delivered_corrupt"
    );
}

/// Seeded drops, bit errors and truncations striking mid-window all
/// converge through retries at every window size: the receiver ends up
/// with the input frames, bit-identical and in order, and every retry is
/// accounted for exactly.
#[test]
fn sliding_window_converges_under_mixed_faults_with_exact_accounting() {
    let faulty = |seed| FaultConfig {
        seed,
        drop_rate: 0.08,
        truncate_rate: 0.05,
        bit_error_rate: 2e-4,
        ..FaultConfig::default()
    };
    let mut total_retries = 0u64;
    for window in 1..=MAX_WINDOW {
        for seed in [0x5EED_0001u64, 0xB10C_0002, 0xFA57_0003] {
            let mut rng = XorShiftRng::seed_from_u64(seed ^ window as u64);
            let frames = window_batch(&mut rng, 32);
            let mut win = SlidingWindow::new(window);
            let mut inj = FaultInjector::new(faulty(seed));
            let ctx = format!("window {window}, seed {seed:#x}");
            let (got, stats) = win
                .deliver(&frames, &mut inj, 64)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(got.len(), frames.len(), "{ctx}: frame count");
            if stats.delivered_corrupt == 0 {
                assert_eq!(
                    got, frames,
                    "{ctx}: delivery must be bit-identical and in order"
                );
            }
            assert!(stats.max_in_flight <= window, "{ctx}: {stats:?}");
            assert_exact_accounting(&stats, &inj, &ctx);
            total_retries += stats.retransmissions;
        }
    }
    assert!(
        total_retries > 50,
        "the campaign barely faulted ({total_retries} retries)"
    );
}

/// A window of one degenerates to stop-and-wait: never more than one
/// frame unacknowledged, even while faults force retries.
#[test]
fn window_of_one_is_stop_and_wait() {
    let mut rng = XorShiftRng::seed_from_u64(0x0A11);
    let frames = window_batch(&mut rng, 24);
    let mut win = SlidingWindow::new(1);
    let mut inj = FaultInjector::new(FaultConfig {
        seed: 0x0A11,
        drop_rate: 0.15,
        bit_error_rate: 1e-4,
        ..FaultConfig::default()
    });
    let (got, stats) = win.deliver(&frames, &mut inj, 64).unwrap();
    assert_eq!(stats.max_in_flight, 1, "{stats:?}");
    assert!(stats.retransmissions > 0, "faults never struck: {stats:?}");
    if stats.delivered_corrupt == 0 {
        assert_eq!(got, frames);
    }
    assert_exact_accounting(&stats, &inj, "stop-and-wait");
}

/// Bit errors alone (no drops, no truncations) surface purely as receiver
/// rejects — the CRC path the byte-mutation campaign hardens — and every
/// reject costs exactly one retransmission.
#[test]
fn bit_errors_mid_window_draw_rejects_and_converge() {
    let mut rng = XorShiftRng::seed_from_u64(0xBE55);
    let frames = window_batch(&mut rng, 48);
    let mut win = SlidingWindow::new(4);
    let mut inj = FaultInjector::new(FaultConfig {
        seed: 0xBE55,
        bit_error_rate: 5e-4,
        ..FaultConfig::default()
    });
    let (got, stats) = win.deliver(&frames, &mut inj, 64).unwrap();
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.truncated, 0);
    assert!(
        stats.rejected > 0,
        "no corruption at this error rate: {stats:?}"
    );
    assert_eq!(stats.retransmissions, stats.rejected);
    if stats.delivered_corrupt == 0 {
        assert_eq!(got, frames);
    }
    assert_exact_accounting(&stats, &inj, "bit errors");
}

/// Retry accounting is deterministic: the same seed replays the same
/// faults, the same retries and the same delivered bytes, so a fault
/// trace from one run reproduces exactly on the next.
#[test]
fn window_fault_accounting_is_deterministic_per_seed() {
    let run = || {
        let mut rng = XorShiftRng::seed_from_u64(0xD00D);
        let frames = window_batch(&mut rng, 32);
        let mut win = SlidingWindow::new(6);
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 0xD00D,
            drop_rate: 0.1,
            truncate_rate: 0.05,
            bit_error_rate: 3e-4,
            ..FaultConfig::default()
        });
        let (got, stats) = win.deliver(&frames, &mut inj, 64).unwrap();
        (got, stats)
    };
    let (got_a, stats_a) = run();
    let (got_b, stats_b) = run();
    assert_eq!(stats_a, stats_b, "fault replay diverged");
    assert_eq!(got_a, got_b, "delivered bytes diverged");
}

/// Faults striking while the window is partially acknowledged must not
/// desynchronize the sequence space across `deliver` calls: a chunked
/// offload issues one call per transfer, and the 4-bit numbers keep
/// wrapping correctly batch after batch.
#[test]
fn faults_mid_window_keep_sequence_continuity_across_batches() {
    let mut rng = XorShiftRng::seed_from_u64(0x5EC5);
    let mut win = SlidingWindow::new(8);
    let mut inj = FaultInjector::new(FaultConfig {
        seed: 0x5EC5,
        drop_rate: 0.1,
        truncate_rate: 0.04,
        bit_error_rate: 2e-4,
        ..FaultConfig::default()
    });
    let mut summed = WindowStats::default();
    for batch in 0..12 {
        let frames = window_batch(&mut rng, 5 + batch % 7);
        let (got, stats) = win
            .deliver(&frames, &mut inj, 64)
            .unwrap_or_else(|e| panic!("batch {batch}: {e}"));
        assert_eq!(got.len(), frames.len(), "batch {batch}");
        if stats.delivered_corrupt == 0 {
            assert_eq!(got, frames, "batch {batch}: order or payload corrupted");
        }
        summed.frames += stats.frames;
        summed.transmissions += stats.transmissions;
        summed.retransmissions += stats.retransmissions;
        summed.dropped += stats.dropped;
        summed.truncated += stats.truncated;
        summed.rejected += stats.rejected;
        summed.delivered_corrupt += stats.delivered_corrupt;
    }
    // The cumulative ledger still reconciles against the injector, which
    // saw every transmission of every batch.
    assert!(summed.retransmissions > 0, "the campaign never faulted");
    assert_exact_accounting(&summed, &inj, "12-batch campaign");
}
