//! Plain-text reporting: per-component utilization counters and the
//! paper's Fig. 4/5 per-phase time decomposition.

use crate::{Component, EventKind, PhaseKind, Tracer};

/// Busy/idle/utilization table over all set counters.
pub(crate) fn counters_table(tracer: &Tracer) -> String {
    let counters = tracer.counters();
    let mut out = String::new();
    out.push_str("component        busy         idle        total   util\n");
    if counters.is_empty() {
        out.push_str("  (no counters recorded)\n");
        return out;
    }
    for (component, c) in counters {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>12} {:>5.1}%\n",
            component.label(),
            c.busy,
            c.idle(),
            c.total,
            c.utilization() * 100.0
        ));
    }
    out
}

/// Aggregates recorded host `Phase` events into a per-phase breakdown
/// (total ns per phase, share of the phase-covered time).
pub(crate) fn phase_table(tracer: &Tracer) -> String {
    let mut totals = [0u64; PhaseKind::ALL.len()];
    for ev in tracer.events_of(Component::Host) {
        if let EventKind::Phase(p) = ev.kind {
            let slot = PhaseKind::ALL
                .iter()
                .position(|q| *q == p)
                .expect("phase in ALL");
            totals[slot] += ev.dur;
        }
    }
    let grand: u64 = totals.iter().sum();
    let mut out = String::new();
    out.push_str("phase          time (ms)   share\n");
    if grand == 0 {
        out.push_str("  (no phase events recorded)\n");
        return out;
    }
    for (slot, phase) in PhaseKind::ALL.iter().enumerate() {
        let ns = totals[slot];
        out.push_str(&format!(
            "{:<10} {:>13.3} {:>6.1}%\n",
            phase.name(),
            ns as f64 / 1e6,
            ns as f64 / grand as f64 * 100.0
        ));
    }
    out.push_str(&format!(
        "{:<10} {:>13.3} {:>6.1}%\n",
        "total",
        grand as f64 / 1e6,
        100.0
    ));
    out
}

/// Renders the pipelined-offload overlap counters: busy time per offload
/// resource plus the pairwise and triple concurrency windows.
pub(crate) fn overlap_table(tracer: &Tracer) -> String {
    let mut out = String::new();
    out.push_str("overlap           busy (ms)   of span\n");
    let Some(o) = tracer.overlap() else {
        out.push_str("  (no overlap recorded)\n");
        return out;
    };
    let share = |ns: u64| {
        if o.span == 0 {
            0.0
        } else {
            ns as f64 / o.span as f64 * 100.0
        }
    };
    let rows = [
        ("link busy", o.link_busy),
        ("dma busy", o.dma_busy),
        ("core busy", o.core_busy),
        ("link+dma", o.link_dma),
        ("link+core", o.link_core),
        ("dma+core", o.dma_core),
        ("all three", o.triple),
    ];
    for (name, ns) in rows {
        out.push_str(&format!(
            "{:<14} {:>11.3} {:>8.1}%\n",
            name,
            ns as f64 / 1e6,
            share(ns)
        ));
    }
    out.push_str(&format!(
        "{:<14} {:>11.3}   {} chunks, {}\n",
        "span",
        o.span as f64 / 1e6,
        o.chunks,
        if o.engaged { "pipelined" } else { "serialized" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use crate::{Component, EventKind, Overlap, PhaseKind, Tracer};

    #[test]
    fn counters_table_lists_components() {
        let t = Tracer::enabled();
        t.set_counter(Component::Core(0), 75, 100);
        t.set_counter(Component::Tcdm, 40, 800);
        let table = t.counters_table();
        assert!(table.contains("core0"));
        assert!(table.contains("75.0%"));
        assert!(table.contains("tcdm"));
        assert!(table.contains("5.0%"));
    }

    #[test]
    fn counters_table_empty_placeholder() {
        assert!(Tracer::disabled().counters_table().contains("no counters"));
    }

    #[test]
    fn phase_table_shares_sum_to_total() {
        let t = Tracer::enabled();
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Binary),
            0,
            1_000_000,
        );
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Input),
            1_000_000,
            2_000_000,
        );
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Compute),
            3_000_000,
            6_000_000,
        );
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Output),
            9_000_000,
            1_000_000,
        );
        let table = t.phase_table();
        assert!(table.contains("binary"));
        assert!(table.contains("compute"));
        assert!(table.contains("60.0%"));
        assert!(table.contains("10.000"), "total ms row present: {table}");
    }

    #[test]
    fn phase_table_accumulates_repeated_phases() {
        let t = Tracer::enabled();
        t.emit(Component::Host, EventKind::Phase(PhaseKind::Input), 0, 500);
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Input),
            500,
            500,
        );
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Compute),
            1000,
            1000,
        );
        let table = t.phase_table();
        assert!(table.contains("50.0%"));
    }

    #[test]
    fn phase_table_empty_placeholder() {
        assert!(Tracer::enabled().phase_table().contains("no phase events"));
    }

    #[test]
    fn overlap_table_lists_resources() {
        let t = Tracer::enabled();
        t.set_overlap(Overlap {
            link_busy: 4_000_000,
            dma_busy: 1_000_000,
            core_busy: 6_000_000,
            link_dma: 500_000,
            link_core: 3_000_000,
            dma_core: 800_000,
            triple: 400_000,
            span: 8_000_000,
            chunks: 32,
            engaged: true,
        });
        let table = t.overlap_table();
        assert!(table.contains("link busy"));
        assert!(table.contains("all three"));
        assert!(table.contains("32 chunks"));
        assert!(table.contains("pipelined"));
        assert!(table.contains("75.0%"), "core busy share: {table}");
    }

    #[test]
    fn overlap_table_empty_placeholder() {
        assert!(Tracer::enabled()
            .overlap_table()
            .contains("no overlap recorded"));
    }
}
