//! # ulp-trace — cycle-level observability for the het-accel platform
//!
//! The paper's evidence is *per-component cycle breakdowns*: active/idle
//! ratios for cores, TCDM banks, DMA, I$ and the SPI link under a 10 mW
//! envelope (§IV, Fig. 4/5). This crate records the raw material for such
//! breakdowns as typed, cycle-stamped [`TraceEvent`]s in per-component
//! ring buffers, derives busy/idle [`Counter`]s, and exports
//!
//! * Chrome `trace_event` JSON ([`Tracer::chrome_json`]) for timeline
//!   viewers (`chrome://tracing`, Perfetto), and
//! * plain-text tables ([`Tracer::counters_table`],
//!   [`Tracer::phase_table`]) matching the paper's phase decomposition.
//!
//! # Zero overhead when disabled
//!
//! A [`Tracer`] is a shared handle that is either *attached* to a
//! recording buffer or *disabled* (the default). Every instrumentation
//! hook in the simulator calls [`Tracer::emit`], which on a disabled
//! tracer is a single `Option` branch and returns immediately: no
//! allocation, no time-keeping, no change to any simulated timing.
//! Simulation results are bit-identical with and without instrumentation
//! compiled in, and with a disabled tracer attached.
//!
//! # Clock domains
//!
//! Components live in one of two clock domains:
//!
//! * **cluster domain** (cores, TCDM, DMA, I$): timestamps are cluster
//!   cycles. Successive cluster runs (the cold- and warm-cache runs of a
//!   cost measurement) each start at local cycle 0; the tracer keeps a
//!   *cluster epoch* that the runner advances after each run so the runs
//!   lay out sequentially on one timeline.
//! * **host domain** (host MCU phases, the SPI link): timestamps are
//!   nanoseconds of wall-clock time. The host epoch advances per offload
//!   invocation; link events use the link's own cumulative busy time.
//!
//! The Chrome exporter maps cluster events onto one process (1 "µs" = 1
//! cycle) and host/link events onto another (1 "µs" = 1 ns), so both
//! timelines are visible in one capture.
//!
//! # Example
//!
//! ```
//! use ulp_trace::{Component, EventKind, Tracer};
//!
//! let tracer = Tracer::enabled();
//! tracer.emit(Component::Core(0), EventKind::CoreRun, 0, 120);
//! tracer.emit(Component::Tcdm, EventKind::BankConflict { bank: 3 }, 17, 1);
//! tracer.set_counter(Component::Core(0), 120, 128);
//! let json = tracer.chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(tracer.counters_table().contains("core0"));
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

mod chrome;
mod report;

/// A traced hardware component (one timeline row in the export).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Component {
    /// One cluster core, by index.
    Core(u8),
    /// The banked TCDM scratchpad (arbitration conflicts).
    Tcdm,
    /// The cluster DMA engine.
    Dma,
    /// The shared instruction cache.
    ICache,
    /// The cluster as a whole (barriers, run envelopes).
    Cluster,
    /// The SPI/QSPI coupling link.
    Link,
    /// The host MCU (offload phases, WFE sleeps).
    Host,
    /// One serving-layer worker (a pooled accelerator system), by index.
    /// Host-domain: timestamps are virtual-clock nanoseconds of the
    /// serving schedule.
    Worker(u8),
}

impl Component {
    /// Whether this component's timestamps are cluster cycles (as opposed
    /// to host-domain nanoseconds).
    #[must_use]
    pub fn is_cluster_domain(self) -> bool {
        matches!(
            self,
            Component::Core(_)
                | Component::Tcdm
                | Component::Dma
                | Component::ICache
                | Component::Cluster
        )
    }

    /// Short lower-case label used in tables and thread names.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Component::Core(i) => format!("core{i}"),
            Component::Tcdm => "tcdm".to_owned(),
            Component::Dma => "dma".to_owned(),
            Component::ICache => "icache".to_owned(),
            Component::Cluster => "cluster".to_owned(),
            Component::Link => "link".to_owned(),
            Component::Host => "host".to_owned(),
            Component::Worker(i) => format!("worker{i}"),
        }
    }
}

/// Offload phase of the paper's Fig. 4/5 decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseKind {
    /// Program (binary + constants) offload.
    Binary,
    /// Per-iteration input transfers.
    Input,
    /// Accelerator compute.
    Compute,
    /// Per-iteration output transfers.
    Output,
    /// GPIO synchronization edges.
    Sync,
}

impl PhaseKind {
    /// Display name of the phase.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Binary => "binary",
            PhaseKind::Input => "inputs",
            PhaseKind::Compute => "compute",
            PhaseKind::Output => "outputs",
            PhaseKind::Sync => "sync",
        }
    }

    /// All phases, in ledger order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Binary,
        PhaseKind::Input,
        PhaseKind::Compute,
        PhaseKind::Output,
        PhaseKind::Sync,
    ];
}

/// What happened during a traced interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A core executed instructions (from wake/reset to sleep/halt).
    CoreRun,
    /// A core was clock-gated waiting for an event or barrier release.
    CoreSleep,
    /// A core stalled on a memory access (contention, cache miss).
    CoreMemStall,
    /// A TCDM access found its bank busy and stalled.
    BankConflict {
        /// Index of the contended bank.
        bank: u8,
    },
    /// An instruction fetch missed the shared I$ and paid the refill.
    IcacheMiss,
    /// A DMA channel moved a burst.
    DmaBurst {
        /// Payload bytes moved.
        bytes: u32,
    },
    /// A frame shifted host → accelerator over the link.
    FrameTx {
        /// Bytes on the wire (payload + framing).
        bytes: u32,
    },
    /// A frame shifted accelerator → host over the link.
    FrameRx {
        /// Bytes on the wire (payload + framing).
        bytes: u32,
    },
    /// A frame was retransmitted after a detected transport fault.
    Retry {
        /// Retransmission attempt number (1-based).
        attempt: u32,
    },
    /// The host slept in WFE waiting for the end-of-computation event.
    WfeSleep,
    /// The host watchdog fired instead of the event wire.
    Watchdog,
    /// An offload ledger phase.
    Phase(PhaseKind),
    /// A cluster barrier completed.
    Barrier,
    /// A serving-layer worker executed one coalesced batch of offload
    /// requests (the interval spans the batch's modeled service time).
    Batch {
        /// Requests coalesced into the batch.
        size: u32,
    },
    /// Instantaneous sample of the serving layer's admitted backlog
    /// (requests queued across all tenants), taken at each dispatch.
    QueueDepth {
        /// Queued requests at the sample instant.
        depth: u32,
    },
    /// The serving layer's autoscaler changed a pool's active worker
    /// count.
    Scale {
        /// Active workers before the decision.
        from: u32,
        /// Active workers after the decision.
        to: u32,
    },
}

/// One recorded event: a component, a kind, and a `[start, start + dur)`
/// interval in the component's clock domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The component the event belongs to.
    pub component: Component,
    /// What happened.
    pub kind: EventKind,
    /// Interval start (cluster cycles or host nanoseconds, see
    /// [`Component::is_cluster_domain`]), epoch already applied.
    pub start: u64,
    /// Interval length in the same unit (0 for instantaneous events).
    pub dur: u64,
}

/// Concurrency accounting of one pipelined offload: how long each of the
/// three offload resources (coupling link, cluster DMA, cores) was busy,
/// and how much of that busy time was *concurrent* — the quantity that
/// decides how far double-buffering can shift the paper's amortization
/// break-even. All durations are host-domain nanoseconds over the same
/// schedule span.
///
/// Invariants (asserted by the trace test battery):
/// every pairwise overlap is bounded by both of its members' busy times,
/// the triple overlap is bounded by every pairwise overlap, and no busy
/// time exceeds the span.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Overlap {
    /// Nanoseconds the SPI/QSPI link was shifting bits.
    pub link_busy: u64,
    /// Nanoseconds the cluster DMA was moving chunks.
    pub dma_busy: u64,
    /// Nanoseconds the cluster cores were computing.
    pub core_busy: u64,
    /// Nanoseconds link and DMA were busy simultaneously.
    pub link_dma: u64,
    /// Nanoseconds link and cores were busy simultaneously.
    pub link_core: u64,
    /// Nanoseconds DMA and cores were busy simultaneously.
    pub dma_core: u64,
    /// Nanoseconds all three were busy simultaneously.
    pub triple: u64,
    /// Total schedule span (makespan) in nanoseconds.
    pub span: u64,
    /// Chunks that crossed the link (frames of the chunked transfer).
    pub chunks: u64,
    /// Whether the pipelined schedule was actually adopted (it beat the
    /// serialized one); `false` means the runtime fell back to the
    /// serialized order and the counters describe the rejected schedule.
    pub engaged: bool,
}

impl Overlap {
    /// True if any concurrency was recorded at all.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != Overlap::default()
    }

    /// Nanoseconds hidden by concurrency: the difference between the sum
    /// of busy times and their union (inclusion–exclusion).
    #[must_use]
    pub fn hidden_ns(&self) -> u64 {
        (self.link_dma + self.link_core + self.dma_core).saturating_sub(self.triple)
    }

    /// Checks the internal consistency of the counters (see the type-level
    /// invariants). Returns the first violated invariant as text.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn check(&self) -> Result<(), String> {
        let pairs = [
            ("link∥dma", self.link_dma, self.link_busy, self.dma_busy),
            ("link∥core", self.link_core, self.link_busy, self.core_busy),
            ("dma∥core", self.dma_core, self.dma_busy, self.core_busy),
        ];
        for (name, pair, a, b) in pairs {
            if pair > a.min(b) {
                return Err(format!(
                    "{name} overlap {pair} exceeds member busy {}",
                    a.min(b)
                ));
            }
            if self.triple > pair {
                return Err(format!(
                    "triple overlap {} exceeds {name} {pair}",
                    self.triple
                ));
            }
        }
        for (name, busy) in [
            ("link", self.link_busy),
            ("dma", self.dma_busy),
            ("core", self.core_busy),
        ] {
            if busy > self.span {
                return Err(format!("{name} busy {busy} exceeds span {}", self.span));
            }
        }
        Ok(())
    }
}

/// Busy/idle counter of one component over its traced lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Counter {
    /// Cycles (or ns) the component was busy.
    pub busy: u64,
    /// Total cycles (or ns) observed.
    pub total: u64,
}

impl Counter {
    /// Idle share: `total - busy` (saturating).
    #[must_use]
    pub fn idle(&self) -> u64 {
        self.total.saturating_sub(self.busy)
    }

    /// Utilization in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

/// Fixed-capacity event ring of one component: keeps the most recent
/// `cap` events and counts what it had to drop.
#[derive(Clone, Debug)]
struct Ring {
    component: Component,
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Shared recording state behind an attached [`Tracer`].
#[derive(Clone, Debug)]
struct TraceState {
    rings: Vec<Ring>,
    counters: Vec<(Component, Counter)>,
    overlap: Option<Overlap>,
    ring_cap: usize,
    cluster_epoch: u64,
    host_epoch: u64,
}

impl TraceState {
    fn ring_mut(&mut self, component: Component) -> &mut Ring {
        if let Some(i) = self.rings.iter().position(|r| r.component == component) {
            return &mut self.rings[i];
        }
        self.rings.push(Ring {
            component,
            events: VecDeque::new(),
            cap: self.ring_cap,
            dropped: 0,
        });
        self.rings.sort_by_key(|r| r.component);
        let i = self
            .rings
            .iter()
            .position(|r| r.component == component)
            .expect("just inserted");
        &mut self.rings[i]
    }
}

/// Default per-component ring capacity (events kept before dropping the
/// oldest).
pub const DEFAULT_RING_CAP: usize = 65_536;

/// A cheap, cloneable handle to a trace recording — or a disabled stub.
///
/// Cloning an attached tracer shares the underlying buffers, which is how
/// one recording is threaded through cores, memories, the link and the
/// host model. The simulator is single-threaded, so the shared state is a
/// plain `Rc<RefCell<…>>`.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceState>>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op costing one branch.
    #[must_use]
    pub const fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An attached tracer with the default ring capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAP)
    }

    /// An attached tracer keeping at most `cap` events per component.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be at least 1");
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceState {
                rings: Vec::new(),
                counters: Vec::new(),
                overlap: None,
                ring_cap: cap,
                cluster_epoch: 0,
                host_epoch: 0,
            }))),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. `start` is domain-local (cluster cycles or host
    /// nanoseconds); the current epoch of the component's domain is added
    /// so repeated runs lay out sequentially.
    ///
    /// On a disabled tracer this is a no-op.
    pub fn emit(&self, component: Component, kind: EventKind, start: u64, dur: u64) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        let epoch = match component {
            c if c.is_cluster_domain() => s.cluster_epoch,
            Component::Host => s.host_epoch,
            _ => 0,
        };
        let ev = TraceEvent {
            component,
            kind,
            start: start + epoch,
            dur,
        };
        s.ring_mut(component).push(ev);
    }

    /// Sets (overwrites) a component's busy/total counter. Called by the
    /// runners at the end of each run, so the final counters always
    /// describe the most recent run.
    pub fn set_counter(&self, component: Component, busy: u64, total: u64) {
        let Some(state) = &self.inner else { return };
        let mut s = state.borrow_mut();
        if let Some(slot) = s.counters.iter_mut().find(|(c, _)| *c == component) {
            slot.1 = Counter { busy, total };
        } else {
            s.counters.push((component, Counter { busy, total }));
            s.counters.sort_by_key(|(c, _)| *c);
        }
    }

    /// Sets (overwrites) the pipelined-offload overlap counters. Called
    /// by the offload runtime after each pipelined schedule, so the
    /// stored value always describes the most recent offload.
    pub fn set_overlap(&self, overlap: Overlap) {
        if let Some(state) = &self.inner {
            state.borrow_mut().overlap = Some(overlap);
        }
    }

    /// The most recently recorded overlap counters, if any.
    #[must_use]
    pub fn overlap(&self) -> Option<Overlap> {
        self.inner.as_ref().and_then(|s| s.borrow().overlap)
    }

    /// Advances the cluster-domain epoch by `cycles` (call with the run's
    /// end time after each cluster run).
    pub fn advance_cluster_epoch(&self, cycles: u64) {
        if let Some(state) = &self.inner {
            state.borrow_mut().cluster_epoch += cycles;
        }
    }

    /// Current cluster-domain epoch offset.
    #[must_use]
    pub fn cluster_epoch(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.borrow().cluster_epoch)
    }

    /// Advances the host-domain epoch by `ns` (call with the offload's
    /// wall-clock duration after each invocation).
    pub fn advance_host_epoch(&self, ns: u64) {
        if let Some(state) = &self.inner {
            state.borrow_mut().host_epoch += ns;
        }
    }

    /// Current host-domain epoch offset in nanoseconds.
    #[must_use]
    pub fn host_epoch(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.borrow().host_epoch)
    }

    /// All recorded events, grouped by component (components in a fixed
    /// order, events in recording order). Empty on a disabled tracer.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |s| {
            s.borrow()
                .rings
                .iter()
                .flat_map(|r| r.events.iter().copied())
                .collect()
        })
    }

    /// Events of one component, in recording order.
    #[must_use]
    pub fn events_of(&self, component: Component) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |s| {
            s.borrow()
                .rings
                .iter()
                .filter(|r| r.component == component)
                .flat_map(|r| r.events.iter().copied())
                .collect()
        })
    }

    /// Total events dropped across all rings (ring capacity exceeded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.borrow().rings.iter().map(|r| r.dropped).sum())
    }

    /// All counters, in component order.
    #[must_use]
    pub fn counters(&self) -> Vec<(Component, Counter)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |s| s.borrow().counters.clone())
    }

    /// The counter of one component, if set.
    #[must_use]
    pub fn counter(&self, component: Component) -> Option<Counter> {
        self.inner.as_ref().and_then(|s| {
            s.borrow()
                .counters
                .iter()
                .find(|(c, _)| *c == component)
                .map(|(_, k)| *k)
        })
    }

    /// Clears all recorded events and counters (capacity and epochs are
    /// kept).
    pub fn clear(&self) {
        if let Some(state) = &self.inner {
            let mut s = state.borrow_mut();
            s.rings.clear();
            s.counters.clear();
            s.overlap = None;
        }
    }

    /// Exports the recording as Chrome `trace_event` JSON (the
    /// `chrome://tracing` / Perfetto format). Deterministic: the same
    /// recording always serializes to the same bytes.
    #[must_use]
    pub fn chrome_json(&self) -> String {
        chrome::export(self)
    }

    /// Renders the busy/idle counters as a plain-text table.
    #[must_use]
    pub fn counters_table(&self) -> String {
        report::counters_table(self)
    }

    /// Renders the recorded offload phases as a plain-text breakdown
    /// table (the paper's Fig. 4/5 time decomposition).
    #[must_use]
    pub fn phase_table(&self) -> String {
        report::phase_table(self)
    }

    /// Renders the pipelined-offload overlap counters as a plain-text
    /// table (busy time per resource, pairwise/triple concurrency).
    #[must_use]
    pub fn overlap_table(&self) -> String {
        report::overlap_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Component::Core(0), EventKind::CoreRun, 0, 10);
        t.set_counter(Component::Core(0), 5, 10);
        t.advance_cluster_epoch(100);
        assert!(t.events().is_empty());
        assert!(t.counters().is_empty());
        assert_eq!(t.cluster_epoch(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn clones_share_the_recording() {
        let a = Tracer::enabled();
        let b = a.clone();
        b.emit(Component::Dma, EventKind::DmaBurst { bytes: 64 }, 5, 16);
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].component, Component::Dma);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.emit(Component::Tcdm, EventKind::BankConflict { bank: 0 }, i, 1);
        }
        let evs = t.events_of(Component::Tcdm);
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].start, 6, "oldest events dropped first");
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn cluster_epoch_offsets_cluster_events_only() {
        let t = Tracer::enabled();
        t.emit(Component::Core(0), EventKind::CoreRun, 10, 5);
        t.advance_cluster_epoch(1000);
        t.emit(Component::Core(0), EventKind::CoreRun, 10, 5);
        t.emit(Component::Link, EventKind::FrameTx { bytes: 8 }, 10, 5);
        let core = t.events_of(Component::Core(0));
        assert_eq!(core[0].start, 10);
        assert_eq!(core[1].start, 1010);
        assert_eq!(
            t.events_of(Component::Link)[0].start,
            10,
            "link has no cluster epoch"
        );
    }

    #[test]
    fn host_epoch_offsets_host_events() {
        let t = Tracer::enabled();
        t.advance_host_epoch(500);
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Compute),
            20,
            30,
        );
        t.emit(Component::Core(0), EventKind::CoreRun, 20, 30);
        assert_eq!(t.events_of(Component::Host)[0].start, 520);
        assert_eq!(t.events_of(Component::Core(0))[0].start, 20);
    }

    #[test]
    fn counters_overwrite_and_reconcile() {
        let t = Tracer::enabled();
        t.set_counter(Component::Core(1), 10, 100);
        t.set_counter(Component::Core(1), 80, 100);
        let c = t.counter(Component::Core(1)).unwrap();
        assert_eq!(c.busy, 80);
        assert_eq!(c.idle(), 20);
        assert_eq!(c.busy + c.idle(), c.total);
        assert!((c.utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn counters_sorted_by_component() {
        let t = Tracer::enabled();
        t.set_counter(Component::Dma, 1, 2);
        t.set_counter(Component::Core(0), 1, 2);
        t.set_counter(Component::Tcdm, 1, 2);
        let order: Vec<Component> = t.counters().iter().map(|(c, _)| *c).collect();
        assert_eq!(
            order,
            vec![Component::Core(0), Component::Tcdm, Component::Dma]
        );
    }

    #[test]
    fn clear_keeps_epochs() {
        let t = Tracer::enabled();
        t.emit(Component::Host, EventKind::Watchdog, 1, 0);
        t.advance_cluster_epoch(77);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.cluster_epoch(), 77);
    }

    #[test]
    fn zero_counter_utilization_is_zero() {
        assert_eq!(Counter::default().utilization(), 0.0);
        assert_eq!(Counter::default().idle(), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Component::Core(2).label(), "core2");
        assert_eq!(Component::ICache.label(), "icache");
        assert_eq!(PhaseKind::Input.name(), "inputs");
    }

    #[test]
    fn overlap_overwrites_and_clears() {
        let t = Tracer::enabled();
        assert!(t.overlap().is_none());
        t.set_overlap(Overlap {
            link_busy: 10,
            span: 20,
            ..Default::default()
        });
        t.set_overlap(Overlap {
            link_busy: 15,
            span: 30,
            ..Default::default()
        });
        assert_eq!(t.overlap().unwrap().link_busy, 15);
        t.clear();
        assert!(t.overlap().is_none());
    }

    #[test]
    fn overlap_on_disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.set_overlap(Overlap {
            span: 1,
            ..Default::default()
        });
        assert!(t.overlap().is_none());
    }

    #[test]
    fn overlap_check_accepts_consistent_counters() {
        let o = Overlap {
            link_busy: 100,
            dma_busy: 60,
            core_busy: 80,
            link_dma: 40,
            link_core: 50,
            dma_core: 30,
            triple: 20,
            span: 150,
            chunks: 12,
            engaged: true,
        };
        assert!(o.check().is_ok());
        assert_eq!(o.hidden_ns(), 40 + 50 + 30 - 20);
        assert!(o.any());
        assert!(!Overlap::default().any());
    }

    #[test]
    fn overlap_check_rejects_inconsistent_counters() {
        let pair_over_busy = Overlap {
            link_busy: 10,
            dma_busy: 10,
            link_dma: 11,
            span: 100,
            ..Default::default()
        };
        assert!(pair_over_busy.check().is_err());
        let triple_over_pair = Overlap {
            link_busy: 50,
            dma_busy: 50,
            core_busy: 50,
            link_dma: 10,
            link_core: 40,
            dma_core: 40,
            triple: 20,
            span: 100,
            ..Default::default()
        };
        assert!(triple_over_pair.check().is_err());
        let busy_over_span = Overlap {
            core_busy: 200,
            span: 100,
            ..Default::default()
        };
        assert!(busy_over_span.check().is_err());
    }
}
