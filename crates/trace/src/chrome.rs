//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON Object Format (`{"traceEvents": […]}`) understood by
//! `chrome://tracing` and Perfetto. Two processes separate the clock
//! domains: pid 1 ("cluster") interprets one reported microsecond as one
//! cluster cycle, pid 2 ("host") as one nanosecond of wall time. All
//! duration events are complete events (`"ph":"X"`) with integer
//! timestamps, so the export is byte-deterministic for a given recording.

use crate::{Component, EventKind, TraceEvent, Tracer};

const CLUSTER_PID: u32 = 1;
const HOST_PID: u32 = 2;

fn pid_of(c: Component) -> u32 {
    if c.is_cluster_domain() {
        CLUSTER_PID
    } else {
        HOST_PID
    }
}

fn tid_of(c: Component) -> u32 {
    match c {
        Component::Core(i) => u32::from(i) + 1,
        Component::Tcdm => 20,
        Component::Dma => 21,
        Component::ICache => 22,
        Component::Cluster => 23,
        Component::Host => 1,
        Component::Link => 2,
        Component::Worker(i) => 30 + u32::from(i),
    }
}

/// Event name, category, and optional single `args` key/value.
fn describe(kind: EventKind) -> (&'static str, &'static str, Option<(&'static str, u64)>) {
    match kind {
        EventKind::CoreRun => ("run", "core", None),
        EventKind::CoreSleep => ("sleep", "core", None),
        EventKind::CoreMemStall => ("mem-stall", "core", None),
        EventKind::BankConflict { bank } => {
            ("bank-conflict", "tcdm", Some(("bank", u64::from(bank))))
        }
        EventKind::IcacheMiss => ("miss", "icache", None),
        EventKind::DmaBurst { bytes } => ("burst", "dma", Some(("bytes", u64::from(bytes)))),
        EventKind::FrameTx { bytes } => ("frame-tx", "link", Some(("bytes", u64::from(bytes)))),
        EventKind::FrameRx { bytes } => ("frame-rx", "link", Some(("bytes", u64::from(bytes)))),
        EventKind::Retry { attempt } => ("retry", "link", Some(("attempt", u64::from(attempt)))),
        EventKind::WfeSleep => ("wfe-sleep", "host", None),
        EventKind::Watchdog => ("watchdog", "host", None),
        EventKind::Phase(p) => (p.name(), "phase", None),
        EventKind::Barrier => ("barrier", "cluster", None),
        EventKind::Batch { size } => ("batch", "serve", Some(("size", u64::from(size)))),
        EventKind::QueueDepth { depth } => {
            ("queue-depth", "serve", Some(("depth", u64::from(depth))))
        }
        EventKind::Scale { from: _, to } => ("scale", "serve", Some(("to", u64::from(to)))),
    }
}

fn push_metadata(out: &mut String, pid: u32, tid: Option<u32>, key: &str, value: &str) {
    out.push_str("{\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    if let Some(tid) = tid {
        out.push_str(",\"tid\":");
        out.push_str(&tid.to_string());
    }
    out.push_str(",\"name\":\"");
    out.push_str(key);
    out.push_str("\",\"args\":{\"name\":\"");
    out.push_str(value);
    out.push_str("\"}}");
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    let (name, cat, arg) = describe(ev.kind);
    out.push_str("{\"ph\":\"X\",\"pid\":");
    out.push_str(&pid_of(ev.component).to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid_of(ev.component).to_string());
    out.push_str(",\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"cat\":\"");
    out.push_str(cat);
    out.push_str("\",\"ts\":");
    out.push_str(&ev.start.to_string());
    out.push_str(",\"dur\":");
    out.push_str(&ev.dur.to_string());
    if let Some((key, value)) = arg {
        out.push_str(",\"args\":{\"");
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
        out.push('}');
    }
    out.push('}');
}

/// Serializes a tracer's recording; `{"traceEvents":[]}` when disabled
/// or empty.
pub(crate) fn export(tracer: &Tracer) -> String {
    let events = tracer.events();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Metadata rows only for components that actually appear.
    let mut components: Vec<Component> = events.iter().map(|e| e.component).collect();
    components.sort();
    components.dedup();
    if components.iter().any(|c| c.is_cluster_domain()) {
        sep(&mut out);
        push_metadata(&mut out, CLUSTER_PID, None, "process_name", "cluster");
    }
    if components.iter().any(|c| !c.is_cluster_domain()) {
        sep(&mut out);
        push_metadata(&mut out, HOST_PID, None, "process_name", "host");
    }
    for &c in &components {
        sep(&mut out);
        push_metadata(
            &mut out,
            pid_of(c),
            Some(tid_of(c)),
            "thread_name",
            &c.label(),
        );
    }

    for ev in &events {
        sep(&mut out);
        push_event(&mut out, ev);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Component, EventKind, PhaseKind, Tracer};

    /// Minimal recursive-descent JSON checker — enough to prove the
    /// export is well-formed without any external parser.
    mod json {
        pub fn validate(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0;
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i == b.len() {
                Ok(())
            } else {
                Err(format!("trailing bytes at {i}"))
            }
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, b"true"),
                Some(b'f') => literal(b, i, b"false"),
                Some(b'n') => literal(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }

        fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
            if b[*i..].starts_with(lit) {
                *i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b[*i] == b'-' {
                *i += 1;
            }
            let start = *i;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            if *i == start {
                Err(format!("bad number at {start}"))
            } else {
                Ok(())
            }
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_owned())
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // '{'
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                if b.get(*i) != Some(&b'"') {
                    return Err(format!("expected key at {i}"));
                }
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // '['
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
                }
            }
        }
    }

    fn sample() -> Tracer {
        let t = Tracer::enabled();
        t.emit(Component::Core(0), EventKind::CoreRun, 0, 100);
        t.emit(Component::Core(1), EventKind::CoreSleep, 10, 20);
        t.emit(Component::Tcdm, EventKind::BankConflict { bank: 5 }, 17, 2);
        t.emit(Component::Dma, EventKind::DmaBurst { bytes: 256 }, 30, 64);
        t.emit(Component::ICache, EventKind::IcacheMiss, 4, 9);
        t.emit(Component::Cluster, EventKind::Barrier, 99, 0);
        t.emit(Component::Link, EventKind::FrameTx { bytes: 74 }, 0, 4500);
        t.emit(Component::Link, EventKind::Retry { attempt: 1 }, 4500, 0);
        t.emit(
            Component::Host,
            EventKind::Phase(PhaseKind::Compute),
            100,
            9000,
        );
        t.emit(Component::Host, EventKind::WfeSleep, 100, 8000);
        t.emit(Component::Host, EventKind::Watchdog, 8100, 0);
        t
    }

    #[test]
    fn export_is_valid_json() {
        let json = sample().chrome_json();
        json::validate(&json).expect("chrome export must be well-formed JSON");
    }

    #[test]
    fn empty_export_is_valid_json() {
        let json = Tracer::disabled().chrome_json();
        json::validate(&json).unwrap();
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(json::validate("{\"a\":}").is_err());
        assert!(json::validate("[1,2,").is_err());
        assert!(json::validate("{} trailing").is_err());
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample().chrome_json();
        let b = sample().chrome_json();
        assert_eq!(a, b);
    }

    #[test]
    fn domains_map_to_separate_pids() {
        let json = sample().chrome_json();
        assert!(json.contains("\"args\":{\"name\":\"cluster\"}"));
        assert!(json.contains("\"args\":{\"name\":\"host\"}"));
        assert!(json.contains("\"name\":\"bank-conflict\",\"cat\":\"tcdm\""));
        assert!(json.contains("\"args\":{\"bank\":5}"));
        assert!(json.contains("\"name\":\"frame-tx\",\"cat\":\"link\""));
    }

    #[test]
    fn metadata_only_for_present_components() {
        let t = Tracer::enabled();
        t.emit(Component::Core(0), EventKind::CoreRun, 0, 1);
        let json = t.chrome_json();
        assert!(json.contains("\"args\":{\"name\":\"core0\"}"));
        assert!(!json.contains("\"args\":{\"name\":\"host\"}"));
        assert!(!json.contains("\"args\":{\"name\":\"link\"}"));
    }
}
