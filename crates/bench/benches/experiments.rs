//! One Criterion benchmark per paper artifact: measures the cost of
//! regenerating each table/figure data point (reduced problem sizes keep
//! iterations fast; the full-size artifacts are produced by the
//! `table1`/`fig3`/`fig4`/`fig5a`/`fig5b` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ulp_bench::fig5a::LINK_IDLE_WATTS;
use ulp_kernels::matmul::{build_sized, MatVariant};
use ulp_kernels::runner::run;
use ulp_kernels::TargetEnv;
use ulp_mcu::datasheet;
use ulp_offload::envelope::{envelope_speedup, PowerBudget};
use ulp_offload::{HetSystem, HetSystemConfig, OffloadOptions};
use ulp_power::{busy_activity, PulpPowerModel};

/// Table I data point: RISC-op counting on the baseline core.
fn bench_table1(c: &mut Criterion) {
    let env = TargetEnv::baseline();
    c.bench_function("table1/riscops_matmul16", |b| {
        b.iter(|| {
            let build = build_sized(MatVariant::Char, &env, 16);
            black_box(run(&build, &env).unwrap().retired)
        })
    });
}

/// Fig. 3 data point: one PULP operating-point evaluation.
fn bench_fig3(c: &mut Criterion) {
    let env = TargetEnv::pulp_parallel();
    let build = build_sized(MatVariant::Char, &env, 16);
    let measured = run(&build, &env).unwrap();
    let act = measured.activity.unwrap();
    let model = PulpPowerModel::pulp3();
    c.bench_function("fig3/pulp_operating_point", |b| {
        b.iter(|| {
            let f = model.fmax_hz(black_box(0.6));
            let p = model.total_power_w(f, 0.6, &act);
            black_box(measured.retired as f64 / (measured.cycles as f64 / f) / p)
        })
    });
}

/// Fig. 4 data point: architectural-speedup measurement (two simulations).
fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/arch_speedup_matmul16", |b| {
        b.iter(|| {
            let m4env = TargetEnv::host_m4();
            let orenv = TargetEnv::pulp_single();
            let m4 = run(&build_sized(MatVariant::Char, &m4env, 16), &m4env).unwrap();
            let or10n = run(&build_sized(MatVariant::Char, &orenv, 16), &orenv).unwrap();
            black_box(m4.cycles as f64 / or10n.cycles as f64)
        })
    });
}

/// Fig. 5a data point: the envelope solver at one MCU frequency.
fn bench_fig5a(c: &mut Criterion) {
    let power = PulpPowerModel::pulp3();
    let act = busy_activity(4, 8);
    let mcu = datasheet::stm32l476();
    c.bench_function("fig5a/envelope_point", |b| {
        b.iter(|| {
            black_box(envelope_speedup(
                &PowerBudget::default(),
                &mcu,
                black_box(8.0e6),
                &power,
                &act,
                3_000_000,
                280_000,
                2_400_000,
                LINK_IDLE_WATTS,
            ))
        })
    });
}

/// Fig. 5b data point: offload-cost measurement plus an amortization sweep.
fn bench_fig5b(c: &mut Criterion) {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let build = build_sized(MatVariant::Char, &TargetEnv::pulp_parallel(), 16);
    let cost = sys.measure_cost(&build).unwrap();
    c.bench_function("fig5b/amortization_sweep_10pts", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for iters in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
                let rep = sys.predict(
                    &cost,
                    &OffloadOptions {
                        iterations: iters,
                        ..Default::default()
                    },
                    true,
                );
                total += rep.efficiency();
            }
            black_box(total)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_fig3, bench_fig4, bench_fig5a, bench_fig5b
);
criterion_main!(benches);
