//! Microbenchmarks of the simulator substrate itself: instruction
//! encode/decode, interpreter throughput, TCDM arbitration, cluster
//! fork/join, and the power-model envelope solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ulp_cluster::{Cluster, ClusterConfig, L2_BASE};
use ulp_isa::prelude::*;
use ulp_isa::{decode, encode};
use ulp_power::{busy_activity, PulpPowerModel};

fn bench_encode_decode(c: &mut Criterion) {
    let insns: Vec<Insn> = (0..32u8)
        .map(|i| Insn::Addi(Reg::new(i % 32), Reg::new((i + 1) % 32), i16::from(i)))
        .chain((0..32u8).map(|i| Insn::Mac(Reg::new(i % 32), Reg::new(1), Reg::new(2))))
        .collect();
    let words: Vec<u32> = insns.iter().map(|i| encode(i).unwrap()).collect();

    c.bench_function("isa/encode_64", |b| {
        b.iter(|| {
            for i in &insns {
                black_box(encode(black_box(i)).unwrap());
            }
        })
    });
    c.bench_function("isa/decode_64", |b| {
        b.iter(|| {
            for w in &words {
                black_box(decode(black_box(*w)).unwrap());
            }
        })
    });
}

fn interpreter_program(n: i32) -> Program {
    let mut a = Asm::new();
    a.li(R1, n);
    a.li(R2, 0);
    let top = a.new_label();
    a.bind(top);
    a.add(R2, R2, R1);
    a.slli(R3, R2, 1);
    a.insn(Insn::Xor(R4, R3, R2));
    a.addi(R1, R1, -1);
    a.bne(R1, R0, top);
    a.halt();
    a.finish().unwrap()
}

fn bench_interpreter(c: &mut Criterion) {
    let prog = interpreter_program(10_000);
    c.bench_function("core/run_50k_insns", |b| {
        b.iter_batched(
            || {
                let mut mem = FlatMemory::new(0, 4096);
                mem.load_program(&prog, 0).unwrap();
                let mut core = Core::new(0, CoreModel::or10n());
                core.reset(0);
                (core, mem)
            },
            |(mut core, mut mem)| {
                core.run(&mut mem, u64::MAX).unwrap();
                black_box(core.time())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cluster_fork_join(c: &mut Criterion) {
    // A minimal fork/join kernel: wake the team, everyone barriers, halt.
    let mut a = Asm::new();
    let worker = a.new_label();
    a.insn(Insn::Csrr(R28, Csr::CoreId));
    a.bne(R28, R0, worker);
    a.sev(33);
    a.barrier();
    a.sev(0);
    a.halt();
    a.bind(worker);
    a.wfe();
    a.barrier();
    a.halt();
    let prog = a.finish().unwrap();

    c.bench_function("cluster/fork_join_roundtrip", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new(ClusterConfig::default());
                cl.load_binary(&prog, L2_BASE).unwrap();
                cl
            },
            |mut cl| {
                cl.start(L2_BASE, &[], 0);
                black_box(cl.run_until_halt(1_000_000).unwrap().cycles)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tcdm_contention(c: &mut Criterion) {
    // Four cores hammering the same bank.
    let mut a = Asm::new();
    a.la(R1, ulp_cluster::TCDM_BASE);
    a.li(R2, 256);
    let top = a.new_label();
    a.bind(top);
    a.lw(R3, R1, 0);
    a.addi(R2, R2, -1);
    a.bne(R2, R0, top);
    a.halt();
    let prog = a.finish().unwrap();

    c.bench_function("cluster/tcdm_contention_1k_accesses", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new(ClusterConfig::default());
                cl.load_binary(&prog, L2_BASE).unwrap();
                cl
            },
            |mut cl| {
                cl.start(L2_BASE, &[], 0);
                black_box(cl.run_until_halt(10_000_000).unwrap().cycles)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_power_model(c: &mut Criterion) {
    let model = PulpPowerModel::pulp3();
    let act = busy_activity(4, 8);
    c.bench_function("power/envelope_solver", |b| {
        b.iter(|| black_box(model.max_freq_under_power(black_box(9.5e-3), &act)))
    });
    c.bench_function("power/total_power_eval", |b| {
        b.iter(|| black_box(model.total_power_w(black_box(200.0e6), 0.7, &act)))
    });
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_interpreter,
    bench_cluster_fork_join,
    bench_tcdm_contention,
    bench_power_model
);
criterion_main!(benches);
