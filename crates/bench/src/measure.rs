//! Shared benchmark measurement: one record per Table I row with cycle
//! counts on every target configuration.

use ulp_cluster::ClusterActivity;
use ulp_kernels::runner::run;
use ulp_kernels::{Benchmark, TargetEnv};

/// Per-benchmark measurement across all target configurations.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// RISC ops: retired instructions on the featureless baseline core.
    pub risc_ops: u64,
    /// Cycles on a Cortex-M3-class host.
    pub cycles_m3: u64,
    /// Cycles on a Cortex-M4-class host.
    pub cycles_m4: u64,
    /// Cycles on a single OR10N core.
    pub cycles_single: u64,
    /// Cycles on the 4-core cluster (OpenMP-parallel, warm).
    pub cycles_quad: u64,
    /// Activity of the 4-core run (power-model input).
    pub activity_quad: ClusterActivity,
    /// Input bytes per execution (Table I "Input").
    pub input_bytes: usize,
    /// Output bytes per execution (Table I "Output").
    pub output_bytes: usize,
    /// Offload binary size: text + rodata + constants (Table I "Binary").
    pub binary_bytes: usize,
}

impl Measurement {
    /// Architectural speedup vs Cortex-M4 (paper Fig. 4 left).
    #[must_use]
    pub fn arch_speedup_m4(&self) -> f64 {
        self.cycles_m4 as f64 / self.cycles_single as f64
    }

    /// Architectural speedup vs Cortex-M3.
    #[must_use]
    pub fn arch_speedup_m3(&self) -> f64 {
        self.cycles_m3 as f64 / self.cycles_single as f64
    }

    /// Parallel speedup of 4 cores over 1 (paper Fig. 4 right; ideal 4).
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        self.cycles_single as f64 / self.cycles_quad as f64
    }

    /// RISC operations per cluster cycle (the Fig. 5a bar annotations).
    #[must_use]
    pub fn pulp_ops_per_cycle(&self) -> f64 {
        self.risc_ops as f64 / self.cycles_quad as f64
    }

    /// RISC operations per Cortex-M4 cycle.
    #[must_use]
    pub fn mcu_ops_per_cycle(&self) -> f64 {
        self.risc_ops as f64 / self.cycles_m4 as f64
    }
}

/// Measures one benchmark on every configuration (five simulations).
///
/// # Panics
///
/// Panics if any simulation fails — every kernel is verified bit-exact
/// against its golden reference on every run, so a failure here is a bug.
#[must_use]
pub fn measure(benchmark: Benchmark) -> Measurement {
    let run_on = |env: TargetEnv| {
        let build = benchmark.build(&env);
        run(&build, &env).unwrap_or_else(|e| panic!("{} failed: {e}", build.name))
    };
    let baseline = run_on(TargetEnv::baseline());
    let m3 = run_on(TargetEnv::host_m3());
    let m4 = run_on(TargetEnv::host_m4());
    let single = run_on(TargetEnv::pulp_single());
    let quad = run_on(TargetEnv::pulp_parallel());
    let build = benchmark.build(&TargetEnv::pulp_parallel());
    Measurement {
        benchmark,
        risc_ops: baseline.retired,
        cycles_m3: m3.cycles,
        cycles_m4: m4.cycles,
        cycles_single: single.cycles,
        cycles_quad: quad.cycles,
        activity_quad: quad.activity.expect("cluster run reports activity"),
        input_bytes: build.input_bytes(),
        output_bytes: build.output_bytes(),
        binary_bytes: build.offload_binary_bytes(),
    }
}

/// Measures every Table I benchmark.
///
/// The benchmarks are independent deterministic simulations, so the sweep
/// fans out over [`ulp_par::par_map`] worker threads. Output order (and
/// every output byte) is identical to the serial sweep; `--jobs 1` or
/// `ULP_JOBS=1` forces the serial path.
#[must_use]
pub fn measure_all() -> Vec<Measurement> {
    ulp_par::par_map(&Benchmark::ALL, |_, b| measure(*b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_invariants_on_all_benchmarks() {
        for m in measure_all() {
            let name = m.benchmark;
            println!(
                "{name:?}: arch_m4 {:.2} arch_m3 {:.2} par {:.2} pulp_opc {:.2} mcu_opc {:.2}",
                m.arch_speedup_m4(),
                m.arch_speedup_m3(),
                m.parallel_speedup(),
                m.pulp_ops_per_cycle(),
                m.mcu_ops_per_cycle()
            );
            assert!(m.risc_ops > 0, "{name:?}: no retired instructions");
            assert!(
                m.cycles_m3 >= m.cycles_m4,
                "{name:?}: M3 is never faster than M4"
            );
            // A single OR10N core beats the M4 on most kernels, but Hog's
            // gather-heavy inner loop lands just below parity (0.87x), so the
            // general bound only rejects gross regressions.
            assert!(
                m.arch_speedup_m4() > 0.75,
                "{name:?}: single-core speedup {} collapsed",
                m.arch_speedup_m4()
            );
            assert!(
                m.parallel_speedup() > 1.0 && m.parallel_speedup() < 4.0,
                "{name:?}: 4-core speedup {} outside (1, 4)",
                m.parallel_speedup()
            );
            assert!(
                m.pulp_ops_per_cycle() > m.mcu_ops_per_cycle(),
                "{name:?}: cluster must retire more ops per cycle than the MCU"
            );
            assert!(
                m.input_bytes > 0 && m.output_bytes > 0 && m.binary_bytes > 0,
                "{name:?}: Table I size columns must be non-zero"
            );
            if name == Benchmark::SvmLinear {
                // The paper's flagship kernel keeps its tighter historical bound.
                assert!(m.parallel_speedup() > 2.5 && m.parallel_speedup() < 4.0);
            }
        }
    }
}
