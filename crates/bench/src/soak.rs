//! Chaos-at-serve-scale soak study: a million-request seeded endurance
//! run under fault injection and scripted disruptions, next to a calm
//! control cell, rendered as a table and as `BENCH_soak.json`.
//!
//! The chaos cell arms every worker with a seeded fault profile (two
//! profiles round-robin: a mildly lossy link and a degraded worker whose
//! drops occasionally exhaust the retry budget and fail batches over to
//! the host), scripts two 100× flash crowds, two worker blackouts, and
//! periodic residency churn — then serves ≥ 1 M requests and
//! cross-checks every invariant of the resulting report against the raw
//! per-request outcomes. The calm cell serves the identical base
//! workload with chaos off, so the table reads as "what the disruption
//! budget cost".
//!
//! Everything runs on the virtual clock, so the study (and its JSON) is
//! a pure function of [`SEED`]: byte-identical on every machine and
//! under every `--jobs` setting.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::HetSystemConfig;
use ulp_par::par_map;
use ulp_serve::{
    fmt_ms, run_soak, BatchPolicy, Blackout, Burst, ChaosConfig, CostBook, DeadlineClass,
    FaultProfile, ServeConfig, SoakOutcome, SoakSpec, TenantLoad, TenantSpec, WorkloadSpec,
};

/// Worker-pool size of the soak.
pub const POOL: usize = 4;
/// Largest batch a kernel-aware dispatch may carry.
pub const MAX_BATCH: usize = 16;
/// Workload seed (the soak's identity).
pub const SEED: u64 = 20_260_809;
/// Requests the base streams aim to offer (the bursts add ~10% more).
const TARGET_REQUESTS: f64 = 1_000_000.0;
/// Offered load as a fraction of the pool's serial capacity: high
/// enough that disruptions bite, low enough that the flash crowds (not
/// steady-state overload) are what drives rejections.
const SATURATION: f64 = 0.8;

/// One cell of the study: a named soak outcome.
#[derive(Clone, Debug)]
pub struct SoakCell {
    /// "calm" (control, chaos off) or "chaos" (full disruption budget).
    pub label: &'static str,
    /// The soak's report, offered-request count, and invariant verdict.
    pub outcome: SoakOutcome,
}

/// The pool's fault profiles, assigned round-robin to workers: three
/// workers get a mildly lossy link; the last is a degraded unit whose
/// drop rate occasionally exhausts the retry budget and sends whole
/// batches to the host fallback.
fn profiles() -> Vec<FaultProfile> {
    let mild = FaultProfile {
        bit_error_rate: 1e-6,
        drop_rate: 0.002,
        hang_rate: 0.001,
        ..FaultProfile::default()
    };
    let degraded = FaultProfile {
        bit_error_rate: 1e-5,
        drop_rate: 0.1,
        truncate_rate: 0.002,
        hang_rate: 0.02,
        late_eoc_rate: 0.05,
        late_eoc_cycles: 2_048,
    };
    vec![mild, mild, mild, degraded]
}

/// The shared base workload: two tenants (app at weight 2, bg) mixing
/// all ten paper benchmarks, sized so the base streams offer about
/// [`TARGET_REQUESTS`] requests.
fn workload(book: &CostBook) -> WorkloadSpec {
    let mix: Vec<(Benchmark, f64)> = Benchmark::ALL.iter().map(|&b| (b, 1.0)).collect();
    let mean_ns: f64 = mix
        .iter()
        .map(|&(b, _)| book.est_ns(b, 1) as f64)
        .sum::<f64>()
        / mix.len() as f64;
    let rate = SATURATION * POOL as f64 * 1e9 / mean_ns;

    let mut app = TenantSpec::weighted("app", 2);
    app.queue_cap = 512;
    let mut bg = TenantSpec::new("bg");
    bg.queue_cap = 512;

    let mk = |spec: TenantSpec, share: f64, class_mix: [f64; 3]| TenantLoad {
        spec,
        rate_rps: rate * share,
        kernel_mix: mix.clone(),
        class_mix,
        iterations: 1,
    };
    WorkloadSpec {
        seed: SEED,
        duration_ns: (TARGET_REQUESTS / rate * 1e9) as u64,
        tenants: vec![mk(app, 0.7, [0.3, 0.6, 0.1]), mk(bg, 0.3, [0.0, 0.5, 0.5])],
    }
}

/// The chaos cell's spec: the base workload plus the full disruption
/// budget — two 100× flash crowds, two worker blackouts, residency churn
/// every 1/64th of the run, and round-robin fault profiles.
#[must_use]
pub fn chaos_spec(book: &CostBook) -> SoakSpec {
    let workload = workload(book);
    let d = workload.duration_ns;
    let serve = serve_config();
    SoakSpec {
        workload,
        bursts: vec![
            Burst {
                tenant: 0,
                start_ns: d / 5,
                end_ns: d / 5 + d / 1024,
                factor: 100.0,
            },
            Burst {
                tenant: 1,
                start_ns: d * 3 / 5,
                end_ns: d * 3 / 5 + d / 1024,
                factor: 100.0,
            },
        ],
        blackouts: vec![
            Blackout {
                worker: 0,
                start_ns: d * 3 / 10,
                end_ns: d * 3 / 10 + d / 16,
            },
            Blackout {
                worker: 2,
                start_ns: d * 7 / 10,
                end_ns: d * 7 / 10 + d / 32,
            },
        ],
        churn_period_ns: d / 64,
        chaos: ChaosConfig {
            seed: SEED ^ 0xC4A0_5CA1E,
            profiles: profiles(),
            ..ChaosConfig::default()
        },
        serve,
    }
}

/// The calm control cell: identical base workload, chaos off.
#[must_use]
pub fn calm_spec(book: &CostBook) -> SoakSpec {
    SoakSpec::calm(workload(book), serve_config())
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        pool: POOL,
        policy: BatchPolicy::KernelAware {
            max_batch: MAX_BATCH,
        },
        ..ServeConfig::default()
    }
}

/// Runs both cells (calm control first, then chaos) and returns them in
/// that order.
///
/// # Panics
///
/// Panics if kernel measurement fails or a spec misconfigures the pool —
/// configuration bugs, not runtime conditions.
#[must_use]
pub fn study() -> Vec<SoakCell> {
    let config = HetSystemConfig::default();
    let book = CostBook::measure_with_host(
        &TargetEnv::pulp_parallel(),
        &TargetEnv::host_m4(),
        &config,
        &Benchmark::ALL,
    )
    .expect("cost measurement");
    let cells: Vec<(&'static str, SoakSpec)> =
        vec![("calm", calm_spec(&book)), ("chaos", chaos_spec(&book))];
    par_map(&cells, |_, (label, spec)| SoakCell {
        label,
        outcome: run_soak(&config, book.clone(), spec).expect("soak spec fits the pool"),
    })
}

/// Plain-text study table (the golden `soak_table.txt` snapshot).
#[must_use]
pub fn render_table(cells: &[SoakCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let r = &c.outcome.report;
            vec![
                c.label.to_owned(),
                c.outcome.requests.to_string(),
                r.completed.to_string(),
                r.rejected.to_string(),
                r.failed_over.to_string(),
                r.failed.to_string(),
                format!("{:.1}", r.throughput_rps()),
                fmt_ms(r.latency.p99_ns),
                r.deadline_misses.to_string(),
                r.chaos.retransmissions.to_string(),
                r.chaos.watchdog_fires.to_string(),
                if c.outcome.violations.is_empty() {
                    "OK".to_owned()
                } else {
                    c.outcome.violations.len().to_string()
                },
            ]
        })
        .collect();
    let mut out = String::from("Soak study: calm control vs full chaos budget\n");
    out.push_str(&format!(
        "(pool {POOL}, max batch {MAX_BATCH}, seed {SEED}; chaos = per-worker faults, \
         100x flash crowds, worker blackouts, residency churn)\n\n"
    ));
    out.push_str(&crate::render_table(
        &[
            "cell",
            "offered",
            "completed",
            "rejected",
            "failed over",
            "failed",
            "rps",
            "p99",
            "slo miss",
            "retrans",
            "watchdog",
            "invariants",
        ],
        &rows,
    ));
    let offered: u64 = cells.iter().map(|c| c.outcome.requests).sum();
    let violations: usize = cells.iter().map(|c| c.outcome.violations.len()).sum();
    out.push_str(&format!(
        "\n{offered} requests conserved across {} cells, {violations} invariant violations\n",
        cells.len(),
    ));
    out
}

/// Renders the committed `BENCH_soak.json`: per-cell conservation,
/// degradation, chaos, and SLO-ledger numbers. Deliberately excludes the
/// `--jobs` setting and every other machine fact — the file is a claim
/// about the *model*, and must be byte-identical however it was
/// produced.
#[must_use]
pub fn render_json(cells: &[SoakCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"het-accel-soak-v1\",\n");
    out.push_str("  \"time_basis\": \"virtual nanoseconds (seeded, machine-independent)\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"pool\": {POOL},\n"));
    out.push_str(&format!("  \"max_batch\": {MAX_BATCH},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.outcome.report;
        out.push_str("    {\n");
        out.push_str(&format!("      \"cell\": \"{}\",\n", c.label));
        out.push_str(&format!(
            "      \"conservation\": {{\"offered\": {}, \"admitted\": {}, \"completed\": {}, \
             \"rejected\": {}, \"failed_over\": {}, \"failed\": {}, \"stranded\": {}}},\n",
            c.outcome.requests,
            r.admitted,
            r.completed,
            r.rejected,
            r.failed_over,
            r.failed,
            r.stranded
        ));
        out.push_str(&format!(
            "      \"service\": {{\"throughput_rps\": {:.3}, \"mean_batch\": {:.3}, \
             \"p50_ms\": \"{}\", \"p99_ms\": \"{}\", \"deadline_misses\": {}, \
             \"uploads\": {}, \"makespan_ns\": {}}},\n",
            r.throughput_rps(),
            r.mean_batch(),
            fmt_ms(r.latency.p50_ns),
            fmt_ms(r.latency.p99_ns),
            r.deadline_misses,
            r.uploads,
            r.makespan_ns
        ));
        out.push_str(&format!(
            "      \"chaos\": {{\"frames\": {}, \"frames_damaged\": {}, \"bits_flipped\": {}, \
             \"crc_escapes\": {}, \"retransmissions\": {}, \"watchdog_fires\": {}, \
             \"late_events\": {}, \"fallback_batches\": {}, \"fallback_requests\": {}, \
             \"failed_requests\": {}, \"residency_flushes\": {}, \"blackout_windows\": {}}},\n",
            r.chaos.frames,
            r.chaos.frames_damaged,
            r.chaos.bits_flipped,
            r.chaos.crc_escapes,
            r.chaos.retransmissions,
            r.chaos.watchdog_fires,
            r.chaos.late_events,
            r.chaos.fallback_batches,
            r.chaos.fallback_requests,
            r.chaos.failed_requests,
            r.chaos.residency_flushes,
            r.chaos.blackout_windows
        ));
        out.push_str("      \"slo\": [\n");
        for (t, tenant) in r.tenants.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"tenant\": \"{}\", \"classes\": [",
                tenant.name
            ));
            for (k, class) in DeadlineClass::ALL.iter().enumerate() {
                let cell = r.slo.cells[t][class.rank() as usize];
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"class\": \"{}\", \"completed\": {}, \"failed_over\": {}, \
                     \"failed\": {}, \"rejected\": {}, \"missed\": {}}}",
                    class.name(),
                    cell.completed,
                    cell.failed_over,
                    cell.failed,
                    cell.rejected,
                    cell.missed
                ));
            }
            out.push_str(if t + 1 == r.tenants.len() {
                "]}\n"
            } else {
                "]},\n"
            });
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"invariant_violations\": {}\n",
            c.outcome.violations.len()
        ));
        out.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    let offered: u64 = cells.iter().map(|c| c.outcome.requests).sum();
    out.push_str(&format!("  \"total_offered\": {offered}\n"));
    out.push_str("}\n");
    out
}

/// Runs the full study and returns the table (the `soak` binary's
/// stdout).
#[must_use]
pub fn run() -> String {
    render_table(&study())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_offers_more_than_the_calm_spec() {
        let book = CostBook::measure_with_host(
            &TargetEnv::pulp_parallel(),
            &TargetEnv::host_m4(),
            &HetSystemConfig::default(),
            &Benchmark::ALL,
        )
        .expect("cost measurement");
        // Sizing sanity on the spec level only (the full million-request
        // run lives in the integration suite): the burst windows and
        // blackouts must fall inside the workload window.
        let chaos = chaos_spec(&book);
        let calm = calm_spec(&book);
        assert_eq!(chaos.workload.duration_ns, calm.workload.duration_ns);
        let d = chaos.workload.duration_ns;
        for b in &chaos.bursts {
            assert!(b.start_ns < b.end_ns && b.end_ns < d);
            assert!((b.factor - 100.0).abs() < f64::EPSILON);
        }
        for b in &chaos.blackouts {
            assert!(b.start_ns < b.end_ns && b.end_ns < d);
            assert!(b.worker < POOL);
        }
        assert!(chaos.churn_period_ns > 0 && chaos.churn_period_ns < d);
        assert!(chaos.chaos.is_active());
        assert!(!calm.chaos.is_active());
    }
}
