//! Pipelined-offload study: what the chunked, double-buffered engine
//! hides on every Table I benchmark.
//!
//! For each kernel the offload is evaluated twice from one measured
//! [`OffloadCost`](ulp_offload::OffloadCost) — serialized and pipelined —
//! and the table reports the modeled end-to-end times plus the engine's
//! overlap accounting. The serialized column is the exact Fig. 5b ledger;
//! pipelining only ever subtracts from it.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::{HetSystem, HetSystemConfig, OffloadOptions, PipelineConfig};

use crate::render_table;

/// Iterations per offload: enough to amortize the binary and reach the
/// steady state the engine pipelines.
pub const ITERATIONS: usize = 32;

/// One benchmark's serialized-vs-pipelined comparison.
#[derive(Clone, Debug)]
pub struct PipelinePoint {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Modeled end-to-end seconds, serialized offload.
    pub serialized_seconds: f64,
    /// Modeled end-to-end seconds with the pipelined engine.
    pub pipelined_seconds: f64,
    /// Chunk frames the engine scheduled.
    pub chunks: u64,
    /// Nanoseconds with at least two of {link, DMA, cores} concurrently
    /// busy.
    pub hidden_ns: u64,
    /// The engine beat the legacy double-buffer bound.
    pub engaged: bool,
}

impl PipelinePoint {
    /// Fraction of the serialized cycles the pipeline hid.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.serialized_seconds > 0.0 {
            1.0 - self.pipelined_seconds / self.serialized_seconds
        } else {
            0.0
        }
    }
}

/// Evaluates one benchmark at the given pipeline config.
///
/// # Panics
///
/// Panics if the kernel fails to offload — every kernel is verified
/// bit-exact against its golden reference, so a failure here is a bug.
#[must_use]
pub fn evaluate(benchmark: Benchmark, pipe: PipelineConfig) -> PipelinePoint {
    let mut sys = HetSystem::new(HetSystemConfig::default());
    let build = benchmark.build(&TargetEnv::pulp_parallel());
    let cost = sys
        .measure_cost(&build)
        .unwrap_or_else(|e| panic!("{} failed: {e}", build.name));
    let serialized = sys.predict(
        &cost,
        &OffloadOptions {
            iterations: ITERATIONS,
            ..Default::default()
        },
        true,
    );
    let pipelined = sys.predict(
        &cost,
        &OffloadOptions {
            iterations: ITERATIONS,
            pipeline: PipelineConfig {
                enabled: true,
                ..pipe
            },
            ..Default::default()
        },
        true,
    );
    PipelinePoint {
        benchmark,
        serialized_seconds: serialized.total_seconds(),
        pipelined_seconds: pipelined.total_seconds(),
        chunks: pipelined.overlap.chunks,
        hidden_ns: pipelined.overlap.hidden_ns(),
        engaged: pipelined.overlap.engaged,
    }
}

/// Evaluates every Table I benchmark at the default chunk/window.
#[must_use]
pub fn evaluate_all() -> Vec<PipelinePoint> {
    Benchmark::ALL
        .iter()
        .map(|b| evaluate(*b, PipelineConfig::default()))
        .collect()
}

/// Renders the study as an aligned table.
#[must_use]
pub fn render(points: &[PipelinePoint]) -> String {
    let pipe = PipelineConfig::default();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.benchmark.name().to_owned(),
                format!("{:.3}", p.serialized_seconds * 1e3),
                format!("{:.3}", p.pipelined_seconds * 1e3),
                format!("{:.1}%", p.reduction() * 100.0),
                format!("{}", p.chunks),
                format!("{:.3}", p.hidden_ns as f64 / 1e6),
                if p.engaged { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    let mut out = format!(
        "Pipelined offload — chunk {} B, window {}, {} iterations per offload\n\n",
        pipe.chunk_bytes, pipe.window, ITERATIONS
    );
    out.push_str(&render_table(
        &[
            "benchmark",
            "serial ms",
            "pipelined ms",
            "hidden",
            "chunks",
            "overlap ms",
            "engaged",
        ],
        &rows,
    ));
    out
}

/// Evaluates and renders the study.
#[must_use]
pub fn run() -> String {
    render(&evaluate_all())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_never_loses_and_sometimes_wins_big() {
        let points = evaluate_all();
        assert_eq!(points.len(), Benchmark::ALL.len());
        for p in &points {
            assert!(
                p.pipelined_seconds <= p.serialized_seconds * (1.0 + 1e-12),
                "{}: pipelined {} > serialized {}",
                p.benchmark,
                p.pipelined_seconds,
                p.serialized_seconds
            );
        }
        // The paper-shaped acceptance claim: at least one benchmark hides
        // ≥ 20% of its modeled end-to-end cycles.
        let best = points
            .iter()
            .map(PipelinePoint::reduction)
            .fold(0.0, f64::max);
        assert!(best >= 0.20, "best reduction only {:.1}%", best * 100.0);
    }

    #[test]
    fn render_lists_every_benchmark() {
        let table = run();
        for b in Benchmark::ALL {
            assert!(table.contains(b.name()), "missing {b}");
        }
        assert!(table.contains("chunk 512 B"));
    }

    #[test]
    fn bigger_windows_never_slow_the_schedule() {
        let mut prev = f64::INFINITY;
        for window in [1, 2, 4, 8] {
            let p = evaluate(
                Benchmark::SvmRbf,
                PipelineConfig {
                    window,
                    ..PipelineConfig::default()
                },
            );
            assert!(
                p.pipelined_seconds <= prev * (1.0 + 1e-12),
                "window {window}"
            );
            prev = p.pipelined_seconds;
        }
    }
}
