//! Table I: summary of the benchmark kernels.

use ulp_kernels::Benchmark;

use crate::measure::{measure_all, Measurement};
use crate::render_table;

/// Paper-reported Table I anchors for comparison: `(input kB, output kB,
/// binary kB, RISC ops)`.
#[must_use]
pub fn paper_anchor(b: Benchmark) -> (f64, f64, f64, f64) {
    match b {
        Benchmark::MatMul => (8.0, 4.0, 11.0, 2.4e6),
        Benchmark::MatMulShort => (16.0, 8.0, 11.0, 2.4e6),
        Benchmark::MatMulFixed => (16.0, 8.0, 13.0, 2.7e6),
        Benchmark::Strassen => (8.0, 4.0, 6.7, 2.3e6),
        Benchmark::SvmLinear => (6.9, 1.6, 11.4, 650.0e3),
        Benchmark::SvmPoly => (6.9, 1.6, 11.5, 684.0e3),
        Benchmark::SvmRbf => (6.9, 1.6, 11.6, 781.0e3),
        Benchmark::Cnn => (2.0, 0.04, 48.1, 3.3e6),
        Benchmark::CnnApprox => (2.0, 0.04, 48.1, 2.6e6),
        Benchmark::Hog => (16.0, 36.0, 31.2, 31.0e6),
    }
}

/// Renders Table I from fresh measurements.
#[must_use]
pub fn render(measurements: &[Measurement]) -> String {
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let (p_in, p_out, _, p_ops) = paper_anchor(m.benchmark);
            vec![
                m.benchmark.name().to_owned(),
                m.benchmark.field().to_string(),
                format!("{:.1}", m.input_bytes as f64 / 1024.0),
                format!("{p_in:.1}"),
                format!("{:.2}", m.output_bytes as f64 / 1024.0),
                format!("{p_out:.2}"),
                format!("{:.1}", m.binary_bytes as f64 / 1024.0),
                format!("{:.2}M", m.risc_ops as f64 / 1.0e6),
                format!("{:.2}M", p_ops / 1.0e6),
            ]
        })
        .collect();
    let mut out = String::from("Table I — benchmark kernel summary (measured vs paper)\n\n");
    out.push_str(&render_table(
        &[
            "benchmark",
            "field",
            "in kB",
            "(paper)",
            "out kB",
            "(paper)",
            "bin kB",
            "RISC ops",
            "(paper)",
        ],
        &rows,
    ));
    out
}

/// Measures and renders Table I.
#[must_use]
pub fn run() -> String {
    render(&measure_all())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;

    #[test]
    fn anchors_cover_all_benchmarks() {
        for b in Benchmark::ALL {
            let (i, o, bin, ops) = paper_anchor(b);
            assert!(i > 0.0 && o > 0.0 && bin > 0.0 && ops > 0.0);
        }
    }

    #[test]
    fn io_sizes_track_paper_for_matmul_family() {
        // Input/output bytes for matmul and strassen are exact replicas.
        for b in [
            Benchmark::MatMul,
            Benchmark::MatMulShort,
            Benchmark::Strassen,
        ] {
            let m = measure(b);
            let (p_in, p_out, _, _) = paper_anchor(b);
            assert!((m.input_bytes as f64 / 1024.0 - p_in).abs() < 0.01, "{b}");
            assert!((m.output_bytes as f64 / 1024.0 - p_out).abs() < 0.01, "{b}");
        }
    }

    #[test]
    fn render_contains_every_row() {
        let ms: Vec<_> = [Benchmark::MatMul, Benchmark::Hog]
            .iter()
            .map(|b| measure(*b))
            .collect();
        let table = render(&ms);
        assert!(table.contains("matmul"));
        assert!(table.contains("hog"));
        assert!(table.contains("vision"));
    }
}
