//! Cluster scaling study: how far does the single-cluster architecture
//! carry beyond the paper's 4 cores?
//!
//! The related work (Centip3de, DietSODA) scales to dozens of cores; PULP
//! itself is "a scalable, clustered many-core platform". This study sweeps
//! the core count (with the TCDM banks scaled alongside, as the PULP
//! architecture does) and reports where work-sharing, bank contention and
//! the barrier start to eat the returns.

use ulp_cluster::{Cluster, ClusterConfig};
use ulp_kernels::runner::run_on_existing_cluster;
use ulp_kernels::{Benchmark, TargetEnv};

use crate::render_table;

/// One scaling point.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Cores in the cluster.
    pub cores: usize,
    /// Cycles to completion.
    pub cycles: u64,
    /// Speedup vs the single-core run.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / cores`).
    pub efficiency: f64,
    /// TCDM conflicts.
    pub conflicts: u64,
}

/// Sweeps core counts for one benchmark (banks scale with cores, min 8).
#[must_use]
pub fn sweep(benchmark: Benchmark, core_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let mut single = 0u64;
    for &cores in core_counts {
        let env = TargetEnv::pulp_with_cores(cores);
        let build = benchmark.build(&env);
        let mut cluster = Cluster::new(ClusterConfig {
            num_cores: cores,
            tcdm_banks: cores.next_power_of_two().max(8),
            ..ClusterConfig::default()
        });
        let r = run_on_existing_cluster(&build, &mut cluster)
            .unwrap_or_else(|e| panic!("{benchmark} on {cores} cores: {e}"));
        if cores == 1 {
            single = r.cycles;
        }
        let speedup = single as f64 / r.cycles as f64;
        rows.push(ScalingRow {
            benchmark: benchmark.name(),
            cores,
            cycles: r.cycles,
            speedup,
            efficiency: speedup / cores as f64,
            conflicts: r.activity.map_or(0, |a| a.tcdm_conflicts),
        });
    }
    rows
}

/// Runs the scaling study for a representative benchmark pair.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("Scaling — beyond the paper's 4 cores (banks scale with cores)\n\n");
    let mut table = Vec::new();
    for b in [Benchmark::MatMul, Benchmark::Cnn] {
        for r in sweep(b, &[1, 2, 4, 8, 16]) {
            table.push(vec![
                r.benchmark.to_owned(),
                r.cores.to_string(),
                r.cycles.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.0}%", r.efficiency * 100.0),
                r.conflicts.to_string(),
            ]);
        }
    }
    out.push_str(&render_table(
        &[
            "benchmark",
            "cores",
            "cycles",
            "speedup",
            "efficiency",
            "conflicts",
        ],
        &table,
    ));
    out.push_str(
        "\nefficiency falls with the core count as the fixed-size problems run\n\
         out of parallel rows and the fork/join overhead stays constant — the\n\
         motivation for the paper's choice of a modest 4-core cluster at these\n\
         kernel sizes\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_monotone_but_efficiency_decays() {
        let rows = sweep(Benchmark::MatMul, &[1, 4, 16]);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(rows[1].speedup > 2.8, "4 cores: {:.2}", rows[1].speedup);
        assert!(
            rows[2].speedup > rows[1].speedup,
            "16 cores must still help"
        );
        // matmul has 64 perfectly balanced rows, so it scales gracefully;
        // efficiency must merely not improve with core count.
        assert!(
            rows[2].efficiency <= rows[1].efficiency + 0.02,
            "efficiency must not grow with scale: {:.2} vs {:.2}",
            rows[2].efficiency,
            rows[1].efficiency
        );
    }

    #[test]
    fn small_kernels_scale_worse_than_matmul() {
        // The CNN's conv2 stage shares only 8 maps: at 16 cores half the
        // team idles there, so its efficiency drops well below matmul's.
        let mm = sweep(Benchmark::MatMul, &[1, 16]);
        let cnn = sweep(Benchmark::Cnn, &[1, 16]);
        assert!(
            cnn[1].efficiency < mm[1].efficiency,
            "cnn {:.2} should scale worse than matmul {:.2}",
            cnn[1].efficiency,
            mm[1].efficiency
        );
    }
}
