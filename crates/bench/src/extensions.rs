//! Beyond-the-paper studies: the three §V "Discussion" variations of the
//! model, quantified.
//!
//! 1. **Decoupled link clock** — a link not tied to the MCU frequency
//!    removes the Fig. 5b plateau at slow host clocks.
//! 2. **Sensor→accelerator direct path** — streaming inputs over a
//!    dedicated interface relieves the coupling link.
//! 3. **Concurrent host task** — the envelope already leaves room for
//!    host work during accelerator compute.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::{HetSystem, HetSystemConfig, LinkClocking, OffloadOptions};

use crate::fig5b::system_at;
use crate::render_table;

/// Efficiency at 64 iterations for several host clocks, with the link
/// tied to the host clock vs running independently at 25 MHz.
#[must_use]
pub fn decoupled_link(benchmark: Benchmark) -> Vec<(f64, f64, f64)> {
    let build = benchmark.build(&TargetEnv::pulp_parallel());
    let mut reference = HetSystem::new(HetSystemConfig::default());
    let cost = reference.measure_cost(&build).expect("benchmark offloads");
    [2.0e6, 4.0e6, 8.0e6, 16.0e6]
        .iter()
        .map(|&mcu_hz| {
            let tied = system_at(mcu_hz);
            let opts = OffloadOptions {
                iterations: 64,
                ..Default::default()
            };
            let e_tied = tied.predict(&cost, &opts, true).efficiency();
            let free = HetSystem::new(HetSystemConfig {
                mcu_freq_hz: mcu_hz,
                pulp_vdd: tied.config().pulp_vdd,
                pulp_freq_hz: tied.config().pulp_freq_hz,
                link_clocking: LinkClocking::Independent { spi_hz: 25.0e6 },
                ..HetSystemConfig::default()
            });
            let e_free = free.predict(&cost, &opts, true).efficiency();
            (mcu_hz, e_tied, e_free)
        })
        .collect()
}

/// Per-iteration time with inputs over the link vs over a direct sensor
/// interface, for the input-heavy benchmarks.
#[must_use]
pub fn sensor_direct() -> Vec<(&'static str, f64, f64)> {
    [Benchmark::MatMul, Benchmark::Hog, Benchmark::Cnn]
        .iter()
        .map(|&b| {
            let build = b.build(&TargetEnv::pulp_parallel());
            let mut sys = HetSystem::new(HetSystemConfig {
                mcu_freq_hz: 4.0e6,
                ..HetSystemConfig::default()
            });
            let cost = sys.measure_cost(&build).expect("benchmark offloads");
            let iters = 32;
            let via = sys
                .predict(
                    &cost,
                    &OffloadOptions {
                        iterations: iters,
                        ..Default::default()
                    },
                    true,
                )
                .total_seconds()
                / iters as f64;
            let direct = sys
                .predict(
                    &cost,
                    &OffloadOptions {
                        iterations: iters,
                        sensor_direct: true,
                        ..Default::default()
                    },
                    true,
                )
                .total_seconds()
                / iters as f64;
            (b.name(), via, direct)
        })
        .collect()
}

/// Host MIPS available during accelerator compute and the resulting
/// compute-phase platform power, per host clock.
#[must_use]
pub fn host_task() -> Vec<(f64, f64, f64)> {
    let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
    [1.0e6, 2.0e6, 4.0e6, 8.0e6]
        .iter()
        .map(|&mcu_hz| {
            let mut sys = system_at(mcu_hz);
            let cost = sys.measure_cost(&build).expect("cnn offloads");
            let rep = sys.predict(
                &cost,
                &OffloadOptions {
                    iterations: 16,
                    host_task: true,
                    ..Default::default()
                },
                true,
            );
            let host_mips = rep.host_task_cycles as f64 / rep.compute_seconds / 1e6;
            let platform_w = sys.config().power.total_power_w(
                sys.config().pulp_freq_hz,
                sys.config().pulp_vdd,
                &rep.activity,
            ) + sys.config().mcu.run_power_w(mcu_hz);
            (mcu_hz, host_mips, platform_w)
        })
        .collect()
}

/// Runs all three studies and renders the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("Extensions — the paper's §V discussion points, quantified\n");

    out.push_str("\n[1] decoupled link clock (matmul, 64 iterations/offload):\n");
    let rows: Vec<Vec<String>> = decoupled_link(Benchmark::MatMul)
        .iter()
        .map(|(f, tied, free)| {
            vec![
                format!("{:.0}", f / 1e6),
                format!("{tied:.3}"),
                format!("{free:.3}"),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["MCU MHz", "eff (tied)", "eff (25MHz link)"],
        &rows,
    ));

    out.push_str("\n[2] direct sensor→accelerator input path (per-iteration ms @4 MHz host):\n");
    let rows: Vec<Vec<String>> = sensor_direct()
        .iter()
        .map(|(name, via, direct)| {
            vec![
                (*name).to_owned(),
                format!("{:.2}", via * 1e3),
                format!("{:.2}", direct * 1e3),
                format!("{:.1}×", via / direct),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["benchmark", "via link", "sensor direct", "gain"],
        &rows,
    ));

    out.push_str("\n[3] concurrent host task during accelerator compute (cnn):\n");
    let rows: Vec<Vec<String>> = host_task()
        .iter()
        .map(|(f, mips, w)| {
            vec![
                format!("{:.0}", f / 1e6),
                format!("{mips:.1}"),
                format!("{:.2}", w * 1e3),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["MCU MHz", "host MIPS gained", "platform mW"],
        &rows,
    ));
    out.push_str(
        "\nthe sub-10 mW rows show the paper's point: the envelope already\n\
         accommodates a separate live task on the host\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoupled_link_lifts_the_plateau() {
        for (mcu_hz, tied, free) in decoupled_link(Benchmark::MatMul) {
            assert!(
                free > tied,
                "at {:.0} MHz: {free:.3} vs {tied:.3}",
                mcu_hz / 1e6
            );
            if mcu_hz < 5.0e6 {
                assert!(
                    free > tied * 3.0,
                    "slow-host plateau must lift dramatically: {free:.3} vs {tied:.3}"
                );
            }
        }
    }

    #[test]
    fn sensor_direct_helps_input_heavy_benchmarks_most() {
        let rows = sensor_direct();
        let gain = |name: &str| {
            let r = rows.iter().find(|(n, _, _)| *n == name).unwrap();
            r.1 / r.2
        };
        // matmul ships 8 kB in per ~0.1 M cluster cycles — the most
        // input-bound of the three — while hog computes for far longer
        // per input byte.
        assert!(gain("matmul") > 1.5);
        assert!(gain("matmul") > gain("cnn"));
        assert!(gain("hog") > 1.2 && gain("cnn") > 1.2);
    }

    #[test]
    fn host_task_stays_within_envelope_at_low_clocks() {
        for (mcu_hz, mips, watts) in host_task() {
            assert!(mips > 0.5, "at {:.0} MHz: {mips:.1} MIPS", mcu_hz / 1e6);
            if mcu_hz <= 2.0e6 {
                assert!(
                    watts < 10.5e-3,
                    "at {:.0} MHz the platform draws {:.2} mW",
                    mcu_hz / 1e6,
                    watts * 1e3
                );
            }
        }
    }
}
