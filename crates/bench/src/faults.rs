//! Fault-injection study: offload resilience under a noisy link and a
//! misbehaving event wire.
//!
//! Beyond the paper: the DATE'16 prototype assumes a perfect SPI link and
//! a trustworthy end-of-computation wire. This experiment injects bit
//! errors, frame drops and accelerator hangs (seeded, reproducible) and
//! sweeps the retry policy, measuring what resilience costs — and what
//! giving up costs: with recovery disabled the runtime degrades to the
//! host and the heterogeneous speedup evaporates.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::{
    FaultConfig, HetSystem, HetSystemConfig, OffloadOptions, OffloadPolicy, OffloadReport,
};

use crate::render_table;

/// Bit-error rates swept (errors per transferred bit).
pub const BERS: [f64; 5] = [0.0, 1e-7, 1e-6, 1e-5, 1e-4];

/// Retry budgets swept (retransmissions per frame / restarts per hang).
pub const RETRY_BUDGETS: [u32; 3] = [0, 1, 3];

/// Injector seed: every number in this study is reproducible.
pub const SEED: u64 = 0xD16;

/// Iterations per offload (enough link traffic for faults to strike).
pub const ITERATIONS: usize = 32;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// Injected bit-error rate.
    pub ber: f64,
    /// Retry budget of the policy.
    pub max_retries: u32,
    /// The full offload report (resilience stats included).
    pub report: OffloadReport,
}

fn run_point(fault: FaultConfig, max_retries: u32) -> OffloadReport {
    let mut sys = HetSystem::new(HetSystemConfig {
        fault,
        ..HetSystemConfig::default()
    });
    let accel = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    let host = Benchmark::MatMul.build(&TargetEnv::host_m4());
    let opts = OffloadOptions {
        iterations: ITERATIONS,
        policy: OffloadPolicy {
            max_retries,
            ..OffloadPolicy::default()
        },
        ..Default::default()
    };
    sys.offload_with_fallback(&accel, &host, &opts)
        .expect("fallback absorbs all failures")
}

/// Sweeps BER × retry budget for the matmul offload.
#[must_use]
pub fn compute() -> Vec<FaultRow> {
    let mut rows = Vec::new();
    for ber in BERS {
        for max_retries in RETRY_BUDGETS {
            let fault = FaultConfig {
                seed: SEED,
                bit_error_rate: ber,
                ..FaultConfig::default()
            };
            rows.push(FaultRow {
                ber,
                max_retries,
                report: run_point(fault, max_retries),
            });
        }
    }
    rows
}

/// Event-wire scenarios: a late end-of-computation event and a stuck one.
#[must_use]
pub fn compute_event_wire() -> Vec<(String, OffloadReport)> {
    let late = FaultConfig {
        seed: SEED,
        late_eoc_rate: 0.25,
        late_eoc_cycles: 50_000,
        ..FaultConfig::default()
    };
    let stuck = FaultConfig {
        seed: SEED,
        stuck_eoc: true,
        ..FaultConfig::default()
    };
    vec![
        (
            "late EOC (25 % of runs, +50 k cycles)".to_owned(),
            run_point(late, 3),
        ),
        ("stuck EOC wire (hang)".to_owned(), run_point(stuck, 3)),
    ]
}

/// Renders both tables.
#[must_use]
pub fn render(rows: &[FaultRow], wire: &[(String, OffloadReport)]) -> String {
    let mut out = String::from(
        "Fault injection — matmul offload (32 iterations) on a noisy link,\n\
         seeded and reproducible; `fallback` = remaining iterations ran on\n\
         the host after the retry budget was exhausted\n\n",
    );
    let mut table = Vec::new();
    for r in rows {
        let res = &r.report.resilience;
        table.push(vec![
            format!("{:.0e}", r.ber),
            r.max_retries.to_string(),
            res.crc_errors_detected.to_string(),
            res.retransmissions.to_string(),
            res.watchdog_trips.to_string(),
            format!("{:.3}", res.extra_seconds * 1e3),
            if res.fell_back_to_host {
                format!("yes ({} iters)", res.fallback_iterations)
            } else {
                "no".to_owned()
            },
            format!("{:.2}", r.report.total_seconds() * 1e3),
            format!("{:.1}", r.report.total_energy_joules() * 1e6),
        ]);
    }
    out.push_str(&render_table(
        &[
            "BER",
            "retries",
            "crc err",
            "retx",
            "wd trips",
            "extra ms",
            "fallback",
            "total ms",
            "total µJ",
        ],
        &table,
    ));

    out.push_str("\nEvent-wire faults (retry budget 3, watchdog auto-armed):\n\n");
    let mut table = Vec::new();
    for (name, rep) in wire {
        let res = &rep.resilience;
        table.push(vec![
            name.clone(),
            res.watchdog_trips.to_string(),
            format!("{:.3}", res.extra_seconds * 1e3),
            if res.fell_back_to_host {
                format!("yes ({} iters)", res.fallback_iterations)
            } else {
                "no".to_owned()
            },
            format!("{:.2}", rep.total_seconds() * 1e3),
        ]);
    }
    out.push_str(&render_table(
        &["scenario", "wd trips", "extra ms", "fallback", "total ms"],
        &table,
    ));
    out
}

/// Runs the full study and renders it.
#[must_use]
pub fn run() -> String {
    render(&compute(), &compute_event_wire())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rows: &[FaultRow], ber: f64, retries: u32) -> &FaultRow {
        rows.iter()
            .find(|r| r.ber == ber && r.max_retries == retries)
            .unwrap()
    }

    #[test]
    fn clean_link_pays_nothing() {
        let rows = compute();
        for retries in RETRY_BUDGETS {
            let r = row(&rows, 0.0, retries);
            assert!(!r.report.resilience.any(), "BER 0 must be overhead-free");
        }
    }

    #[test]
    fn noisier_links_cost_more_recovery() {
        let rows = compute();
        let quiet = row(&rows, 1e-7, 3).report.resilience;
        let noisy = row(&rows, 1e-4, 3).report.resilience;
        assert!(noisy.crc_errors_detected > quiet.crc_errors_detected);
        assert!(noisy.extra_seconds > quiet.extra_seconds);
    }

    #[test]
    fn retries_avert_the_fallback_that_zero_budget_suffers() {
        // The headline contrast at BER 1e-6: a zero-retry policy abandons
        // the device on the first corrupted frame while a 3-retry policy
        // finishes every iteration on it — at a small recovery surcharge.
        let rows = compute();
        assert!(row(&rows, 1e-6, 0).report.resilience.fell_back_to_host);
        let kept = row(&rows, 1e-6, 3);
        assert!(!kept.report.resilience.fell_back_to_host);
        assert!(kept.report.resilience.retransmissions > 0);
        // Staying on the device is far cheaper than degrading to the host.
        assert!(kept.report.total_seconds() < row(&rows, 1e-6, 0).report.total_seconds() / 5.0);
    }

    #[test]
    fn a_hopeless_link_is_beyond_any_retry_budget() {
        // At BER 1e-4 an 8 kB frame sees ~6 bit errors on average: every
        // attempt is corrupted and even the 3-retry policy must degrade.
        let rows = compute();
        assert!(row(&rows, 1e-4, 3).report.resilience.fell_back_to_host);
    }

    #[test]
    fn stuck_wire_degrades_to_host() {
        let wire = compute_event_wire();
        let (_, stuck) = wire.iter().find(|(n, _)| n.contains("stuck")).unwrap();
        assert!(stuck.resilience.fell_back_to_host);
        assert!(
            stuck.resilience.watchdog_trips >= 4,
            "every restart attempt trips"
        );
        let (_, late) = wire.iter().find(|(n, _)| n.contains("late")).unwrap();
        assert!(!late.resilience.fell_back_to_host);
        assert!(late.resilience.extra_seconds > 0.0);
    }

    #[test]
    fn study_is_reproducible() {
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
